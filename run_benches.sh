#!/bin/bash
# Regenerates every figure of the paper plus the ablations.
# Scales are chosen to finish on a 2-core laptop in ~20 minutes; raise
# PQSDA_USERS / PQSDA_TESTS toward the paper's sizes on bigger machines.
set -u
cd "$(dirname "$0")"
B=build/bench
run() { echo "===== $* ====="; env "${@:2}" timeout 1200 "$B/$1"; echo; }

# Verify step: race-check the concurrent layers — the observability layer
# (thread-local span stacks, atomic counters), the serving layer
# (ThreadPool, SuggestBatch, the sharded result cache), the live telemetry
# surface (sliding windows, the HTTP exporter, the request log), the
# overload-hardening path (CancelToken, FaultInjector, the degradation
# ladder under a mid-flight cancellation storm), the live-ingestion path
# (snapshot publication/reclaim racing in-flight requests), the stage
# profiler (thread-local accumulators folding into the shared epoch ring),
# the explain layer (thread-local sinks, the /explainz ring, replay
# racing rebuilds) and the sharded scatter-gather path (per-shard lanes,
# publication slots, cross-shard fetches racing holdback swaps) — plus the
# SIMD kernel dispatch (kernel_equivalence_test) — by running obs_test,
# serving_test, telemetry_test, fault_injection_test, ingest_test,
# profiler_test, explain_test, sharding_test and kernel_equivalence_test
# under ThreadSanitizer before spending 20 minutes on figures. Skip with
# PQSDA_TSAN_VERIFY=0.
if [ "${PQSDA_TSAN_VERIFY:-1}" = "1" ]; then
  echo "===== verify: obs + serving + telemetry + fault_injection + ingest + profiler + explain + sharding + kernel_equivalence tests under ThreadSanitizer ====="
  cmake -B build-tsan -S . -DPQSDA_ENABLE_TSAN=ON >/dev/null &&
    cmake --build build-tsan --target obs_test serving_test telemetry_test fault_injection_test ingest_test profiler_test explain_test sharding_test cache_policy_test kernel_equivalence_test -j >/dev/null &&
    timeout 600 ./build-tsan/tests/obs_test &&
    timeout 600 ./build-tsan/tests/serving_test &&
    timeout 600 ./build-tsan/tests/telemetry_test &&
    timeout 600 ./build-tsan/tests/fault_injection_test &&
    timeout 600 ./build-tsan/tests/ingest_test &&
    timeout 600 ./build-tsan/tests/profiler_test &&
    timeout 600 ./build-tsan/tests/explain_test &&
    timeout 600 ./build-tsan/tests/sharding_test &&
    timeout 600 ./build-tsan/tests/cache_policy_test &&
    timeout 600 ./build-tsan/tests/kernel_equivalence_test || {
      echo "TSAN verify failed" >&2
      exit 1
    }
  echo
fi

# Lifetime half of the verify: AddressSanitizer (+UBSan) over the suites
# that stress snapshot reclamation and the fault-injection request path — a
# request serving out of generation g while g+1 swaps in must never touch
# freed memory. Skip with PQSDA_ASAN_VERIFY=0.
if [ "${PQSDA_ASAN_VERIFY:-1}" = "1" ]; then
  echo "===== verify: ingest + serving + fault_injection + profiler + explain + sharding + kernel_equivalence tests under AddressSanitizer ====="
  cmake -B build-asan -S . -DPQSDA_ENABLE_ASAN=ON >/dev/null &&
    cmake --build build-asan --target ingest_test serving_test fault_injection_test profiler_test explain_test sharding_test cache_policy_test kernel_equivalence_test -j >/dev/null &&
    timeout 600 ./build-asan/tests/ingest_test &&
    timeout 600 ./build-asan/tests/serving_test &&
    timeout 600 ./build-asan/tests/fault_injection_test &&
    timeout 600 ./build-asan/tests/profiler_test &&
    timeout 600 ./build-asan/tests/explain_test &&
    timeout 600 ./build-asan/tests/sharding_test &&
    timeout 600 ./build-asan/tests/cache_policy_test &&
    timeout 600 ./build-asan/tests/kernel_equivalence_test || {
      echo "ASan verify failed" >&2
      exit 1
    }
  echo
fi

run fig3_diversity_relevance PQSDA_USERS=200 PQSDA_TESTS=120
run fig4_perplexity PQSDA_USERS=250 PQSDA_TOPICS=16 PQSDA_GIBBS=80
run fig5_personalized PQSDA_USERS=200 PQSDA_MAX_EVAL=300 PQSDA_TOPICS=32 PQSDA_GIBBS=60
run fig6_hpr PQSDA_USERS=200 PQSDA_MAX_EVAL=300 PQSDA_TOPICS=32 PQSDA_GIBBS=60
run fig7_efficiency PQSDA_TESTS=25
run ablation_representation PQSDA_USERS=150 PQSDA_TESTS=100
run ablation_context_decay PQSDA_USERS=150 PQSDA_TESTS=120
run ablation_rank_aggregation PQSDA_USERS=150 PQSDA_MAX_EVAL=250 PQSDA_TOPICS=32 PQSDA_GIBBS=60
run ablation_upm PQSDA_USERS=150 PQSDA_GIBBS=50
run bench_serving PQSDA_USERS=150 PQSDA_TESTS=150
# The stage profiler must be free on the request path: bench_serving just
# measured p95 with the profiler off vs on and wrote the verdict to
# BENCH_profile.json. More than 2% (plus a 50us noise floor) fails the run.
if ! grep -q '"gate_pass": true' BENCH_profile.json 2>/dev/null; then
  echo "profiling-overhead gate FAILED (see BENCH_profile.json)" >&2
  exit 1
fi
# Same contract for the explain layer: bench_serving measured the storm p95
# with explain disabled before vs after the subsystem was armed and wrote
# the verdict to BENCH_explain.json. The disabled path costing more than 1%
# (plus a 50us noise floor) fails the run.
if ! grep -q '"gate_pass": true' BENCH_explain.json 2>/dev/null; then
  echo "explain-overhead gate FAILED (see BENCH_explain.json)" >&2
  exit 1
fi
# Sharded scatter-gather, both halves of its promise: admitted capacity
# under a burst must scale (>= 1.6x at 4 shards vs 1), and every shard
# count must serve bitwise-identical lists on the sequential probes.
# Adaptive cache hierarchy, both halves of its promise: the better of
# ARC/CAR must match-or-beat LRU's hit rate under scan pollution, and
# delta-aware validation must retain >= 1.3x the hits of whole-generation
# keying across the same swap-churn schedule.
if ! grep -q '"gate_pass": true' BENCH_cache.json 2>/dev/null; then
  echo "adaptive-cache gate FAILED (see BENCH_cache.json)" >&2
  exit 1
fi
if ! grep -q '"gate_pass": true' BENCH_sharding.json 2>/dev/null; then
  echo "shard-scaling gate FAILED (see BENCH_sharding.json)" >&2
  exit 1
fi
if ! grep -q '"invariance_pass": true' BENCH_sharding.json 2>/dev/null; then
  echo "shard-invariance gate FAILED (see BENCH_sharding.json)" >&2
  exit 1
fi
# The kernel numbers below are only worth publishing if the vectorized
# kernels actually compute what the scalar references compute — run the
# equivalence suite unconditionally (it is cheap) before timing anything.
echo "===== verify: kernel equivalence (vectorized vs scalar reference) ====="
timeout 600 build/tests/kernel_equivalence_test || {
  echo "kernel equivalence FAILED — not running kernel benchmarks" >&2
  exit 1
}
echo
echo "===== micro_kernels ====="
PQSDA_USERS=120 timeout 900 "$B/micro_kernels" --benchmark_min_time=0.2
# The tentpole's promise, enforced: the packed-operator Jacobi row sweep
# must be at least 2x the legacy CSR sweep, and the SIMD serving pass must
# return bitwise-identical suggestion lists to the scalar pass.
if ! grep -q '"jacobi_gate_pass": true' BENCH_kernels.json 2>/dev/null; then
  echo "jacobi row-sweep speedup gate FAILED (see BENCH_kernels.json)" >&2
  exit 1
fi
if ! grep -q '"results_bitwise_equal": true' BENCH_kernels.json 2>/dev/null; then
  echo "SIMD-vs-scalar result equality gate FAILED (see BENCH_kernels.json)" >&2
  exit 1
fi
