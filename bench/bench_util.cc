#include "bench_util.h"

namespace pqsda::bench {

size_t EnvSize(const char* name, size_t fallback) {
  std::string full = std::string("PQSDA_") + name;
  const char* v = std::getenv(full.c_str());
  if (v == nullptr) return fallback;
  long parsed = std::atol(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

GeneratorConfig BenchGeneratorConfig(size_t users) {
  GeneratorConfig config;
  config.num_users = static_cast<uint32_t>(users);
  config.sessions_per_user_min = 14;
  config.sessions_per_user_max = 26;
  // Every facet is a member of some ambiguous concept: short head queries
  // are ambiguous, the paper's central premise ("query uncertainty widely
  // exists in the scenario of general web search", §I).
  config.facet_config.num_facets = 48;
  config.facet_config.num_concepts = 16;
  config.facet_config.facets_per_concept = 3;
  return config;
}

BenchEnv::BenchEnv(size_t users)
    : data(GenerateLog(BenchGeneratorConfig(users))),
      sessions(Sessionize(data.records)),
      mb_raw(MultiBipartite::Build(data.records, sessions,
                                   EdgeWeighting::kRaw)),
      mb_weighted(MultiBipartite::Build(data.records, sessions,
                                        EdgeWeighting::kCfIqf)),
      cg_raw(ClickGraph::Build(data.records, EdgeWeighting::kRaw)),
      cg_weighted(ClickGraph::Build(data.records, EdgeWeighting::kCfIqf)) {}

double MeanSuggestLatency(const SuggestionEngine& engine,
                          const std::vector<TestQuery>& tests, size_t k,
                          obs::Histogram* latency_us) {
  obs::Histogram local(obs::Histogram::DefaultLatencyBoundsUs());
  obs::Histogram& hist = latency_us != nullptr ? *latency_us : local;
  const double sum_before = hist.Sum();
  size_t served = 0;
  for (const TestQuery& t : tests) {
    obs::ScopedTimer timer(hist);
    auto out = engine.Suggest(t.request, k);
    if (out.ok()) ++served;
  }
  if (served == 0) return 0.0;
  // Failed requests return almost instantly, so the histogram's new wall
  // time is the served requests' total for the Fig. 7 mean.
  return (hist.Sum() - sum_before) * 1e-6 / static_cast<double>(served);
}

double MeanOf(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

std::vector<std::string> RankLabels() {
  std::vector<std::string> out;
  for (size_t k : kRanks) out.push_back(std::to_string(k));
  return out;
}

}  // namespace pqsda::bench
