// Reproduces Fig. 4 of the paper: document-completion perplexity (Eq. 35) of
// UPM against LDA, PTM1, PTM2, TOT, MWM, TUM, CTM and SSTM.
//
// Scale knobs: PQSDA_USERS (default 250), PQSDA_TOPICS (default 16),
// PQSDA_GIBBS (default 80).

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "eval/report.h"
#include "topic/click_models.h"
#include "topic/corpus.h"
#include "topic/lda.h"
#include "topic/perplexity.h"
#include "topic/ptm.h"
#include "topic/sstm.h"
#include "topic/tot.h"
#include "topic/upm.h"

namespace pqsda::bench {
namespace {

void Main() {
  const size_t users = EnvSize("USERS", 250);
  const size_t topics = EnvSize("TOPICS", 16);
  const size_t gibbs = EnvSize("GIBBS", 80);
  std::printf("fig4: perplexity of query-log generative models "
              "(users=%zu, topics=%zu, gibbs=%zu)\n\n",
              users, topics, gibbs);

  BenchEnv env(users);
  QueryLogCorpus corpus = QueryLogCorpus::Build(env.data.records,
                                                env.sessions);
  QueryLogCorpus train, test;
  corpus.SplitBySessions(0.2, &train, &test);
  std::printf("corpus: %zu documents, vocab %zu, %zu urls\n\n",
              corpus.num_documents(), corpus.vocab_size(), corpus.num_urls());

  TopicModelOptions base;
  base.num_topics = topics;
  base.gibbs_iterations = gibbs;

  std::vector<std::unique_ptr<TopicModel>> models;
  models.push_back(std::make_unique<LdaModel>(base));
  models.push_back(std::make_unique<Ptm1Model>(base));
  models.push_back(std::make_unique<Ptm2Model>(base));
  models.push_back(std::make_unique<TotModel>(base));
  models.push_back(std::make_unique<MwmModel>(base));
  models.push_back(std::make_unique<TumModel>(base));
  models.push_back(std::make_unique<CtmModel>(base));
  models.push_back(std::make_unique<SstmModel>(base));
  UpmOptions upm_options;
  upm_options.base = base;
  upm_options.hyper_rounds = 2;
  models.push_back(std::make_unique<UpmModel>(upm_options));

  FigureTable table;
  table.title = "Fig. 4 Perplexity of search-engine query log models "
                "(lower is better)";
  table.x_label = "model";
  std::vector<double> values;
  for (auto& model : models) {
    WallTimer timer;
    model->Train(train);
    auto result = EvaluatePerplexity(*model, test);
    std::printf("  %-5s perplexity %8.1f   (train %5.1fs, %zu predicted "
                "words)\n",
                model->name().c_str(), result.perplexity,
                timer.ElapsedSeconds(), result.predicted_words);
    table.x_values.push_back(model->name());
    values.push_back(result.perplexity);
  }
  std::printf("\n");
  table.AddSeries("perplexity", values);
  table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
