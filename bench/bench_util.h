#ifndef PQSDA_BENCH_BENCH_UTIL_H_
#define PQSDA_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "eval/harness.h"
#include "graph/click_graph.h"
#include "graph/multi_bipartite.h"
#include "log/sessionizer.h"
#include "obs/metrics.h"
#include "suggest/engine.h"
#include "synthetic/generator.h"

namespace pqsda::bench {

/// Reads an integer knob from the environment (PQSDA_<NAME>), falling back
/// to `fallback`. Lets every bench scale up toward the paper's sizes
/// without recompiling, e.g. PQSDA_USERS=5000 PQSDA_TESTS=10000.
size_t EnvSize(const char* name, size_t fallback);

/// Runs every test request through the engine, recording each served
/// request's latency into `latency_us` (microseconds, via obs::ScopedTimer)
/// when non-null. Returns the mean per-served-request latency in seconds
/// (0 when nothing was served) — the Fig. 7 measurement, now with p50/p95/
/// p99 available from the histogram.
double MeanSuggestLatency(const SuggestionEngine& engine,
                          const std::vector<TestQuery>& tests, size_t k = 10,
                          obs::Histogram* latency_us = nullptr);

/// Standard bench dataset: a synthetic log shaped like the paper's (§VI-A),
/// scaled by PQSDA_USERS (default 300).
GeneratorConfig BenchGeneratorConfig(size_t users);

/// Everything the figure benches share: the dataset, its sessions and both
/// weightings of both representations.
struct BenchEnv {
  explicit BenchEnv(size_t users);

  SyntheticDataset data;
  std::vector<Session> sessions;
  MultiBipartite mb_raw;
  MultiBipartite mb_weighted;
  ClickGraph cg_raw;
  ClickGraph cg_weighted;
};

/// Mean of a vector (0 for empty) — tiny helper for metric averaging.
double MeanOf(const std::vector<double>& v);

/// k values reported by the paper's figures.
inline const std::vector<size_t> kRanks = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};

/// Renders kRanks as x-axis labels.
std::vector<std::string> RankLabels();

}  // namespace pqsda::bench

#endif  // PQSDA_BENCH_BENCH_UTIL_H_
