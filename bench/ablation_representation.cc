// Ablation: what does each bipartite of the multi-bipartite representation
// contribute? Runs the PQS-DA diversification with only the URL bipartite
// (the conventional click graph), only the session bipartite, only the term
// bipartite, and all three, reporting Diversity@10 and Relevance@10.
//
// Scale knobs: PQSDA_USERS (default 250), PQSDA_TESTS (default 150).

#include <cstdio>

#include "bench_util.h"
#include "eval/diversity.h"
#include "eval/relevance.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"
#include "suggest/pqsda_diversifier.h"

namespace pqsda::bench {
namespace {

PqsdaDiversifierOptions VariantOptions(double u, double s, double t) {
  PqsdaDiversifierOptions options;
  // Zeroing a bipartite removes it from both the regularization smoothness
  // constraints (Eq. 15) and the cross-bipartite hitting-time walk.
  options.regularization.alpha = {1.2 * u, 1.2 * s, 1.2 * t};
  options.chain_weights = {u, s, t};
  return options;
}

void Main() {
  const size_t users = EnvSize("USERS", 250);
  const size_t num_tests = EnvSize("TESTS", 150);
  std::printf("ablation: multi-bipartite representation components "
              "(users=%zu, tests=%zu)\n\n", users, num_tests);
  BenchEnv env(users);
  auto tests = SampleTestQueries(env.data, num_tests, 77);

  ClickedPages pages = ClickedPages::Build(env.data.records);
  SyntheticPageSimilarity sim(env.data.facets);
  SyntheticQueryCategories cats(env.data);

  struct Variant {
    const char* name;
    PqsdaDiversifierOptions options;
  };
  std::vector<Variant> variants = {
      {"URL only (click graph)", VariantOptions(1.0, 0.0, 0.0)},
      {"Session only", VariantOptions(0.0, 1.0, 0.0)},
      {"Term only", VariantOptions(0.0, 0.0, 1.0)},
      {"U+S", VariantOptions(0.5, 0.5, 0.0)},
      {"U+T", VariantOptions(0.5, 0.0, 0.5)},
      {"U+S+T (full)", VariantOptions(1.0 / 3, 1.0 / 3, 1.0 / 3)},
  };

  FigureTable table;
  table.title = "Representation ablation: Diversity@10 / Relevance@10 / "
                "answered";
  table.x_label = "variant";
  table.x_values = {"div@10", "rel@10", "answered"};
  for (const Variant& v : variants) {
    PqsdaDiversifier diversifier(env.mb_weighted, v.options);
    std::vector<double> div, rel;
    size_t answered = 0;
    for (const TestQuery& t : tests) {
      auto out = diversifier.Suggest(t.request, 10);
      if (!out.ok() || out->empty()) continue;
      ++answered;
      div.push_back(ListDiversity(*out, 10, pages, sim));
      rel.push_back(ListRelevance(t.request.query, *out, 10,
                                  env.data.taxonomy, cats));
    }
    table.AddSeries(v.name, {MeanOf(div), MeanOf(rel),
                             static_cast<double>(answered)});
  }
  table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
