// Ablation: which pieces of the UPM matter? Compares perplexity of the full
// UPM against variants with hyperparameter learning disabled and with the
// temporal (Beta) component disabled, plus the topic-count sweep.
//
// Scale knobs: PQSDA_USERS (default 200), PQSDA_GIBBS (default 60).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "eval/report.h"
#include "topic/corpus.h"
#include "topic/perplexity.h"
#include "topic/upm.h"

namespace pqsda::bench {
namespace {

double RunUpm(const QueryLogCorpus& train, const QueryLogCorpus& test,
              UpmOptions options) {
  UpmModel model(options);
  model.Train(train);
  return EvaluatePerplexity(model, test).perplexity;
}

void Main() {
  const size_t users = EnvSize("USERS", 200);
  std::printf("ablation: UPM components (users=%zu)\n\n", users);
  BenchEnv env(users);
  QueryLogCorpus corpus =
      QueryLogCorpus::Build(env.data.records, env.sessions);
  QueryLogCorpus train, test;
  corpus.SplitBySessions(0.2, &train, &test);

  UpmOptions base;
  base.base.num_topics = EnvSize("TOPICS", 16);
  base.base.gibbs_iterations = EnvSize("GIBBS", 60);
  base.hyper_rounds = 2;

  FigureTable table;
  table.title = "UPM ablation: perplexity (lower is better)";
  table.x_label = "variant";
  table.x_values = {"perplexity"};

  {
    UpmOptions o = base;
    table.AddSeries("full UPM", {RunUpm(train, test, o)});
  }
  {
    UpmOptions o = base;
    o.learn_hyperparameters = false;
    table.AddSeries("no hyperparameter learning",
                    {RunUpm(train, test, o)});
  }
  {
    UpmOptions o = base;
    o.use_timestamps = false;
    table.AddSeries("no temporal component", {RunUpm(train, test, o)});
  }
  {
    UpmOptions o = base;
    o.learn_hyperparameters = false;
    o.use_timestamps = false;
    table.AddSeries("neither", {RunUpm(train, test, o)});
  }
  table.Print();

  FigureTable sweep;
  sweep.title = "UPM topic-count sweep: perplexity";
  sweep.x_label = "K";
  std::vector<double> row;
  for (size_t k : {4, 8, 16, 32}) {
    UpmOptions o = base;
    o.base.num_topics = k;
    sweep.x_values.push_back(std::to_string(k));
    row.push_back(RunUpm(train, test, o));
  }
  sweep.AddSeries("perplexity", row);
  std::printf("\n");
  sweep.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
