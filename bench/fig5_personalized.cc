// Reproduces Fig. 5 of the paper: Diversity@k and PPR@k of the full PQS-DA
// pipeline (diversification + personalization) against the personalized
// baselines FRW(P), BRW(P), HT(P), DQS(P) — baseline lists reranked by our
// personalization component — plus PHT and CM.
//
// Protocol (§VI-C2): each user's most recent sessions are held out; the
// systems train on the remainder; the input query is the first query of
// each held-out session and PPR is measured against the titles of the pages
// clicked later in that session.
//
// Scale knobs: PQSDA_USERS (default 250), PQSDA_TEST_SESSIONS (default 4
// per user), PQSDA_MAX_EVAL (default 400 sessions), PQSDA_TOPICS,
// PQSDA_GIBBS.

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_util.h"
#include "core/pqsda_engine.h"
#include "eval/diversity.h"
#include "eval/ppr.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"
#include "suggest/concept_suggester.h"
#include "suggest/dqs_suggester.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/random_walk_suggester.h"

namespace pqsda::bench {
namespace {

double SuggestionListPprHelper(const std::vector<Suggestion>& list, size_t k,
                               const TestSession& ts) {
  return ListPpr(list, k, ts.clicked_titles);
}

struct System {
  std::string name;
  /// Produces the final (already personalized, where applicable) list.
  std::function<StatusOr<std::vector<Suggestion>>(const SuggestionRequest&,
                                                  size_t)> suggest;
};

void Main() {
  const size_t users = EnvSize("USERS", 250);
  const size_t holdout = EnvSize("TEST_SESSIONS", 4);
  const size_t max_eval = EnvSize("MAX_EVAL", 400);
  std::printf("fig5: personalized suggestion quality (users=%zu)\n\n", users);

  SyntheticDataset data = GenerateLog(BenchGeneratorConfig(users));
  TrainTestSplit split = SplitByRecentSessions(data, holdout);
  std::printf("train records: %zu, held-out sessions: %zu\n\n",
              split.train.size(), split.test_sessions.size());

  // Full PQS-DA engine trained on the training portion.
  PqsdaEngineConfig config;
  config.upm.base.num_topics = EnvSize("TOPICS", 16);
  config.upm.base.gibbs_iterations = EnvSize("GIBBS", 60);
  config.upm.hyper_rounds = 1;
  auto engine_or = PqsdaEngine::Build(split.train, config);
  if (!engine_or.ok()) {
    std::printf("engine build failed: %s\n",
                engine_or.status().ToString().c_str());
    return;
  }
  PqsdaEngine& engine = **engine_or;
  const Personalizer& personalizer = *engine.personalizer();

  // Baselines on the (weighted) click graph of the training log.
  ClickGraph cg = ClickGraph::Build(engine.records(), EdgeWeighting::kCfIqf);
  RandomWalkSuggester frw(cg, WalkDirection::kForward);
  RandomWalkSuggester brw(cg, WalkDirection::kBackward);
  HittingTimeSuggester ht(cg);
  DqsSuggester dqs(cg);
  PersonalizedHittingTimeSuggester pht(cg, engine.records());
  SyntheticPageContentProvider provider(data.facets);
  ConceptSuggester cm(cg, engine.records(), provider);

  auto personalized = [&personalizer](const SuggestionEngine& e) {
    return [&personalizer, &e](const SuggestionRequest& r, size_t k)
               -> StatusOr<std::vector<Suggestion>> {
      auto out = e.Suggest(r, k);
      if (!out.ok()) return out.status();
      return personalizer.Rerank(r.user, *out);
    };
  };

  std::vector<System> systems;
  systems.push_back(
      {"PQS-DA", [&engine](const SuggestionRequest& r, size_t k) {
         return engine.Suggest(r, k);
       }});
  systems.push_back({"FRW(P)", personalized(frw)});
  systems.push_back({"BRW(P)", personalized(brw)});
  systems.push_back({"HT(P)", personalized(ht)});
  systems.push_back({"DQS(P)", personalized(dqs)});
  systems.push_back({"PHT", [&pht](const SuggestionRequest& r, size_t k) {
                       return pht.Suggest(r, k);
                     }});
  systems.push_back({"CM", [&cm](const SuggestionRequest& r, size_t k) {
                       return cm.Suggest(r, k);
                     }});

  ClickedPages pages = ClickedPages::Build(engine.records());
  SyntheticPageSimilarity sim(data.facets);
  const size_t max_k = kRanks.back();

  FigureTable div_table;
  div_table.title = "Fig. 5(a,b) Diversity@k after personalization";
  div_table.x_label = "k";
  div_table.x_values = RankLabels();
  FigureTable ppr_table;
  ppr_table.title = "Fig. 5(c,d) PPR@k after personalization";
  ppr_table.x_label = "k";
  ppr_table.x_values = RankLabels();

  // All systems are evaluated on the *same* sessions; a system that cannot
  // produce suggestions for a session scores 0 there (all-queries protocol,
  // as in Fig. 3 — this is where the click graph's coverage limits show).
  std::vector<const TestSession*> eval_sessions;
  for (const TestSession& ts : split.test_sessions) {
    if (eval_sessions.size() >= max_eval) break;
    eval_sessions.push_back(&ts);
  }
  for (const System& system : systems) {
    std::vector<std::vector<double>> div(kRanks.size()), ppr(kRanks.size());
    size_t answered = 0;
    for (const TestSession* ts : eval_sessions) {
      SuggestionRequest request = RequestFromTestSession(*ts);
      auto out = system.suggest(request, max_k);
      if (!out.ok() || out->empty()) {
        for (size_t ki = 0; ki < kRanks.size(); ++ki) {
          div[ki].push_back(0.0);
          ppr[ki].push_back(0.0);
        }
        continue;
      }
      ++answered;
      for (size_t ki = 0; ki < kRanks.size(); ++ki) {
        div[ki].push_back(ListDiversity(*out, kRanks[ki], pages, sim));
        ppr[ki].push_back(SuggestionListPprHelper(*out, kRanks[ki], *ts));
      }
    }
    std::vector<double> div_row, ppr_row;
    for (size_t ki = 0; ki < kRanks.size(); ++ki) {
      div_row.push_back(MeanOf(div[ki]));
      ppr_row.push_back(MeanOf(ppr[ki]));
    }
    div_table.AddSeries(system.name, div_row);
    ppr_table.AddSeries(system.name, ppr_row);
    std::printf("  %-7s answered %zu / %zu sessions\n", system.name.c_str(),
                answered, eval_sessions.size());
  }
  std::printf("\n");
  div_table.Print();
  std::printf("\n");
  ppr_table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
