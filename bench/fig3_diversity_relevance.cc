// Reproduces Fig. 3 of the paper: Diversity@k and Relevance@k of the
// diversification component vs FRW, BRW, HT and DQS, on both the raw and the
// cfiqf-weighted representations.
//
// Scale knobs: PQSDA_USERS (default 300), PQSDA_TESTS (default 200).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "eval/diversity.h"
#include "eval/relevance.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"
#include "suggest/dqs_suggester.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/random_walk_suggester.h"

namespace pqsda::bench {
namespace {

struct MethodResult {
  std::string name;
  std::vector<double> diversity;  // per k in kRanks
  std::vector<double> relevance;
};

MethodResult EvaluateEngine(const SuggestionEngine& engine,
                            const std::vector<TestQuery>& tests,
                            const BenchEnv& env, const ClickedPages& pages,
                            const SyntheticPageSimilarity& sim,
                            const SyntheticQueryCategories& cats) {
  MethodResult result;
  result.name = engine.name();
  const size_t max_k = kRanks.back();
  std::vector<std::vector<double>> div(kRanks.size());
  std::vector<std::vector<double>> rel(kRanks.size());
  for (const TestQuery& t : tests) {
    auto out = engine.Suggest(t.request, max_k);
    if (!out.ok()) {
      // Paper protocol: the average runs over *all* testing queries; a
      // method that cannot suggest anything for a query scores 0 on it.
      // This is exactly where the click graph's narrow coverage hurts the
      // baselines (§III).
      for (size_t ki = 0; ki < kRanks.size(); ++ki) {
        div[ki].push_back(0.0);
        rel[ki].push_back(0.0);
      }
      continue;
    }
    for (size_t ki = 0; ki < kRanks.size(); ++ki) {
      div[ki].push_back(ListDiversity(*out, kRanks[ki], pages, sim));
      rel[ki].push_back(ListRelevance(t.request.query, *out, kRanks[ki],
                                      env.data.taxonomy, cats));
    }
  }
  for (size_t ki = 0; ki < kRanks.size(); ++ki) {
    result.diversity.push_back(MeanOf(div[ki]));
    result.relevance.push_back(MeanOf(rel[ki]));
  }
  return result;
}

void RunWeighting(const BenchEnv& env, bool weighted,
                  const std::vector<TestQuery>& tests) {
  const MultiBipartite& mb = weighted ? env.mb_weighted : env.mb_raw;
  const ClickGraph& cg = weighted ? env.cg_weighted : env.cg_raw;

  ClickedPages pages = ClickedPages::Build(env.data.records);
  SyntheticPageSimilarity sim(env.data.facets);
  SyntheticQueryCategories cats(env.data);

  PqsdaDiversifier pqsda(mb);
  RandomWalkSuggester frw(cg, WalkDirection::kForward);
  RandomWalkSuggester brw(cg, WalkDirection::kBackward);
  HittingTimeSuggester ht(cg);
  DqsSuggester dqs(cg);

  std::vector<MethodResult> results;
  for (const SuggestionEngine* e :
       std::initializer_list<const SuggestionEngine*>{&pqsda, &frw, &brw, &ht,
                                                      &dqs}) {
    results.push_back(EvaluateEngine(*e, tests, env, pages, sim, cats));
  }

  const char* tag = weighted ? "weighted (cfiqf)" : "raw";
  FigureTable div_table;
  div_table.title = std::string("Fig. 3(") + (weighted ? "b" : "a") +
                    ") Diversity@k, " + tag + " representation";
  div_table.x_label = "k";
  div_table.x_values = RankLabels();
  FigureTable rel_table;
  rel_table.title = std::string("Fig. 3(") + (weighted ? "d" : "c") +
                    ") Relevance@k, " + tag + " representation";
  rel_table.x_label = "k";
  rel_table.x_values = RankLabels();
  for (const auto& r : results) {
    div_table.AddSeries(r.name, r.diversity);
    rel_table.AddSeries(r.name, r.relevance);
  }
  div_table.Print();
  std::printf("\n");
  rel_table.Print();
  std::printf("\n");
}

void Main() {
  const size_t users = EnvSize("USERS", 300);
  const size_t num_tests = EnvSize("TESTS", 200);
  std::printf(
      "fig3: diversification quality (users=%zu, tests=%zu)\n\n",
      users, num_tests);
  BenchEnv env(users);
  std::printf("log: %zu records, %zu distinct queries, %zu sessions\n\n",
              env.data.records.size(), env.mb_raw.num_queries(),
              env.sessions.size());
  auto tests = SampleTestQueries(env.data, num_tests, /*seed=*/1234,
                                 TestSampling::kByDistinctQuery);
  RunWeighting(env, /*weighted=*/false, tests);
  RunWeighting(env, /*weighted=*/true, tests);
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
