// Reproduces Fig. 7 of the paper: relative per-suggestion latency of the
// methods as the number of utilized queries grows. Log size is swept by
// scaling the user population; per-request time is averaged over sampled
// test queries and reported relative to the fastest cell (the paper reports
// relative consumed time).
//
// Scale knobs: PQSDA_SCALES (comma count fixed; default user scales
// 100,200,400,800), PQSDA_TESTS (default 30 requests per cell).

#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "common/timer.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"
#include "suggest/concept_suggester.h"
#include "suggest/dqs_suggester.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/random_walk_suggester.h"

namespace pqsda::bench {
namespace {

double MeanSuggestLatency(const SuggestionEngine& engine,
                          const std::vector<TestQuery>& tests) {
  WallTimer timer;
  size_t served = 0;
  for (const TestQuery& t : tests) {
    auto out = engine.Suggest(t.request, 10);
    if (out.ok()) ++served;
  }
  if (served == 0) return 0.0;
  return timer.ElapsedSeconds() / static_cast<double>(served);
}

void Main() {
  const size_t num_tests = EnvSize("TESTS", 30);
  std::vector<size_t> scales = {100, 200, 400, 800};
  std::printf("fig7: per-suggestion latency vs number of utilized queries\n");
  std::printf("(%zu requests per cell; values relative to the fastest "
              "cell)\n\n", num_tests);

  std::vector<std::string> labels;
  std::vector<std::vector<double>> latencies(5);  // per method
  const std::vector<std::string> names = {"PQS-DA", "DQS", "HT", "FRW", "CM"};

  for (size_t users : scales) {
    BenchEnv env(users);
    labels.push_back(std::to_string(env.mb_weighted.num_queries()));
    auto tests = SampleTestQueries(env.data, num_tests, /*seed=*/99);

    PqsdaDiversifier pqsda(env.mb_weighted);
    DqsSuggester dqs(env.cg_weighted);
    HittingTimeSuggester ht(env.cg_weighted);
    RandomWalkSuggester frw(env.cg_weighted, WalkDirection::kForward);
    SyntheticPageContentProvider provider(env.data.facets);
    ConceptSuggester cm(env.cg_weighted, env.data.records, provider);

    const SuggestionEngine* engines[5] = {&pqsda, &dqs, &ht, &frw, &cm};
    for (size_t m = 0; m < 5; ++m) {
      double latency = MeanSuggestLatency(*engines[m], tests);
      latencies[m].push_back(latency);
      std::printf("  users=%4zu  %-7s %8.2f ms/suggestion\n", users,
                  names[m].c_str(), latency * 1e3);
    }
  }

  double min_latency = 1e100;
  for (const auto& row : latencies) {
    for (double v : row) {
      if (v > 0.0) min_latency = std::min(min_latency, v);
    }
  }
  FigureTable table;
  table.title = "Fig. 7 Relative consumed time vs #utilized queries";
  table.x_label = "queries";
  table.x_values = labels;
  for (size_t m = 0; m < 5; ++m) {
    std::vector<double> rel;
    for (double v : latencies[m]) rel.push_back(v / min_latency);
    table.AddSeries(names[m], rel);
  }
  std::printf("\n");
  table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
