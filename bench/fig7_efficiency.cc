// Reproduces Fig. 7 of the paper: relative per-suggestion latency of the
// methods as the number of utilized queries grows. Log size is swept by
// scaling the user population; per-request time is averaged over sampled
// test queries and reported relative to the fastest cell (the paper reports
// relative consumed time).
//
// Scale knobs: PQSDA_SCALES (comma count fixed; default user scales
// 100,200,400,800), PQSDA_TESTS (default 30 requests per cell).
// PQSDA_STATS=1 additionally emits a per-stage latency breakdown of the
// PQS-DA pipeline (expansion / solve / selection) as registry JSON.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"
#include "obs/metrics.h"
#include "suggest/concept_suggester.h"
#include "suggest/dqs_suggester.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/random_walk_suggester.h"
#include "suggest/suggest_stats.h"

namespace pqsda::bench {
namespace {

// PQSDA_STATS=1 mode: re-runs the PQS-DA requests with stats collection on,
// feeding each stage's span duration into a cell-local registry, and prints
// the registry as JSON — the per-stage breakdown behind the Fig. 7 totals.
void EmitStageBreakdown(const PqsdaDiversifier& pqsda,
                        const std::vector<TestQuery>& tests, size_t users) {
  obs::MetricsRegistry registry;
  obs::Histogram& total = registry.GetHistogram("pqsda.suggest.latency_us");
  for (const TestQuery& t : tests) {
    SuggestStats st;
    auto out = pqsda.Diversify(t.request, 10, &st);
    if (!out.ok()) continue;
    total.Observe(static_cast<double>(st.trace.duration_us()));
    for (const char* stage :
         {"expansion", "regularization_solve", "hitting_time_selection"}) {
      if (const obs::SpanNode* span = st.trace.Find(stage)) {
        registry
            .GetHistogram(std::string("pqsda.suggest.stage.") + stage + "_us")
            .Observe(static_cast<double>(span->duration_us()));
      }
    }
  }
  std::printf("  stats users=%zu %s\n", users,
              registry.ExportJson().c_str());
}

void Main() {
  const char* stats_env = std::getenv("PQSDA_STATS");
  const bool emit_stats = stats_env != nullptr && std::strcmp(stats_env, "1") == 0;
  const size_t num_tests = EnvSize("TESTS", 30);
  std::vector<size_t> scales = {100, 200, 400, 800};
  std::printf("fig7: per-suggestion latency vs number of utilized queries\n");
  std::printf("(%zu requests per cell; values relative to the fastest "
              "cell)\n\n", num_tests);

  std::vector<std::string> labels;
  std::vector<std::vector<double>> latencies(5);  // per method
  const std::vector<std::string> names = {"PQS-DA", "DQS", "HT", "FRW", "CM"};

  for (size_t users : scales) {
    BenchEnv env(users);
    labels.push_back(std::to_string(env.mb_weighted.num_queries()));
    auto tests = SampleTestQueries(env.data, num_tests, /*seed=*/99);

    PqsdaDiversifier pqsda(env.mb_weighted);
    DqsSuggester dqs(env.cg_weighted);
    HittingTimeSuggester ht(env.cg_weighted);
    RandomWalkSuggester frw(env.cg_weighted, WalkDirection::kForward);
    SyntheticPageContentProvider provider(env.data.facets);
    ConceptSuggester cm(env.cg_weighted, env.data.records, provider);

    const SuggestionEngine* engines[5] = {&pqsda, &dqs, &ht, &frw, &cm};
    for (size_t m = 0; m < 5; ++m) {
      obs::Histogram hist(obs::Histogram::DefaultLatencyBoundsUs());
      double latency = MeanSuggestLatency(*engines[m], tests, 10, &hist);
      latencies[m].push_back(latency);
      std::printf(
          "  users=%4zu  %-7s %8.2f ms/suggestion  "
          "(p50 %.2f / p95 %.2f / p99 %.2f ms)\n",
          users, names[m].c_str(), latency * 1e3, hist.Quantile(0.5) * 1e-3,
          hist.Quantile(0.95) * 1e-3, hist.Quantile(0.99) * 1e-3);
    }
    if (emit_stats) EmitStageBreakdown(pqsda, tests, users);
  }

  double min_latency = 1e100;
  for (const auto& row : latencies) {
    for (double v : row) {
      if (v > 0.0) min_latency = std::min(min_latency, v);
    }
  }
  FigureTable table;
  table.title = "Fig. 7 Relative consumed time vs #utilized queries";
  table.x_label = "queries";
  table.x_values = labels;
  for (size_t m = 0; m < 5; ++m) {
    std::vector<double> rel;
    for (double v : latencies[m]) rel.push_back(v / min_latency);
    table.AddSeries(names[m], rel);
  }
  std::printf("\n");
  table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
