// Serving-path benchmark: sequential Suggest loop vs SuggestBatch over a
// thread pool, and the LRU result cache on a Zipf-shaped repeated workload.
// Also verifies (and prints) the cache-hit contract: a repeated identical
// request is served from cache, increments pqsda.cache.hits_total and
// returns the exact list the miss computed — and exercises the live
// telemetry surface: an embedded HTTP exporter is scraped before, during
// and after a batched storm, checking that /healthz answers 200 and the
// /statusz windowed request counts actually move.
//
// Ends with an overload scenario: a burst far past the shared pool's
// capacity, every request under a deadline that starts ticking at enqueue,
// served once by a no-shedding baseline engine and once by an engine that
// sheds on pool queue depth. Reports end-to-end (queue wait included) p99
// of the admitted requests, shed rate and per-rung degradation counts for
// both, checks the robust section of /statusz moved, and emits the numbers
// as BENCH_robustness.json.
//
// Closes with an ingest-while-serving scenario: the same request storm
// served by a live engine with the index static, then again while a churn
// thread keeps ingesting fresh records and swapping new generations in.
// Every request pins its snapshot at admission, so the admitted p95/p99
// under churn must sit near the static baseline — the proof that serving
// never blocks on a rebuild. Emits BENCH_ingest.json.
//
// Finally measures the stage profiler's own cost: the same request storm
// with StageProfiler disabled vs enabled, alternating min-of-N passes to
// cancel drift, gated on the p95 (the profiler must not move tail
// latency). Emits BENCH_profile.json with overhead_pct and gate_pass;
// run_benches.sh fails the stage when the gate doesn't hold.
//
// Then the explain layer's cost the same way: the storm with explain
// disabled (the default — one atomic load at admission, one thread-local
// read per seam) measured before vs after full-capture storms armed the
// subsystem and filled the /explainz ring. That residual-cost delta is
// gated at <=1% + 50us on the p95 (the "zero cost when disabled"
// contract); head-sampled 1/32 and worst-case every-request p95s are
// reported ungated. Emits BENCH_explain.json; run_benches.sh enforces
// the gate.
//
// Then the sharded scatter-gather scenario: the same corpus behind a
// ShardedEngine at 1, 2, 4 and 8 shards, a fixed burst through the
// lane-routed SuggestBatch with a per-shard queue-depth admission gate.
// What sharding buys on this box is *admission capacity* — N independent
// lanes each shed at their own gate where one gate sheds everything past a
// single queue — so the gate is admitted-requests at 4 shards >= 1.6x the
// single-shard count, plus an inline re-check of the differential
// harness's invariance claim (every shard count fingerprints identically
// on sequential probes). Emits BENCH_sharding.json; run_benches.sh
// enforces both verdicts.
//
// Closes with the adaptive-cache scenario: a purpose-built corpus of many
// small disconnected clusters served under a Zipf head with one-shot scan
// pollution and swap churn from localized ingest deltas. Two gated
// verdicts in BENCH_cache.json: the better of ARC/CAR must match-or-beat
// LRU's hit rate under the scan traffic, and delta-aware validation must
// retain >= 1.3x the hits of whole-generation keying across the same swap
// schedule. run_benches.sh enforces both.
//
// Scale knobs: PQSDA_USERS (default 150), PQSDA_TESTS (default 200 serving
// requests), PQSDA_SERVE_THREADS (batch pool size, default 4),
// PQSDA_CACHE (cache capacity for the cached runs, default 512),
// PQSDA_OVERLOAD_DEADLINE_MS (per-request budget in the overload burst,
// default 400), PQSDA_SHARD_BURST / PQSDA_SHARD_DEPTH (sharded burst size
// and per-shard admission depth, defaults 96 / 8), PQSDA_CACHE_OPS /
// PQSDA_CACHE_POLICY_CAP (cache-scenario workload length and scan-run
// capacity, defaults 1200 / 24).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "core/pqsda_engine.h"
#include "core/sharded_engine.h"
#include "eval/harness.h"
#include "obs/explain.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"

namespace pqsda::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// Requests/second of one timed pass; `served` counts non-error results.
struct PassResult {
  double seconds = 0.0;
  size_t served = 0;
  double Throughput(size_t n) const {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  }
};

PassResult SequentialPass(const PqsdaEngine& engine,
                          const std::vector<SuggestionRequest>& requests,
                          size_t k) {
  PassResult r;
  auto begin = std::chrono::steady_clock::now();
  for (const SuggestionRequest& request : requests) {
    if (engine.Suggest(request, k).ok()) ++r.served;
  }
  r.seconds = Seconds(begin, std::chrono::steady_clock::now());
  return r;
}

PassResult BatchedPass(const PqsdaEngine& engine,
                       const std::vector<SuggestionRequest>& requests,
                       size_t k, ThreadPool& pool) {
  PassResult r;
  auto begin = std::chrono::steady_clock::now();
  auto results = engine.SuggestBatch(requests, k, &pool);
  r.seconds = Seconds(begin, std::chrono::steady_clock::now());
  for (const auto& result : results) {
    if (result.ok()) ++r.served;
  }
  return r;
}

// Nearest-rank percentile over per-request latencies (microseconds).
double Percentile(std::vector<double> us, size_t pct) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  size_t idx = (us.size() * pct + 99) / 100;  // ceil(pct/100 * n)
  if (idx > 0) --idx;
  if (idx >= us.size()) idx = us.size() - 1;
  return us[idx];
}

// Sequential pass recording every request's latency — the shape the
// profiling-overhead gate needs: no pool queue wait drowning the signal,
// just the request path the stage scopes instrument.
std::vector<double> TimedPass(const PqsdaEngine& engine,
                              const std::vector<SuggestionRequest>& requests,
                              size_t k) {
  std::vector<double> us;
  us.reserve(requests.size());
  for (const SuggestionRequest& request : requests) {
    auto t0 = std::chrono::steady_clock::now();
    (void)engine.Suggest(request, k);
    us.push_back(1e6 * Seconds(t0, std::chrono::steady_clock::now()));
  }
  return us;
}

// Extracts the numeric value following `"key":` in a JSON blob (first
// occurrence). Good enough for pulling one windowed counter out of a
// /statusz scrape without a JSON parser.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

// Zipf-ish head-heavy request stream: draws from `base` with rank-r weight
// 1/(r+1), so a handful of head queries dominate — the traffic shape the
// cache is designed for.
std::vector<SuggestionRequest> ZipfWorkload(
    const std::vector<SuggestionRequest>& base, size_t count, uint64_t seed) {
  std::vector<double> weights;
  weights.reserve(base.size());
  for (size_t r = 0; r < base.size(); ++r) {
    weights.push_back(1.0 / static_cast<double>(r + 1));
  }
  std::discrete_distribution<size_t> pick(weights.begin(), weights.end());
  std::mt19937_64 rng(seed);
  std::vector<SuggestionRequest> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(base[pick(rng)]);
  return out;
}

// Per-rung (plus admitted/shed) deltas of the pqsda.robust.* counters
// across one overload pass.
struct RobustDelta {
  uint64_t admitted = 0;
  uint64_t shed = 0;
  uint64_t rung[4] = {0, 0, 0, 0};  // full, truncated, walk-only, cache-only
};

// Outcome of one overload burst: per-request end-to-end latencies
// (microseconds, measured from enqueue — queue wait is the point) split by
// admission, and the status-code census.
struct OverloadOutcome {
  double seconds = 0.0;
  size_t ok = 0;
  size_t shed = 0;           // kUnavailable from the admission controller
  size_t deadline = 0;       // kDeadlineExceeded
  size_t not_found = 0;      // cache-only rung missing the cache
  size_t other_error = 0;
  std::vector<double> admitted_us;  // everything the controller let through
  RobustDelta delta;

  double AdmittedPercentile(size_t pct) const {
    if (admitted_us.empty()) return 0.0;
    std::vector<double> sorted = admitted_us;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = (sorted.size() * pct + 99) / 100;  // ceil(pct/100 * n)
    if (idx > 0) --idx;
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return sorted[idx];
  }
  double AdmittedP95() const { return AdmittedPercentile(95); }
  double AdmittedP99() const { return AdmittedPercentile(99); }
};

// Dumps the whole request list onto the shared pool at once (offered load
// far past capacity), each request under `deadline_ns` armed at enqueue
// time so queue wait eats real budget, and waits for the burst to drain.
// The shared pool is deliberate: the engine's queue-depth shedding gate
// reads ThreadPool::Shared().QueueDepth(), so this is the queue the burst
// must pile up on.
OverloadOutcome OverloadPass(const PqsdaEngine& engine,
                             const std::vector<SuggestionRequest>& base,
                             size_t k, int64_t deadline_ns) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter* counters[6] = {
      &reg.GetCounter("pqsda.robust.admitted_total"),
      &reg.GetCounter("pqsda.robust.shed_total"),
      &reg.GetCounter("pqsda.robust.rung_full_total"),
      &reg.GetCounter("pqsda.robust.rung_truncated_total"),
      &reg.GetCounter("pqsda.robust.rung_walk_only_total"),
      &reg.GetCounter("pqsda.robust.rung_cache_only_total"),
  };
  uint64_t before[6];
  for (size_t i = 0; i < 6; ++i) before[i] = counters[i]->Value();

  ThreadPool& pool = ThreadPool::Shared();
  const size_t n = base.size();
  std::vector<SuggestionRequest> requests = base;
  std::deque<CancelToken> tokens;  // stable addresses across the burst
  std::vector<double> latency_us(n, 0.0);
  std::vector<StatusCode> codes(n, StatusCode::kInternal);
  std::atomic<size_t> remaining{n};
  std::mutex mu;
  std::condition_variable done;

  auto begin = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    tokens.emplace_back();
    tokens.back().SetDeadlineAfter(deadline_ns);
    requests[i].cancel = &tokens.back();
    auto enqueued = std::chrono::steady_clock::now();
    pool.Submit([&, i, enqueued] {
      auto result = engine.Suggest(requests[i], k);
      latency_us[i] = 1e6 * Seconds(enqueued, std::chrono::steady_clock::now());
      codes[i] = result.ok() ? StatusCode::kOk : result.status().code();
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        done.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    done.wait(lock, [&] { return remaining.load() == 0; });
  }

  OverloadOutcome out;
  out.seconds = Seconds(begin, std::chrono::steady_clock::now());
  for (size_t i = 0; i < n; ++i) {
    switch (codes[i]) {
      case StatusCode::kOk: ++out.ok; break;
      case StatusCode::kUnavailable: ++out.shed; break;
      case StatusCode::kDeadlineExceeded: ++out.deadline; break;
      case StatusCode::kNotFound: ++out.not_found; break;
      default: ++out.other_error; break;
    }
    if (codes[i] != StatusCode::kUnavailable) {
      out.admitted_us.push_back(latency_us[i]);
    }
  }
  out.delta.admitted = counters[0]->Value() - before[0];
  out.delta.shed = counters[1]->Value() - before[1];
  for (size_t r = 0; r < 4; ++r) {
    out.delta.rung[r] = counters[2 + r]->Value() - before[2 + r];
  }
  return out;
}

void PrintOverload(const char* label, const OverloadOutcome& o, size_t n) {
  std::printf(
      "  %-10s p99(admitted)=%9.0fus  admitted=%zu shed=%zu "
      "(ok=%zu deadline=%zu not_found=%zu other=%zu, %.3fs)\n",
      label, o.AdmittedP99(), o.admitted_us.size(), o.shed, o.ok, o.deadline,
      o.not_found, o.other_error, o.seconds);
  std::printf(
      "  %-10s rungs: full=%llu truncated=%llu walk_only=%llu "
      "cache_only=%llu  (of %zu offered)\n",
      "", static_cast<unsigned long long>(o.delta.rung[0]),
      static_cast<unsigned long long>(o.delta.rung[1]),
      static_cast<unsigned long long>(o.delta.rung[2]),
      static_cast<unsigned long long>(o.delta.rung[3]), n);
}

void AppendOverloadJson(std::string* json, const char* name,
                        const OverloadOutcome& o) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"p99_admitted_us\": %.1f, \"admitted\": %zu, "
      "\"shed\": %zu, \"ok\": %zu, \"deadline_exceeded\": %zu, "
      "\"not_found\": %zu, \"rungs\": {\"full\": %llu, "
      "\"truncated_solve\": %llu, \"walk_only\": %llu, "
      "\"cache_only\": %llu}}",
      name, o.AdmittedP99(), o.admitted_us.size(), o.shed, o.ok, o.deadline,
      o.not_found, static_cast<unsigned long long>(o.delta.rung[0]),
      static_cast<unsigned long long>(o.delta.rung[1]),
      static_cast<unsigned long long>(o.delta.rung[2]),
      static_cast<unsigned long long>(o.delta.rung[3]));
  *json += buf;
}

void Main() {
  const size_t users = EnvSize("USERS", 150);
  const size_t num_tests = EnvSize("TESTS", 200);
  const size_t serve_threads = EnvSize("SERVE_THREADS", 4);
  const size_t cache_capacity = EnvSize("CACHE", 512);
  const size_t k = 10;

  std::printf("bench_serving: concurrent serving + result cache\n");
  std::printf("  hardware_concurrency=%u  serve_threads=%zu  users=%zu  "
              "requests=%zu\n\n",
              std::thread::hardware_concurrency(), serve_threads, users,
              num_tests);

  SyntheticDataset data = GenerateLog(BenchGeneratorConfig(users));
  std::vector<TestQuery> tests = SampleTestQueries(data, num_tests, 17);
  std::vector<SuggestionRequest> requests;
  requests.reserve(tests.size());
  for (const TestQuery& t : tests) requests.push_back(t.request);

  // Diversification-only engine: serving throughput is about the request
  // path, and skipping Gibbs keeps the bench fast at any scale.
  PqsdaEngineConfig config;
  config.personalize = false;
  auto engine_or = PqsdaEngine::Build(data.records, config);
  if (!engine_or.ok()) {
    std::printf("engine build failed: %s\n",
                engine_or.status().ToString().c_str());
    return;
  }
  const PqsdaEngine& engine = **engine_or;
  ThreadPool pool(serve_threads);

  // --- sequential vs batched (no cache) -------------------------------
  PassResult warmup = SequentialPass(engine, requests, k);  // page in
  PassResult seq = SequentialPass(engine, requests, k);
  PassResult bat = BatchedPass(engine, requests, k, pool);
  std::printf("sequential: %8.1f req/s  (%zu/%zu served, %.3fs)\n",
              seq.Throughput(requests.size()), seq.served, requests.size(),
              seq.seconds);
  std::printf("batched   : %8.1f req/s  (%zu/%zu served, %.3fs, pool=%zu)\n",
              bat.Throughput(requests.size()), bat.served, requests.size(),
              bat.seconds, pool.size());
  std::printf("batched/sequential speedup: %.2fx  "
              "(threading gains require >1 core; this host reports %u)\n\n",
              seq.seconds > 0.0 ? seq.seconds / bat.seconds : 0.0,
              std::thread::hardware_concurrency());
  (void)warmup;

  // --- cached serving on a Zipf workload ------------------------------
  PqsdaEngineConfig cached_config = config;
  cached_config.cache_capacity = cache_capacity;
  auto cached_or = PqsdaEngine::Build(data.records, cached_config);
  if (!cached_or.ok()) {
    std::printf("cached engine build failed: %s\n",
                cached_or.status().ToString().c_str());
    return;
  }
  const PqsdaEngine& cached = **cached_or;
  std::vector<SuggestionRequest> zipf =
      ZipfWorkload(requests, num_tests * 4, 23);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& hits = reg.GetCounter("pqsda.cache.hits_total");
  obs::Counter& misses = reg.GetCounter("pqsda.cache.misses_total");
  const uint64_t hits_before = hits.Value();
  const uint64_t misses_before = misses.Value();

  PassResult uncached_zipf = SequentialPass(engine, zipf, k);
  PassResult cached_zipf = SequentialPass(cached, zipf, k);
  const uint64_t zipf_hits = hits.Value() - hits_before;
  const uint64_t zipf_misses = misses.Value() - misses_before;
  std::printf("zipf x%zu uncached: %8.1f req/s\n", zipf.size() / requests.size(),
              uncached_zipf.Throughput(zipf.size()));
  std::printf("zipf x%zu cached  : %8.1f req/s  (hits=%llu misses=%llu, "
              "hit rate %.1f%%)\n",
              zipf.size() / requests.size(),
              cached_zipf.Throughput(zipf.size()),
              static_cast<unsigned long long>(zipf_hits),
              static_cast<unsigned long long>(zipf_misses),
              100.0 * static_cast<double>(zipf_hits) /
                  static_cast<double>(zipf.size()));
  std::printf("cached/uncached speedup: %.2fx\n\n",
              cached_zipf.seconds > 0.0
                  ? uncached_zipf.seconds / cached_zipf.seconds
                  : 0.0);

  // --- cache-hit contract ---------------------------------------------
  SuggestionRequest probe = requests.front();
  const uint64_t contract_hits_before = hits.Value();
  auto first = cached.Suggest(probe, k);
  auto second = cached.Suggest(probe, k);
  const bool identical = first.ok() && second.ok() && *first == *second;
  const uint64_t contract_hits = hits.Value() - contract_hits_before;
  std::printf("cache-hit contract: repeat request hit=%s identical=%s "
              "(pqsda.cache.hits_total +%llu)\n\n",
              contract_hits >= 1 ? "yes" : "NO",
              identical ? "yes" : "NO",
              static_cast<unsigned long long>(contract_hits));

  // --- live telemetry: scrape /statusz around a batched storm -----------
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Default();
  obs::HttpExporter exporter;
  telemetry.RegisterEndpoints(&exporter);
  Status started = exporter.Start(0);  // ephemeral port
  if (!started.ok()) {
    std::printf("telemetry exporter failed to start: %s\n",
                started.ToString().c_str());
    return;
  }
  std::printf("telemetry exporter on http://127.0.0.1:%d\n", exporter.port());

  int health_status = 0;
  auto health = obs::HttpGet(exporter.port(), "/healthz", &health_status);
  auto before_scrape = obs::HttpGet(exporter.port(), "/statusz");
  const double requests_before_storm =
      before_scrape.ok() ? JsonNumber(*before_scrape, "requests") : -1.0;

  // Scrape mid-run from a second thread while the batched storm is in
  // flight: the exporter must serve concurrently with SuggestBatch.
  std::string mid_scrape;
  std::thread scraper([&exporter, &mid_scrape] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto scrape = obs::HttpGet(exporter.port(), "/statusz");
    if (scrape.ok()) mid_scrape = std::move(*scrape);
  });
  PassResult storm = BatchedPass(cached, zipf, k, pool);
  scraper.join();

  auto after_scrape = obs::HttpGet(exporter.port(), "/statusz");
  const double requests_after_storm =
      after_scrape.ok() ? JsonNumber(*after_scrape, "requests") : -1.0;
  const double qps_after = after_scrape.ok()
      ? JsonNumber(*after_scrape, "qps") : -1.0;
  const double p95_after = after_scrape.ok()
      ? JsonNumber(*after_scrape, "p95") : -1.0;
  const bool windows_moved =
      requests_after_storm >= requests_before_storm +
          static_cast<double>(zipf.size());
  std::printf("storm: %8.1f req/s (%zu/%zu served)\n",
              storm.Throughput(zipf.size()), storm.served, zipf.size());
  std::printf("  /healthz: %d %s\n", health_status,
              health_status == 200 ? "ok" : "UNEXPECTED");
  std::printf("  /statusz 10s-window requests: before=%.0f mid=%.0f "
              "after=%.0f  (moved=%s)\n",
              requests_before_storm, JsonNumber(mid_scrape, "requests"),
              requests_after_storm, windows_moved ? "yes" : "NO");
  std::printf("  /statusz 10s-window qps=%.1f latency p95=%.0fus\n",
              qps_after, p95_after);
  // --- overload: shedding vs no-shedding under a burst past capacity ---
  ThreadPool& shared = ThreadPool::Shared();
  const int64_t overload_deadline_ms =
      static_cast<int64_t>(EnvSize("OVERLOAD_DEADLINE_MS", 400));
  const size_t shed_depth = 2 * shared.size();
  std::vector<SuggestionRequest> burst =
      ZipfWorkload(requests, num_tests * 2, 31);

  // Two fresh engines over the same records: identical pipelines, the only
  // difference is the queue-depth shedding gate.
  PqsdaEngineConfig baseline_config = config;
  PqsdaEngineConfig shedding_config = config;
  shedding_config.robustness.shed_queue_depth = shed_depth;
  auto baseline_or = PqsdaEngine::Build(data.records, baseline_config);
  auto shedding_or = PqsdaEngine::Build(data.records, shedding_config);
  if (!baseline_or.ok() || !shedding_or.ok()) {
    std::printf("overload engines failed to build\n");
    exporter.Stop();
    return;
  }

  std::printf("overload: burst of %zu requests onto the %zu-worker shared "
              "pool (offered %.0fx capacity), %lldms deadline from enqueue, "
              "shed above queue depth %zu\n",
              burst.size(), shared.size(),
              static_cast<double>(burst.size()) /
                  static_cast<double>(shared.size()),
              static_cast<long long>(overload_deadline_ms), shed_depth);
  OverloadOutcome baseline = OverloadPass(
      **baseline_or, burst, k, overload_deadline_ms * 1'000'000);
  OverloadOutcome shedding = OverloadPass(
      **shedding_or, burst, k, overload_deadline_ms * 1'000'000);
  PrintOverload("baseline", baseline, burst.size());
  PrintOverload("shedding", shedding, burst.size());
  const double baseline_p99 = baseline.AdmittedP99();
  const double shedding_p99 = shedding.AdmittedP99();
  std::printf("  admitted-request p99 with shedding: %.2fx of baseline "
              "(%s)\n",
              baseline_p99 > 0.0 ? shedding_p99 / baseline_p99 : 0.0,
              shedding_p99 < baseline_p99 ? "lower, as required"
                                          : "NOT LOWER");

  // The robust section of /statusz must reflect the burst: shed and
  // per-rung totals are process counters, so the scrape shows at least the
  // deltas the two passes recorded.
  auto robust_scrape = obs::HttpGet(exporter.port(), "/statusz");
  if (robust_scrape.ok()) {
    std::printf("  /statusz robust: admitted=%.0f shed=%.0f rungs "
                "full=%.0f truncated=%.0f walk_only=%.0f cache_only=%.0f\n",
                JsonNumber(*robust_scrape, "admitted_total"),
                JsonNumber(*robust_scrape, "shed_total"),
                JsonNumber(*robust_scrape, "full"),
                JsonNumber(*robust_scrape, "truncated_solve"),
                JsonNumber(*robust_scrape, "walk_only"),
                JsonNumber(*robust_scrape, "cache_only"));
    const bool robust_moved =
        JsonNumber(*robust_scrape, "shed_total") >=
        static_cast<double>(shedding.delta.shed);
    std::printf("  /statusz robust section moved: %s\n",
                robust_moved ? "yes" : "NO");
  }

  // Machine-readable record of the overload comparison.
  std::string json = "{\n  \"bench\": \"serving_overload\",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"pool_size\": %zu,\n  \"offered\": %zu,\n"
                  "  \"deadline_ms\": %lld,\n  \"shed_queue_depth\": %zu,\n",
                  shared.size(), burst.size(),
                  static_cast<long long>(overload_deadline_ms), shed_depth);
    json += buf;
  }
  AppendOverloadJson(&json, "baseline", baseline);
  json += ",\n";
  AppendOverloadJson(&json, "shedding", shedding);
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf), ",\n  \"p99_ratio\": %.4f\n}\n",
                  baseline_p99 > 0.0 ? shedding_p99 / baseline_p99 : 0.0);
    json += buf;
  }
  if (std::FILE* f = std::fopen("BENCH_robustness.json", "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_robustness.json\n");
  } else {
    std::printf("  could not write BENCH_robustness.json\n");
  }

  // --- ingest-while-serving: rebuild churn vs static index -------------
  // Same storm served twice by one live engine: once with the index static,
  // once while a churn thread keeps ingesting fresh records and swapping
  // generations in (the rebuilds run on the churn thread itself — i.e.
  // genuinely concurrent with the serving storm on the shared pool, not
  // queued behind it). Since every request pins its snapshot at admission,
  // serving must never block on a rebuild: the admitted p95/p99 under churn
  // should sit near the static baseline even though the index was swapped
  // under the storm several times.
  const int64_t ingest_deadline_ns = 30'000'000'000;  // generous: full rung
  PqsdaEngineConfig live_config = config;
  live_config.ingest.rebuild_min_records = SIZE_MAX;  // churn thread drives
  auto live_or = PqsdaEngine::Build(data.records, live_config);
  if (!live_or.ok()) {
    std::printf("live engine failed to build\n");
    exporter.Stop();
    return;
  }
  PqsdaEngine& live = **live_or;
  IndexManager& index = live.index_manager();

  // Fresh traffic to churn with: a second synthetic log, ingested in chunks.
  GeneratorConfig fresh_config = BenchGeneratorConfig(users);
  fresh_config.seed = 97;
  std::vector<QueryLogRecord> fresh = GenerateLog(fresh_config).records;
  const size_t chunk_records =
      std::max<size_t>(1, fresh.size() / 8);

  std::printf("\ningest-while-serving: %zu-request storm vs the same storm "
              "under rebuild churn (%zu fresh records in %zu-record "
              "chunks)\n",
              burst.size(), fresh.size(), chunk_records);

  OverloadOutcome static_pass =
      OverloadPass(live, burst, k, ingest_deadline_ns);

  std::atomic<bool> churn_stop{false};
  const uint64_t generation_before = index.generation();
  std::thread churn([&] {
    size_t pos = 0;
    while (!churn_stop.load(std::memory_order_relaxed)) {
      const size_t n = std::min(chunk_records, fresh.size() - pos);
      std::vector<QueryLogRecord> chunk(fresh.begin() + pos,
                                        fresh.begin() + pos + n);
      if (!index.IngestBatch(std::move(chunk)).ok()) break;
      if (!index.RebuildNow().ok()) break;
      pos += n;
      if (pos >= fresh.size()) pos = 0;  // keep churning until stopped
      // Breathe between cycles: the scenario models a steady rebuild
      // cadence, not a busy-loop that turns the comparison into a pure
      // CPU-contention measurement on small hosts.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
  OverloadOutcome churn_pass = OverloadPass(live, burst, k, ingest_deadline_ns);
  churn_stop.store(true, std::memory_order_relaxed);
  churn.join();
  const uint64_t swaps =
      index.generation() - generation_before;

  const double static_p95 = static_pass.AdmittedP95();
  const double static_p99 = static_pass.AdmittedP99();
  const double churn_p95 = churn_pass.AdmittedP95();
  const double churn_p99 = churn_pass.AdmittedP99();
  std::printf("  static: p95=%9.0fus p99=%9.0fus (ok=%zu not_found=%zu of "
              "%zu, %.3fs)\n",
              static_p95, static_p99, static_pass.ok, static_pass.not_found,
              burst.size(), static_pass.seconds);
  std::printf("  churn : p95=%9.0fus p99=%9.0fus (ok=%zu not_found=%zu of "
              "%zu, %.3fs, %llu swaps during storm)\n",
              churn_p95, churn_p99, churn_pass.ok, churn_pass.not_found,
              burst.size(), churn_pass.seconds,
              static_cast<unsigned long long>(swaps));
  // "Never blocks" has two observable halves: every offered request was
  // served to completion (nothing hung on a rebuild), and the index really
  // did swap generations underneath the storm.
  const bool all_served =
      churn_pass.ok + churn_pass.not_found + churn_pass.deadline +
          churn_pass.other_error == burst.size() &&
      churn_pass.shed == 0;
  std::printf("  all requests served under churn: %s  index swapped: %s  "
              "p99 churn/static: %.2fx\n",
              all_served ? "yes" : "NO", swaps > 0 ? "yes" : "NO",
              static_p99 > 0.0 ? churn_p99 / static_p99 : 0.0);
  auto ingest_scrape = obs::HttpGet(exporter.port(), "/statusz");
  if (ingest_scrape.ok()) {
    std::printf("  /statusz index: generation=%.0f delta_depth=%.0f "
                "last_rebuild_us=%.0f rebuilds_total=%.0f\n",
                JsonNumber(*ingest_scrape, "generation"),
                JsonNumber(*ingest_scrape, "delta_depth"),
                JsonNumber(*ingest_scrape, "last_rebuild_us"),
                JsonNumber(*ingest_scrape, "rebuilds_total"));
  }

  std::string ingest_json = "{\n  \"bench\": \"serving_ingest\",\n";
  {
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "  \"pool_size\": %zu,\n  \"offered\": %zu,\n"
        "  \"chunk_records\": %zu,\n"
        "  \"static\": {\"p95_admitted_us\": %.1f, \"p99_admitted_us\": "
        "%.1f, \"ok\": %zu, \"not_found\": %zu, \"seconds\": %.3f},\n"
        "  \"churn\": {\"p95_admitted_us\": %.1f, \"p99_admitted_us\": "
        "%.1f, \"ok\": %zu, \"not_found\": %zu, \"seconds\": %.3f, "
        "\"swaps\": %llu, \"all_served\": %s},\n"
        "  \"p99_ratio\": %.4f\n}\n",
        shared.size(), burst.size(), chunk_records, static_p95, static_p99,
        static_pass.ok, static_pass.not_found, static_pass.seconds,
        churn_p95, churn_p99, churn_pass.ok, churn_pass.not_found,
        churn_pass.seconds, static_cast<unsigned long long>(swaps),
        all_served ? "true" : "false",
        static_p99 > 0.0 ? churn_p99 / static_p99 : 0.0);
    ingest_json += buf;
  }
  if (std::FILE* f = std::fopen("BENCH_ingest.json", "w")) {
    std::fwrite(ingest_json.data(), 1, ingest_json.size(), f);
    std::fclose(f);
    std::printf("  wrote BENCH_ingest.json\n");
  } else {
    std::printf("  could not write BENCH_ingest.json\n");
  }

  // --- profiling overhead: the same storm, profiler off vs on ----------
  // Alternating min-of-N sequential passes cancel thermal and cache drift;
  // the gate is on the p95 because tail latency is the number the stage
  // scopes must not move. Scopes are two clock reads into a thread-local,
  // so the budget is tight: 2%, plus a small absolute floor so
  // sub-millisecond requests aren't gated on scheduler jitter.
  obs::StageProfiler& profiler = obs::StageProfiler::Default();
  const size_t profile_reps = EnvSize("PROFILE_REPS", 3);
  std::printf("\nprofiling overhead: %zu-request storm, profiler off vs on, "
              "min over %zu alternating passes each\n",
              zipf.size(), profile_reps);
  (void)TimedPass(engine, zipf, k);  // warm
  double p95_off = 1e300;
  double p95_on = 1e300;
  for (size_t rep = 0; rep < profile_reps; ++rep) {
    profiler.SetEnabled(false);
    p95_off = std::min(p95_off, Percentile(TimedPass(engine, zipf, k), 95));
    profiler.SetEnabled(true);
    p95_on = std::min(p95_on, Percentile(TimedPass(engine, zipf, k), 95));
  }
  profiler.SetEnabled(true);  // leave the default profiler live
  const double overhead_pct =
      p95_off > 0.0 ? 100.0 * (p95_on - p95_off) / p95_off : 0.0;
  const bool gate_pass = p95_on <= p95_off * 1.02 + 50.0;
  std::printf("  p95 profiler off: %9.0fus   on: %9.0fus   overhead: "
              "%+.2f%%  gate(<=2%%+50us): %s\n",
              p95_off, p95_on, overhead_pct, gate_pass ? "pass" : "FAIL");

  // The profiled passes must actually have been attributed: /profilez over
  // the trailing minute has to show the storm in its root count.
  auto profile_scrape = obs::HttpGet(exporter.port(), "/profilez?window=1m");
  const double profiled_count =
      profile_scrape.ok() ? JsonNumber(*profile_scrape, "count") : -1.0;
  std::printf("  /profilez 1m-window root count: %.0f (expected >= %zu)\n",
              profiled_count, zipf.size());

  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\n  \"bench\": \"serving_profile_overhead\",\n"
        "  \"offered\": %zu,\n  \"reps\": %zu,\n"
        "  \"p95_profiler_off_us\": %.1f,\n"
        "  \"p95_profiler_on_us\": %.1f,\n"
        "  \"overhead_pct\": %.3f,\n"
        "  \"profilez_root_count\": %.0f,\n"
        "  \"gate_pass\": %s\n}\n",
        zipf.size(), profile_reps, p95_off, p95_on, overhead_pct,
        profiled_count, gate_pass ? "true" : "false");
    if (std::FILE* f = std::fopen("BENCH_profile.json", "w")) {
      std::fwrite(buf, 1, std::strlen(buf), f);
      std::fclose(f);
      std::printf("  wrote BENCH_profile.json\n");
    } else {
      std::printf("  could not write BENCH_profile.json\n");
    }
  }

  // --- explain overhead: the disabled path must stay free --------------
  // The decision-observability contract is "zero cost when disabled": with
  // explain_sample_every=0 the request path pays one relaxed atomic load at
  // admission and one thread-local read per seam, nothing else. One binary
  // can't diff itself against a build without the seams, so the gate
  // measures the disabled path's residual cost: storm p95 with explain off
  // *before* the subsystem was ever exercised vs *after* full-capture
  // storms armed it and filled the /explainz ring. Any allocation, ring
  // contention or atomic cost the armed subsystem leaked into the disabled
  // path would show here; the budget is <=1% + 50us, widened by the box's
  // *measured* noise floor. Calibrating that floor needs care: the gated
  // comparison spans minutes of hot storms, so minute-scale drift (thermal,
  // container neighbors) lands entirely on the "after" side. The baseline
  // is therefore measured as two identical halves separated by a *placebo*
  // arming block — untimed disabled storms of the same shape as the real
  // arming block — and however far those two same-state minima disagree is
  // drift the host injects into any before/after comparison on this box,
  // which a 1% gate cannot resolve and must not fail on. The sampled
  // (1/32) and worst-case every-request p95s are reported alongside,
  // ungated — sampled requests pay for the per-chain hitting-time sweeps
  // they record.
  const size_t explain_reps = EnvSize("EXPLAIN_REPS", 3);
  std::printf("\nexplain overhead: %zu-request storm, explain disabled "
              "before vs after arming, min over %zu passes each\n",
              zipf.size(), explain_reps);
  (void)TimedPass(engine, zipf, k);  // warm
  double explain_p95_off_a = 1e300;
  double explain_p95_off_b = 1e300;
  double explain_p95_off_armed = 1e300;
  double explain_p95_sampled = 1e300;
  double explain_p95_full = 1e300;
  // Baseline: both halves run before the subsystem has ever captured
  // anything. The placebo block between them mirrors the real arming
  // block's pass count (2 per rep) plus its equalizer, so a-to-b sees the
  // same wall-clock gap and workload cadence as off-to-off_armed.
  telemetry.SetExplainSampleEvery(0);
  for (size_t rep = 0; rep < explain_reps; ++rep) {
    explain_p95_off_a = std::min(explain_p95_off_a,
                                 Percentile(TimedPass(engine, zipf, k), 95));
  }
  for (size_t rep = 0; rep < 2 * explain_reps + 1; ++rep) {
    (void)TimedPass(engine, zipf, k);  // placebo arming block, untimed
  }
  for (size_t rep = 0; rep < explain_reps; ++rep) {
    explain_p95_off_b = std::min(explain_p95_off_b,
                                 Percentile(TimedPass(engine, zipf, k), 95));
  }
  // The b half is the drift-matched baseline: it sits at the same temporal
  // distance from its (placebo) hot block as off_armed sits from the real
  // one. The a half only serves the noise-floor estimate.
  const double explain_p95_off = explain_p95_off_b;
  const double explain_noise_us =
      std::abs(explain_p95_off_a - explain_p95_off_b);
  // Arm: full-capture and sampled storms (reported ungated below). These
  // run hotter than the disabled storms, which is why the off-after block
  // leads with an untimed disabled pass — every timed disabled pass, before
  // or after arming, then follows the same kind of workload instead of
  // inheriting the full storm's thermal and cache state.
  for (size_t rep = 0; rep < explain_reps; ++rep) {
    telemetry.SetExplainSampleEvery(1);
    explain_p95_full =
        std::min(explain_p95_full, Percentile(TimedPass(engine, zipf, k), 95));
    telemetry.SetExplainSampleEvery(32);
    explain_p95_sampled = std::min(explain_p95_sampled,
                                   Percentile(TimedPass(engine, zipf, k), 95));
  }
  telemetry.SetExplainSampleEvery(0);
  (void)TimedPass(engine, zipf, k);  // equalizer, untimed
  for (size_t rep = 0; rep < explain_reps; ++rep) {
    explain_p95_off_armed = std::min(
        explain_p95_off_armed, Percentile(TimedPass(engine, zipf, k), 95));
  }
  const double explain_off_overhead_pct =
      explain_p95_off > 0.0
          ? 100.0 * (explain_p95_off_armed - explain_p95_off) /
                explain_p95_off
          : 0.0;
  const bool explain_gate = explain_p95_off_armed <=
                            explain_p95_off * 1.01 + 50.0 + explain_noise_us;
  std::printf("  p95 disabled: %9.0fus   disabled after arming: %9.0fus   "
              "overhead: %+.2f%%  gate(<=1%%+50us+%.0fus noise floor): %s\n",
              explain_p95_off, explain_p95_off_armed,
              explain_off_overhead_pct, explain_noise_us,
              explain_gate ? "pass" : "FAIL");
  std::printf("  p95 sampled(1/32): %9.0fus   full(1/1): %9.0fus  "
              "(ungated: sampled requests pay for the sweeps they record)\n",
              explain_p95_sampled, explain_p95_full);

  // The sampled passes must actually have landed in the ring: /explainz has
  // to list captured records.
  auto explainz_scrape = obs::HttpGet(exporter.port(), "/explainz");
  size_t explainz_records = 0;
  if (explainz_scrape.ok()) {
    const std::string needle = "\"request_id\":";
    for (size_t pos = explainz_scrape->find(needle);
         pos != std::string::npos;
         pos = explainz_scrape->find(needle, pos + needle.size())) {
      ++explainz_records;
    }
  }
  std::printf("  /explainz captured records: %zu (ring capacity %zu)\n",
              explainz_records, telemetry.explain_store().capacity());

  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\n  \"bench\": \"serving_explain_overhead\",\n"
        "  \"offered\": %zu,\n  \"reps\": %zu,\n"
        "  \"p95_explain_off_us\": %.1f,\n"
        "  \"p95_explain_off_armed_us\": %.1f,\n"
        "  \"p95_explain_sampled_us\": %.1f,\n"
        "  \"p95_explain_full_us\": %.1f,\n"
        "  \"disabled_overhead_pct\": %.3f,\n"
        "  \"p95_explain_off_halves_us\": [%.1f, %.1f],\n"
        "  \"noise_floor_us\": %.1f,\n"
        "  \"explainz_records\": %zu,\n"
        "  \"gate_pass\": %s\n}\n",
        zipf.size(), explain_reps, explain_p95_off, explain_p95_off_armed,
        explain_p95_sampled, explain_p95_full, explain_off_overhead_pct,
        explain_p95_off_a, explain_p95_off_b, explain_noise_us,
        explainz_records, explain_gate ? "true" : "false");
    if (std::FILE* f = std::fopen("BENCH_explain.json", "w")) {
      std::fwrite(buf, 1, std::strlen(buf), f);
      std::fclose(f);
      std::printf("  wrote BENCH_explain.json\n");
    } else {
      std::printf("  could not write BENCH_explain.json\n");
    }
  }

  // --- sharded scatter-gather: admission capacity vs shard count ------
  // One core serves one request at a time, so sharding cannot multiply
  // the wall-clock service rate here. What it multiplies is admission
  // capacity under a burst: each shard lane admits up to its own
  // queue-depth gate, so N gates admit ~N times the requests one gate
  // does before shedding. Invariance is re-checked inline: every shard
  // count must serve the same sequential probes bitwise-identically.
  {
    const size_t shard_burst_size = EnvSize("SHARD_BURST", 96);
    const size_t shard_depth = EnvSize("SHARD_DEPTH", 8);
    std::vector<SuggestionRequest> shard_burst =
        ZipfWorkload(requests, shard_burst_size, 47);
    PqsdaEngineConfig shard_config = config;
    shard_config.cache_capacity = 0;  // admitted requests do real work

    std::printf("\nsharded serving: burst of %zu, per-shard queue depth "
                "%zu, shard counts {1,2,4,8}\n",
                shard_burst.size(), shard_depth);

    struct ShardScalePoint {
      size_t shards = 0;
      size_t admitted = 0;
      size_t ok = 0;
      double seconds = 0.0;
      uint64_t probe_fp = 0;
    };
    std::vector<ShardScalePoint> shard_points;
    for (size_t shard_count : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
      ShardedEngineOptions shard_options;
      shard_options.shards = shard_count;
      shard_options.shard_queue_depth = shard_depth;
      auto sharded_or =
          ShardedEngine::Build(data.records, shard_config, shard_options);
      if (!sharded_or.ok()) {
        std::printf("  sharded build (%zu shards) failed: %s\n", shard_count,
                    sharded_or.status().ToString().c_str());
        continue;
      }
      const ShardedEngine& sharded = **sharded_or;

      ShardScalePoint point;
      point.shards = shard_count;
      // Sequential invariance probes first, while the lanes are idle so
      // nothing sheds: the served lists must fingerprint identically at
      // every shard count (the bench-side echo of sharding_test).
      obs::Fingerprint64 fp;
      const size_t probe_count = std::min<size_t>(requests.size(), 8);
      for (size_t i = 0; i < probe_count; ++i) {
        auto served = sharded.Suggest(requests[i], k);
        if (served.ok()) {
          for (const Suggestion& s : *served) {
            fp.Mix(s.query);
            fp.MixDouble(s.score);
          }
        }
      }
      point.probe_fp = fp.value();

      auto begin = std::chrono::steady_clock::now();
      auto results = sharded.SuggestBatch(shard_burst, k);
      point.seconds = Seconds(begin, std::chrono::steady_clock::now());
      for (const auto& r : results) {
        if (r.ok()) {
          ++point.admitted;
          ++point.ok;
        } else if (r.status().code() != StatusCode::kUnavailable) {
          ++point.admitted;  // served (e.g. not-found), just not a hit
        }
      }
      std::printf("  shards=%zu: admitted %3zu/%zu (%.0f%%), probe fp "
                  "%016llx, burst drained in %.3fs\n",
                  point.shards, point.admitted, shard_burst.size(),
                  100.0 * static_cast<double>(point.admitted) /
                      static_cast<double>(shard_burst.size()),
                  static_cast<unsigned long long>(point.probe_fp),
                  point.seconds);
      shard_points.push_back(point);
    }

    bool invariance_pass = !shard_points.empty();
    for (const ShardScalePoint& p : shard_points) {
      if (p.probe_fp != shard_points.front().probe_fp) invariance_pass = false;
    }
    double admitted_ratio_4v1 = 0.0;
    size_t admitted_1 = 0, admitted_4 = 0;
    for (const ShardScalePoint& p : shard_points) {
      if (p.shards == 1) admitted_1 = p.admitted;
      if (p.shards == 4) admitted_4 = p.admitted;
    }
    if (admitted_1 > 0) {
      admitted_ratio_4v1 =
          static_cast<double>(admitted_4) / static_cast<double>(admitted_1);
    }
    const bool shard_gate = admitted_ratio_4v1 >= 1.6;
    std::printf("  admitted capacity 4 shards vs 1: %.2fx (gate >= 1.60x: "
                "%s), invariance: %s\n",
                admitted_ratio_4v1, shard_gate ? "PASS" : "FAIL",
                invariance_pass ? "PASS" : "FAIL");

    std::string shard_json = "{\n  \"bench\": \"serving_sharding\",\n";
    {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  \"burst\": %zu,\n  \"shard_queue_depth\": %zu,\n"
                    "  \"points\": [\n",
                    shard_burst.size(), shard_depth);
      shard_json += buf;
      for (size_t i = 0; i < shard_points.size(); ++i) {
        const ShardScalePoint& p = shard_points[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"shards\": %zu, \"admitted\": %zu, \"ok\": %zu, "
                      "\"seconds\": %.4f, \"probe_fp\": \"%016llx\"}%s\n",
                      p.shards, p.admitted, p.ok, p.seconds,
                      static_cast<unsigned long long>(p.probe_fp),
                      i + 1 < shard_points.size() ? "," : "");
        shard_json += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "  ],\n  \"admitted_ratio_4v1\": %.3f,\n"
                    "  \"invariance_pass\": %s,\n  \"gate_pass\": %s\n}\n",
                    admitted_ratio_4v1, invariance_pass ? "true" : "false",
                    shard_gate ? "true" : "false");
      shard_json += buf;
    }
    if (std::FILE* f = std::fopen("BENCH_sharding.json", "w")) {
      std::fwrite(shard_json.data(), 1, shard_json.size(), f);
      std::fclose(f);
      std::printf("  wrote BENCH_sharding.json\n");
    } else {
      std::printf("  could not write BENCH_sharding.json\n");
    }
  }

  // --- adaptive cache hierarchy: policy matrix + delta-aware retention --
  // A Zipf head with one-shot scan pollution every 3rd request, and
  // generation swaps from small localized ingest deltas every
  // `swap_every` requests. Two verdicts, both gated by run_benches.sh:
  //   - adaptivity: the better of ARC/CAR must match-or-beat LRU's hit
  //     rate (the scan traffic is exactly what ARC/CAR exist to absorb);
  //   - retention: delta-aware validation must keep >= 1.3x the hits of
  //     whole-generation keying across the same swap schedule.
  //
  // The corpus is many small *disconnected* clusters (cluster-unique
  // vocabulary, urls and users) rather than the shared synthetic log: a
  // request's expansion then reads only its own cluster's rows, so its
  // validation footprint spans a few of the 8 fingerprint components and a
  // one-query delta invalidates only the entries that actually read the
  // component it landed in. On a well-connected corpus every footprint
  // covers all components and delta-aware degenerates to whole-generation
  // — the corpus shape IS the scenario.
  {
    const size_t cache_ops = EnvSize("CACHE_OPS", 1200);
    const size_t cache_cap = EnvSize("CACHE_POLICY_CAP", 24);
    const size_t swap_every = std::max<size_t>(2, cache_ops / 8);
    const size_t kHeadClusters = 64;
    const size_t scan_count = cache_ops / 3 + 1;

    std::vector<QueryLogRecord> cluster_log;
    std::vector<SuggestionRequest> head_probes;
    uint32_t next_user = 1;
    int64_t ts = 100;
    auto add_cluster = [&](const std::string& stem, size_t queries,
                           std::vector<SuggestionRequest>* probes) {
      // Chain-connected inside the cluster via shared cluster-unique
      // terms; nothing — term, url or user — is shared across clusters.
      std::vector<std::string> qs;
      for (size_t q = 0; q < queries; ++q) {
        qs.push_back(stem + "t" + std::to_string(q) + " " + stem + "t" +
                     std::to_string(q + 1));
      }
      const std::string url = "www." + stem + ".example";
      const uint32_t user_a = next_user++;
      const uint32_t user_b = next_user++;
      for (size_t q = 0; q < qs.size(); ++q) {
        cluster_log.push_back(
            {q + 1 < qs.size() ? user_a : user_b, qs[q], url, ts});
        ts += 10;
      }
      if (probes != nullptr) {
        SuggestionRequest probe;
        probe.query = qs.front();
        probe.timestamp = 50'000;
        probes->push_back(probe);
      }
    };
    for (size_t cl = 0; cl < kHeadClusters; ++cl) {
      // Two queries per cluster: an entry's validation footprint is then
      // ~2 of the 8 fingerprint components, so a one-component delta kills
      // only ~1/4 of resident entries — the contrast the retention gate
      // measures.
      add_cluster("h" + std::to_string(cl), 2, &head_probes);
    }
    std::vector<SuggestionRequest> scan_probes;
    for (size_t s = 0; s < scan_count; ++s) {
      add_cluster("s" + std::to_string(s), 2, &scan_probes);
    }

    // One deterministic workload replayed against every configuration.
    std::vector<SuggestionRequest> cache_workload;
    cache_workload.reserve(cache_ops);
    {
      std::vector<double> weights;
      for (size_t r = 0; r < head_probes.size(); ++r) {
        weights.push_back(1.0 / static_cast<double>(r + 1));
      }
      std::discrete_distribution<size_t> pick(weights.begin(), weights.end());
      std::mt19937_64 rng(133);
      size_t scan_next = 0;
      for (size_t i = 0; i < cache_ops; ++i) {
        if (i % 3 == 2 && scan_next < scan_probes.size()) {
          cache_workload.push_back(scan_probes[scan_next++]);
        } else {
          cache_workload.push_back(head_probes[pick(rng)]);
        }
      }
    }

    // The retention pair runs a separate sub-workload: pure Zipf over the
    // head clusters, capacity above the head working set, swaps twice as
    // frequent. Retention is only observable when entries are resident at
    // swap time — under the scan-thrash workload above, eviction churn
    // drowns the swap signal for delta-aware and whole-gen alike.
    std::vector<SuggestionRequest> churn_workload;
    churn_workload.reserve(cache_ops);
    {
      std::vector<double> weights;
      for (size_t r = 0; r < head_probes.size(); ++r) {
        weights.push_back(1.0 / static_cast<double>(r + 1));
      }
      std::discrete_distribution<size_t> pick(weights.begin(), weights.end());
      std::mt19937_64 rng(211);
      for (size_t i = 0; i < cache_ops; ++i) {
        churn_workload.push_back(head_probes[pick(rng)]);
      }
    }
    const size_t retention_cap = head_probes.size() + head_probes.size() / 2;
    const size_t retention_swap_every = std::max<size_t>(2, cache_ops / 24);

    struct CacheRun {
      const char* label;
      CachePolicyKind policy;
      bool delta_aware;
      const std::vector<SuggestionRequest>* workload;
      size_t capacity;
      size_t swap_every;
      uint64_t hits = 0;
      uint64_t misses = 0;
      uint64_t stale = 0;
      uint64_t evictions = 0;
      double hit_rate = 0.0;
      double p95_us = 0.0;
      size_t swaps = 0;
    };
    obs::Counter& cache_hits =
        obs::MetricsRegistry::Default().GetCounter("pqsda.cache.hits_total");
    obs::Counter& cache_misses =
        obs::MetricsRegistry::Default().GetCounter("pqsda.cache.misses_total");
    obs::Counter& cache_stale = obs::MetricsRegistry::Default().GetCounter(
        "pqsda.cache.stale_invalidations_total");
    obs::Counter& cache_evictions = obs::MetricsRegistry::Default().GetCounter(
        "pqsda.cache.evictions_total");
    auto run_workload = [&](CacheRun* run) {
      PqsdaEngineConfig cache_config;
      cache_config.personalize = false;
      cache_config.weighting = EdgeWeighting::kRaw;  // fingerprints stay local
      cache_config.cache_capacity = run->capacity;
      cache_config.cache_shards = 1;
      cache_config.cache_policy = run->policy;
      cache_config.cache_delta_aware = run->delta_aware;
      cache_config.ingest.rebuild_min_records = SIZE_MAX;  // swaps on demand
      auto built = PqsdaEngine::Build(cluster_log, cache_config);
      if (!built.ok()) {
        std::printf("  cache bench engine build failed: %s\n",
                    built.status().ToString().c_str());
        return false;
      }
      std::unique_ptr<PqsdaEngine> cache_engine = std::move(built).value();
      const uint64_t h0 = cache_hits.Value();
      const uint64_t m0 = cache_misses.Value();
      const uint64_t s0 = cache_stale.Value();
      const uint64_t e0 = cache_evictions.Value();
      const std::vector<SuggestionRequest>& stream = *run->workload;
      std::vector<double> lat_us;
      lat_us.reserve(stream.size());
      size_t delta_seq = 0;
      for (size_t i = 0; i < stream.size(); ++i) {
        if (i > 0 && i % run->swap_every == 0) {
          // A one-query, fresh-vocabulary delta: exactly one fingerprint
          // component changes per swap.
          const std::string stem = "d" + std::to_string(delta_seq++);
          if (!cache_engine
                   ->Ingest({next_user + static_cast<uint32_t>(delta_seq),
                             stem + "a " + stem + "b",
                             "www." + stem + ".example", 60'000 + ts})
                   .ok() ||
              !cache_engine->index_manager().RebuildNow().ok()) {
            std::printf("  cache bench churn failed\n");
            return false;
          }
          ++run->swaps;
        }
        const auto start = std::chrono::steady_clock::now();
        auto served = cache_engine->Suggest(stream[i], k);
        const auto stop = std::chrono::steady_clock::now();
        (void)served;  // scans may serve short lists; outcome not gated
        lat_us.push_back(
            std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                .count() /
            1000.0);
      }
      run->hits = cache_hits.Value() - h0;
      run->misses = cache_misses.Value() - m0;
      run->stale = cache_stale.Value() - s0;
      run->evictions = cache_evictions.Value() - e0;
      const uint64_t lookups = run->hits + run->misses;
      run->hit_rate =
          lookups > 0 ? static_cast<double>(run->hits) / lookups : 0.0;
      std::sort(lat_us.begin(), lat_us.end());
      run->p95_us = lat_us.empty() ? 0.0
                                   : lat_us[static_cast<size_t>(
                                         0.95 * (lat_us.size() - 1))];
      return true;
    };

    std::printf("\nadaptive cache: %zu ops; scan runs capacity=%zu swap "
                "every %zu; retention runs capacity=%zu swap every %zu\n",
                cache_ops, cache_cap, swap_every, retention_cap,
                retention_swap_every);
    CacheRun runs[] = {
        {"lru/scan", CachePolicyKind::kLru, true, &cache_workload, cache_cap,
         swap_every},
        {"arc/scan", CachePolicyKind::kArc, true, &cache_workload, cache_cap,
         swap_every},
        {"car/scan", CachePolicyKind::kCar, true, &cache_workload, cache_cap,
         swap_every},
        {"arc/delta", CachePolicyKind::kArc, true, &churn_workload,
         retention_cap, retention_swap_every},
        {"arc/whole-gen", CachePolicyKind::kArc, false, &churn_workload,
         retention_cap, retention_swap_every},
    };
    bool cache_ran = true;
    for (CacheRun& run : runs) cache_ran = run_workload(&run) && cache_ran;
    if (cache_ran) {
      for (const CacheRun& run : runs) {
        std::printf("  %-14s hits=%6llu misses=%6llu stale=%5llu "
                    "evict=%6llu hit_rate=%5.1f%%  p95=%8.1fus  swaps=%zu\n",
                    run.label, static_cast<unsigned long long>(run.hits),
                    static_cast<unsigned long long>(run.misses),
                    static_cast<unsigned long long>(run.stale),
                    static_cast<unsigned long long>(run.evictions),
                    100.0 * run.hit_rate, run.p95_us, run.swaps);
      }
      const CacheRun& lru = runs[0];
      const CacheRun& arc = runs[1];
      const CacheRun& car = runs[2];
      const CacheRun& delta_ret = runs[3];
      const CacheRun& whole = runs[4];
      const double adaptive_rate = std::max(arc.hit_rate, car.hit_rate);
      const bool policy_gate = adaptive_rate >= lru.hit_rate;
      const double retention_ratio =
          static_cast<double>(delta_ret.hits) /
          static_cast<double>(std::max<uint64_t>(1, whole.hits));
      const bool retention_gate = retention_ratio >= 1.3;
      std::printf("  adaptive(best of arc/car) vs lru hit rate: %.3f vs "
                  "%.3f (gate >=: %s)\n",
                  adaptive_rate, lru.hit_rate, policy_gate ? "PASS" : "FAIL");
      std::printf("  delta-aware vs whole-gen hits: %.2fx (gate >= 1.30x: "
                  "%s)\n",
                  retention_ratio, retention_gate ? "PASS" : "FAIL");

      std::string cache_json = "{\n  \"bench\": \"serving_cache\",\n";
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "  \"ops\": %zu,\n  \"capacity\": %zu,\n"
                    "  \"swap_every\": %zu,\n  \"runs\": [\n",
                    cache_ops, cache_cap, swap_every);
      cache_json += buf;
      const size_t num_runs = sizeof(runs) / sizeof(runs[0]);
      for (size_t i = 0; i < num_runs; ++i) {
        const CacheRun& run = runs[i];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"label\": \"%s\", \"delta_aware\": %s, \"hits\": %llu, "
            "\"misses\": %llu, \"hit_rate\": %.4f, \"p95_us\": %.1f, "
            "\"swaps\": %zu}%s\n",
            run.label, run.delta_aware ? "true" : "false",
            static_cast<unsigned long long>(run.hits),
            static_cast<unsigned long long>(run.misses), run.hit_rate,
            run.p95_us, run.swaps, i + 1 < num_runs ? "," : "");
        cache_json += buf;
      }
      std::snprintf(buf, sizeof(buf),
                    "  ],\n  \"adaptive_hit_rate\": %.4f,\n"
                    "  \"lru_hit_rate\": %.4f,\n"
                    "  \"retention_ratio\": %.3f,\n"
                    "  \"policy_gate\": %s,\n  \"retention_gate\": %s,\n"
                    "  \"gate_pass\": %s\n}\n",
                    adaptive_rate, lru.hit_rate, retention_ratio,
                    policy_gate ? "true" : "false",
                    retention_gate ? "true" : "false",
                    policy_gate && retention_gate ? "true" : "false");
      cache_json += buf;
      if (std::FILE* f = std::fopen("BENCH_cache.json", "w")) {
        std::fwrite(cache_json.data(), 1, cache_json.size(), f);
        std::fclose(f);
        std::printf("  wrote BENCH_cache.json\n");
      } else {
        std::printf("  could not write BENCH_cache.json\n");
      }
    }
  }

  exporter.Stop();
  (void)health;
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
