// Serving-path benchmark: sequential Suggest loop vs SuggestBatch over a
// thread pool, and the LRU result cache on a Zipf-shaped repeated workload.
// Also verifies (and prints) the cache-hit contract: a repeated identical
// request is served from cache, increments pqsda.cache.hits_total and
// returns the exact list the miss computed — and exercises the live
// telemetry surface: an embedded HTTP exporter is scraped before, during
// and after a batched storm, checking that /healthz answers 200 and the
// /statusz windowed request counts actually move.
//
// Scale knobs: PQSDA_USERS (default 150), PQSDA_TESTS (default 200 serving
// requests), PQSDA_SERVE_THREADS (batch pool size, default 4),
// PQSDA_CACHE (cache capacity for the cached runs, default 512).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "core/pqsda_engine.h"
#include "eval/harness.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace pqsda::bench {
namespace {

double Seconds(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

// Requests/second of one timed pass; `served` counts non-error results.
struct PassResult {
  double seconds = 0.0;
  size_t served = 0;
  double Throughput(size_t n) const {
    return seconds > 0.0 ? static_cast<double>(n) / seconds : 0.0;
  }
};

PassResult SequentialPass(const PqsdaEngine& engine,
                          const std::vector<SuggestionRequest>& requests,
                          size_t k) {
  PassResult r;
  auto begin = std::chrono::steady_clock::now();
  for (const SuggestionRequest& request : requests) {
    if (engine.Suggest(request, k).ok()) ++r.served;
  }
  r.seconds = Seconds(begin, std::chrono::steady_clock::now());
  return r;
}

PassResult BatchedPass(const PqsdaEngine& engine,
                       const std::vector<SuggestionRequest>& requests,
                       size_t k, ThreadPool& pool) {
  PassResult r;
  auto begin = std::chrono::steady_clock::now();
  auto results = engine.SuggestBatch(requests, k, &pool);
  r.seconds = Seconds(begin, std::chrono::steady_clock::now());
  for (const auto& result : results) {
    if (result.ok()) ++r.served;
  }
  return r;
}

// Extracts the numeric value following `"key":` in a JSON blob (first
// occurrence). Good enough for pulling one windowed counter out of a
// /statusz scrape without a JSON parser.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

// Zipf-ish head-heavy request stream: draws from `base` with rank-r weight
// 1/(r+1), so a handful of head queries dominate — the traffic shape the
// cache is designed for.
std::vector<SuggestionRequest> ZipfWorkload(
    const std::vector<SuggestionRequest>& base, size_t count, uint64_t seed) {
  std::vector<double> weights;
  weights.reserve(base.size());
  for (size_t r = 0; r < base.size(); ++r) {
    weights.push_back(1.0 / static_cast<double>(r + 1));
  }
  std::discrete_distribution<size_t> pick(weights.begin(), weights.end());
  std::mt19937_64 rng(seed);
  std::vector<SuggestionRequest> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(base[pick(rng)]);
  return out;
}

void Main() {
  const size_t users = EnvSize("USERS", 150);
  const size_t num_tests = EnvSize("TESTS", 200);
  const size_t serve_threads = EnvSize("SERVE_THREADS", 4);
  const size_t cache_capacity = EnvSize("CACHE", 512);
  const size_t k = 10;

  std::printf("bench_serving: concurrent serving + result cache\n");
  std::printf("  hardware_concurrency=%u  serve_threads=%zu  users=%zu  "
              "requests=%zu\n\n",
              std::thread::hardware_concurrency(), serve_threads, users,
              num_tests);

  SyntheticDataset data = GenerateLog(BenchGeneratorConfig(users));
  std::vector<TestQuery> tests = SampleTestQueries(data, num_tests, 17);
  std::vector<SuggestionRequest> requests;
  requests.reserve(tests.size());
  for (const TestQuery& t : tests) requests.push_back(t.request);

  // Diversification-only engine: serving throughput is about the request
  // path, and skipping Gibbs keeps the bench fast at any scale.
  PqsdaEngineConfig config;
  config.personalize = false;
  auto engine_or = PqsdaEngine::Build(data.records, config);
  if (!engine_or.ok()) {
    std::printf("engine build failed: %s\n",
                engine_or.status().ToString().c_str());
    return;
  }
  const PqsdaEngine& engine = **engine_or;
  ThreadPool pool(serve_threads);

  // --- sequential vs batched (no cache) -------------------------------
  PassResult warmup = SequentialPass(engine, requests, k);  // page in
  PassResult seq = SequentialPass(engine, requests, k);
  PassResult bat = BatchedPass(engine, requests, k, pool);
  std::printf("sequential: %8.1f req/s  (%zu/%zu served, %.3fs)\n",
              seq.Throughput(requests.size()), seq.served, requests.size(),
              seq.seconds);
  std::printf("batched   : %8.1f req/s  (%zu/%zu served, %.3fs, pool=%zu)\n",
              bat.Throughput(requests.size()), bat.served, requests.size(),
              bat.seconds, pool.size());
  std::printf("batched/sequential speedup: %.2fx  "
              "(threading gains require >1 core; this host reports %u)\n\n",
              seq.seconds > 0.0 ? seq.seconds / bat.seconds : 0.0,
              std::thread::hardware_concurrency());
  (void)warmup;

  // --- cached serving on a Zipf workload ------------------------------
  PqsdaEngineConfig cached_config = config;
  cached_config.cache_capacity = cache_capacity;
  auto cached_or = PqsdaEngine::Build(data.records, cached_config);
  if (!cached_or.ok()) {
    std::printf("cached engine build failed: %s\n",
                cached_or.status().ToString().c_str());
    return;
  }
  const PqsdaEngine& cached = **cached_or;
  std::vector<SuggestionRequest> zipf =
      ZipfWorkload(requests, num_tests * 4, 23);

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  obs::Counter& hits = reg.GetCounter("pqsda.cache.hits_total");
  obs::Counter& misses = reg.GetCounter("pqsda.cache.misses_total");
  const uint64_t hits_before = hits.Value();
  const uint64_t misses_before = misses.Value();

  PassResult uncached_zipf = SequentialPass(engine, zipf, k);
  PassResult cached_zipf = SequentialPass(cached, zipf, k);
  const uint64_t zipf_hits = hits.Value() - hits_before;
  const uint64_t zipf_misses = misses.Value() - misses_before;
  std::printf("zipf x%zu uncached: %8.1f req/s\n", zipf.size() / requests.size(),
              uncached_zipf.Throughput(zipf.size()));
  std::printf("zipf x%zu cached  : %8.1f req/s  (hits=%llu misses=%llu, "
              "hit rate %.1f%%)\n",
              zipf.size() / requests.size(),
              cached_zipf.Throughput(zipf.size()),
              static_cast<unsigned long long>(zipf_hits),
              static_cast<unsigned long long>(zipf_misses),
              100.0 * static_cast<double>(zipf_hits) /
                  static_cast<double>(zipf.size()));
  std::printf("cached/uncached speedup: %.2fx\n\n",
              cached_zipf.seconds > 0.0
                  ? uncached_zipf.seconds / cached_zipf.seconds
                  : 0.0);

  // --- cache-hit contract ---------------------------------------------
  SuggestionRequest probe = requests.front();
  const uint64_t contract_hits_before = hits.Value();
  auto first = cached.Suggest(probe, k);
  auto second = cached.Suggest(probe, k);
  const bool identical = first.ok() && second.ok() && *first == *second;
  const uint64_t contract_hits = hits.Value() - contract_hits_before;
  std::printf("cache-hit contract: repeat request hit=%s identical=%s "
              "(pqsda.cache.hits_total +%llu)\n\n",
              contract_hits >= 1 ? "yes" : "NO",
              identical ? "yes" : "NO",
              static_cast<unsigned long long>(contract_hits));

  // --- live telemetry: scrape /statusz around a batched storm -----------
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Default();
  obs::HttpExporter exporter;
  telemetry.RegisterEndpoints(&exporter);
  Status started = exporter.Start(0);  // ephemeral port
  if (!started.ok()) {
    std::printf("telemetry exporter failed to start: %s\n",
                started.ToString().c_str());
    return;
  }
  std::printf("telemetry exporter on http://127.0.0.1:%d\n", exporter.port());

  int health_status = 0;
  auto health = obs::HttpGet(exporter.port(), "/healthz", &health_status);
  auto before_scrape = obs::HttpGet(exporter.port(), "/statusz");
  const double requests_before_storm =
      before_scrape.ok() ? JsonNumber(*before_scrape, "requests") : -1.0;

  // Scrape mid-run from a second thread while the batched storm is in
  // flight: the exporter must serve concurrently with SuggestBatch.
  std::string mid_scrape;
  std::thread scraper([&exporter, &mid_scrape] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    auto scrape = obs::HttpGet(exporter.port(), "/statusz");
    if (scrape.ok()) mid_scrape = std::move(*scrape);
  });
  PassResult storm = BatchedPass(cached, zipf, k, pool);
  scraper.join();

  auto after_scrape = obs::HttpGet(exporter.port(), "/statusz");
  const double requests_after_storm =
      after_scrape.ok() ? JsonNumber(*after_scrape, "requests") : -1.0;
  const double qps_after = after_scrape.ok()
      ? JsonNumber(*after_scrape, "qps") : -1.0;
  const double p95_after = after_scrape.ok()
      ? JsonNumber(*after_scrape, "p95") : -1.0;
  const bool windows_moved =
      requests_after_storm >= requests_before_storm +
          static_cast<double>(zipf.size());
  std::printf("storm: %8.1f req/s (%zu/%zu served)\n",
              storm.Throughput(zipf.size()), storm.served, zipf.size());
  std::printf("  /healthz: %d %s\n", health_status,
              health_status == 200 ? "ok" : "UNEXPECTED");
  std::printf("  /statusz 10s-window requests: before=%.0f mid=%.0f "
              "after=%.0f  (moved=%s)\n",
              requests_before_storm, JsonNumber(mid_scrape, "requests"),
              requests_after_storm, windows_moved ? "yes" : "NO");
  std::printf("  /statusz 10s-window qps=%.1f latency p95=%.0fus\n",
              qps_after, p95_after);
  exporter.Stop();
  (void)health;
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
