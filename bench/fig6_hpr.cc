// Reproduces Fig. 6 of the paper: Human Personalized Relevance (HPR) of the
// final suggestion lists, rated on the 6-point scale. The four-month human
// expert study is replaced by the simulated rater, which scores a suggestion
// against the user's hidden ground-truth intent facet (see DESIGN.md).
//
// Scale knobs: PQSDA_USERS, PQSDA_MAX_EVAL, PQSDA_TOPICS, PQSDA_GIBBS,
// PQSDA_RATER_NOISE_PCT (default 10 -> sigma 0.10).

#include <cstdio>
#include <functional>
#include <memory>

#include "bench_util.h"
#include "core/pqsda_engine.h"
#include "eval/hpr.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"
#include "suggest/concept_suggester.h"
#include "suggest/dqs_suggester.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/random_walk_suggester.h"

namespace pqsda::bench {
namespace {

void Main() {
  const size_t users = EnvSize("USERS", 250);
  const size_t max_eval = EnvSize("MAX_EVAL", 400);
  const double noise = static_cast<double>(EnvSize("RATER_NOISE_PCT", 10)) /
                       100.0;
  std::printf("fig6: HPR with simulated raters (users=%zu, noise=%.2f)\n\n",
              users, noise);

  SyntheticDataset data = GenerateLog(BenchGeneratorConfig(users));
  TrainTestSplit split = SplitByRecentSessions(data, EnvSize("TEST_SESSIONS", 4));

  PqsdaEngineConfig config;
  config.upm.base.num_topics = EnvSize("TOPICS", 16);
  config.upm.base.gibbs_iterations = EnvSize("GIBBS", 60);
  config.upm.hyper_rounds = 1;
  auto engine_or = PqsdaEngine::Build(split.train, config);
  if (!engine_or.ok()) {
    std::printf("engine build failed: %s\n",
                engine_or.status().ToString().c_str());
    return;
  }
  PqsdaEngine& engine = **engine_or;
  const Personalizer& personalizer = *engine.personalizer();

  ClickGraph cg = ClickGraph::Build(engine.records(), EdgeWeighting::kCfIqf);
  RandomWalkSuggester frw(cg, WalkDirection::kForward);
  RandomWalkSuggester brw(cg, WalkDirection::kBackward);
  HittingTimeSuggester ht(cg);
  DqsSuggester dqs(cg);
  PersonalizedHittingTimeSuggester pht(cg, engine.records());
  SyntheticPageContentProvider provider(data.facets);
  ConceptSuggester cm(cg, engine.records(), provider);

  using Fn = std::function<StatusOr<std::vector<Suggestion>>(
      const SuggestionRequest&, size_t)>;
  auto personalized = [&personalizer](const SuggestionEngine& e) -> Fn {
    return [&personalizer, &e](const SuggestionRequest& r, size_t k)
               -> StatusOr<std::vector<Suggestion>> {
      auto out = e.Suggest(r, k);
      if (!out.ok()) return out.status();
      return personalizer.Rerank(r.user, *out);
    };
  };
  std::vector<std::pair<std::string, Fn>> systems = {
      {"PQS-DA",
       [&engine](const SuggestionRequest& r, size_t k) {
         return engine.Suggest(r, k);
       }},
      {"FRW(P)", personalized(frw)},
      {"BRW(P)", personalized(brw)},
      {"HT(P)", personalized(ht)},
      {"DQS(P)", personalized(dqs)},
      {"PHT",
       [&pht](const SuggestionRequest& r, size_t k) {
         return pht.Suggest(r, k);
       }},
      {"CM",
       [&cm](const SuggestionRequest& r, size_t k) {
         return cm.Suggest(r, k);
       }},
  };

  FigureTable table;
  table.title = "Fig. 6 HPR@k (simulated 6-point-scale raters)";
  table.x_label = "k";
  table.x_values = RankLabels();
  const size_t max_k = kRanks.back();
  // Same-session, all-queries protocol: every system rates the same
  // sessions; an unanswerable session scores 0.
  std::vector<const TestSession*> eval_sessions;
  for (const TestSession& ts : split.test_sessions) {
    if (eval_sessions.size() >= max_eval) break;
    eval_sessions.push_back(&ts);
  }
  for (auto& [name, suggest] : systems) {
    SimulatedRater rater(data.taxonomy, data.facets, noise, /*seed=*/4242);
    std::vector<std::vector<double>> hpr(kRanks.size());
    size_t answered = 0;
    for (const TestSession* ts : eval_sessions) {
      auto out = suggest(RequestFromTestSession(*ts), max_k);
      if (!out.ok() || out->empty()) {
        for (auto& v : hpr) v.push_back(0.0);
        continue;
      }
      ++answered;
      // The rater knows the user's standing interests at the session's
      // moment (what four months of their own searching exposes).
      double t_norm =
          static_cast<double>(ts->records.front().timestamp -
                              data.config.start_time) /
          static_cast<double>(data.config.duration_seconds);
      std::vector<double> profile =
          data.users[ts->user].FacetWeightsAt(t_norm);
      for (size_t ki = 0; ki < kRanks.size(); ++ki) {
        hpr[ki].push_back(
            rater.RateList(ts->intent, *out, kRanks[ki], &profile));
      }
    }
    std::vector<double> row;
    for (auto& v : hpr) row.push_back(MeanOf(v));
    table.AddSeries(name, row);
    std::printf("  %-7s answered %zu / %zu sessions\n", name.c_str(),
                answered, eval_sessions.size());
  }
  std::printf("\n");
  table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
