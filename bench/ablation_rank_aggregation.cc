// Ablation: how should the personalization component combine the two
// rankings (§V-B)? Compares diversification-only, preference-score-only
// reranking, and the paper's Borda aggregation, on PPR@k over held-out
// sessions.
//
// Scale knobs: PQSDA_USERS (default 250), PQSDA_MAX_EVAL (default 300).

#include <cstdio>

#include "bench_util.h"
#include "core/pqsda_engine.h"
#include "eval/ppr.h"
#include "eval/report.h"
#include "rank/borda.h"

namespace pqsda::bench {
namespace {

void Main() {
  const size_t users = EnvSize("USERS", 250);
  const size_t max_eval = EnvSize("MAX_EVAL", 300);
  std::printf("ablation: rank aggregation in the personalization component "
              "(users=%zu)\n\n", users);

  SyntheticDataset data = GenerateLog(BenchGeneratorConfig(users));
  TrainTestSplit split = SplitByRecentSessions(data, 4);

  PqsdaEngineConfig config;
  config.upm.base.num_topics = EnvSize("TOPICS", 16);
  config.upm.base.gibbs_iterations = EnvSize("GIBBS", 60);
  config.upm.hyper_rounds = 1;
  auto engine_or = PqsdaEngine::Build(split.train, config);
  if (!engine_or.ok()) {
    std::printf("engine build failed: %s\n",
                engine_or.status().ToString().c_str());
    return;
  }
  PqsdaEngine& engine = **engine_or;

  FigureTable table;
  table.title = "Rank-aggregation ablation: PPR@k";
  table.x_label = "k";
  table.x_values = RankLabels();
  const size_t max_k = kRanks.back();

  std::vector<std::vector<double>> ppr_div(kRanks.size()),
      ppr_pref(kRanks.size()), ppr_borda(kRanks.size());
  size_t evaluated = 0;
  for (const TestSession& ts : split.test_sessions) {
    if (evaluated >= max_eval) break;
    if (ts.clicked_titles.empty()) continue;
    SuggestionRequest request = RequestFromTestSession(ts);
    auto diversified = engine.diversifier().Suggest(request, max_k);
    if (!diversified.ok() || diversified->empty()) continue;
    ++evaluated;

    // Preference-only: rank purely by the UPM preference score.
    std::vector<std::string> items;
    std::vector<double> prefs;
    for (const Suggestion& s : *diversified) {
      items.push_back(s.query);
      prefs.push_back(
          engine.personalizer()->PreferenceScore(ts.user, s.query));
    }
    auto preference_only = RankByScore(items, prefs);
    // Borda of both (what PQS-DA ships).
    auto borda = engine.personalizer()->Rerank(ts.user, *diversified);

    for (size_t ki = 0; ki < kRanks.size(); ++ki) {
      ppr_div[ki].push_back(
          ListPpr(*diversified, kRanks[ki], ts.clicked_titles));
      ppr_pref[ki].push_back(
          ListPpr(preference_only, kRanks[ki], ts.clicked_titles));
      ppr_borda[ki].push_back(ListPpr(borda, kRanks[ki], ts.clicked_titles));
    }
  }
  std::printf("evaluated on %zu sessions\n\n", evaluated);

  auto mean_rows = [](const std::vector<std::vector<double>>& per_k) {
    std::vector<double> out;
    for (const auto& v : per_k) out.push_back(MeanOf(v));
    return out;
  };
  table.AddSeries("diversification only", mean_rows(ppr_div));
  table.AddSeries("preference only", mean_rows(ppr_pref));
  table.AddSeries("Borda (PQS-DA)", mean_rows(ppr_borda));
  table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
