// Microbenchmarks of the core computational kernels. Two parts:
//
// 1. A before/after kernel comparison (custom timing, no google-benchmark)
//    that emits BENCH_kernels.json: the legacy CSR Jacobi row sweep (re-walk
//    the assembled system's rows, diagonal found by search) against the
//    packed Eq. 15 operator sweep; the pre-SIMD sequential sparse dot
//    against the dispatched kernel; the reference interleaved hitting-time
//    sweep against the merged-chain sweep; and an end-to-end serving pass at
//    scalar vs best SIMD level, gated on the suggestion lists being bitwise
//    identical. run_benches.sh greps the emitted gates.
//
// 2. The original google-benchmark suite: CSR SpMV, SpGEMM (W W^T), the
//    regularization solve, the cross-bipartite hitting-time iteration and
//    one Gibbs sweep of the UPM.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/simd.h"
#include "core/pqsda_engine.h"
#include "graph/compact_builder.h"
#include "solver/eq15_operator.h"
#include "solver/linear_solvers.h"
#include "solver/regularization.h"
#include "suggest/hitting_time_suggester.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda::bench {
namespace {

const BenchEnv& Env() {
  static BenchEnv* env = new BenchEnv(EnvSize("USERS", 150));
  return *env;
}

const CompactRepresentation& Rep() {
  static CompactRepresentation* rep = [] {
    const BenchEnv& env = Env();
    CompactBuilder builder(env.mb_weighted);
    StringId q = env.mb_weighted.QueryId(
        env.data.facets.concept_tokens()[0]);
    auto r = builder.Build(q, {}, CompactBuilderOptions{400, 6});
    return new CompactRepresentation(std::move(r).value());
  }();
  return *rep;
}

// ------------------------------------------------- before/after section --

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Minimum of `repeats` timed runs of `fn` (seconds) — min, not mean, so a
// scheduler hiccup cannot inflate one side of a comparison.
template <typename Fn>
double MinTime(size_t repeats, Fn&& fn) {
  double best = 1e300;
  for (size_t r = 0; r < repeats; ++r) {
    double begin = Now();
    fn();
    best = std::min(best, Now() - begin);
  }
  return best;
}

// The legacy Jacobi row sweep this PR replaced: walk the assembled CSR row,
// pick the diagonal out of it by comparison, accumulate the off-diagonal
// terms sequentially. Kept here verbatim as the before-side of the
// comparison (the production solvers now run on the split Eq15Operator).
void LegacyJacobiSweeps(const CsrMatrix& a, const std::vector<double>& b,
                        std::vector<double>& x, std::vector<double>& next,
                        size_t sweeps) {
  const size_t n = b.size();
  for (size_t s = 0; s < sweeps; ++s) {
    for (size_t i = 0; i < n; ++i) {
      auto idx = a.RowIndices(i);
      auto val = a.RowValues(i);
      double diag = 0.0, acc = 0.0;
      for (size_t k = 0; k < idx.size(); ++k) {
        if (idx[k] == i) {
          diag = val[k];
        } else {
          acc += val[k] * x[idx[k]];
        }
      }
      next[i] = diag != 0.0 ? (b[i] - acc) / diag : 0.0;
    }
    x.swap(next);
  }
}

// Operator-form Jacobi sweeps: same math on the split diag + packed
// off-diagonal through the fused per-level sweep kernel, exactly as
// JacobiSolve runs it.
void OperatorJacobiSweeps(const Eq15Operator& op, const std::vector<double>& b,
                          std::vector<double>& x, std::vector<double>& next,
                          size_t sweeps) {
  const size_t n = op.n;
  const auto sweep = simd::ActiveJacobiSweep();
  for (size_t s = 0; s < sweeps; ++s) {
    sweep(op.off.val.data(), op.off.col.data(), op.off.row_ptr.data(),
          b.data(), op.inv_diag.data(), x.data(), next.data(), 0, n);
    x.swap(next);
  }
}

struct KernelVerdict {
  double jacobi_before_ns = 0.0, jacobi_after_ns = 0.0;
  double dot_before_ns = 0.0, dot_after_ns = 0.0;
  double hit_before_ns = 0.0, hit_after_ns = 0.0;
  double e2e_p95_scalar_us = 0.0, e2e_p95_simd_us = 0.0;
  bool e2e_bitwise_equal = false;
  bool e2e_ran = false;
  double checksum = 0.0;  // defeats dead-code elimination; printed
};

void CompareJacobiSweep(KernelVerdict& v) {
  const auto& rep = Rep();
  const std::array<double, 3> alpha = RegularizationOptions{}.alpha;
  CsrMatrix a = AssembleRegularizationSystem(rep, alpha);
  Eq15Operator op = BuildEq15Operator(rep, alpha);
  const size_t n = rep.size();
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;
  std::vector<double> x(n, 0.0), next(n, 0.0);
  const size_t sweeps = 200;
  const double rows = static_cast<double>(sweeps) * static_cast<double>(n);

  double before = MinTime(5, [&] {
    std::fill(x.begin(), x.end(), 0.0);
    LegacyJacobiSweeps(a, b, x, next, sweeps);
  });
  v.checksum += x[0];
  double after = MinTime(5, [&] {
    std::fill(x.begin(), x.end(), 0.0);
    OperatorJacobiSweeps(op, b, x, next, sweeps);
  });
  v.checksum += x[0];
  v.jacobi_before_ns = before / rows * 1e9;
  v.jacobi_after_ns = after / rows * 1e9;
}

void CompareSparseDot(KernelVerdict& v) {
  const auto& rep = Rep();
  const std::array<double, 3> alpha = RegularizationOptions{}.alpha;
  Eq15Operator op = BuildEq15Operator(rep, alpha);
  std::vector<double> x(op.n);
  for (size_t i = 0; i < op.n; ++i) x[i] = 1.0 + 1e-3 * static_cast<double>(i);
  const size_t passes = 200;
  const double rows =
      static_cast<double>(passes) * static_cast<double>(op.off.rows);

  double acc = 0.0;
  double before = MinTime(5, [&] {
    for (size_t p = 0; p < passes; ++p) {
      for (uint32_t i = 0; i < op.off.rows; ++i) {
        const uint32_t begin = op.off.row_ptr[i];
        acc += simd::SparseDotSequential(op.off.val.data() + begin,
                                         op.off.col.data() + begin,
                                         op.off.row_ptr[i + 1] - begin,
                                         x.data());
      }
    }
  });
  const auto dot = simd::ActiveSparseDot();
  double after = MinTime(5, [&] {
    for (size_t p = 0; p < passes; ++p) {
      for (uint32_t i = 0; i < op.off.rows; ++i) {
        const uint32_t begin = op.off.row_ptr[i];
        acc += dot(op.off.val.data() + begin, op.off.col.data() + begin,
                   op.off.row_ptr[i + 1] - begin, x.data());
      }
    }
  });
  v.checksum += acc;
  v.dot_before_ns = before / rows * 1e9;
  v.dot_after_ns = after / rows * 1e9;
}

void CompareHittingSweep(KernelVerdict& v) {
  const auto& rep = Rep();
  std::vector<const CsrMatrix*> chains = {&rep.P(BipartiteKind::kUrl),
                                          &rep.P(BipartiteKind::kSession),
                                          &rep.P(BipartiteKind::kTerm)};
  std::vector<double> weights = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  std::vector<uint32_t> seeds = {0};
  const size_t iterations = 20;
  const double rows = static_cast<double>(iterations) *
                      static_cast<double>(rep.size());

  HittingTimeWorkspace ws;
  double before = MinTime(5, [&] {
    ChainHittingTimeInto(chains, weights, seeds, iterations, nullptr, ws);
  });
  v.checksum += ws.h.empty() ? 0.0 : ws.h.back();
  // The merge happens once per request, then K-1 selection rounds sweep it;
  // time the sweep (the build is reported separately in the suite output).
  MergedChain merged = BuildMergedChain(chains, weights);
  double after = MinTime(5, [&] {
    MergedChainHittingTimeInto(merged, seeds, iterations, nullptr, ws);
  });
  v.checksum += ws.h.empty() ? 0.0 : ws.h.back();
  v.hit_before_ns = before / rows * 1e9;
  v.hit_after_ns = after / rows * 1e9;
}

double Percentile(std::vector<double> us, size_t pct) {
  if (us.empty()) return 0.0;
  std::sort(us.begin(), us.end());
  size_t idx = (us.size() * pct + 99) / 100;
  if (idx > 0) --idx;
  if (idx >= us.size()) idx = us.size() - 1;
  return us[idx];
}

// End-to-end: the same serving pass with the vector units forced off, then
// at the best supported level. The kernels share one canonical accumulation
// order, so the suggestion lists must be bitwise identical — the JSON gate
// records it and run_benches.sh fails when it doesn't hold.
void CompareEndToEnd(KernelVerdict& v) {
  const BenchEnv& env = Env();
  const size_t num_tests = EnvSize("TESTS", 120);
  std::vector<TestQuery> tests = SampleTestQueries(env.data, num_tests, 17);
  std::vector<SuggestionRequest> requests;
  requests.reserve(tests.size());
  for (const TestQuery& t : tests) requests.push_back(t.request);
  const size_t k = 10;

  PqsdaEngineConfig config;
  config.personalize = false;
  config.cache_capacity = 0;  // every request must run the kernels
  auto engine_or = PqsdaEngine::Build(env.data.records, config);
  if (!engine_or.ok()) {
    std::printf("  e2e engine build failed: %s\n",
                engine_or.status().ToString().c_str());
    return;
  }
  const PqsdaEngine& engine = **engine_or;

  auto pass = [&](std::vector<std::vector<Suggestion>>* lists) {
    std::vector<double> us;
    us.reserve(requests.size());
    for (const SuggestionRequest& request : requests) {
      double begin = Now();
      auto result = engine.Suggest(request, k);
      us.push_back((Now() - begin) * 1e6);
      if (lists != nullptr) {
        lists->push_back(result.ok() ? std::move(*result)
                                     : std::vector<Suggestion>{});
      }
    }
    return us;
  };

  const simd::Level best = simd::ActiveLevel();
  std::vector<std::vector<Suggestion>> scalar_lists, simd_lists;
  simd::SetLevel(simd::Level::kScalar);
  pass(nullptr);  // warmup
  std::vector<double> scalar_us = pass(&scalar_lists);
  simd::SetLevel(best);
  pass(nullptr);
  std::vector<double> simd_us = pass(&simd_lists);

  v.e2e_ran = true;
  v.e2e_p95_scalar_us = Percentile(scalar_us, 95);
  v.e2e_p95_simd_us = Percentile(simd_us, 95);
  v.e2e_bitwise_equal = scalar_lists == simd_lists;
}

void KernelComparison() {
  KernelVerdict v;
  std::printf("===== kernel before/after (simd level: %s) =====\n",
              simd::LevelName(simd::ActiveLevel()));
  CompareJacobiSweep(v);
  CompareSparseDot(v);
  CompareHittingSweep(v);
  CompareEndToEnd(v);

  auto speedup = [](double before, double after) {
    return after > 0.0 ? before / after : 0.0;
  };
  const double jacobi_speedup = speedup(v.jacobi_before_ns, v.jacobi_after_ns);
  const bool jacobi_gate = jacobi_speedup >= 2.0;
  const bool equal_gate = !v.e2e_ran || v.e2e_bitwise_equal;

  std::printf("jacobi_row_sweep : %7.2f -> %7.2f ns/row  (%.2fx)\n",
              v.jacobi_before_ns, v.jacobi_after_ns, jacobi_speedup);
  std::printf("sparse_dot       : %7.2f -> %7.2f ns/row  (%.2fx)\n",
              v.dot_before_ns, v.dot_after_ns,
              speedup(v.dot_before_ns, v.dot_after_ns));
  std::printf("hitting_sweep    : %7.2f -> %7.2f ns/row  (%.2fx)\n",
              v.hit_before_ns, v.hit_after_ns,
              speedup(v.hit_before_ns, v.hit_after_ns));
  if (v.e2e_ran) {
    std::printf("e2e suggest p95  : %7.1f -> %7.1f us  (bitwise equal: %s)\n",
                v.e2e_p95_scalar_us, v.e2e_p95_simd_us,
                v.e2e_bitwise_equal ? "yes" : "NO");
  }
  std::printf("(checksum %g)\n\n", v.checksum);

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"simd_level\": \"%s\",\n"
      "  \"jacobi_row_sweep\": {\"before_ns_per_row\": %.3f, "
      "\"after_ns_per_row\": %.3f, \"speedup\": %.3f},\n"
      "  \"sparse_dot\": {\"before_ns_per_row\": %.3f, "
      "\"after_ns_per_row\": %.3f, \"speedup\": %.3f},\n"
      "  \"hitting_sweep\": {\"before_ns_per_row\": %.3f, "
      "\"after_ns_per_row\": %.3f, \"speedup\": %.3f},\n"
      "  \"e2e_suggest\": {\"p95_us_scalar\": %.1f, \"p95_us_simd\": %.1f, "
      "\"results_bitwise_equal\": %s},\n"
      "  \"jacobi_gate_pass\": %s\n"
      "}\n",
      simd::LevelName(simd::ActiveLevel()), v.jacobi_before_ns,
      v.jacobi_after_ns, jacobi_speedup, v.dot_before_ns, v.dot_after_ns,
      speedup(v.dot_before_ns, v.dot_after_ns), v.hit_before_ns,
      v.hit_after_ns, speedup(v.hit_before_ns, v.hit_after_ns),
      v.e2e_p95_scalar_us, v.e2e_p95_simd_us,
      equal_gate ? "true" : "false", jacobi_gate ? "true" : "false");
  if (std::FILE* f = std::fopen("BENCH_kernels.json", "w")) {
    std::fwrite(buf, 1, std::strlen(buf), f);
    std::fclose(f);
    std::printf("wrote BENCH_kernels.json\n\n");
  } else {
    std::printf("could not write BENCH_kernels.json\n\n");
  }
}

// ------------------------------------------------ google-benchmark suite --

void BM_CsrMatVec(benchmark::State& state) {
  const auto& m = Env().mb_weighted.graph(BipartiteKind::kTerm)
                      .query_to_object();
  std::vector<double> x(m.cols(), 1.0), y;
  for (auto _ : state) {
    m.MatVec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_CsrMatVec);

void BM_SpGemmSelfTranspose(benchmark::State& state) {
  const auto& w = Rep().W(BipartiteKind::kTerm);
  for (auto _ : state) {
    auto a = w.MultiplySelfTranspose();
    benchmark::DoNotOptimize(a.nnz());
  }
}
BENCHMARK(BM_SpGemmSelfTranspose);

void BM_RegularizationSolve(benchmark::State& state) {
  const auto& rep = Rep();
  std::vector<double> f0(rep.size(), 0.0);
  f0[0] = 1.0;
  RegularizationOptions options;
  for (auto _ : state) {
    auto f = SolveRegularization(rep, f0, options);
    benchmark::DoNotOptimize(f.ok());
  }
}
BENCHMARK(BM_RegularizationSolve);

void BM_BuildEq15Operator(benchmark::State& state) {
  const auto& rep = Rep();
  const std::array<double, 3> alpha = RegularizationOptions{}.alpha;
  for (auto _ : state) {
    auto op = BuildEq15Operator(rep, alpha);
    benchmark::DoNotOptimize(op.off.nnz());
  }
}
BENCHMARK(BM_BuildEq15Operator);

void BM_BuildMergedChain(benchmark::State& state) {
  const auto& rep = Rep();
  std::vector<const CsrMatrix*> chains = {&rep.P(BipartiteKind::kUrl),
                                          &rep.P(BipartiteKind::kSession),
                                          &rep.P(BipartiteKind::kTerm)};
  std::vector<double> weights = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  for (auto _ : state) {
    auto merged = BuildMergedChain(chains, weights);
    benchmark::DoNotOptimize(merged.m.nnz());
  }
}
BENCHMARK(BM_BuildMergedChain);

void BM_CrossBipartiteHittingTime(benchmark::State& state) {
  const auto& rep = Rep();
  std::vector<const CsrMatrix*> chains = {&rep.P(BipartiteKind::kUrl),
                                          &rep.P(BipartiteKind::kSession),
                                          &rep.P(BipartiteKind::kTerm)};
  std::vector<double> weights = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  for (auto _ : state) {
    auto h = ChainHittingTime(chains, weights, {0}, 20);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_CrossBipartiteHittingTime);

void BM_MergedChainHittingTime(benchmark::State& state) {
  const auto& rep = Rep();
  std::vector<const CsrMatrix*> chains = {&rep.P(BipartiteKind::kUrl),
                                          &rep.P(BipartiteKind::kSession),
                                          &rep.P(BipartiteKind::kTerm)};
  std::vector<double> weights = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  MergedChain merged = BuildMergedChain(chains, weights);
  HittingTimeWorkspace ws;
  for (auto _ : state) {
    MergedChainHittingTimeInto(merged, {0}, 20, nullptr, ws);
    benchmark::DoNotOptimize(ws.h.data());
  }
}
BENCHMARK(BM_MergedChainHittingTime);

void BM_CompactBuild(benchmark::State& state) {
  const BenchEnv& env = Env();
  CompactBuilder builder(env.mb_weighted);
  StringId q =
      env.mb_weighted.QueryId(env.data.facets.concept_tokens()[0]);
  CompactBuilderOptions options;
  options.target_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto rep = builder.Build(q, {}, options);
    benchmark::DoNotOptimize(rep.ok());
  }
}
BENCHMARK(BM_CompactBuild)->Arg(100)->Arg(400)->Arg(800);

void BM_UpmGibbsSweep(benchmark::State& state) {
  static QueryLogCorpus* corpus = [] {
    auto* c = new QueryLogCorpus(
        QueryLogCorpus::Build(Env().data.records, Env().sessions));
    return c;
  }();
  UpmOptions options;
  options.base.num_topics = 16;
  options.base.gibbs_iterations = 1;
  options.learn_hyperparameters = false;
  for (auto _ : state) {
    UpmModel model(options);
    model.Train(*corpus);
    benchmark::DoNotOptimize(model.num_topics());
  }
}
BENCHMARK(BM_UpmGibbsSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pqsda::bench

int main(int argc, char** argv) {
  pqsda::bench::KernelComparison();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
