// Microbenchmarks of the core computational kernels (google-benchmark):
// CSR SpMV, SpGEMM (W W^T), the regularization solve, the cross-bipartite
// hitting-time iteration and one Gibbs sweep of the UPM.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "graph/compact_builder.h"
#include "solver/regularization.h"
#include "suggest/hitting_time_suggester.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda::bench {
namespace {

const BenchEnv& Env() {
  static BenchEnv* env = new BenchEnv(EnvSize("USERS", 150));
  return *env;
}

const CompactRepresentation& Rep() {
  static CompactRepresentation* rep = [] {
    const BenchEnv& env = Env();
    CompactBuilder builder(env.mb_weighted);
    StringId q = env.mb_weighted.QueryId(
        env.data.facets.concept_tokens()[0]);
    auto r = builder.Build(q, {}, CompactBuilderOptions{400, 6});
    return new CompactRepresentation(std::move(r).value());
  }();
  return *rep;
}

void BM_CsrMatVec(benchmark::State& state) {
  const auto& m = Env().mb_weighted.graph(BipartiteKind::kTerm)
                      .query_to_object();
  std::vector<double> x(m.cols(), 1.0), y;
  for (auto _ : state) {
    m.MatVec(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(m.nnz()));
}
BENCHMARK(BM_CsrMatVec);

void BM_SpGemmSelfTranspose(benchmark::State& state) {
  const auto& w = Rep().W(BipartiteKind::kTerm);
  for (auto _ : state) {
    auto a = w.MultiplySelfTranspose();
    benchmark::DoNotOptimize(a.nnz());
  }
}
BENCHMARK(BM_SpGemmSelfTranspose);

void BM_RegularizationSolve(benchmark::State& state) {
  const auto& rep = Rep();
  std::vector<double> f0(rep.size(), 0.0);
  f0[0] = 1.0;
  RegularizationOptions options;
  for (auto _ : state) {
    auto f = SolveRegularization(rep, f0, options);
    benchmark::DoNotOptimize(f.ok());
  }
}
BENCHMARK(BM_RegularizationSolve);

void BM_CrossBipartiteHittingTime(benchmark::State& state) {
  const auto& rep = Rep();
  std::vector<const CsrMatrix*> chains = {&rep.P(BipartiteKind::kUrl),
                                          &rep.P(BipartiteKind::kSession),
                                          &rep.P(BipartiteKind::kTerm)};
  std::vector<double> weights = {1.0 / 3, 1.0 / 3, 1.0 / 3};
  for (auto _ : state) {
    auto h = ChainHittingTime(chains, weights, {0}, 20);
    benchmark::DoNotOptimize(h.data());
  }
}
BENCHMARK(BM_CrossBipartiteHittingTime);

void BM_CompactBuild(benchmark::State& state) {
  const BenchEnv& env = Env();
  CompactBuilder builder(env.mb_weighted);
  StringId q =
      env.mb_weighted.QueryId(env.data.facets.concept_tokens()[0]);
  CompactBuilderOptions options;
  options.target_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto rep = builder.Build(q, {}, options);
    benchmark::DoNotOptimize(rep.ok());
  }
}
BENCHMARK(BM_CompactBuild)->Arg(100)->Arg(400)->Arg(800);

void BM_UpmGibbsSweep(benchmark::State& state) {
  static QueryLogCorpus* corpus = [] {
    auto* c = new QueryLogCorpus(
        QueryLogCorpus::Build(Env().data.records, Env().sessions));
    return c;
  }();
  UpmOptions options;
  options.base.num_topics = 16;
  options.base.gibbs_iterations = 1;
  options.learn_hyperparameters = false;
  for (auto _ : state) {
    UpmModel model(options);
    model.Train(*corpus);
    benchmark::DoNotOptimize(model.num_topics());
  }
}
BENCHMARK(BM_UpmGibbsSweep)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pqsda::bench
