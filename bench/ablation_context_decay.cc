// Ablation: the search-context decay lambda (Eq. 7). Sweeps lambda and
// measures top-1 relevance of the first candidate — the quantity the
// regularization framework (§IV-B) is designed to maximize — restricted to
// test queries that actually have a search context.
//
// Scale knobs: PQSDA_USERS (default 250), PQSDA_TESTS (default 200).

#include <cstdio>

#include "bench_util.h"
#include "eval/relevance.h"
#include "eval/report.h"
#include "eval/synthetic_adapters.h"
#include "suggest/pqsda_diversifier.h"

namespace pqsda::bench {
namespace {

void Main() {
  const size_t users = EnvSize("USERS", 250);
  const size_t num_tests = EnvSize("TESTS", 200);
  std::printf("ablation: context decay lambda (Eq. 7) "
              "(users=%zu, tests=%zu)\n\n", users, num_tests);
  BenchEnv env(users);
  SyntheticQueryCategories cats(env.data);

  // Keep only test queries with non-empty context — lambda is irrelevant
  // otherwise.
  std::vector<TestQuery> tests;
  for (auto& t : SampleTestQueries(env.data, num_tests * 3, 13)) {
    if (!t.request.context.empty()) tests.push_back(std::move(t));
    if (tests.size() >= num_tests) break;
  }
  std::printf("context-bearing test queries: %zu\n\n", tests.size());

  const std::vector<double> lambdas = {0.0, 1.0 / 3600, 1.0 / 600, 1.0 / 60,
                                       1.0 / 10};
  FigureTable table;
  table.title = "Context-decay ablation: top-1 relevance vs lambda";
  table.x_label = "lambda";
  for (double l : lambdas) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.4g", l);
    table.x_values.push_back(buf);
  }
  std::vector<double> row;
  for (double lambda : lambdas) {
    PqsdaDiversifierOptions options;
    options.regularization.decay_lambda = lambda;
    PqsdaDiversifier diversifier(env.mb_weighted, options);
    std::vector<double> rel;
    for (const TestQuery& t : tests) {
      auto out = diversifier.Suggest(t.request, 5);
      if (!out.ok() || out->empty()) continue;
      rel.push_back(ListRelevance(t.request.query, *out, 1,
                                  env.data.taxonomy, cats));
    }
    row.push_back(MeanOf(rel));
  }
  table.AddSeries("top-1 relevance", row);
  table.Print();
}

}  // namespace
}  // namespace pqsda::bench

int main() { pqsda::bench::Main(); }
