file(REMOVE_RECURSE
  "libpqsda.a"
)
