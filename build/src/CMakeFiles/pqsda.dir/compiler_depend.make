# Empty compiler generated dependencies file for pqsda.
# This may be replaced when dependencies are built.
