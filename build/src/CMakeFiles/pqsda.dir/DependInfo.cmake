
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/interner.cc" "src/CMakeFiles/pqsda.dir/common/interner.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/common/interner.cc.o.d"
  "/root/repo/src/common/math_util.cc" "src/CMakeFiles/pqsda.dir/common/math_util.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/common/math_util.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/pqsda.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/pqsda.dir/common/status.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/common/status.cc.o.d"
  "/root/repo/src/common/timer.cc" "src/CMakeFiles/pqsda.dir/common/timer.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/common/timer.cc.o.d"
  "/root/repo/src/common/zipf.cc" "src/CMakeFiles/pqsda.dir/common/zipf.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/common/zipf.cc.o.d"
  "/root/repo/src/core/pqsda_engine.cc" "src/CMakeFiles/pqsda.dir/core/pqsda_engine.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/core/pqsda_engine.cc.o.d"
  "/root/repo/src/core/profile_store.cc" "src/CMakeFiles/pqsda.dir/core/profile_store.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/core/profile_store.cc.o.d"
  "/root/repo/src/eval/diversity.cc" "src/CMakeFiles/pqsda.dir/eval/diversity.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/eval/diversity.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/CMakeFiles/pqsda.dir/eval/harness.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/eval/harness.cc.o.d"
  "/root/repo/src/eval/hpr.cc" "src/CMakeFiles/pqsda.dir/eval/hpr.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/eval/hpr.cc.o.d"
  "/root/repo/src/eval/ppr.cc" "src/CMakeFiles/pqsda.dir/eval/ppr.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/eval/ppr.cc.o.d"
  "/root/repo/src/eval/relevance.cc" "src/CMakeFiles/pqsda.dir/eval/relevance.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/eval/relevance.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/CMakeFiles/pqsda.dir/eval/report.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/eval/report.cc.o.d"
  "/root/repo/src/eval/synthetic_adapters.cc" "src/CMakeFiles/pqsda.dir/eval/synthetic_adapters.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/eval/synthetic_adapters.cc.o.d"
  "/root/repo/src/graph/bipartite.cc" "src/CMakeFiles/pqsda.dir/graph/bipartite.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/graph/bipartite.cc.o.d"
  "/root/repo/src/graph/click_graph.cc" "src/CMakeFiles/pqsda.dir/graph/click_graph.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/graph/click_graph.cc.o.d"
  "/root/repo/src/graph/compact_builder.cc" "src/CMakeFiles/pqsda.dir/graph/compact_builder.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/graph/compact_builder.cc.o.d"
  "/root/repo/src/graph/csr_matrix.cc" "src/CMakeFiles/pqsda.dir/graph/csr_matrix.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/graph/csr_matrix.cc.o.d"
  "/root/repo/src/graph/multi_bipartite.cc" "src/CMakeFiles/pqsda.dir/graph/multi_bipartite.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/graph/multi_bipartite.cc.o.d"
  "/root/repo/src/log/cleaner.cc" "src/CMakeFiles/pqsda.dir/log/cleaner.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/log/cleaner.cc.o.d"
  "/root/repo/src/log/log_io.cc" "src/CMakeFiles/pqsda.dir/log/log_io.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/log/log_io.cc.o.d"
  "/root/repo/src/log/record.cc" "src/CMakeFiles/pqsda.dir/log/record.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/log/record.cc.o.d"
  "/root/repo/src/log/sessionizer.cc" "src/CMakeFiles/pqsda.dir/log/sessionizer.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/log/sessionizer.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/pqsda.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/pqsda.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/obs/trace.cc.o.d"
  "/root/repo/src/optim/beta_fit.cc" "src/CMakeFiles/pqsda.dir/optim/beta_fit.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/optim/beta_fit.cc.o.d"
  "/root/repo/src/optim/dirichlet_opt.cc" "src/CMakeFiles/pqsda.dir/optim/dirichlet_opt.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/optim/dirichlet_opt.cc.o.d"
  "/root/repo/src/optim/lbfgs.cc" "src/CMakeFiles/pqsda.dir/optim/lbfgs.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/optim/lbfgs.cc.o.d"
  "/root/repo/src/rank/borda.cc" "src/CMakeFiles/pqsda.dir/rank/borda.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/rank/borda.cc.o.d"
  "/root/repo/src/solver/linear_solvers.cc" "src/CMakeFiles/pqsda.dir/solver/linear_solvers.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/solver/linear_solvers.cc.o.d"
  "/root/repo/src/solver/regularization.cc" "src/CMakeFiles/pqsda.dir/solver/regularization.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/solver/regularization.cc.o.d"
  "/root/repo/src/suggest/cacb_suggester.cc" "src/CMakeFiles/pqsda.dir/suggest/cacb_suggester.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/cacb_suggester.cc.o.d"
  "/root/repo/src/suggest/concept_suggester.cc" "src/CMakeFiles/pqsda.dir/suggest/concept_suggester.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/concept_suggester.cc.o.d"
  "/root/repo/src/suggest/dqs_suggester.cc" "src/CMakeFiles/pqsda.dir/suggest/dqs_suggester.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/dqs_suggester.cc.o.d"
  "/root/repo/src/suggest/engine.cc" "src/CMakeFiles/pqsda.dir/suggest/engine.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/engine.cc.o.d"
  "/root/repo/src/suggest/hitting_time_suggester.cc" "src/CMakeFiles/pqsda.dir/suggest/hitting_time_suggester.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/hitting_time_suggester.cc.o.d"
  "/root/repo/src/suggest/pqsda_diversifier.cc" "src/CMakeFiles/pqsda.dir/suggest/pqsda_diversifier.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/pqsda_diversifier.cc.o.d"
  "/root/repo/src/suggest/random_walk_suggester.cc" "src/CMakeFiles/pqsda.dir/suggest/random_walk_suggester.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/random_walk_suggester.cc.o.d"
  "/root/repo/src/suggest/suggest_stats.cc" "src/CMakeFiles/pqsda.dir/suggest/suggest_stats.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/suggest/suggest_stats.cc.o.d"
  "/root/repo/src/synthetic/facet_model.cc" "src/CMakeFiles/pqsda.dir/synthetic/facet_model.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/synthetic/facet_model.cc.o.d"
  "/root/repo/src/synthetic/generator.cc" "src/CMakeFiles/pqsda.dir/synthetic/generator.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/synthetic/generator.cc.o.d"
  "/root/repo/src/synthetic/taxonomy.cc" "src/CMakeFiles/pqsda.dir/synthetic/taxonomy.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/synthetic/taxonomy.cc.o.d"
  "/root/repo/src/synthetic/user_model.cc" "src/CMakeFiles/pqsda.dir/synthetic/user_model.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/synthetic/user_model.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/pqsda.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/pqsda.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/topic/click_models.cc" "src/CMakeFiles/pqsda.dir/topic/click_models.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/click_models.cc.o.d"
  "/root/repo/src/topic/corpus.cc" "src/CMakeFiles/pqsda.dir/topic/corpus.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/corpus.cc.o.d"
  "/root/repo/src/topic/lda.cc" "src/CMakeFiles/pqsda.dir/topic/lda.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/lda.cc.o.d"
  "/root/repo/src/topic/model.cc" "src/CMakeFiles/pqsda.dir/topic/model.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/model.cc.o.d"
  "/root/repo/src/topic/parallel_lda.cc" "src/CMakeFiles/pqsda.dir/topic/parallel_lda.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/parallel_lda.cc.o.d"
  "/root/repo/src/topic/perplexity.cc" "src/CMakeFiles/pqsda.dir/topic/perplexity.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/perplexity.cc.o.d"
  "/root/repo/src/topic/ptm.cc" "src/CMakeFiles/pqsda.dir/topic/ptm.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/ptm.cc.o.d"
  "/root/repo/src/topic/sstm.cc" "src/CMakeFiles/pqsda.dir/topic/sstm.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/sstm.cc.o.d"
  "/root/repo/src/topic/tot.cc" "src/CMakeFiles/pqsda.dir/topic/tot.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/tot.cc.o.d"
  "/root/repo/src/topic/upm.cc" "src/CMakeFiles/pqsda.dir/topic/upm.cc.o" "gcc" "src/CMakeFiles/pqsda.dir/topic/upm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
