# Empty dependencies file for suggest_cli.
# This may be replaced when dependencies are built.
