file(REMOVE_RECURSE
  "CMakeFiles/suggest_cli.dir/suggest_cli.cc.o"
  "CMakeFiles/suggest_cli.dir/suggest_cli.cc.o.d"
  "suggest_cli"
  "suggest_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suggest_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
