file(REMOVE_RECURSE
  "CMakeFiles/user_profiling_demo.dir/user_profiling_demo.cc.o"
  "CMakeFiles/user_profiling_demo.dir/user_profiling_demo.cc.o.d"
  "user_profiling_demo"
  "user_profiling_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/user_profiling_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
