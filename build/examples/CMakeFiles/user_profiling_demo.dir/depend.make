# Empty dependencies file for user_profiling_demo.
# This may be replaced when dependencies are built.
