# Empty dependencies file for ambiguous_query_demo.
# This may be replaced when dependencies are built.
