file(REMOVE_RECURSE
  "CMakeFiles/ambiguous_query_demo.dir/ambiguous_query_demo.cc.o"
  "CMakeFiles/ambiguous_query_demo.dir/ambiguous_query_demo.cc.o.d"
  "ambiguous_query_demo"
  "ambiguous_query_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ambiguous_query_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
