# Empty compiler generated dependencies file for rank_core_test.
# This may be replaced when dependencies are built.
