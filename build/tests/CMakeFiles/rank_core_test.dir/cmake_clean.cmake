file(REMOVE_RECURSE
  "CMakeFiles/rank_core_test.dir/rank_core_test.cc.o"
  "CMakeFiles/rank_core_test.dir/rank_core_test.cc.o.d"
  "rank_core_test"
  "rank_core_test.pdb"
  "rank_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rank_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
