# Empty compiler generated dependencies file for text_log_test.
# This may be replaced when dependencies are built.
