file(REMOVE_RECURSE
  "CMakeFiles/text_log_test.dir/text_log_test.cc.o"
  "CMakeFiles/text_log_test.dir/text_log_test.cc.o.d"
  "text_log_test"
  "text_log_test.pdb"
  "text_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
