# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/text_log_test[1]_include.cmake")
include("/root/repo/build/tests/synthetic_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/suggest_test[1]_include.cmake")
include("/root/repo/build/tests/topic_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/rank_core_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_property_test[1]_include.cmake")
