# Empty dependencies file for ablation_context_decay.
# This may be replaced when dependencies are built.
