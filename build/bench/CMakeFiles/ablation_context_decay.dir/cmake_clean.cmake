file(REMOVE_RECURSE
  "CMakeFiles/ablation_context_decay.dir/ablation_context_decay.cc.o"
  "CMakeFiles/ablation_context_decay.dir/ablation_context_decay.cc.o.d"
  "CMakeFiles/ablation_context_decay.dir/bench_util.cc.o"
  "CMakeFiles/ablation_context_decay.dir/bench_util.cc.o.d"
  "ablation_context_decay"
  "ablation_context_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_context_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
