# Empty compiler generated dependencies file for ablation_rank_aggregation.
# This may be replaced when dependencies are built.
