file(REMOVE_RECURSE
  "CMakeFiles/ablation_rank_aggregation.dir/ablation_rank_aggregation.cc.o"
  "CMakeFiles/ablation_rank_aggregation.dir/ablation_rank_aggregation.cc.o.d"
  "CMakeFiles/ablation_rank_aggregation.dir/bench_util.cc.o"
  "CMakeFiles/ablation_rank_aggregation.dir/bench_util.cc.o.d"
  "ablation_rank_aggregation"
  "ablation_rank_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rank_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
