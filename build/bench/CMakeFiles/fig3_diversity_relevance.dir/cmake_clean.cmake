file(REMOVE_RECURSE
  "CMakeFiles/fig3_diversity_relevance.dir/bench_util.cc.o"
  "CMakeFiles/fig3_diversity_relevance.dir/bench_util.cc.o.d"
  "CMakeFiles/fig3_diversity_relevance.dir/fig3_diversity_relevance.cc.o"
  "CMakeFiles/fig3_diversity_relevance.dir/fig3_diversity_relevance.cc.o.d"
  "fig3_diversity_relevance"
  "fig3_diversity_relevance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_diversity_relevance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
