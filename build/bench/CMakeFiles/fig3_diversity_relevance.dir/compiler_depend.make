# Empty compiler generated dependencies file for fig3_diversity_relevance.
# This may be replaced when dependencies are built.
