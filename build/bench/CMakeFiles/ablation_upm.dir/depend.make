# Empty dependencies file for ablation_upm.
# This may be replaced when dependencies are built.
