file(REMOVE_RECURSE
  "CMakeFiles/ablation_upm.dir/ablation_upm.cc.o"
  "CMakeFiles/ablation_upm.dir/ablation_upm.cc.o.d"
  "CMakeFiles/ablation_upm.dir/bench_util.cc.o"
  "CMakeFiles/ablation_upm.dir/bench_util.cc.o.d"
  "ablation_upm"
  "ablation_upm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_upm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
