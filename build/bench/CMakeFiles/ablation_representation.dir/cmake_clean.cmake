file(REMOVE_RECURSE
  "CMakeFiles/ablation_representation.dir/ablation_representation.cc.o"
  "CMakeFiles/ablation_representation.dir/ablation_representation.cc.o.d"
  "CMakeFiles/ablation_representation.dir/bench_util.cc.o"
  "CMakeFiles/ablation_representation.dir/bench_util.cc.o.d"
  "ablation_representation"
  "ablation_representation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
