# Empty compiler generated dependencies file for fig5_personalized.
# This may be replaced when dependencies are built.
