file(REMOVE_RECURSE
  "CMakeFiles/fig5_personalized.dir/bench_util.cc.o"
  "CMakeFiles/fig5_personalized.dir/bench_util.cc.o.d"
  "CMakeFiles/fig5_personalized.dir/fig5_personalized.cc.o"
  "CMakeFiles/fig5_personalized.dir/fig5_personalized.cc.o.d"
  "fig5_personalized"
  "fig5_personalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_personalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
