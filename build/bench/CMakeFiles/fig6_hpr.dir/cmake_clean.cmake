file(REMOVE_RECURSE
  "CMakeFiles/fig6_hpr.dir/bench_util.cc.o"
  "CMakeFiles/fig6_hpr.dir/bench_util.cc.o.d"
  "CMakeFiles/fig6_hpr.dir/fig6_hpr.cc.o"
  "CMakeFiles/fig6_hpr.dir/fig6_hpr.cc.o.d"
  "fig6_hpr"
  "fig6_hpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_hpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
