# Empty compiler generated dependencies file for fig6_hpr.
# This may be replaced when dependencies are built.
