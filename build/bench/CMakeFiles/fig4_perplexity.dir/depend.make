# Empty dependencies file for fig4_perplexity.
# This may be replaced when dependencies are built.
