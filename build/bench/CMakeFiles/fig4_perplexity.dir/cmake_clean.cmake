file(REMOVE_RECURSE
  "CMakeFiles/fig4_perplexity.dir/bench_util.cc.o"
  "CMakeFiles/fig4_perplexity.dir/bench_util.cc.o.d"
  "CMakeFiles/fig4_perplexity.dir/fig4_perplexity.cc.o"
  "CMakeFiles/fig4_perplexity.dir/fig4_perplexity.cc.o.d"
  "fig4_perplexity"
  "fig4_perplexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_perplexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
