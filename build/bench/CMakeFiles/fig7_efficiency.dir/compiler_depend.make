# Empty compiler generated dependencies file for fig7_efficiency.
# This may be replaced when dependencies are built.
