#include "obs/stage_profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "obs/metrics.h"
#include "obs/retire.h"

namespace pqsda::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SanitizeEpochNs(int64_t epoch_ns) {
  return epoch_ns > 0 ? epoch_ns : 1;
}

size_t SanitizeEpochs(size_t epochs) { return epochs > 0 ? epochs : 1; }

size_t WindowEpochs(int64_t window_ns, int64_t epoch_ns, size_t ring) {
  if (window_ns <= 0) return 1;
  auto n = static_cast<size_t>((window_ns + epoch_ns - 1) / epoch_ns);
  return std::min(std::max<size_t>(n, 1), ring);
}

constexpr const char* kStageNames[kProfileStageCount] = {
    "request", "cache",      "expansion",  "solve",      "selection",
    "personalization", "drain", "sessionize", "graph_build", "publish",
    "scatter_gather"};

constexpr const char* kRungNames[kProfileRungCount] = {
    "rung_full", "rung_truncated_solve", "rung_walk_only", "rung_cache_only",
    "rebuild"};

// Per-request accumulator; armed by BeginRequest, folded by EndRequest,
// always owned by exactly one thread — plain fields, no synchronization.
struct ThreadRequest {
  bool armed = false;
  int64_t wall0 = 0;
  int64_t cpu0 = 0;
  StageCost stages[kProfileStageCount];
};

thread_local ThreadRequest tls_request;

// Cumulative pqsda.profile.* registry surface, folded once per request.
struct StageCounters {
  Counter* count;
  Counter* wall_us;
  Counter* cpu_us;
  Counter* work;
};

const StageCounters& CountersFor(size_t stage) {
  static const auto* all = [] {
    auto* counters = new StageCounters[kProfileStageCount];
    MetricsRegistry& reg = MetricsRegistry::Default();
    for (size_t s = 0; s < kProfileStageCount; ++s) {
      const std::string prefix = std::string("pqsda.profile.") + kStageNames[s];
      counters[s].count = &reg.GetCounter(prefix + ".count_total");
      counters[s].wall_us = &reg.GetCounter(prefix + ".wall_us_total");
      counters[s].cpu_us = &reg.GetCounter(prefix + ".cpu_us_total");
      counters[s].work = &reg.GetCounter(prefix + ".work_total");
    }
    return counters;
  }();
  return all[stage];
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendCostFields(std::string& out, const StageCost& c) {
  out += "\"count\":" + std::to_string(c.count);
  out += ",\"wall_us\":" + Num(static_cast<double>(c.wall_ns) * 1e-3);
  out += ",\"cpu_us\":" + Num(static_cast<double>(c.cpu_ns) * 1e-3);
  out += ",\"work\":" + std::to_string(c.work);
}

std::atomic<StageProfiler*> g_default{nullptr};
std::mutex g_install_mu;

}  // namespace

const char* ProfileStageName(ProfileStage stage) {
  return kStageNames[static_cast<size_t>(stage)];
}

int64_t ThreadCpuNowNs() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
#else
  return 0;
#endif
}

StageProfiler::StageProfiler(WindowOptions options)
    : options_(std::move(options)) {
  options_.epoch_ns = SanitizeEpochNs(options_.epoch_ns);
  options_.epochs = SanitizeEpochs(options_.epochs);
  slots_ = std::make_unique<Slot[]>(options_.epochs);
}

StageProfiler& StageProfiler::Default() {
  StageProfiler* p = g_default.load(std::memory_order_acquire);
  if (p != nullptr) return *p;
  std::lock_guard<std::mutex> lock(g_install_mu);
  p = g_default.load(std::memory_order_relaxed);
  if (p == nullptr) {
    p = new StageProfiler();
    g_default.store(p, std::memory_order_release);
  }
  return *p;
}

StageProfiler& StageProfiler::Install(WindowOptions options) {
  std::lock_guard<std::mutex> lock(g_install_mu);
  // The previous instance is retired, never freed; see
  // ServingTelemetry::Install.
  auto* p = new StageProfiler(std::move(options));
  RetireForever(g_default.exchange(p, std::memory_order_acq_rel));
  return *p;
}

int64_t StageProfiler::NowNs() const {
  return options_.clock ? options_.clock() : SteadyNowNs();
}

void StageProfiler::BeginRequest() {
  ThreadRequest& req = tls_request;
  if (!enabled()) {
    req.armed = false;
    return;
  }
  for (StageCost& c : req.stages) c = StageCost{};
  req.wall0 = SteadyNowNs();
  req.cpu0 = ThreadCpuNowNs();
  req.armed = true;
}

void StageProfiler::EndRequest(size_t rung) {
  ThreadRequest& req = tls_request;
  if (!req.armed) return;
  req.armed = false;
  StageCost& request = req.stages[static_cast<size_t>(ProfileStage::kRequest)];
  request.count = 1;
  request.wall_ns = SteadyNowNs() - req.wall0;
  request.cpu_ns = ThreadCpuNowNs() - req.cpu0;
  Fold(std::min<size_t>(rung, kProfileRungCount - 1), req.stages);
}

void StageProfiler::AddWork(ProfileStage stage, uint64_t items) {
  ThreadRequest& req = tls_request;
  if (!req.armed) return;
  req.stages[static_cast<size_t>(stage)].work += items;
}

void StageProfiler::Fold(size_t rung,
                         const StageCost (&stages)[kProfileStageCount]) {
  const int64_t epoch = NowNs() / options_.epoch_ns;
  Slot& slot = slots_[static_cast<size_t>(epoch) % options_.epochs];
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (slot.epoch.load(std::memory_order_acquire) != epoch) {
      lock.unlock();
      std::unique_lock<std::shared_mutex> retire(mu_);
      const int64_t stored = slot.epoch.load(std::memory_order_relaxed);
      if (stored > epoch) return;  // stale writer; see WindowedRate::Add
      if (stored < epoch) {
        for (auto& per_rung : slot.cells) {
          for (Cell& cell : per_rung) {
            cell.count.store(0, std::memory_order_relaxed);
            cell.wall_ns.store(0, std::memory_order_relaxed);
            cell.cpu_ns.store(0, std::memory_order_relaxed);
            cell.work.store(0, std::memory_order_relaxed);
          }
        }
        slot.epoch.store(epoch, std::memory_order_release);
      }
      retire.unlock();
      lock.lock();
      // Re-check after re-acquiring shared: another retirement may have
      // rotated the slot past our epoch while we were unlocked.
      if (slot.epoch.load(std::memory_order_acquire) != epoch) return;
    }
    for (size_t s = 0; s < kProfileStageCount; ++s) {
      const StageCost& c = stages[s];
      if (c.count == 0 && c.work == 0) continue;
      Cell& cell = slot.cells[rung][s];
      cell.count.fetch_add(c.count, std::memory_order_relaxed);
      cell.wall_ns.fetch_add(c.wall_ns, std::memory_order_relaxed);
      cell.cpu_ns.fetch_add(c.cpu_ns, std::memory_order_relaxed);
      cell.work.fetch_add(c.work, std::memory_order_relaxed);
    }
  }
  for (size_t s = 0; s < kProfileStageCount; ++s) {
    const StageCost& c = stages[s];
    if (c.count == 0 && c.work == 0) continue;
    const StageCounters& counters = CountersFor(s);
    counters.count->Increment(c.count);
    counters.wall_us->Increment(
        static_cast<uint64_t>(std::max<int64_t>(c.wall_ns, 0) / 1000));
    counters.cpu_us->Increment(
        static_cast<uint64_t>(std::max<int64_t>(c.cpu_ns, 0) / 1000));
    counters.work->Increment(c.work);
  }
}

StageProfiler::Snapshot StageProfiler::SnapshotOver(int64_t window_ns) const {
  const int64_t epoch = NowNs() / options_.epoch_ns;
  const size_t span =
      WindowEpochs(window_ns, options_.epoch_ns, options_.epochs);
  const int64_t oldest = epoch - static_cast<int64_t>(span) + 1;

  Snapshot snap;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (size_t i = 0; i < options_.epochs; ++i) {
    const Slot& slot = slots_[i];
    const int64_t e = slot.epoch.load(std::memory_order_acquire);
    if (e < oldest || e > epoch) continue;
    for (size_t r = 0; r < kProfileRungCount; ++r) {
      for (size_t s = 0; s < kProfileStageCount; ++s) {
        const Cell& cell = slot.cells[r][s];
        StageCost& dst = snap.per_rung[r][s];
        dst.count += cell.count.load(std::memory_order_relaxed);
        dst.wall_ns += cell.wall_ns.load(std::memory_order_relaxed);
        dst.cpu_ns += cell.cpu_ns.load(std::memory_order_relaxed);
        dst.work += cell.work.load(std::memory_order_relaxed);
      }
    }
  }
  for (size_t r = 0; r < kProfileRungCount; ++r) {
    for (size_t s = 0; s < kProfileStageCount; ++s) {
      const StageCost& c = snap.per_rung[r][s];
      snap.total[s].count += c.count;
      snap.total[s].wall_ns += c.wall_ns;
      snap.total[s].cpu_ns += c.cpu_ns;
      snap.total[s].work += c.work;
    }
  }
  return snap;
}

std::string StageProfiler::ProfilezJson(int64_t window_ns) const {
  const Snapshot snap = SnapshotOver(window_ns);
  const size_t request_idx = static_cast<size_t>(ProfileStage::kRequest);

  std::string out = "{\"window_ns\":" + std::to_string(window_ns);
  out += ",\"enabled\":";
  out += enabled() ? "true" : "false";
  out += ",\"root\":{\"name\":\"suggest\",";
  AppendCostFields(out, snap.total[request_idx]);
  out += ",\"children\":[";
  bool first_rung = true;
  for (size_t r = 0; r < kProfileRungCount; ++r) {
    const StageCost& request = snap.per_rung[r][request_idx];
    if (request.count == 0) continue;
    if (!first_rung) out += ",";
    first_rung = false;
    out += "{\"name\":\"" + std::string(kRungNames[r]) + "\",";
    AppendCostFields(out, request);
    out += ",\"children\":[";
    int64_t attributed_ns = 0;
    bool first_stage = true;
    for (size_t s = 0; s < kProfileStageCount; ++s) {
      if (s == request_idx) continue;
      const StageCost& stage = snap.per_rung[r][s];
      if (stage.count == 0 && stage.work == 0) continue;
      // kScatterGather nests inside kExpansion: its wall is already part of
      // the expansion's, so adding it again would deflate the "self" leaf.
      if (s != static_cast<size_t>(ProfileStage::kScatterGather)) {
        attributed_ns += stage.wall_ns;
      }
      if (!first_stage) out += ",";
      first_stage = false;
      out += "{\"name\":\"" + std::string(kStageNames[s]) + "\",";
      AppendCostFields(out, stage);
      out += "}";
    }
    // Flame-graph "self" leaf: request wall outside every stage scope
    // (admission bookkeeping, cache fill, telemetry recording).
    StageCost self;
    self.count = request.count;
    self.wall_ns = std::max<int64_t>(request.wall_ns - attributed_ns, 0);
    if (!first_stage) out += ",";
    out += "{\"name\":\"self\",";
    AppendCostFields(out, self);
    out += "}]}";
  }
  out += "]}}";
  return out;
}

StageScope::StageScope(ProfileStage stage)
    : stage_(stage), armed_(tls_request.armed) {
  if (!armed_) return;
  wall0_ = SteadyNowNs();
  cpu0_ = ThreadCpuNowNs();
}

StageScope::~StageScope() {
  if (!armed_) return;
  ThreadRequest& req = tls_request;
  // The request may have been disarmed mid-scope (it cannot be in the
  // current pipeline, but the scope must stay safe if stages ever outlive
  // EndRequest).
  if (!req.armed) return;
  StageCost& c = req.stages[static_cast<size_t>(stage_)];
  c.count += 1;
  c.wall_ns += SteadyNowNs() - wall0_;
  c.cpu_ns += ThreadCpuNowNs() - cpu0_;
}

}  // namespace pqsda::obs
