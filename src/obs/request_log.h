#ifndef PQSDA_OBS_REQUEST_LOG_H_
#define PQSDA_OBS_REQUEST_LOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pqsda::obs {

/// Sizing and sampling policy of the structured request log.
struct RequestLogOptions {
  /// JSONL output path (appended; one object per line).
  std::string path;
  /// Head-based sampling: log every Nth request (1 = all, 0 = none except
  /// slow ones). The decision is made on arrival order, before anything is
  /// known about the request beyond its position in the stream, so the
  /// sample is unbiased by outcome.
  uint64_t sample_every = 32;
  /// Requests at or above this latency are always logged, regardless of the
  /// sampling decision — the slow tail is exactly what the log is for.
  int64_t slow_us = 100'000;
  /// Bounded hand-off queue to the writer thread. When serving outruns the
  /// disk, whole entries are dropped (never partially written) and counted
  /// in dropped() and `pqsda.reqlog.dropped_total` — the log degrades
  /// observably instead of back-pressuring the request path. 0 means the
  /// queue is always full: every accepted entry is counted as dropped,
  /// which keeps the accounting contract exercisable without disk I/O.
  size_t queue_capacity = 4096;
  /// Size-based rotation: once the active file reaches this many bytes the
  /// writer closes it and shifts path -> path.1 -> ... -> path.N (oldest
  /// dropped). 0 disables rotation. Rotation happens on the writer thread
  /// between whole lines, so no entry is ever split across files and the
  /// written/dropped accounting is untouched.
  size_t rotate_bytes = 0;
  /// How many rotated files to keep (path.1 .. path.N); 0 with rotation
  /// enabled discards the full file instead of renaming it.
  size_t max_rotated_files = 3;
};

/// One serving request as recorded in the log. `stage_us` carries whatever
/// per-stage timings were available (populated when the request was traced);
/// `suggestions` holds the returned queries, best first.
///
/// The entry carries everything needed to re-execute the request
/// deterministically (`suggest_cli replay` / PqsdaEngine::Replay): the full
/// input (query, timestamp, context, user, k), the snapshot `generation` the
/// request pinned, the degradation `rung` it was served at, and the result
/// `fingerprint` (FNV-1a 64 over the served queries + score bit patterns,
/// see obs::Fingerprint64) that replay must reproduce bitwise.
struct RequestLogEntry {
  uint64_t request_id = 0;
  uint32_t user = 0;
  std::string query;
  size_t k = 0;
  /// Request timestamp and session context (Definition 2), verbatim from
  /// the SuggestionRequest — replay inputs.
  int64_t timestamp = 0;
  std::vector<std::pair<std::string, int64_t>> context;
  /// Index generation pinned at admission.
  uint64_t generation = 0;
  /// DegradationRung numeric value chosen at admission.
  size_t rung = 0;
  int64_t total_us = 0;
  bool cache_hit = false;
  bool ok = true;
  std::string status;  // "" when ok
  /// Result fingerprint; 0 for failed requests.
  uint64_t fingerprint = 0;
  std::vector<std::pair<std::string, int64_t>> stage_us;
  std::vector<std::string> suggestions;
};

/// Parses one JSONL line as rendered by RequestLog::ToJson back into an
/// entry (the reader half of the log schema, used by replay and the
/// round-trip test). Unknown keys are skipped, so newer writers stay
/// readable; malformed lines return InvalidArgument.
StatusOr<RequestLogEntry> ParseRequestLogEntry(const std::string& line);

/// Reads a JSONL request log back, newest `max_entries` parseable entries in
/// file order (0 = all). Malformed lines are skipped — a log truncated by a
/// crash or mid-rotation still yields its good prefix. IoError when the file
/// can't be opened; an empty file yields an empty vector. Used by the
/// post-swap cache warmup and by tests that hand-write logs via
/// RequestLog::ToJson.
StatusOr<std::vector<RequestLogEntry>> ReadRequestLog(const std::string& path,
                                                      size_t max_entries);

/// Sampled structured JSONL request logging with an asynchronous writer:
/// Log() classifies the entry (sampled / slow / skipped), enqueues accepted
/// entries onto a bounded queue, and a background thread renders + appends
/// them. The request path never touches the filesystem.
///
/// Accounting contract (verified by telemetry_test): after Flush(),
///   written() + dropped() == accepted()
/// where accepted() counts entries that passed the sampling/slow policy.
/// seen() additionally counts the requests the policy skipped.
class RequestLog {
 public:
  /// Opens `options.path` for append. IoError when the file can't be opened.
  static StatusOr<std::unique_ptr<RequestLog>> Open(RequestLogOptions options);

  ~RequestLog();  // drains the queue, then joins the writer

  RequestLog(const RequestLog&) = delete;
  RequestLog& operator=(const RequestLog&) = delete;

  /// Applies the sampling policy and enqueues the entry if it is selected.
  /// Returns true when the entry was accepted (queued or dropped-on-full),
  /// false when the policy skipped it.
  bool Log(RequestLogEntry entry);

  /// Blocks until every accepted entry has been written (or counted as
  /// dropped) and the file is flushed.
  void Flush();

  uint64_t seen() const { return seen_.load(std::memory_order_relaxed); }
  uint64_t accepted() const {
    return accepted_.load(std::memory_order_relaxed);
  }
  uint64_t written() const { return written_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  /// Completed size-based rotations (see RequestLogOptions::rotate_bytes).
  uint64_t rotations() const {
    return rotations_.load(std::memory_order_relaxed);
  }

  const RequestLogOptions& options() const { return options_; }

  /// The JSONL rendering of one entry (no trailing newline); exposed so
  /// tests can assert the schema.
  static std::string ToJson(const RequestLogEntry& entry);

 private:
  explicit RequestLog(RequestLogOptions options, std::FILE* file,
                      size_t initial_bytes);

  void WriterLoop();
  /// Writer-thread only: closes the active file, shifts the rotated chain,
  /// reopens a fresh active file. On reopen failure file_ goes null and
  /// subsequent entries are counted as dropped (the accounting contract
  /// holds; the log degrades observably, like a full queue).
  void Rotate();

  RequestLogOptions options_;
  /// Guards file_ against Flush observing a mid-rotation swap; held by the
  /// writer around each write+rotate and by Flush around fflush.
  std::mutex file_mu_;
  std::FILE* file_;
  size_t active_bytes_ = 0;  // writer-thread only

  std::atomic<uint64_t> seq_{0};  // arrival order, drives head sampling
  std::atomic<uint64_t> seen_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> written_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> rotations_{0};

  std::mutex mu_;
  std::condition_variable cv_;        // writer wakeup
  std::condition_variable drained_;   // Flush/destructor wakeup
  std::deque<RequestLogEntry> queue_;
  bool writing_ = false;  // writer holds an entry outside the queue
  bool stop_ = false;
  std::thread writer_;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_REQUEST_LOG_H_
