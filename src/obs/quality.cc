#include "obs/quality.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "obs/metrics.h"

namespace pqsda::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SanitizeEpochNs(int64_t epoch_ns) {
  return epoch_ns > 0 ? epoch_ns : 1;
}

size_t SanitizeEpochs(size_t epochs) { return epochs > 0 ? epochs : 1; }

size_t WindowEpochs(int64_t window_ns, int64_t epoch_ns, size_t ring) {
  if (window_ns <= 0) return 1;
  auto n = static_cast<size_t>((window_ns + epoch_ns - 1) / epoch_ns);
  return std::min(std::max<size_t>(n, 1), ring);
}

// Relaxed CAS add; std::atomic<double>::fetch_add is C++20-and-newer
// library support we do not rely on.
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

constexpr const char* kRungNames[QualityTelemetry::kRungs] = {
    "full", "truncated_solve", "walk_only", "cache_only"};

Counter& SamplesCounter() {
  static Counter& c =
      MetricsRegistry::Default().GetCounter("pqsda.quality.samples_total");
  return c;
}

}  // namespace

double SimpsonDiversityFromCounts(const std::vector<uint64_t>& counts) {
  uint64_t n = 0;
  for (uint64_t c : counts) n += c;
  if (n < 2) return 0.0;
  double same = 0.0;
  for (uint64_t c : counts) {
    same += static_cast<double>(c) * static_cast<double>(c - 1);
  }
  return 1.0 - same / (static_cast<double>(n) * static_cast<double>(n - 1));
}

QualityTelemetry::QualityTelemetry(QualityTelemetryOptions options)
    : options_(std::move(options)) {
  options_.window.epoch_ns = SanitizeEpochNs(options_.window.epoch_ns);
  options_.window.epochs = SanitizeEpochs(options_.window.epochs);
  slots_ = std::make_unique<Slot[]>(options_.window.epochs);
}

int64_t QualityTelemetry::NowNs() const {
  return options_.window.clock ? options_.window.clock() : SteadyNowNs();
}

bool QualityTelemetry::Sample() {
  if (options_.sample_every == 0) return false;
  return seq_.fetch_add(1, std::memory_order_relaxed) %
             options_.sample_every ==
         0;
}

void QualityTelemetry::Record(size_t rung, bool cache_hit, double simpson,
                              double coverage) {
  rung = std::min(rung, kRungs - 1);
  const int64_t epoch = NowNs() / options_.window.epoch_ns;
  Slot& slot = slots_[static_cast<size_t>(epoch) % options_.window.epochs];
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (slot.epoch.load(std::memory_order_acquire) != epoch) {
    lock.unlock();
    std::unique_lock<std::shared_mutex> retire(mu_);
    const int64_t stored = slot.epoch.load(std::memory_order_relaxed);
    if (stored > epoch) return;  // stale writer; see WindowedRate::Add
    if (stored < epoch) {
      for (auto& per_rung : slot.cells) {
        for (Cell& cell : per_rung) {
          cell.samples.store(0, std::memory_order_relaxed);
          cell.simpson_sum.store(0.0, std::memory_order_relaxed);
          cell.coverage_sum.store(0.0, std::memory_order_relaxed);
        }
      }
      slot.epoch.store(epoch, std::memory_order_release);
    }
    retire.unlock();
    lock.lock();
    if (slot.epoch.load(std::memory_order_acquire) != epoch) return;
  }
  Cell& cell = slot.cells[rung][cache_hit ? 1 : 0];
  cell.samples.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(cell.simpson_sum, simpson);
  AtomicAdd(cell.coverage_sum, coverage);
  SamplesCounter().Increment();
}

QualityTelemetry::CellSnapshot QualityTelemetry::SnapshotCell(
    size_t rung, bool cache_hit, int64_t window_ns) const {
  rung = std::min(rung, kRungs - 1);
  const int64_t epoch = NowNs() / options_.window.epoch_ns;
  const size_t span = WindowEpochs(window_ns, options_.window.epoch_ns,
                                   options_.window.epochs);
  const int64_t oldest = epoch - static_cast<int64_t>(span) + 1;

  uint64_t samples = 0;
  double simpson_sum = 0.0;
  double coverage_sum = 0.0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (size_t i = 0; i < options_.window.epochs; ++i) {
      const Slot& slot = slots_[i];
      const int64_t e = slot.epoch.load(std::memory_order_acquire);
      if (e < oldest || e > epoch) continue;
      const Cell& cell = slot.cells[rung][cache_hit ? 1 : 0];
      samples += cell.samples.load(std::memory_order_relaxed);
      simpson_sum += cell.simpson_sum.load(std::memory_order_relaxed);
      coverage_sum += cell.coverage_sum.load(std::memory_order_relaxed);
    }
  }
  CellSnapshot snap;
  snap.samples = samples;
  if (samples > 0) {
    snap.simpson_mean = simpson_sum / static_cast<double>(samples);
    snap.coverage_mean = coverage_sum / static_cast<double>(samples);
  }
  return snap;
}

std::string QualityTelemetry::StatuszSection(int64_t window_ns) const {
  std::string out = "{\"sample_every\":" + std::to_string(options_.sample_every);
  out += ",\"rungs\":{";
  bool first_rung = true;
  for (size_t r = 0; r < kRungs; ++r) {
    std::string rung_out;
    bool first_cell = true;
    for (int hit = 0; hit < 2; ++hit) {
      const CellSnapshot cell = SnapshotCell(r, hit == 1, window_ns);
      if (cell.samples == 0) continue;
      if (!first_cell) rung_out += ",";
      first_cell = false;
      rung_out += std::string("\"") + (hit == 1 ? "cache_hit" : "cache_miss") +
                  "\":{";
      rung_out += "\"samples\":" + std::to_string(cell.samples);
      rung_out += ",\"simpson\":" + Num(cell.simpson_mean);
      rung_out += ",\"coverage\":" + Num(cell.coverage_mean);
      rung_out += "}";
    }
    if (rung_out.empty()) continue;
    if (!first_rung) out += ",";
    first_rung = false;
    out += "\"" + std::string(kRungNames[r]) + "\":{" + rung_out + "}";
  }
  out += "}}";
  return out;
}

}  // namespace pqsda::obs
