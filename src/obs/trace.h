#ifndef PQSDA_OBS_TRACE_H_
#define PQSDA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pqsda::obs {

/// One node of a per-request trace tree: a named stage with its wall time
/// (nanosecond clock, reported in microseconds), key=value annotations and
/// child stages.
struct SpanNode {
  std::string name;
  /// Start offset relative to the trace root, and duration.
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  std::vector<std::pair<std::string, std::string>> annotations;
  std::vector<std::unique_ptr<SpanNode>> children;

  int64_t start_us() const { return start_ns / 1000; }
  int64_t duration_us() const { return duration_ns / 1000; }

  /// Depth-first search for the first descendant (or this node) with the
  /// given name; nullptr when absent.
  const SpanNode* Find(std::string_view span_name) const;
  /// Total number of nodes in the subtree (including this one).
  size_t TotalSpans() const;
  /// Sum of the direct children's durations — how much of this span the
  /// instrumented stages account for.
  int64_t ChildDurationNs() const;

  /// Indented human-readable tree, one span per line:
  ///   name  1234us  [key=value ...]
  std::string Render(int indent = 0) const;
  /// {"name":...,"start_us":...,"duration_us":...,"annotations":{...},
  ///  "children":[...]}
  std::string ToJson() const;
};

/// True when a TraceCollector is installed on this thread — spans created
/// now will be recorded.
bool TraceActive();

/// Installs a trace on the current thread for its lifetime: TraceSpans
/// created below it attach to the tree. Collectors nest (a previously
/// installed collector is restored on destruction), and each thread has its
/// own span stack, so concurrent requests trace independently.
class TraceCollector {
 public:
  explicit TraceCollector(std::string root_name);
  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;
  ~TraceCollector();

  /// Finishes the root span and returns the tree; the collector uninstalls
  /// immediately (subsequent spans on this thread go to the outer collector,
  /// if any). Every TraceSpan opened under this collector must already be
  /// destroyed — an open span's destructor would otherwise re-point the
  /// thread's span stack at the moved-from tree.
  SpanNode Take();

 private:
  void Uninstall();

  SpanNode root_;
  SpanNode* prev_current_ = nullptr;
  std::chrono::steady_clock::time_point prev_base_;
  std::chrono::steady_clock::time_point start_;
  bool installed_ = false;
};

/// RAII scoped span. A no-op (one thread-local load) when no TraceCollector
/// is installed on the thread — instrumentation can stay in place on hot
/// paths with negligible cost when tracing is off.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

  /// Attaches a key=value annotation; dropped when the span is inactive.
  void Annotate(std::string key, std::string value);
  void Annotate(std::string key, int64_t value);
  void Annotate(std::string key, double value);

  bool active() const { return node_ != nullptr; }

 private:
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_TRACE_H_
