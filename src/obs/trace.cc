#include "obs/trace.h"

#include <cstdio>

namespace pqsda::obs {

namespace {

using Clock = std::chrono::steady_clock;

// The innermost open span of the innermost installed collector, and the
// trace root's start time (span offsets are relative to it). Thread-local:
// concurrent requests on different threads trace independently.
thread_local SpanNode* tl_current = nullptr;
thread_local Clock::time_point tl_base;

int64_t NanosSince(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

const SpanNode* SpanNode::Find(std::string_view span_name) const {
  if (name == span_name) return this;
  for (const auto& child : children) {
    if (const SpanNode* hit = child->Find(span_name)) return hit;
  }
  return nullptr;
}

size_t SpanNode::TotalSpans() const {
  size_t n = 1;
  for (const auto& child : children) n += child->TotalSpans();
  return n;
}

int64_t SpanNode::ChildDurationNs() const {
  int64_t total = 0;
  for (const auto& child : children) total += child->duration_ns;
  return total;
}

std::string SpanNode::Render(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(duration_us()));
  out += name + "  " + buf + "us";
  for (const auto& [k, v] : annotations) {
    out += "  " + k + "=" + v;
  }
  out += "\n";
  for (const auto& child : children) out += child->Render(indent + 1);
  return out;
}

std::string SpanNode::ToJson() const {
  char buf[64];
  std::string out = "{\"name\":\"" + JsonEscape(name) + "\"";
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(start_us()));
  out += ",\"start_us\":";
  out += buf;
  std::snprintf(buf, sizeof(buf), "%lld",
                static_cast<long long>(duration_us()));
  out += ",\"duration_us\":";
  out += buf;
  if (!annotations.empty()) {
    out += ",\"annotations\":{";
    for (size_t i = 0; i < annotations.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(annotations[i].first) + "\":\"" +
             JsonEscape(annotations[i].second) + "\"";
    }
    out += "}";
  }
  if (!children.empty()) {
    out += ",\"children\":[";
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ",";
      out += children[i]->ToJson();
    }
    out += "]";
  }
  out += "}";
  return out;
}

bool TraceActive() { return tl_current != nullptr; }

TraceCollector::TraceCollector(std::string root_name) {
  root_.name = std::move(root_name);
  prev_current_ = tl_current;
  prev_base_ = tl_base;
  start_ = Clock::now();
  tl_base = start_;
  tl_current = &root_;
  installed_ = true;
}

void TraceCollector::Uninstall() {
  if (!installed_) return;
  tl_current = prev_current_;
  tl_base = prev_base_;
  installed_ = false;
}

SpanNode TraceCollector::Take() {
  root_.duration_ns = NanosSince(start_);
  Uninstall();
  return std::move(root_);
}

TraceCollector::~TraceCollector() { Uninstall(); }

TraceSpan::TraceSpan(std::string_view name) {
  if (tl_current == nullptr) return;
  parent_ = tl_current;
  auto node = std::make_unique<SpanNode>();
  node->name.assign(name.data(), name.size());
  start_ = Clock::now();
  node->start_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       start_ - tl_base)
                       .count();
  node_ = node.get();
  parent_->children.push_back(std::move(node));
  tl_current = node_;
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  node_->duration_ns = NanosSince(start_);
  tl_current = parent_;
}

void TraceSpan::Annotate(std::string key, std::string value) {
  if (node_ == nullptr) return;
  node_->annotations.emplace_back(std::move(key), std::move(value));
}

void TraceSpan::Annotate(std::string key, int64_t value) {
  Annotate(std::move(key), std::to_string(value));
}

void TraceSpan::Annotate(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  Annotate(std::move(key), std::string(buf));
}

}  // namespace pqsda::obs
