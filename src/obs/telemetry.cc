#include "obs/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "common/thread_pool.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/retire.h"
#include "obs/stage_profiler.h"
#include "suggest/suggestion_cache.h"

namespace pqsda::obs {

namespace {

constexpr int64_t kSecond = 1'000'000'000;
// The three windows /statusz reports.
constexpr int64_t kWindowsNs[] = {10 * kSecond, 60 * kSecond, 300 * kSecond};
constexpr const char* kWindowNames[] = {"10s", "1m", "5m"};

// The per-stage cumulative latency histograms worth surfacing on /statusz.
constexpr const char* kStageHistograms[] = {
    "pqsda.suggest.expansion_us", "pqsda.suggest.regularization_solve_us",
    "pqsda.suggest.hitting_time_selection_us",
    "pqsda.suggest.personalization_us", "pqsda.suggest.latency_us"};

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::atomic<ServingTelemetry*> g_default{nullptr};
std::mutex g_install_mu;

// Builds the quality surface's options from the telemetry options (shared
// window ring and clock, its own sampling knob).
QualityTelemetryOptions QualityOptionsOf(const ServingTelemetryOptions& o) {
  QualityTelemetryOptions q;
  q.window = o.window;
  q.sample_every = o.quality_sample_every;
  return q;
}

// "?window=10s|1m|5m" on /profilez; defaults to 1m.
int64_t ProfilezWindowNs(const std::string& query) {
  for (size_t w = 0; w < 3; ++w) {
    if (query == std::string("window=") + kWindowNames[w]) return kWindowsNs[w];
  }
  return kWindowsNs[1];
}

}  // namespace

ServingTelemetry::ServingTelemetry(ServingTelemetryOptions options)
    : options_(options),
      explain_sample_every_(options.explain_sample_every),
      start_ns_(options.window.clock
                    ? options.window.clock()
                    : std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count()),
      requests_(options.window),
      errors_(options.window),
      not_found_(options.window),
      cache_hits_(options.window),
      cache_lookups_(options.window),
      shed_(options.window),
      latency_(options.window),
      quality_(QualityOptionsOf(options)),
      explain_store_(options.explain_store_capacity) {
  exemplars_ =
      std::make_unique<ExemplarSlot[]>(latency_.bounds().size() + 1);
}

ServingTelemetry& ServingTelemetry::Default() {
  ServingTelemetry* t = g_default.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::lock_guard<std::mutex> lock(g_install_mu);
  t = g_default.load(std::memory_order_relaxed);
  if (t == nullptr) {
    t = new ServingTelemetry();
    g_default.store(t, std::memory_order_release);
  }
  return *t;
}

ServingTelemetry& ServingTelemetry::Install(ServingTelemetryOptions options) {
  std::lock_guard<std::mutex> lock(g_install_mu);
  auto* t = new ServingTelemetry(std::move(options));
  // The previous instance is never freed: request threads may hold a
  // reference across the swap and windowed recorders must never die under
  // them.
  RetireForever(g_default.exchange(t, std::memory_order_acq_rel));
  return *t;
}

bool ServingTelemetry::SampleTrace() {
  if (options_.trace_sample_every == 0) return false;
  return trace_seq_.fetch_add(1, std::memory_order_relaxed) %
             options_.trace_sample_every ==
         0;
}

bool ServingTelemetry::SampleExplain() {
  const uint64_t every = explain_sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return false;
  return explain_seq_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

void ServingTelemetry::RecordRequest(double latency_us, bool ok,
                                     bool not_found, bool cache_enabled,
                                     bool cache_hit, bool shed,
                                     uint64_t request_id,
                                     uint64_t generation_plus_one) {
  requests_.Add();
  if (shed) {
    shed_.Add();
    return;
  }
  latency_.Record(latency_us);
  if (request_id != 0) {
    const std::vector<double>& bounds = latency_.bounds();
    const size_t bucket = static_cast<size_t>(
        std::upper_bound(bounds.begin(), bounds.end(), latency_us) -
        bounds.begin());
    ExemplarSlot& slot = exemplars_[bucket];
    slot.request_id.store(request_id, std::memory_order_relaxed);
    slot.latency_us.store(static_cast<int64_t>(latency_us),
                          std::memory_order_relaxed);
    slot.at_ns.store(options_.window.clock
                         ? options_.window.clock()
                         : std::chrono::duration_cast<
                               std::chrono::nanoseconds>(
                               std::chrono::steady_clock::now()
                                   .time_since_epoch())
                               .count(),
                     std::memory_order_relaxed);
    slot.generation_plus_one.store(generation_plus_one,
                                   std::memory_order_relaxed);
  }
  if (!ok && !not_found) errors_.Add();
  if (not_found) not_found_.Add();
  if (cache_enabled) {
    cache_lookups_.Add();
    if (cache_hit) cache_hits_.Add();
  }
}

void ServingTelemetry::RecordTrace(uint64_t request_id,
                                   const std::string& query, int64_t total_us,
                                   const SpanNode& trace) {
  TracezEntry entry;
  entry.request_id = request_id;
  entry.total_us = total_us;
  entry.json = "{\"request_id\":" + std::to_string(request_id) +
               ",\"query\":\"" + JsonEscape(query) +
               "\",\"total_us\":" + std::to_string(total_us) +
               ",\"trace\":" + trace.ToJson() + "}";

  std::lock_guard<std::mutex> lock(tracez_mu_);
  if (options_.tracez_recent > 0) {
    recent_.push_back(entry);
    while (recent_.size() > options_.tracez_recent) recent_.pop_front();
  }
  if (options_.tracez_slowest > 0) {
    const bool full = slowest_.size() >= options_.tracez_slowest;
    if (!full || total_us > slowest_.back().total_us) {
      if (full) slowest_.pop_back();
      auto pos = std::upper_bound(
          slowest_.begin(), slowest_.end(), entry,
          [](const TracezEntry& a, const TracezEntry& b) {
            return a.total_us > b.total_us;
          });
      slowest_.insert(pos, std::move(entry));
    }
  }
}

void ServingTelemetry::AttachRequestLog(std::unique_ptr<RequestLog> log) {
  // Ownership transfers to the process (retired like Install's
  // predecessor); the raw pointer is what the request path loads.
  RetireForever(
      request_log_.exchange(log.release(), std::memory_order_acq_rel));
}

void ServingTelemetry::ConfigureSlos(std::vector<SloSpec> specs) {
  SloEngine* engine =
      specs.empty() ? nullptr : new SloEngine(this, std::move(specs));
  // The predecessor is retired, never freed: a scrape thread may be
  // mid-Evaluate.
  RetireForever(slo_.exchange(engine, std::memory_order_acq_rel));
}

std::string ServingTelemetry::AlertzJson() const {
  if (SloEngine* engine = slo()) return engine->AlertzJson();
  return "{\"slos\":[],\"transitions\":[]}";
}

std::string ServingTelemetry::StatuszJson() const {
  MetricsRegistry& reg = MetricsRegistry::Default();
  const int64_t now_ns =
      options_.window.clock
          ? options_.window.clock()
          : std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();

  std::string out = "{\"uptime_sec\":" +
                    Num(static_cast<double>(now_ns - start_ns_) * 1e-9);

  out += ",\"build\":{\"system\":\"pqsda\"";
#if defined(__clang__)
  out += ",\"compiler\":\"clang " + std::to_string(__clang_major__) + "\"";
#elif defined(__GNUC__)
  out += ",\"compiler\":\"gcc " + std::to_string(__GNUC__) + "\"";
#endif
#ifdef NDEBUG
  out += ",\"assertions\":false";
#else
  out += ",\"assertions\":true";
#endif
  out += ",\"queries\":" + Num(reg.GetGauge("pqsda.build.queries").Value());
  out += ",\"sessions\":" + Num(reg.GetGauge("pqsda.build.sessions").Value());
  out += "}";

  out += ",\"windows\":{";
  for (size_t w = 0; w < 3; ++w) {
    if (w > 0) out += ",";
    const int64_t win = kWindowsNs[w];
    const uint64_t reqs = requests_.SumOver(win);
    const uint64_t errs = errors_.SumOver(win);
    const uint64_t nf = not_found_.SumOver(win);
    const uint64_t hits = cache_hits_.SumOver(win);
    const uint64_t lookups = cache_lookups_.SumOver(win);
    const uint64_t shed = shed_.SumOver(win);
    const WindowSnapshot lat = latency_.SnapshotOver(win);
    out += "\"" + std::string(kWindowNames[w]) + "\":{";
    out += "\"requests\":" + std::to_string(reqs);
    out += ",\"qps\":" + Num(requests_.RatePerSec(win));
    out += ",\"shed_rate\":" +
           Num(reqs > 0 ? static_cast<double>(shed) /
                              static_cast<double>(reqs)
                        : 0.0);
    out += ",\"error_rate\":" +
           Num(reqs > 0 ? static_cast<double>(errs) /
                              static_cast<double>(reqs)
                        : 0.0);
    out += ",\"not_found_rate\":" +
           Num(reqs > 0 ? static_cast<double>(nf) / static_cast<double>(reqs)
                        : 0.0);
    out += ",\"cache_hit_rate\":" +
           Num(lookups > 0 ? static_cast<double>(hits) /
                                 static_cast<double>(lookups)
                           : 0.0);
    out += ",\"latency_us\":{\"count\":" + std::to_string(lat.count);
    out += ",\"mean\":" + Num(lat.mean);
    out += ",\"p50\":" + Num(lat.p50);
    out += ",\"p95\":" + Num(lat.p95);
    out += ",\"p99\":" + Num(lat.p99);
    out += "}}";
  }
  out += "}";

  // Exemplars: the most recent request id seen in each latency bucket, the
  // bridge from a percentile spike here to the concrete trace in /tracez or
  // the JSONL request log. An exemplar whose pinned generation has left the
  // replayable snapshot ring (pqsda.ingest.oldest_live_generation) is aged
  // out instead of emitted — a stale id must never advertise a replay
  // against a reclaimed snapshot.
  out += ",\"exemplars\":[";
  {
    const double oldest_live =
        reg.GetGauge("pqsda.ingest.oldest_live_generation").Value();
    const std::vector<double>& bounds = latency_.bounds();
    bool first = true;
    for (size_t b = 0; b <= bounds.size(); ++b) {
      const ExemplarSlot& slot = exemplars_[b];
      const uint64_t id = slot.request_id.load(std::memory_order_relaxed);
      if (id == 0) continue;
      const uint64_t gen_p1 =
          slot.generation_plus_one.load(std::memory_order_relaxed);
      if (gen_p1 != 0 && oldest_live > 0 &&
          static_cast<double>(gen_p1 - 1) < oldest_live) {
        continue;  // generation reclaimed: exemplar aged out
      }
      if (!first) out += ",";
      first = false;
      out += "{\"le\":";
      out += b < bounds.size() ? "\"" + Num(bounds[b]) + "\""
                               : std::string("\"+Inf\"");
      out += ",\"request_id\":" + std::to_string(id);
      out += ",\"latency_us\":" +
             std::to_string(slot.latency_us.load(std::memory_order_relaxed));
      out += ",\"age_sec\":" +
             Num(static_cast<double>(
                     now_ns - slot.at_ns.load(std::memory_order_relaxed)) *
                 1e-9);
      if (gen_p1 != 0) {
        out += ",\"generation\":" + std::to_string(gen_p1 - 1);
        out += ",\"replay\":\"suggest_cli replay " + std::to_string(id) + "\"";
      }
      out += "}";
    }
  }
  out += "]";

  // Pool state is read at scrape time (collect-on-scrape: the hot path pays
  // nothing for these).
  ThreadPool& pool = ThreadPool::Shared();
  const size_t active = pool.ActiveWorkers();
  out += ",\"pool\":{\"size\":" + std::to_string(pool.size());
  out += ",\"active\":" + std::to_string(active);
  out += ",\"queue_depth\":" + std::to_string(pool.QueueDepth());
  out += ",\"utilization\":" +
         Num(pool.size() > 0
                 ? static_cast<double>(active) /
                       static_cast<double>(pool.size())
                 : 0.0);
  out += "}";

  const double cache_size = reg.GetGauge("pqsda.cache.size").Value();
  const double cache_capacity = reg.GetGauge("pqsda.cache.capacity").Value();
  out += ",\"cache\":{\"size\":" + Num(cache_size);
  out += ",\"capacity\":" + Num(cache_capacity);
  out += ",\"occupancy\":" +
         Num(cache_capacity > 0 ? cache_size / cache_capacity : 0.0);
  out += ",\"hits_total\":" +
         std::to_string(reg.GetCounter("pqsda.cache.hits_total").Value());
  out += ",\"misses_total\":" +
         std::to_string(reg.GetCounter("pqsda.cache.misses_total").Value());
  out += ",\"evictions_total\":" +
         std::to_string(reg.GetCounter("pqsda.cache.evictions_total").Value());
  out += ",\"stale_invalidations_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.stale_invalidations_total").Value());
  out += ",\"mismatch_misses_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.mismatch_misses_total").Value());
  out += ",\"ghost_hits_total\":" +
         std::to_string(reg.GetCounter("pqsda.cache.ghost_hits_total").Value());
  out += ",\"warmup\":{\"replayed_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.warmup_replayed_total").Value());
  out += ",\"hits_total\":" +
         std::to_string(reg.GetCounter("pqsda.cache.warmup_hits_total").Value());
  out += ",\"filled_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.warmup_filled_total").Value());
  out += "}";
  out += ",\"negative\":{\"size\":" +
         Num(reg.GetGauge("pqsda.cache.negative_size").Value());
  out += ",\"hits_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.negative_hits_total").Value());
  out += ",\"misses_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.negative_misses_total").Value());
  out += ",\"insertions_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.negative_insertions_total").Value());
  out += ",\"invalidations_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.cache.negative_invalidations_total")
                 .Value());
  out += "}";
  // Per-instance replacement-policy state (policy kind, occupancy, ARC/CAR
  // list sizes and adaptation target) for every live cache.
  out += ",\"instances\":" + SuggestionCachesStatusJson();
  out += "}";

  out += ",\"stages\":{";
  for (size_t s = 0; s < sizeof(kStageHistograms) / sizeof(char*); ++s) {
    if (s > 0) out += ",";
    Histogram& h = reg.GetHistogram(kStageHistograms[s]);
    out += "\"" + std::string(kStageHistograms[s]) + "\":{";
    out += "\"count\":" + std::to_string(h.Count());
    out += ",\"p50\":" + Num(h.Quantile(0.50));
    out += ",\"p95\":" + Num(h.Quantile(0.95));
    out += ",\"p99\":" + Num(h.Quantile(0.99));
    out += "}";
  }
  out += "}";

  // Online quality over the last minute (sampled served lists; see
  // QualityTelemetry) and the SLO state machines, when configured.
  out += ",\"quality\":" + quality_.StatuszSection(kWindowsNs[1]);
  if (SloEngine* engine = slo()) {
    out += ",\"slo\":" + engine->StatuszSection();
  }

  // Overload-hardening state: shed/admission totals and how many requests
  // each degradation-ladder rung served since process start.
  out += ",\"robust\":{";
  out += "\"admitted_total\":" +
         std::to_string(reg.GetCounter("pqsda.robust.admitted_total").Value());
  out += ",\"shed_total\":" +
         std::to_string(reg.GetCounter("pqsda.robust.shed_total").Value());
  out += ",\"rungs\":{";
  out += "\"full\":" +
         std::to_string(reg.GetCounter("pqsda.robust.rung_full_total").Value());
  out += ",\"truncated_solve\":" +
         std::to_string(
             reg.GetCounter("pqsda.robust.rung_truncated_total").Value());
  out += ",\"walk_only\":" +
         std::to_string(
             reg.GetCounter("pqsda.robust.rung_walk_only_total").Value());
  out += ",\"cache_only\":" +
         std::to_string(
             reg.GetCounter("pqsda.robust.rung_cache_only_total").Value());
  out += "}";
  out += ",\"deadline_exceeded_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.robust.deadline_exceeded_total").Value());
  out += ",\"cancelled_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.robust.cancelled_total").Value());
  out += ",\"nonconverged_served_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.robust.nonconverged_served_total").Value());
  out += "}";

  // Live-index state: which generation is serving, how stale it is, and how
  // much ingested traffic is waiting for the next rebuild. All read from the
  // pqsda.ingest.* registry surface at scrape time (an index-less process —
  // e.g. a unit test exercising only the exporter — reports zeros).
  const double last_swap_sec =
      reg.GetGauge("pqsda.ingest.last_swap_monotonic_sec").Value();
  out += ",\"index\":{";
  out += "\"generation\":" +
         Num(reg.GetGauge("pqsda.ingest.generation").Value());
  out += ",\"age_sec\":" +
         Num(last_swap_sec > 0
                 ? static_cast<double>(now_ns) * 1e-9 - last_swap_sec
                 : 0.0);
  out += ",\"records\":" +
         Num(reg.GetGauge("pqsda.ingest.index_records").Value());
  out += ",\"delta_depth\":" +
         Num(reg.GetGauge("pqsda.ingest.delta_depth").Value());
  out += ",\"last_rebuild_us\":" +
         Num(reg.GetGauge("pqsda.ingest.last_rebuild_us").Value());
  out += ",\"ingested_total\":" +
         std::to_string(reg.GetCounter("pqsda.ingest.records_total").Value());
  out += ",\"dropped_total\":" +
         std::to_string(reg.GetCounter("pqsda.ingest.dropped_total").Value());
  out += ",\"rebuilds_total\":" +
         std::to_string(reg.GetCounter("pqsda.ingest.rebuilds_total").Value());
  out += ",\"rebuild_failures_total\":" +
         std::to_string(
             reg.GetCounter("pqsda.ingest.rebuild_failures_total").Value());
  out += "}";

  // Sharded serving (present only when a ShardedEngine has published its
  // shard count): per-shard traffic, degradation and generation, plus the
  // coordinator-level partial-merge total. All names are stable
  // pqsda.shard.<i>.* registry entries so the section costs nothing when
  // unsharded.
  const auto shard_count =
      static_cast<size_t>(reg.GetGauge("pqsda.shard.count").Value());
  if (shard_count > 0) {
    out += ",\"shards\":{\"count\":" + std::to_string(shard_count);
    out += ",\"partial_merges_total\":" +
           std::to_string(
               reg.GetCounter("pqsda.sharded.partial_merges_total").Value());
    out += ",\"replicated_hot_rows\":" +
           Num(reg.GetGauge("pqsda.shard.replicated_hot_rows").Value());
    out += ",\"per_shard\":[";
    for (size_t s = 0; s < shard_count; ++s) {
      const std::string prefix = "pqsda.shard." + std::to_string(s) + ".";
      if (s > 0) out += ",";
      out += "{\"shard\":" + std::to_string(s);
      out += ",\"generation\":" +
             Num(reg.GetGauge(prefix + "generation").Value());
      out += ",\"requests_total\":" +
             std::to_string(reg.GetCounter(prefix + "requests_total").Value());
      out += ",\"fetches_total\":" +
             std::to_string(reg.GetCounter(prefix + "fetches_total").Value());
      out += ",\"shed_total\":" +
             std::to_string(reg.GetCounter(prefix + "shed_total").Value());
      out += ",\"degraded_total\":" +
             std::to_string(reg.GetCounter(prefix + "degraded_total").Value());
      out += ",\"deadline_total\":" +
             std::to_string(reg.GetCounter(prefix + "deadline_total").Value());
      out += "}";
    }
    out += "]}";
  }

  out += ",\"requests\":{\"total\":" +
         std::to_string(reg.GetCounter("pqsda.suggest.requests_total").Value());
  out += ",\"errors\":" +
         std::to_string(reg.GetCounter("pqsda.suggest.errors_total").Value());
  out += ",\"not_found\":" +
         std::to_string(
             reg.GetCounter("pqsda.suggest.not_found_total").Value());
  if (RequestLog* log = request_log()) {
    out += ",\"log\":{\"seen\":" + std::to_string(log->seen());
    out += ",\"accepted\":" + std::to_string(log->accepted());
    out += ",\"written\":" + std::to_string(log->written());
    out += ",\"dropped\":" + std::to_string(log->dropped());
    out += "}";
  }
  out += "}}";
  return out;
}

std::string ServingTelemetry::ExplainzJson(uint64_t request_id,
                                           bool has_id) const {
  if (has_id) {
    std::shared_ptr<const ExplainRecord> record =
        explain_store_.Find(request_id);
    return record != nullptr ? record->ToJson() : std::string();
  }
  std::string out = "{\"sample_every\":" +
                    std::to_string(explain_sample_every()) +
                    ",\"capacity\":" +
                    std::to_string(explain_store_.capacity()) +
                    ",\"records\":[";
  const std::vector<std::pair<uint64_t, std::string>> index =
      explain_store_.Index();
  for (size_t i = 0; i < index.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"request_id\":" + std::to_string(index[i].first) +
           ",\"query\":\"" + JsonEscape(index[i].second) + "\"}";
  }
  out += "]}";
  return out;
}

std::string ServingTelemetry::TracezJson() const {
  std::lock_guard<std::mutex> lock(tracez_mu_);
  std::string out = "{\"recent\":[";
  // Newest first, matching what an operator wants to see at the top.
  for (auto it = recent_.rbegin(); it != recent_.rend(); ++it) {
    if (it != recent_.rbegin()) out += ",";
    out += it->json;
  }
  out += "],\"slowest\":[";
  for (size_t i = 0; i < slowest_.size(); ++i) {
    if (i > 0) out += ",";
    out += slowest_[i].json;
  }
  out += "]}";
  return out;
}

void ServingTelemetry::RegisterEndpoints(HttpExporter* exporter) {
  exporter->Route("/healthz", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "ok\n";
    return response;
  });
  exporter->Route("/metrics", [](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = MetricsRegistry::Default().ExportPrometheus();
    return response;
  });
  exporter->Route("/statusz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StatuszJson();
    return response;
  });
  exporter->Route("/tracez", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = TracezJson();
    return response;
  });
  exporter->Route("/profilez", [](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = StageProfiler::Default().ProfilezJson(
        ProfilezWindowNs(request.query));
    return response;
  });
  exporter->Route("/alertz", [this](const HttpRequest&) {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = AlertzJson();
    return response;
  });
  exporter->Route("/explainz", [this](const HttpRequest& request) {
    HttpResponse response;
    response.content_type = "application/json";
    // "?id=<request_id>" looks up one record; anything else after "id=" that
    // fails to parse as a full decimal id answers 404 (malformed), as does an
    // unknown or evicted id.
    if (request.query.rfind("id=", 0) == 0) {
      const std::string value = request.query.substr(3);
      uint64_t id = 0;
      bool valid = !value.empty();
      for (char c : value) {
        if (c < '0' || c > '9') {
          valid = false;
          break;
        }
        id = id * 10 + static_cast<uint64_t>(c - '0');
      }
      std::string body =
          valid ? ExplainzJson(id, /*has_id=*/true) : std::string();
      if (body.empty()) {
        response.status = 404;
        response.body = "{\"error\":\"unknown or malformed id\"}";
      } else {
        response.body = std::move(body);
      }
      return response;
    }
    response.body = ExplainzJson(0, /*has_id=*/false);
    return response;
  });
}

}  // namespace pqsda::obs
