#ifndef PQSDA_OBS_QUALITY_H_
#define PQSDA_OBS_QUALITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "obs/sliding_window.h"

namespace pqsda::obs {

/// Simpson's-index diversity of a multiset given its per-type counts:
/// 1 - sum n_i (n_i - 1) / (N (N - 1)), the probability two draws without
/// replacement are different types. 0 when N < 2 (a singleton list has no
/// pairwise diversity to speak of).
double SimpsonDiversityFromCounts(const std::vector<uint64_t>& counts);

/// Sampling and windowing policy for the online quality surface.
struct QualityTelemetryOptions {
  /// Epoch ring (and injectable clock) shared with the rest of telemetry.
  WindowOptions window;
  /// Head-sample 1 of every N served lists (1 = all, 0 = disabled). The
  /// measurement runs after the request's latency was recorded, so even a
  /// sampled request's measured latency is unaffected.
  uint64_t sample_every = 4;
};

/// Windowed online quality telemetry over served suggestion lists:
/// Simpson's-index term diversity and candidate-pool coverage (returned/k),
/// split by degradation rung and by cache hit/miss — the live answer to
/// "what is the PR 4 ladder costing us in quality right now", which the
/// offline Eq. 32/33 eval can only answer after the fact.
///
/// Record() is a shared-lock acquire plus relaxed atomic adds into the
/// current epoch's (rung, hit) cell; snapshots merge the in-window epochs.
class QualityTelemetry {
 public:
  static constexpr size_t kRungs = 4;

  explicit QualityTelemetry(QualityTelemetryOptions options = {});

  /// Head-sampling decision for measuring this served list.
  bool Sample();

  /// Records one measured list under (rung, cache_hit).
  void Record(size_t rung, bool cache_hit, double simpson, double coverage);

  struct CellSnapshot {
    uint64_t samples = 0;
    double simpson_mean = 0.0;
    double coverage_mean = 0.0;
  };
  /// Windowed means for one (rung, cache_hit) cell.
  CellSnapshot SnapshotCell(size_t rung, bool cache_hit,
                            int64_t window_ns) const;

  /// JSON object for the "quality" section of /statusz: per-rung hit/miss
  /// cells with windowed sample counts and means (cells with no samples in
  /// the window are omitted).
  std::string StatuszSection(int64_t window_ns) const;

  const QualityTelemetryOptions& options() const { return options_; }

 private:
  struct Cell {
    std::atomic<uint64_t> samples{0};
    std::atomic<double> simpson_sum{0.0};
    std::atomic<double> coverage_sum{0.0};
  };
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    Cell cells[kRungs][2];  // [rung][cache_hit]
  };

  int64_t NowNs() const;

  QualityTelemetryOptions options_;
  std::atomic<uint64_t> seq_{0};
  mutable std::shared_mutex mu_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_QUALITY_H_
