#include "obs/http_exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace pqsda::obs {

namespace {

// Scrape requests are tiny; anything larger than this is not ours.
constexpr size_t kMaxRequestBytes = 8192;

void SetRecvTimeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

std::string RenderResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

// Reads until the end of the header block ("\r\n\r\n") or the size cap; the
// telemetry endpoints never need a body.
bool ReadRequestHead(int fd, std::string* head) {
  char buf[1024];
  while (head->size() < kMaxRequestBytes) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    head->append(buf, static_cast<size_t>(n));
    if (head->find("\r\n\r\n") != std::string::npos) return true;
    // Permit bare-LF clients (curl never sends these, but be lenient).
    if (head->find("\n\n") != std::string::npos) return true;
  }
  return false;
}

bool ParseRequestLine(const std::string& head, HttpRequest* request) {
  const size_t eol = head.find_first_of("\r\n");
  if (eol == std::string::npos) return false;
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request->query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request->path = std::move(target);
  return !request->path.empty() && request->path[0] == '/';
}

}  // namespace

HttpExporter::HttpExporter() = default;

HttpExporter::~HttpExporter() { Stop(); }

void HttpExporter::Route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

Status HttpExporter::Start(int port) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("exporter already running");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind 127.0.0.1:" + std::to_string(port) + ": " +
                           err);
  }
  if (listen(listen_fd_, /*backlog=*/32) != 0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("listen: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { ServeLoop(); });
  return Status::OK();
}

void HttpExporter::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // shutdown() unblocks the accept(); the loop then observes running_ ==
  // false and exits.
  shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
}

void HttpExporter::ServeLoop() {
  while (running_.load(std::memory_order_acquire)) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      continue;  // transient accept failure (EINTR, client gone)
    }
    HandleConnection(fd);
    close(fd);
  }
}

void HttpExporter::HandleConnection(int fd) {
  SetRecvTimeout(fd, 2);
  std::string head;
  HttpRequest request;
  HttpResponse response;
  if (!ReadRequestHead(fd, &head) || !ParseRequestLine(head, &request)) {
    response.status = 400;
    response.body = "bad request\n";
  } else if (request.method != "GET" && request.method != "HEAD") {
    response.status = 405;
    response.body = "method not allowed\n";
  } else {
    auto it = routes_.find(request.path);
    if (it == routes_.end()) {
      response.status = 404;
      response.body = "not found: " + request.path + "\n";
    } else {
      response = it->second(request);
    }
  }
  if (request.method == "HEAD") response.body.clear();
  const std::string wire = RenderResponse(response);
  SendAll(fd, wire.data(), wire.size());
}

StatusOr<std::string> HttpGet(int port, const std::string& path,
                              int* status_out) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::IoError("connect 127.0.0.1:" + std::to_string(port) +
                           ": " + err);
  }
  SetRecvTimeout(fd, 5);
  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!SendAll(fd, request.data(), request.size())) {
    close(fd);
    return Status::IoError("send failed");
  }
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("malformed response");
  }
  if (status_out != nullptr) {
    // "HTTP/1.1 200 OK"
    const size_t sp = raw.find(' ');
    *status_out =
        sp != std::string::npos ? std::atoi(raw.c_str() + sp + 1) : 0;
  }
  return raw.substr(header_end + 4);
}

}  // namespace pqsda::obs
