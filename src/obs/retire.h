#ifndef PQSDA_OBS_RETIRE_H_
#define PQSDA_OBS_RETIRE_H_

namespace pqsda::obs {

/// Keeps `p` reachable for the life of the process. The observability
/// singletons replace themselves by pointer swap and never free the
/// predecessor — request threads may still hold references across the
/// swap, and windowed recorders must never die under them. Parking the
/// retired instance here makes that lifetime explicit (and visible to
/// LeakSanitizer as reachable rather than leaked). Null is a no-op.
void RetireForever(void* p);

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_RETIRE_H_
