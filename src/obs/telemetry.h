#ifndef PQSDA_OBS_TELEMETRY_H_
#define PQSDA_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/quality.h"
#include "obs/request_log.h"
#include "obs/sliding_window.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace pqsda::obs {

class HttpExporter;

/// Policy knobs of the live serving-telemetry surface.
struct ServingTelemetryOptions {
  /// Epoch ring shared by every windowed aggregate (and the clock the whole
  /// surface reads — tests inject a fake one here).
  WindowOptions window;
  /// Trace 1 of every N requests into the /tracez ring (head sampling, like
  /// the request log). 0 disables sampling; requests that opt into
  /// SuggestStats are always traced and still feed the ring.
  uint64_t trace_sample_every = 0;
  /// /tracez keeps this many most-recent and this many slowest traces.
  size_t tracez_recent = 16;
  size_t tracez_slowest = 16;
  /// Online quality telemetry samples 1 of every N served lists (1 = all,
  /// 0 = disabled); see QualityTelemetry.
  uint64_t quality_sample_every = 4;
};

/// Process-wide live serving telemetry: windowed request rates and latency
/// percentiles (10s / 1m / 5m), a ring of recent + slowest request traces,
/// and an optional attached RequestLog. The cumulative MetricsRegistry says
/// what happened since the process started; this says what is happening
/// *now* — the two together are the /metrics + /statusz + /tracez surface.
///
/// Recording methods are thread-safe and cheap (shared-lock + relaxed
/// atomics); snapshot methods build JSON under internal locks and are meant
/// for scrape-rate callers.
class ServingTelemetry {
 public:
  explicit ServingTelemetry(ServingTelemetryOptions options = {});

  /// The instance the engine's request path records into. Created on first
  /// use with default options (windows on, trace sampling off, no request
  /// log).
  static ServingTelemetry& Default();
  /// Replaces Default() (serve mode and tests install a configured
  /// instance; the previous one is intentionally leaked — references cached
  /// by request threads must stay valid).
  static ServingTelemetry& Install(ServingTelemetryOptions options);

  /// Monotonic per-process request id.
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Head-sampling decision for tracing this request into /tracez.
  bool SampleTrace();

  /// Records one finished request into the sliding windows. A shed request
  /// (admission control answered kUnavailable before any pipeline work)
  /// feeds the shed window only — its near-zero latency would poison the
  /// percentiles, and it is neither an error nor traffic served.
  /// A nonzero `request_id` additionally stamps the request as the exemplar
  /// of its latency bucket, so /statusz can link a percentile spike to the
  /// concrete request in /tracez or the request log.
  void RecordRequest(double latency_us, bool ok, bool not_found,
                     bool cache_enabled, bool cache_hit, bool shed = false,
                     uint64_t request_id = 0);

  /// Stores a finished request's trace in the /tracez ring (rendered to
  /// JSON once, here, so the ring holds no live SpanNode trees).
  void RecordTrace(uint64_t request_id, const std::string& query,
                   int64_t total_us, const SpanNode& trace);

  /// Attaches (or replaces, or detaches with null) the sampled request log.
  void AttachRequestLog(std::unique_ptr<RequestLog> log);
  /// Null when no log is attached. The pointer stays valid for the process
  /// lifetime once attached (replacement leaks the predecessor by design —
  /// same contract as Install).
  RequestLog* request_log() const {
    return request_log_.load(std::memory_order_acquire);
  }

  /// Windowed snapshot as JSON: per-window qps / error rate / cache-hit
  /// rate / latency percentiles, per-stage cumulative latencies, pool
  /// queue depth and utilization, cache occupancy, request-log accounting,
  /// and engine build info.
  std::string StatuszJson() const;

  /// {"recent":[...],"slowest":[...]} of rendered trace trees.
  std::string TracezJson() const;

  /// Installs (or replaces) the burn-rate SLO engine over this surface's
  /// windows; the predecessor leaks deliberately (same contract as
  /// Install). An empty spec list removes SLO tracking.
  void ConfigureSlos(std::vector<SloSpec> specs);
  /// Null until ConfigureSlos installs an engine.
  SloEngine* slo() const { return slo_.load(std::memory_order_acquire); }
  /// /alertz body: the SLO engine's state, or {"slos":[],...} when none is
  /// configured.
  std::string AlertzJson() const;

  /// Registers /metrics, /healthz, /statusz, /tracez, /profilez and
  /// /alertz on `exporter`.
  void RegisterEndpoints(HttpExporter* exporter);

  const ServingTelemetryOptions& options() const { return options_; }
  WindowedRate& requests() { return requests_; }
  WindowedRate& errors() { return errors_; }
  WindowedRate& shed() { return shed_; }
  SlidingWindowHistogram& latency() { return latency_; }
  QualityTelemetry& quality() { return quality_; }

 private:
  struct TracezEntry {
    uint64_t request_id = 0;
    int64_t total_us = 0;
    std::string json;  // rendered SpanNode tree + id/query header
  };

  /// Most recent request landing in one latency bucket. Torn reads across
  /// the three fields are possible and acceptable — exemplars are debugging
  /// breadcrumbs, not accounting.
  struct ExemplarSlot {
    std::atomic<uint64_t> request_id{0};
    std::atomic<int64_t> latency_us{0};
    std::atomic<int64_t> at_ns{0};
  };

  ServingTelemetryOptions options_;
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<uint64_t> trace_seq_{0};
  const int64_t start_ns_;

  WindowedRate requests_;
  WindowedRate errors_;
  WindowedRate not_found_;
  WindowedRate cache_hits_;
  WindowedRate cache_lookups_;
  WindowedRate shed_;
  SlidingWindowHistogram latency_;
  QualityTelemetry quality_;
  /// One exemplar per latency bucket (bounds().size() + 1 overflow).
  std::unique_ptr<ExemplarSlot[]> exemplars_;

  mutable std::mutex tracez_mu_;
  std::deque<TracezEntry> recent_;    // newest at the back
  std::vector<TracezEntry> slowest_;  // sorted by total_us descending

  std::atomic<RequestLog*> request_log_{nullptr};
  std::atomic<SloEngine*> slo_{nullptr};
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_TELEMETRY_H_
