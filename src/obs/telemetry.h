#ifndef PQSDA_OBS_TELEMETRY_H_
#define PQSDA_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/explain.h"
#include "obs/quality.h"
#include "obs/request_log.h"
#include "obs/sliding_window.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace pqsda::obs {

class HttpExporter;

/// Policy knobs of the live serving-telemetry surface.
struct ServingTelemetryOptions {
  /// Epoch ring shared by every windowed aggregate (and the clock the whole
  /// surface reads — tests inject a fake one here).
  WindowOptions window;
  /// Trace 1 of every N requests into the /tracez ring (head sampling, like
  /// the request log). 0 disables sampling; requests that opt into
  /// SuggestStats are always traced and still feed the ring.
  uint64_t trace_sample_every = 0;
  /// /tracez keeps this many most-recent and this many slowest traces.
  size_t tracez_recent = 16;
  size_t tracez_slowest = 16;
  /// Online quality telemetry samples 1 of every N served lists (1 = all,
  /// 0 = disabled); see QualityTelemetry.
  uint64_t quality_sample_every = 4;
  /// Collect a full ExplainRecord (per-candidate score attribution, see
  /// obs/explain.h) for 1 of every N requests into the /explainz ring
  /// (1 = all, 0 = disabled). Separate from trace sampling: explain pays for
  /// extra per-chain hitting-time sweeps on the sampled request, so its
  /// default is off and serve mode opts in explicitly.
  uint64_t explain_sample_every = 0;
  /// How many explain records /explainz retains (newest win).
  size_t explain_store_capacity = 64;
};

/// Process-wide live serving telemetry: windowed request rates and latency
/// percentiles (10s / 1m / 5m), a ring of recent + slowest request traces,
/// and an optional attached RequestLog. The cumulative MetricsRegistry says
/// what happened since the process started; this says what is happening
/// *now* — the two together are the /metrics + /statusz + /tracez surface.
///
/// Recording methods are thread-safe and cheap (shared-lock + relaxed
/// atomics); snapshot methods build JSON under internal locks and are meant
/// for scrape-rate callers.
class ServingTelemetry {
 public:
  explicit ServingTelemetry(ServingTelemetryOptions options = {});

  /// The instance the engine's request path records into. Created on first
  /// use with default options (windows on, trace sampling off, no request
  /// log).
  static ServingTelemetry& Default();
  /// Replaces Default() (serve mode and tests install a configured
  /// instance; the previous one is intentionally leaked — references cached
  /// by request threads must stay valid).
  static ServingTelemetry& Install(ServingTelemetryOptions options);

  /// Monotonic per-process request id.
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Head-sampling decision for tracing this request into /tracez.
  bool SampleTrace();

  /// Head-sampling decision for collecting an ExplainRecord into /explainz.
  bool SampleExplain();
  /// Adjusts the explain sampling rate at runtime (0 disables). Used by the
  /// CLI's --explain_every flag and the bench's on/off overhead sweep.
  void SetExplainSampleEvery(uint64_t every) {
    explain_sample_every_.store(every, std::memory_order_relaxed);
  }
  uint64_t explain_sample_every() const {
    return explain_sample_every_.load(std::memory_order_relaxed);
  }
  /// The /explainz ring of recent explain records.
  ExplainStore& explain_store() { return explain_store_; }
  const ExplainStore& explain_store() const { return explain_store_; }
  /// /explainz body: without `id=` an index of stored records; with
  /// `request_id` the record's full JSON, or "" when unknown (the route
  /// answers 404).
  std::string ExplainzJson(uint64_t request_id, bool has_id) const;

  /// Records one finished request into the sliding windows. A shed request
  /// (admission control answered kUnavailable before any pipeline work)
  /// feeds the shed window only — its near-zero latency would poison the
  /// percentiles, and it is neither an error nor traffic served.
  /// A nonzero `request_id` additionally stamps the request as the exemplar
  /// of its latency bucket, so /statusz can link a percentile spike to the
  /// concrete request in /tracez or the request log. `generation_plus_one`
  /// is the pinned index generation shifted by one so the real generation 0
  /// stays representable; 0 means unknown. Exemplars with a known generation
  /// carry a replay link and age out of /statusz once that generation leaves
  /// the replayable snapshot ring.
  void RecordRequest(double latency_us, bool ok, bool not_found,
                     bool cache_enabled, bool cache_hit, bool shed = false,
                     uint64_t request_id = 0, uint64_t generation_plus_one = 0);

  /// Stores a finished request's trace in the /tracez ring (rendered to
  /// JSON once, here, so the ring holds no live SpanNode trees).
  void RecordTrace(uint64_t request_id, const std::string& query,
                   int64_t total_us, const SpanNode& trace);

  /// Attaches (or replaces, or detaches with null) the sampled request log.
  void AttachRequestLog(std::unique_ptr<RequestLog> log);
  /// Null when no log is attached. The pointer stays valid for the process
  /// lifetime once attached (replacement leaks the predecessor by design —
  /// same contract as Install).
  RequestLog* request_log() const {
    return request_log_.load(std::memory_order_acquire);
  }

  /// Windowed snapshot as JSON: per-window qps / error rate / cache-hit
  /// rate / latency percentiles, per-stage cumulative latencies, pool
  /// queue depth and utilization, cache occupancy, request-log accounting,
  /// and engine build info.
  std::string StatuszJson() const;

  /// {"recent":[...],"slowest":[...]} of rendered trace trees.
  std::string TracezJson() const;

  /// Installs (or replaces) the burn-rate SLO engine over this surface's
  /// windows; the predecessor leaks deliberately (same contract as
  /// Install). An empty spec list removes SLO tracking.
  void ConfigureSlos(std::vector<SloSpec> specs);
  /// Null until ConfigureSlos installs an engine.
  SloEngine* slo() const { return slo_.load(std::memory_order_acquire); }
  /// /alertz body: the SLO engine's state, or {"slos":[],...} when none is
  /// configured.
  std::string AlertzJson() const;

  /// Registers /metrics, /healthz, /statusz, /tracez, /profilez, /alertz
  /// and /explainz on `exporter`.
  void RegisterEndpoints(HttpExporter* exporter);

  const ServingTelemetryOptions& options() const { return options_; }
  WindowedRate& requests() { return requests_; }
  WindowedRate& errors() { return errors_; }
  WindowedRate& shed() { return shed_; }
  SlidingWindowHistogram& latency() { return latency_; }
  QualityTelemetry& quality() { return quality_; }

 private:
  struct TracezEntry {
    uint64_t request_id = 0;
    int64_t total_us = 0;
    std::string json;  // rendered SpanNode tree + id/query header
  };

  /// Most recent request landing in one latency bucket. Torn reads across
  /// the three fields are possible and acceptable — exemplars are debugging
  /// breadcrumbs, not accounting.
  struct ExemplarSlot {
    std::atomic<uint64_t> request_id{0};
    std::atomic<int64_t> latency_us{0};
    std::atomic<int64_t> at_ns{0};
    /// Pinned index generation + 1; 0 means unknown (callers predating the
    /// generation plumbing), which never ages out.
    std::atomic<uint64_t> generation_plus_one{0};
  };

  ServingTelemetryOptions options_;
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<uint64_t> trace_seq_{0};
  std::atomic<uint64_t> explain_seq_{0};
  /// Runtime-adjustable copy of options_.explain_sample_every.
  std::atomic<uint64_t> explain_sample_every_;
  const int64_t start_ns_;

  WindowedRate requests_;
  WindowedRate errors_;
  WindowedRate not_found_;
  WindowedRate cache_hits_;
  WindowedRate cache_lookups_;
  WindowedRate shed_;
  SlidingWindowHistogram latency_;
  QualityTelemetry quality_;
  ExplainStore explain_store_;
  /// One exemplar per latency bucket (bounds().size() + 1 overflow).
  std::unique_ptr<ExemplarSlot[]> exemplars_;

  mutable std::mutex tracez_mu_;
  std::deque<TracezEntry> recent_;    // newest at the back
  std::vector<TracezEntry> slowest_;  // sorted by total_us descending

  std::atomic<RequestLog*> request_log_{nullptr};
  std::atomic<SloEngine*> slo_{nullptr};
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_TELEMETRY_H_
