#ifndef PQSDA_OBS_SLO_H_
#define PQSDA_OBS_SLO_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace pqsda::obs {

class ServingTelemetry;

/// What a serving SLO counts as a bad event.
enum class SloKind {
  /// Bad = internal errors (NotFound is routine traffic, shed has its own
  /// kind). Objective 0.999 reads "99.9% of requests error-free".
  kAvailability,
  /// Bad = admitted requests slower than latency_threshold_us, at histogram
  /// bucket resolution. Objective 0.99 with threshold 200ms reads "p99 of
  /// admitted requests under 200ms".
  kLatency,
  /// Bad = requests shed by admission control.
  kShedRate,
};

const char* SloKindName(SloKind kind);

/// One declarative serving objective, evaluated with the classic
/// multi-window burn rate: burn = bad_fraction / (1 - objective), i.e. how
/// many times faster than "exactly on objective" the error budget is being
/// spent. An alert needs the fast AND the slow window burning (fast alone
/// is a blip; slow alone is an old wound already healing).
struct SloSpec {
  std::string name;  // defaults to the kind name when parsed
  SloKind kind = SloKind::kAvailability;
  /// Target good fraction in [0, 1); 1 - objective is the error budget.
  double objective = 0.999;
  /// kLatency only: the "too slow" threshold.
  double latency_threshold_us = 0.0;
  int64_t fast_window_ns = 60LL * 1'000'000'000;   // 1m
  int64_t slow_window_ns = 300LL * 1'000'000'000;  // 5m
  /// Both windows' burn must exceed this to trip the alert.
  double burn_threshold = 4.0;
};

/// Alert lifecycle of one SLO:
///   healthy  --(fast & slow burn > threshold)-->  burning
///   burning  --(fast burn < 1: budget no longer being spent)--> resolved
///   resolved --(slow burn < 1)--> healthy, or back to burning on re-trip.
/// The resolved limbo keeps the alert visible while the slow window still
/// remembers the incident.
enum class SloAlertState { kHealthy, kBurning, kResolved };

const char* SloAlertStateName(SloAlertState state);

/// Point-in-time evaluation of one SLO's state machine.
struct SloStatus {
  SloSpec spec;
  SloAlertState state = SloAlertState::kHealthy;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  uint64_t fast_bad = 0;
  uint64_t fast_total = 0;
  uint64_t slow_bad = 0;
  uint64_t slow_total = 0;
  /// Clock reading (telemetry time base) when the current state was entered.
  int64_t since_ns = 0;
  /// healthy->burning transitions since configuration.
  uint64_t trips = 0;
};

/// Parses one spec of the form "kind:objective[:threshold_us]" with kind in
/// {availability, latency, shed_rate}, e.g. "availability:0.999" or
/// "latency:0.99:200000". InvalidArgument on malformed input.
StatusOr<SloSpec> ParseSloSpec(const std::string& text);

/// Parses a comma-separated list of specs ("" yields an empty list).
StatusOr<std::vector<SloSpec>> ParseSloSpecs(const std::string& text);

/// Burn-rate alerting over the telemetry windows. Pull-based: every
/// Evaluate (scrape of /alertz or /statusz) samples the fast and slow
/// windows from the live WindowedRate/SlidingWindowHistogram rings and
/// advances the per-SLO state machines; nothing runs between scrapes, and
/// the request path pays nothing for SLO tracking.
class SloEngine {
 public:
  /// `telemetry` must outlive the engine (both are process-lifetime
  /// objects; see ServingTelemetry::Install).
  SloEngine(ServingTelemetry* telemetry, std::vector<SloSpec> specs);

  /// Evaluates every state machine at the current clock reading and
  /// returns the statuses.
  std::vector<SloStatus> Evaluate();

  /// {"slos":[...],"transitions":[...]} — full state for /alertz, newest
  /// transitions first.
  std::string AlertzJson();

  /// Compact array for the "slo" section of /statusz.
  std::string StatuszSection();

  size_t num_slos() const { return machines_.size(); }

 private:
  struct Machine {
    SloSpec spec;
    SloAlertState state = SloAlertState::kHealthy;
    int64_t since_ns = 0;
    uint64_t trips = 0;
  };
  struct WindowSample {
    uint64_t total = 0;
    uint64_t bad = 0;
  };

  WindowSample SampleWindow(const SloSpec& spec, int64_t window_ns) const;
  std::vector<SloStatus> EvaluateLocked(int64_t now_ns);

  ServingTelemetry* telemetry_;
  std::mutex mu_;
  std::vector<Machine> machines_;
  /// Rendered transition records, newest at the back, capped.
  std::deque<std::string> transitions_;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_SLO_H_
