#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pqsda::obs {

namespace {

// 0 = counter, 1 = gauge, 2 = histogram.
constexpr int kCounter = 0;
constexpr int kGauge = 1;
constexpr int kHistogram = 2;

// Integers render without a decimal point so golden exports are stable
// across platforms; everything else uses %.6g.
std::string FormatNumber(double v) {
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::Observe(double value) {
  size_t b = std::upper_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  // upper_bound gives the first bound strictly greater; bounds are
  // inclusive, so a value exactly on a bound belongs to that bucket.
  if (b > 0 && value == bounds_[b - 1]) --b;
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::Mean() const {
  uint64_t n = Count();
  return n == 0 ? 0.0 : Sum() / static_cast<double>(n);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double QuantileFromBucketCounts(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& counts,
                                double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      if (i == bounds.size()) return bounds.empty() ? 0.0 : bounds.back();
      double lo = i == 0 ? 0.0 : bounds[i - 1];
      double hi = bounds[i];
      double frac = (target - cum) / static_cast<double>(counts[i]);
      return lo + frac * (hi - lo);
    }
    cum = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double Histogram::Quantile(double q) const {
  return QuantileFromBucketCounts(bounds_, BucketCounts(), q);
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::DefaultLatencyBoundsUs() {
  static const std::vector<double> kBounds = {
      1,     2,     5,     10,    20,    50,    100,   200,
      500,   1e3,   2e3,   5e3,   1e4,   2e4,   5e4,   1e5,
      2e5,   5e5,   1e6,   2e6,   5e6};
  return kBounds;
}

struct MetricsRegistry::Entry {
  std::string name;
  int kind = kCounter;
  Counter counter;
  Gauge gauge;
  std::unique_ptr<Histogram> histogram;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

StatusOr<MetricsRegistry::Entry*> MetricsRegistry::TryFindOrCreate(
    const std::string& name, int kind, const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    Entry& found = *entries_[it->second];
    if (found.kind != kind) {
      const char* kind_names[] = {"counter", "gauge", "histogram"};
      return Status::FailedPrecondition(
          "metric '" + name + "' is already registered as a " +
          kind_names[found.kind] + ", requested as a " + kind_names[kind]);
    }
    return &found;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->kind = kind;
  if (kind == kHistogram) {
    entry->histogram = std::make_unique<Histogram>(
        bounds != nullptr ? *bounds : Histogram::DefaultLatencyBoundsUs());
  }
  index_.emplace(name, entries_.size());
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

MetricsRegistry::Entry& MetricsRegistry::FindOrCreate(
    const std::string& name, int kind, const std::vector<double>* bounds) {
  StatusOr<Entry*> entry = TryFindOrCreate(name, kind, bounds);
  if (!entry.ok()) {
    // A kind collision means two call sites disagree about what `name` is —
    // continuing would record into the wrong metric, so fail loudly instead
    // of returning something plausible.
    std::fprintf(stderr, "MetricsRegistry: %s\n",
                 entry.status().ToString().c_str());
    std::abort();
  }
  return **entry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  return FindOrCreate(name, kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  return FindOrCreate(name, kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>* bounds) {
  return *FindOrCreate(name, kHistogram, bounds).histogram;
}

StatusOr<Counter*> MetricsRegistry::TryGetCounter(const std::string& name) {
  StatusOr<Entry*> entry = TryFindOrCreate(name, kCounter, nullptr);
  if (!entry.ok()) return entry.status();
  return &(*entry)->counter;
}

StatusOr<Gauge*> MetricsRegistry::TryGetGauge(const std::string& name) {
  StatusOr<Entry*> entry = TryFindOrCreate(name, kGauge, nullptr);
  if (!entry.ok()) return entry.status();
  return &(*entry)->gauge;
}

StatusOr<Histogram*> MetricsRegistry::TryGetHistogram(
    const std::string& name, const std::vector<double>* bounds) {
  StatusOr<Entry*> entry = TryFindOrCreate(name, kHistogram, bounds);
  if (!entry.ok()) return entry.status();
  return (*entry)->histogram.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    e->counter.Reset();
    e->gauge.Reset();
    if (e->histogram) e->histogram->Reset();
  }
}

std::string MetricsRegistry::ExportJson() const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) sorted.push_back(e.get());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  std::string out = "{";
  for (int kind : {kCounter, kGauge, kHistogram}) {
    const char* section = kind == kCounter  ? "counters"
                          : kind == kGauge ? "gauges"
                                            : "histograms";
    if (kind != kCounter) out += ",";
    out += "\"";
    out += section;
    out += "\":{";
    bool first = true;
    for (const Entry* e : sorted) {
      if (e->kind != kind) continue;
      if (!first) out += ",";
      first = false;
      out += "\"" + JsonEscape(e->name) + "\":";
      if (kind == kCounter) {
        out += FormatNumber(static_cast<double>(e->counter.Value()));
      } else if (kind == kGauge) {
        out += FormatNumber(e->gauge.Value());
      } else {
        const Histogram& h = *e->histogram;
        out += "{\"count\":" + FormatNumber(static_cast<double>(h.Count()));
        out += ",\"sum\":" + FormatNumber(h.Sum());
        out += ",\"mean\":" + FormatNumber(h.Mean());
        out += ",\"p50\":" + FormatNumber(h.Quantile(0.50));
        out += ",\"p95\":" + FormatNumber(h.Quantile(0.95));
        out += ",\"p99\":" + FormatNumber(h.Quantile(0.99));
        out += "}";
      }
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string MetricsRegistry::ExportPrometheus() const {
  std::vector<const Entry*> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) sorted.push_back(e.get());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->name < b->name; });

  std::string out;
  for (const Entry* e : sorted) {
    std::string name = PrometheusName(e->name);
    if (e->kind == kCounter) {
      out += "# TYPE " + name + " counter\n";
      out += name + " " +
             FormatNumber(static_cast<double>(e->counter.Value())) + "\n";
    } else if (e->kind == kGauge) {
      out += "# TYPE " + name + " gauge\n";
      out += name + " " + FormatNumber(e->gauge.Value()) + "\n";
    } else {
      const Histogram& h = *e->histogram;
      out += "# TYPE " + name + " histogram\n";
      std::vector<uint64_t> counts = h.BucketCounts();
      uint64_t cum = 0;
      for (size_t i = 0; i < h.bounds().size(); ++i) {
        cum += counts[i];
        out += name + "_bucket{le=\"" + FormatNumber(h.bounds()[i]) + "\"} " +
               FormatNumber(static_cast<double>(cum)) + "\n";
      }
      cum += counts[h.bounds().size()];
      out += name + "_bucket{le=\"+Inf\"} " +
             FormatNumber(static_cast<double>(cum)) + "\n";
      out += name + "_sum " + FormatNumber(h.Sum()) + "\n";
      out += name + "_count " + FormatNumber(static_cast<double>(h.Count())) +
             "\n";
    }
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& e : entries_) {
    if (e->kind == kCounter) {
      snap.counters[e->name] = e->counter.Value();
    } else if (e->kind == kGauge) {
      snap.gauges[e->name] = e->gauge.Value();
    } else {
      snap.histograms[e->name] = {e->histogram->Count(), e->histogram->Sum()};
    }
  }
  return snap;
}

std::string MetricsRegistry::DeltaJson(const MetricsSnapshot& before,
                                       const MetricsSnapshot& after) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : after.counters) {
    auto it = before.counters.find(name);
    const uint64_t prev = it != before.counters.end() ? it->second : 0;
    if (value == prev) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" +
           FormatNumber(static_cast<double>(value - prev));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : after.gauges) {
    auto it = before.gauges.find(name);
    const double prev = it != before.gauges.end() ? it->second : 0.0;
    if (value == prev) continue;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + FormatNumber(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, cs] : after.histograms) {
    auto it = before.histograms.find(name);
    const uint64_t prev_count =
        it != before.histograms.end() ? it->second.first : 0;
    const double prev_sum =
        it != before.histograms.end() ? it->second.second : 0.0;
    if (cs.first == prev_count) continue;
    const uint64_t dcount = cs.first - prev_count;
    const double dsum = cs.second - prev_sum;
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           FormatNumber(static_cast<double>(dcount)) +
           ",\"sum\":" + FormatNumber(dsum) +
           ",\"mean\":" + FormatNumber(dsum / static_cast<double>(dcount)) +
           "}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace pqsda::obs
