#ifndef PQSDA_OBS_HTTP_EXPORTER_H_
#define PQSDA_OBS_HTTP_EXPORTER_H_

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace pqsda::obs {

/// A parsed scrape request. Only the request line matters for a telemetry
/// surface; headers and bodies are read and discarded.
struct HttpRequest {
  std::string method;  // "GET"
  std::string path;    // "/metrics" (query string stripped into `query`)
  std::string query;   // raw text after '?', "" when absent
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Minimal embedded HTTP/1.1 server for scrape traffic (/metrics, /statusz,
/// ...): one blocking accept loop on a background thread, connections served
/// one at a time, `Connection: close` on every response. No third-party
/// dependencies — plain POSIX sockets. This is deliberately not a general
/// web server: it exists so an operator (or Prometheus) can read the
/// process's telemetry while it serves, and nothing more.
///
/// Handlers run on the server thread and must be thread-safe with respect to
/// the serving threads they observe (the telemetry they read is built from
/// atomics and internally-locked snapshots). Routes are fixed before Start;
/// the handler table is not mutated afterwards.
class HttpExporter {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpExporter();
  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;
  ~HttpExporter();  // Stop()s if still running

  /// Registers `handler` for exact-match `path`. Call before Start.
  void Route(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port, see port()), starts
  /// the accept loop thread. IoError when the socket can't be bound.
  Status Start(int port);

  /// Unblocks the accept loop and joins the thread. Idempotent.
  void Stop();

  /// The bound port; 0 before a successful Start.
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void ServeLoop();
  void HandleConnection(int fd);

  std::map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
};

/// Blocking HTTP GET against 127.0.0.1:`port` — the scrape client used by
/// tests and benches to observe a live exporter. Returns the response body;
/// `status_out` (optional) receives the HTTP status code. IoError on
/// connect/read failure.
StatusOr<std::string> HttpGet(int port, const std::string& path,
                              int* status_out = nullptr);

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_HTTP_EXPORTER_H_
