#ifndef PQSDA_OBS_METRICS_H_
#define PQSDA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.h"

namespace pqsda::obs {

/// Monotonically increasing event count. Increment is a single relaxed
/// atomic add — safe and cheap to call from any thread on a hot path.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (residuals, sizes, likelihoods).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for non-negative observations (latencies in
/// microseconds by default). Observe is lock-free: a binary search over the
/// immutable bucket bounds plus two relaxed atomic adds. Percentiles are
/// estimated by linear interpolation inside the containing bucket, so their
/// resolution is the bucket width — plenty for p50/p95/p99 latency
/// reporting.
class Histogram {
 public:
  /// `bounds` are the strictly increasing inclusive upper bounds; a +Inf
  /// overflow bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Estimated value at quantile `q` in [0, 1] (0.5 = median). Returns 0
  /// for an empty histogram; observations in the overflow bucket report the
  /// largest finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts; counts[bounds.size()] is overflow.
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

  /// Default latency bucket bounds in microseconds: 1us .. 5s, roughly
  /// 1-2-5 per decade.
  static const std::vector<double>& DefaultLatencyBoundsUs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Process-wide registry of named metrics. Lookup takes a mutex (cache the
/// returned reference at the call site — metrics are never deallocated while
/// the registry lives); recording on a found metric is lock-free. Exportable
/// as JSON or Prometheus text exposition format.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is used only when the histogram is created by this call;
  /// nullptr means DefaultLatencyBoundsUs().
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>* bounds = nullptr);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,p50,
  /// p95,p99}}} with names in sorted order (deterministic output).
  std::string ExportJson() const;
  /// Prometheus text exposition format; metric names are sanitized to
  /// [a-zA-Z0-9_:] and emitted in sorted order.
  std::string ExportPrometheus() const;

  /// Zeroes every registered metric in place. References handed out by the
  /// Get* methods stay valid (tests and long-lived cached pointers rely on
  /// this).
  void Reset();

  /// The process-wide registry the library's built-in instrumentation
  /// records into.
  static MetricsRegistry& Default();

 private:
  struct Entry;

  Entry& FindOrCreate(const std::string& name, int kind,
                      const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
};

/// RAII timer recording its scope's duration into a histogram (in
/// microseconds, with sub-microsecond precision) on destruction. A null
/// histogram makes it a plain stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}
  explicit ScopedTimer(Histogram& hist) : hist_(&hist) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<double>(timer_.ElapsedNanos()) * 1e-3);
    }
  }

  int64_t ElapsedNanos() const { return timer_.ElapsedNanos(); }

 private:
  Histogram* hist_;
  WallTimer timer_;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_METRICS_H_
