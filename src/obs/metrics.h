#ifndef PQSDA_OBS_METRICS_H_
#define PQSDA_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/timer.h"

namespace pqsda::obs {

/// Monotonically increasing event count. Increment is a single relaxed
/// atomic add — safe and cheap to call from any thread on a hot path.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written instantaneous value (residuals, sizes, likelihoods).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram for non-negative observations (latencies in
/// microseconds by default). Observe is lock-free: a binary search over the
/// immutable bucket bounds plus two relaxed atomic adds. Percentiles are
/// estimated by linear interpolation inside the containing bucket, so their
/// resolution is the bucket width — plenty for p50/p95/p99 latency
/// reporting.
class Histogram {
 public:
  /// `bounds` are the strictly increasing inclusive upper bounds; a +Inf
  /// overflow bucket is implicit.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  /// Estimated value at quantile `q` in [0, 1] (0.5 = median). Returns 0
  /// for an empty histogram; observations in the overflow bucket report the
  /// largest finite bound.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Cumulative-free per-bucket counts; counts[bounds.size()] is overflow.
  std::vector<uint64_t> BucketCounts() const;
  void Reset();

  /// Default latency bucket bounds in microseconds: 1us .. 5s, roughly
  /// 1-2-5 per decade.
  static const std::vector<double>& DefaultLatencyBoundsUs();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Quantile estimate over raw per-bucket counts (`counts[bounds.size()]` is
/// the overflow bucket), with the same interpolation Histogram::Quantile
/// uses. Shared with the sliding-window aggregator, which merges several
/// epochs' bucket counts before asking for a percentile.
double QuantileFromBucketCounts(const std::vector<double>& bounds,
                                const std::vector<uint64_t>& counts, double q);

/// Point-in-time copy of a registry's values, for metric *deltas*: snapshot
/// before and after a request and DeltaJson the pair to see exactly what that
/// request recorded, without resetting the live registry.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  /// Histograms tracked as (count, sum) — enough for per-request deltas.
  std::map<std::string, std::pair<uint64_t, double>> histograms;
};

/// Process-wide registry of named metrics. Lookup takes a mutex (cache the
/// returned reference at the call site — metrics are never deallocated while
/// the registry lives); recording on a found metric is lock-free. Exportable
/// as JSON or Prometheus text exposition format.
class MetricsRegistry {
 public:
  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;
  ~MetricsRegistry();

  /// A name permanently identifies one metric of one kind. Requesting an
  /// existing name as a *different* kind (GetGauge("x") after
  /// GetCounter("x")) is a wiring bug — two call sites would silently record
  /// into unrelated metrics under one name — so the Get* accessors fail
  /// loudly (abort with a diagnostic) and the TryGet* variants return
  /// FailedPrecondition for callers that can surface a Status.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is used only when the histogram is created by this call;
  /// nullptr means DefaultLatencyBoundsUs().
  Histogram& GetHistogram(const std::string& name,
                          const std::vector<double>* bounds = nullptr);

  /// Status-bearing variants of the accessors above: FailedPrecondition when
  /// `name` is already registered as a different metric kind.
  StatusOr<Counter*> TryGetCounter(const std::string& name);
  StatusOr<Gauge*> TryGetGauge(const std::string& name);
  StatusOr<Histogram*> TryGetHistogram(
      const std::string& name, const std::vector<double>* bounds = nullptr);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,p50,
  /// p95,p99}}} with names in sorted order (deterministic output).
  std::string ExportJson() const;
  /// Prometheus text exposition format; metric names are sanitized to
  /// [a-zA-Z0-9_:] and emitted in sorted order.
  std::string ExportPrometheus() const;

  /// Copies every metric's current value (histograms as count/sum).
  MetricsSnapshot Snapshot() const;
  /// JSON of what changed between two snapshots taken on the same registry:
  /// counter increments, gauge new values, histogram count/sum deltas.
  /// Metrics absent from `before` are treated as starting at zero; unchanged
  /// metrics are omitted.
  static std::string DeltaJson(const MetricsSnapshot& before,
                               const MetricsSnapshot& after);

  /// Zeroes every registered metric in place. References handed out by the
  /// Get* methods stay valid (tests and long-lived cached pointers rely on
  /// this).
  void Reset();

  /// The process-wide registry the library's built-in instrumentation
  /// records into.
  static MetricsRegistry& Default();

 private:
  struct Entry;

  /// O(1) under the mutex via the name index; FailedPrecondition on a kind
  /// collision.
  StatusOr<Entry*> TryFindOrCreate(const std::string& name, int kind,
                                   const std::vector<double>* bounds);
  /// As above but aborts (loudly) on a kind collision.
  Entry& FindOrCreate(const std::string& name, int kind,
                      const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;  // insertion order
  std::unordered_map<std::string, size_t> index_;  // name -> entries_ index
};

/// RAII timer recording its scope's duration into a histogram (in
/// microseconds, with sub-microsecond precision) on destruction. A null
/// histogram makes it a plain stopwatch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist) : hist_(hist) {}
  explicit ScopedTimer(Histogram& hist) : hist_(&hist) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (hist_ != nullptr) {
      hist_->Observe(static_cast<double>(timer_.ElapsedNanos()) * 1e-3);
    }
  }

  int64_t ElapsedNanos() const { return timer_.ElapsedNanos(); }

 private:
  Histogram* hist_;
  WallTimer timer_;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_METRICS_H_
