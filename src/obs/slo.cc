#include "obs/slo.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace pqsda::obs {

namespace {

constexpr size_t kMaxTransitions = 64;

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Burn(uint64_t bad, uint64_t total, double objective) {
  if (total == 0) return 0.0;
  const double budget = 1.0 - objective;
  if (budget <= 0.0) return bad > 0 ? 1e9 : 0.0;
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

Counter& TripsCounter() {
  static Counter& c =
      MetricsRegistry::Default().GetCounter("pqsda.slo.trips_total");
  return c;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

}  // namespace

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kAvailability:
      return "availability";
    case SloKind::kLatency:
      return "latency";
    case SloKind::kShedRate:
      return "shed_rate";
  }
  return "unknown";
}

const char* SloAlertStateName(SloAlertState state) {
  switch (state) {
    case SloAlertState::kHealthy:
      return "healthy";
    case SloAlertState::kBurning:
      return "burning";
    case SloAlertState::kResolved:
      return "resolved";
  }
  return "unknown";
}

StatusOr<SloSpec> ParseSloSpec(const std::string& text) {
  const std::vector<std::string> parts = SplitOn(text, ':');
  if (parts.empty() || parts[0].empty()) {
    return Status::InvalidArgument("empty SLO spec");
  }
  SloSpec spec;
  if (parts[0] == "availability") {
    spec.kind = SloKind::kAvailability;
  } else if (parts[0] == "latency") {
    spec.kind = SloKind::kLatency;
  } else if (parts[0] == "shed_rate") {
    spec.kind = SloKind::kShedRate;
  } else {
    return Status::InvalidArgument("unknown SLO kind \"" + parts[0] +
                                   "\" (want availability|latency|shed_rate)");
  }
  spec.name = parts[0];
  if (parts.size() > 1) {
    char* end = nullptr;
    spec.objective = std::strtod(parts[1].c_str(), &end);
    if (end == parts[1].c_str() || spec.objective < 0.0 ||
        spec.objective >= 1.0) {
      return Status::InvalidArgument("SLO objective must be in [0,1): " +
                                     parts[1]);
    }
  }
  if (spec.kind == SloKind::kLatency) {
    if (parts.size() < 3) {
      return Status::InvalidArgument(
          "latency SLO needs a threshold: latency:<objective>:<threshold_us>");
    }
    char* end = nullptr;
    spec.latency_threshold_us = std::strtod(parts[2].c_str(), &end);
    if (end == parts[2].c_str() || spec.latency_threshold_us <= 0.0) {
      return Status::InvalidArgument("bad latency threshold: " + parts[2]);
    }
  } else if (parts.size() > 2) {
    return Status::InvalidArgument("unexpected SLO field: " + parts[2]);
  }
  return spec;
}

StatusOr<std::vector<SloSpec>> ParseSloSpecs(const std::string& text) {
  std::vector<SloSpec> specs;
  if (text.empty()) return specs;
  for (const std::string& part : SplitOn(text, ',')) {
    auto spec = ParseSloSpec(part);
    if (!spec.ok()) return spec.status();
    specs.push_back(std::move(*spec));
  }
  return specs;
}

SloEngine::SloEngine(ServingTelemetry* telemetry, std::vector<SloSpec> specs)
    : telemetry_(telemetry) {
  const int64_t now = telemetry_->options().window.clock
                          ? telemetry_->options().window.clock()
                          : SteadyNowNs();
  machines_.reserve(specs.size());
  for (SloSpec& spec : specs) {
    Machine m;
    m.spec = std::move(spec);
    m.since_ns = now;
    machines_.push_back(std::move(m));
  }
}

SloEngine::WindowSample SloEngine::SampleWindow(const SloSpec& spec,
                                                int64_t window_ns) const {
  WindowSample sample;
  switch (spec.kind) {
    case SloKind::kAvailability:
      sample.total = telemetry_->requests().SumOver(window_ns);
      sample.bad = telemetry_->errors().SumOver(window_ns);
      break;
    case SloKind::kLatency: {
      // Admitted requests only: shed requests never reach the latency ring.
      sample.total = telemetry_->latency().SnapshotOver(window_ns).count;
      sample.bad = telemetry_->latency().CountAbove(window_ns,
                                                    spec.latency_threshold_us);
      break;
    }
    case SloKind::kShedRate:
      sample.total = telemetry_->requests().SumOver(window_ns);
      sample.bad = telemetry_->shed().SumOver(window_ns);
      break;
  }
  return sample;
}

std::vector<SloStatus> SloEngine::EvaluateLocked(int64_t now_ns) {
  std::vector<SloStatus> statuses;
  statuses.reserve(machines_.size());
  for (Machine& m : machines_) {
    const WindowSample fast = SampleWindow(m.spec, m.spec.fast_window_ns);
    const WindowSample slow = SampleWindow(m.spec, m.spec.slow_window_ns);
    const double fast_burn = Burn(fast.bad, fast.total, m.spec.objective);
    const double slow_burn = Burn(slow.bad, slow.total, m.spec.objective);

    const SloAlertState before = m.state;
    const bool tripping = fast_burn > m.spec.burn_threshold &&
                          slow_burn > m.spec.burn_threshold;
    switch (m.state) {
      case SloAlertState::kHealthy:
        if (tripping) m.state = SloAlertState::kBurning;
        break;
      case SloAlertState::kBurning:
        // Budget spend rate back under 1x on the fast window: the incident
        // stopped, even though the slow window still remembers it.
        if (fast_burn < 1.0) m.state = SloAlertState::kResolved;
        break;
      case SloAlertState::kResolved:
        if (tripping) {
          m.state = SloAlertState::kBurning;
        } else if (slow_burn < 1.0) {
          m.state = SloAlertState::kHealthy;
        }
        break;
    }
    if (m.state != before) {
      if (m.state == SloAlertState::kBurning) {
        ++m.trips;
        TripsCounter().Increment();
      }
      m.since_ns = now_ns;
      std::string record = "{\"slo\":\"" + m.spec.name + "\"";
      record += ",\"from\":\"" + std::string(SloAlertStateName(before)) + "\"";
      record +=
          ",\"to\":\"" + std::string(SloAlertStateName(m.state)) + "\"";
      record += ",\"fast_burn\":" + Num(fast_burn);
      record += ",\"slow_burn\":" + Num(slow_burn);
      record += ",\"at_ns\":" + std::to_string(now_ns) + "}";
      transitions_.push_back(std::move(record));
      while (transitions_.size() > kMaxTransitions) transitions_.pop_front();
    }

    SloStatus status;
    status.spec = m.spec;
    status.state = m.state;
    status.fast_burn = fast_burn;
    status.slow_burn = slow_burn;
    status.fast_bad = fast.bad;
    status.fast_total = fast.total;
    status.slow_bad = slow.bad;
    status.slow_total = slow.total;
    status.since_ns = m.since_ns;
    status.trips = m.trips;
    statuses.push_back(std::move(status));
  }
  return statuses;
}

std::vector<SloStatus> SloEngine::Evaluate() {
  const int64_t now = telemetry_->options().window.clock
                          ? telemetry_->options().window.clock()
                          : SteadyNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  return EvaluateLocked(now);
}

std::string SloEngine::AlertzJson() {
  const int64_t now = telemetry_->options().window.clock
                          ? telemetry_->options().window.clock()
                          : SteadyNowNs();
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<SloStatus> statuses = EvaluateLocked(now);
  std::string out = "{\"slos\":[";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& s = statuses[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + s.spec.name + "\"";
    out += ",\"kind\":\"" + std::string(SloKindName(s.spec.kind)) + "\"";
    out += ",\"objective\":" + Num(s.spec.objective);
    if (s.spec.kind == SloKind::kLatency) {
      out += ",\"threshold_us\":" + Num(s.spec.latency_threshold_us);
    }
    out += ",\"burn_threshold\":" + Num(s.spec.burn_threshold);
    out += ",\"state\":\"" + std::string(SloAlertStateName(s.state)) + "\"";
    out += ",\"fast\":{\"window_sec\":" +
           Num(static_cast<double>(s.spec.fast_window_ns) * 1e-9);
    out += ",\"burn\":" + Num(s.fast_burn);
    out += ",\"bad\":" + std::to_string(s.fast_bad);
    out += ",\"total\":" + std::to_string(s.fast_total) + "}";
    out += ",\"slow\":{\"window_sec\":" +
           Num(static_cast<double>(s.spec.slow_window_ns) * 1e-9);
    out += ",\"burn\":" + Num(s.slow_burn);
    out += ",\"bad\":" + std::to_string(s.slow_bad);
    out += ",\"total\":" + std::to_string(s.slow_total) + "}";
    out += ",\"since_sec\":" +
           Num(static_cast<double>(now - s.since_ns) * 1e-9);
    out += ",\"trips\":" + std::to_string(s.trips);
    out += "}";
  }
  out += "],\"transitions\":[";
  // Newest first, like /tracez.
  bool first = true;
  for (auto it = transitions_.rbegin(); it != transitions_.rend(); ++it) {
    if (!first) out += ",";
    first = false;
    out += *it;
  }
  out += "]}";
  return out;
}

std::string SloEngine::StatuszSection() {
  const std::vector<SloStatus> statuses = Evaluate();
  std::string out = "[";
  for (size_t i = 0; i < statuses.size(); ++i) {
    const SloStatus& s = statuses[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + s.spec.name + "\"";
    out += ",\"state\":\"" + std::string(SloAlertStateName(s.state)) + "\"";
    out += ",\"fast_burn\":" + Num(s.fast_burn);
    out += ",\"slow_burn\":" + Num(s.slow_burn);
    out += ",\"trips\":" + std::to_string(s.trips);
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace pqsda::obs
