#ifndef PQSDA_OBS_EXPLAIN_H_
#define PQSDA_OBS_EXPLAIN_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pqsda::obs {

/// Per-chain rank slots of ExplainCandidate::chain_rank, in the order the
/// diversifier mixes the bipartites (BipartiteKind::kUrl/kSession/kTerm).
inline constexpr size_t kExplainChainCount = 3;
inline constexpr const char* kExplainChainNames[kExplainChainCount] = {
    "url", "session", "term"};

/// One returned candidate with every score term that composed its final
/// position: the Eq. 15 regularized relevance, its Algorithm 1 selection
/// round and marginal hitting time (with its rank under each single-chain
/// hitting-time ordering at that round), and — when the §V-B rerank ran —
/// the UPM preference score and the Borda points awarded by each source
/// list. `final_rank` is the position in the served list; fields that did
/// not apply to the request's rung stay at their zero/SIZE_MAX defaults.
struct ExplainCandidate {
  std::string query;
  size_t final_rank = SIZE_MAX;
  /// The served Suggestion::score.
  double score = 0.0;
  /// F* of the Eq. 15 solve (or the walk score on the walk-only rung).
  double relevance = 0.0;
  /// Algorithm 1 round this candidate was picked in; round 0 is the Eq. 15
  /// argmax first pick (no hitting-time sweep ran for it).
  size_t selection_round = 0;
  /// Marginal diversity gain: the merged-chain hitting time to the
  /// already-selected set at the moment this candidate won its round.
  double hitting_time = 0.0;
  /// Rank (0-based, among the untaken candidate pool) under each
  /// single-chain hitting-time ordering at the selection round; SIZE_MAX
  /// when not computed (first pick, degraded rungs, explain-off).
  size_t chain_rank[kExplainChainCount] = {SIZE_MAX, SIZE_MAX, SIZE_MAX};
  /// Eq. 31 topic-match preference of the requesting user (0 when the
  /// rerank did not run).
  double upm_preference = 0.0;
  /// Borda points from the diversification list and from the
  /// preference-ranking list (already multiplied by the preference weight).
  /// Their sum recomposes the served order; tests enforce it.
  double borda_diversification = 0.0;
  double borda_preference = 0.0;
};

/// The full decision record of one request: what was served, off which
/// pinned snapshot generation, at which degradation rung, and the
/// per-candidate decomposition above. Collected only when a request is
/// sampled into explain or asks for it — the request path otherwise pays
/// one thread-local read per recording site.
struct ExplainRecord {
  uint64_t request_id = 0;
  std::string query;
  uint32_t user = UINT32_MAX;
  size_t k = 0;
  /// Snapshot generation the request pinned at admission — the `replay`
  /// target.
  uint64_t generation = 0;
  /// DegradationRung numeric value chosen at admission.
  size_t rung = 0;
  bool cache_hit = false;
  /// True when the walk-only rung served (relevance is the walk score and
  /// no selection/personalization terms exist).
  bool walk_only = false;
  /// True when the §V-B rerank actually ran for a known user.
  bool personalized = false;
  /// Borda multiplicity of the preference list (meaningful when
  /// personalized).
  size_t preference_weight = 0;
  bool ok = true;
  std::string status;  // "" when ok
  int64_t total_us = 0;
  /// FNV-1a 64 over the served list (query bytes + score bit patterns);
  /// matches the request log's fingerprint and replay's equality check.
  uint64_t fingerprint = 0;
  /// Served candidates ordered by final_rank. Empty on cache hits (the
  /// pipeline never ran) and on errors.
  std::vector<ExplainCandidate> candidates;

  std::string ToJson() const;
  /// Human-readable table for the CLI's `explain` command.
  std::string Render() const;
};

/// Incremental FNV-1a 64 over strings and double bit patterns — the result
/// fingerprint shared by the request log, ExplainRecord and replay
/// verification. Bitwise: two lists fingerprint equal iff every query string
/// and every score's bit pattern match.
class Fingerprint64 {
 public:
  void Mix(std::string_view s);
  void Mix(uint64_t v);
  void MixDouble(double v);
  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = 14695981039346656037ULL;
};

/// Renders a fingerprint the way the log stores it (16 hex digits) and
/// parses it back. Parse returns false on malformed input.
std::string FingerprintToHex(uint64_t fingerprint);
bool FingerprintFromHex(std::string_view hex, uint64_t* fingerprint);

/// The explain record under collection on this thread, or null. The
/// diversifier and personalizer write their score terms through this — one
/// thread-local load when no record is installed, so the seams cost nothing
/// on unsampled requests (the bench gate enforces it).
ExplainRecord* CurrentExplain();

/// Installs `record` as the thread's explain sink for the scope's lifetime;
/// nests (the previous sink is restored on destruction) so replay can
/// collect inside a serving thread.
class ExplainScope {
 public:
  explicit ExplainScope(ExplainRecord* record);
  ~ExplainScope();

  ExplainScope(const ExplainScope&) = delete;
  ExplainScope& operator=(const ExplainScope&) = delete;

 private:
  ExplainRecord* prev_;
};

/// Bounded ring of the most recent ExplainRecords, keyed by request id —
/// the /explainz store. Records are immutable once added (shared_ptr const),
/// so a scrape renders them without blocking the serving path beyond the
/// ring mutex.
class ExplainStore {
 public:
  explicit ExplainStore(size_t capacity = 64);

  void Add(std::shared_ptr<const ExplainRecord> record);
  /// Null when the id is unknown (never stored, or already evicted).
  std::shared_ptr<const ExplainRecord> Find(uint64_t request_id) const;
  /// (request_id, query) of the stored records, newest first — the
  /// /explainz index listing.
  std::vector<std::pair<uint64_t, std::string>> Index() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<std::shared_ptr<const ExplainRecord>> ring_;  // newest at back
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_EXPLAIN_H_
