#include "obs/request_log.h"

#include <cctype>
#include <cstddef>
#include <cstdlib>
#include <cstring>

#include "obs/explain.h"
#include "obs/metrics.h"

namespace pqsda::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Counter& DroppedCounter() {
  static Counter& c = MetricsRegistry::Default().GetCounter(
      "pqsda.reqlog.dropped_total");
  return c;
}

Counter& WrittenCounter() {
  static Counter& c = MetricsRegistry::Default().GetCounter(
      "pqsda.reqlog.written_total");
  return c;
}

Counter& RotationsCounter() {
  static Counter& c = MetricsRegistry::Default().GetCounter(
      "pqsda.reqlog.rotations_total");
  return c;
}

}  // namespace

StatusOr<std::unique_ptr<RequestLog>> RequestLog::Open(
    RequestLogOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("request log path is empty");
  }
  std::FILE* file = std::fopen(options.path.c_str(), "a");
  if (file == nullptr) {
    return Status::IoError("cannot open request log " + options.path);
  }
  // Appending to a pre-existing file: its current size counts against the
  // rotation limit, or the file could grow without bound across restarts.
  size_t initial_bytes = 0;
  if (std::fseek(file, 0, SEEK_END) == 0) {
    const long pos = std::ftell(file);
    if (pos > 0) initial_bytes = static_cast<size_t>(pos);
  }
  return std::unique_ptr<RequestLog>(
      new RequestLog(std::move(options), file, initial_bytes));
}

RequestLog::RequestLog(RequestLogOptions options, std::FILE* file,
                       size_t initial_bytes)
    : options_(std::move(options)), file_(file),
      active_bytes_(initial_bytes) {
  writer_ = std::thread([this] { WriterLoop(); });
}

RequestLog::~RequestLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  writer_.join();
  if (file_ != nullptr) std::fclose(file_);
}

bool RequestLog::Log(RequestLogEntry entry) {
  seen_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t n = seq_.fetch_add(1, std::memory_order_relaxed);
  const bool slow = entry.total_us >= options_.slow_us;
  const bool sampled =
      options_.sample_every > 0 && n % options_.sample_every == 0;
  if (!slow && !sampled) return false;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      DroppedCounter().Increment();
      return true;
    }
    queue_.push_back(std::move(entry));
  }
  cv_.notify_one();
  return true;
}

void RequestLog::WriterLoop() {
  for (;;) {
    RequestLogEntry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything written
      entry = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
    }
    {
      std::lock_guard<std::mutex> file_lock(file_mu_);
      if (file_ != nullptr) {
        const std::string line = ToJson(entry);
        std::fwrite(line.data(), 1, line.size(), file_);
        std::fputc('\n', file_);
        active_bytes_ += line.size() + 1;
        written_.fetch_add(1, std::memory_order_relaxed);
        WrittenCounter().Increment();
        if (options_.rotate_bytes > 0 &&
            active_bytes_ >= options_.rotate_bytes) {
          Rotate();
        }
      } else {
        // A failed rotation reopen left the log without a file: the entry
        // was accepted and cannot be written, so it is dropped — the
        // contract written + dropped == accepted survives the failure.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        DroppedCounter().Increment();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      writing_ = false;
      if (queue_.empty()) drained_.notify_all();
    }
  }
}

void RequestLog::Rotate() {
  std::fclose(file_);
  file_ = nullptr;
  if (options_.max_rotated_files == 0) {
    std::remove(options_.path.c_str());
  } else {
    // Shift the chain from the oldest end: path.N-1 -> path.N (clobbering
    // the previous path.N), ..., path -> path.1.
    const std::string oldest =
        options_.path + "." + std::to_string(options_.max_rotated_files);
    std::remove(oldest.c_str());
    for (size_t i = options_.max_rotated_files; i > 1; --i) {
      const std::string from = options_.path + "." + std::to_string(i - 1);
      const std::string to = options_.path + "." + std::to_string(i);
      std::rename(from.c_str(), to.c_str());
    }
    std::rename(options_.path.c_str(), (options_.path + ".1").c_str());
  }
  file_ = std::fopen(options_.path.c_str(), "a");
  active_bytes_ = 0;
  rotations_.fetch_add(1, std::memory_order_relaxed);
  RotationsCounter().Increment();
}

void RequestLog::Flush() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return queue_.empty() && !writing_; });
  }
  std::lock_guard<std::mutex> file_lock(file_mu_);
  if (file_ != nullptr) std::fflush(file_);
}

std::string RequestLog::ToJson(const RequestLogEntry& entry) {
  std::string out = "{\"request_id\":" + std::to_string(entry.request_id);
  out += ",\"user\":" + std::to_string(entry.user);
  out += ",\"query\":\"" + JsonEscape(entry.query) + "\"";
  out += ",\"k\":" + std::to_string(entry.k);
  out += ",\"timestamp\":" + std::to_string(entry.timestamp);
  if (!entry.context.empty()) {
    out += ",\"context\":[";
    for (size_t i = 0; i < entry.context.size(); ++i) {
      if (i > 0) out += ",";
      out += "[\"" + JsonEscape(entry.context[i].first) +
             "\"," + std::to_string(entry.context[i].second) + "]";
    }
    out += "]";
  }
  out += ",\"generation\":" + std::to_string(entry.generation);
  out += ",\"rung\":" + std::to_string(entry.rung);
  out += ",\"total_us\":" + std::to_string(entry.total_us);
  out += ",\"cache_hit\":";
  out += entry.cache_hit ? "true" : "false";
  out += ",\"ok\":";
  out += entry.ok ? "true" : "false";
  if (!entry.ok) {
    out += ",\"status\":\"" + JsonEscape(entry.status) + "\"";
  }
  if (entry.ok) {
    out += ",\"fingerprint\":\"" + FingerprintToHex(entry.fingerprint) + "\"";
  }
  if (!entry.stage_us.empty()) {
    out += ",\"stage_us\":{";
    for (size_t i = 0; i < entry.stage_us.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(entry.stage_us[i].first) +
             "\":" + std::to_string(entry.stage_us[i].second);
    }
    out += "}";
  }
  if (!entry.suggestions.empty()) {
    out += ",\"suggestions\":[";
    for (size_t i = 0; i < entry.suggestions.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(entry.suggestions[i]) + "\"";
    }
    out += "]";
  }
  out += "}";
  return out;
}

namespace {

// Minimal cursor parser for the log's own JSONL schema (the reverse of
// ToJson/JsonEscape). It understands exactly the JSON subset the writer
// emits — objects, arrays, strings with escapes, integers, booleans — and
// skips unknown values so a newer writer stays readable.
struct JsonCursor {
  const char* p;
  const char* end;

  bool AtEnd() const { return p >= end; }
  void SkipWs() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }
  bool Consume(char c) {
    SkipWs();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return p < end && *p == c;
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return false;
      char e = *p++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (end - p < 4) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // The writer only emits \u00XX for control bytes; anything else
          // would need UTF-8 encoding the log never produces.
          if (code > 0xff) return false;
          out->push_back(static_cast<char>(code));
          break;
        }
        default: return false;
      }
    }
    if (p >= end) return false;
    ++p;  // closing quote
    return true;
  }

  bool ParseInt(int64_t* out) {
    SkipWs();
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
      return false;
    }
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    *out = std::strtoll(std::string(start, p).c_str(), nullptr, 10);
    return true;
  }

  bool ParseUint(uint64_t* out) {
    SkipWs();
    const char* start = p;
    if (p >= end || !std::isdigit(static_cast<unsigned char>(*p))) {
      return false;
    }
    while (p < end && std::isdigit(static_cast<unsigned char>(*p))) ++p;
    *out = std::strtoull(std::string(start, p).c_str(), nullptr, 10);
    return true;
  }

  bool ParseBool(bool* out) {
    SkipWs();
    if (end - p >= 4 && std::memcmp(p, "true", 4) == 0) {
      p += 4;
      *out = true;
      return true;
    }
    if (end - p >= 5 && std::memcmp(p, "false", 5) == 0) {
      p += 5;
      *out = false;
      return true;
    }
    return false;
  }

  // Skips one value of any shape (forward compatibility with unknown keys).
  bool SkipValue() {
    SkipWs();
    if (p >= end) return false;
    if (*p == '"') {
      std::string ignored;
      return ParseString(&ignored);
    }
    if (*p == '{' || *p == '[') {
      const char open = *p;
      const char close = open == '{' ? '}' : ']';
      ++p;
      SkipWs();
      if (Consume(close)) return true;
      for (;;) {
        if (open == '{') {
          std::string key;
          if (!ParseString(&key) || !Consume(':')) return false;
        }
        if (!SkipValue()) return false;
        if (Consume(close)) return true;
        if (!Consume(',')) return false;
      }
    }
    // number / true / false / null
    while (p < end && *p != ',' && *p != '}' && *p != ']' && *p != ' ') ++p;
    return true;
  }
};

}  // namespace

StatusOr<RequestLogEntry> ParseRequestLogEntry(const std::string& line) {
  JsonCursor cur{line.data(), line.data() + line.size()};
  RequestLogEntry entry;
  auto malformed = [&line]() {
    return Status::InvalidArgument("malformed request-log line: " + line);
  };
  if (!cur.Consume('{')) return malformed();
  if (!cur.Consume('}')) {
    for (;;) {
      std::string key;
      if (!cur.ParseString(&key) || !cur.Consume(':')) return malformed();
      bool parsed = true;
      if (key == "request_id") {
        parsed = cur.ParseUint(&entry.request_id);
      } else if (key == "user") {
        uint64_t user = 0;
        parsed = cur.ParseUint(&user);
        entry.user = static_cast<uint32_t>(user);
      } else if (key == "query") {
        parsed = cur.ParseString(&entry.query);
      } else if (key == "k") {
        uint64_t k = 0;
        parsed = cur.ParseUint(&k);
        entry.k = static_cast<size_t>(k);
      } else if (key == "timestamp") {
        parsed = cur.ParseInt(&entry.timestamp);
      } else if (key == "context") {
        parsed = cur.Consume('[');
        if (parsed && !cur.Consume(']')) {
          for (;;) {
            std::string q;
            int64_t ts = 0;
            if (!cur.Consume('[') || !cur.ParseString(&q) ||
                !cur.Consume(',') || !cur.ParseInt(&ts) ||
                !cur.Consume(']')) {
              parsed = false;
              break;
            }
            entry.context.emplace_back(std::move(q), ts);
            if (cur.Consume(']')) break;
            if (!cur.Consume(',')) {
              parsed = false;
              break;
            }
          }
        }
      } else if (key == "generation") {
        parsed = cur.ParseUint(&entry.generation);
      } else if (key == "rung") {
        uint64_t rung = 0;
        parsed = cur.ParseUint(&rung);
        entry.rung = static_cast<size_t>(rung);
      } else if (key == "total_us") {
        parsed = cur.ParseInt(&entry.total_us);
      } else if (key == "cache_hit") {
        parsed = cur.ParseBool(&entry.cache_hit);
      } else if (key == "ok") {
        parsed = cur.ParseBool(&entry.ok);
      } else if (key == "status") {
        parsed = cur.ParseString(&entry.status);
      } else if (key == "fingerprint") {
        std::string hex;
        parsed = cur.ParseString(&hex) &&
                 FingerprintFromHex(hex, &entry.fingerprint);
      } else if (key == "stage_us") {
        parsed = cur.Consume('{');
        if (parsed && !cur.Consume('}')) {
          for (;;) {
            std::string stage;
            int64_t us = 0;
            if (!cur.ParseString(&stage) || !cur.Consume(':') ||
                !cur.ParseInt(&us)) {
              parsed = false;
              break;
            }
            entry.stage_us.emplace_back(std::move(stage), us);
            if (cur.Consume('}')) break;
            if (!cur.Consume(',')) {
              parsed = false;
              break;
            }
          }
        }
      } else if (key == "suggestions") {
        parsed = cur.Consume('[');
        if (parsed && !cur.Consume(']')) {
          for (;;) {
            std::string q;
            if (!cur.ParseString(&q)) {
              parsed = false;
              break;
            }
            entry.suggestions.push_back(std::move(q));
            if (cur.Consume(']')) break;
            if (!cur.Consume(',')) {
              parsed = false;
              break;
            }
          }
        }
      } else {
        parsed = cur.SkipValue();
      }
      if (!parsed) return malformed();
      if (cur.Consume('}')) break;
      if (!cur.Consume(',')) return malformed();
    }
  }
  cur.SkipWs();
  if (!cur.AtEnd()) return malformed();
  return entry;
}

StatusOr<std::vector<RequestLogEntry>> ReadRequestLog(const std::string& path,
                                                      size_t max_entries) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open request log: " + path);
  }
  std::vector<RequestLogEntry> entries;
  std::string line;
  char buf[4096];
  auto consume_line = [&] {
    if (line.empty()) return;
    StatusOr<RequestLogEntry> parsed = ParseRequestLogEntry(line);
    line.clear();
    if (parsed.ok()) entries.push_back(std::move(*parsed));
  };
  while (std::fgets(buf, sizeof(buf), file) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      consume_line();
    }
  }
  consume_line();  // last line without trailing newline
  std::fclose(file);
  if (max_entries > 0 && entries.size() > max_entries) {
    entries.erase(entries.begin(),
                  entries.end() - static_cast<ptrdiff_t>(max_entries));
  }
  return entries;
}

}  // namespace pqsda::obs
