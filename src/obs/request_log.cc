#include "obs/request_log.h"

#include "obs/metrics.h"

namespace pqsda::obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

Counter& DroppedCounter() {
  static Counter& c = MetricsRegistry::Default().GetCounter(
      "pqsda.reqlog.dropped_total");
  return c;
}

Counter& WrittenCounter() {
  static Counter& c = MetricsRegistry::Default().GetCounter(
      "pqsda.reqlog.written_total");
  return c;
}

Counter& RotationsCounter() {
  static Counter& c = MetricsRegistry::Default().GetCounter(
      "pqsda.reqlog.rotations_total");
  return c;
}

}  // namespace

StatusOr<std::unique_ptr<RequestLog>> RequestLog::Open(
    RequestLogOptions options) {
  if (options.path.empty()) {
    return Status::InvalidArgument("request log path is empty");
  }
  std::FILE* file = std::fopen(options.path.c_str(), "a");
  if (file == nullptr) {
    return Status::IoError("cannot open request log " + options.path);
  }
  // Appending to a pre-existing file: its current size counts against the
  // rotation limit, or the file could grow without bound across restarts.
  size_t initial_bytes = 0;
  if (std::fseek(file, 0, SEEK_END) == 0) {
    const long pos = std::ftell(file);
    if (pos > 0) initial_bytes = static_cast<size_t>(pos);
  }
  return std::unique_ptr<RequestLog>(
      new RequestLog(std::move(options), file, initial_bytes));
}

RequestLog::RequestLog(RequestLogOptions options, std::FILE* file,
                       size_t initial_bytes)
    : options_(std::move(options)), file_(file),
      active_bytes_(initial_bytes) {
  writer_ = std::thread([this] { WriterLoop(); });
}

RequestLog::~RequestLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  writer_.join();
  if (file_ != nullptr) std::fclose(file_);
}

bool RequestLog::Log(RequestLogEntry entry) {
  seen_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t n = seq_.fetch_add(1, std::memory_order_relaxed);
  const bool slow = entry.total_us >= options_.slow_us;
  const bool sampled =
      options_.sample_every > 0 && n % options_.sample_every == 0;
  if (!slow && !sampled) return false;
  accepted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= options_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      DroppedCounter().Increment();
      return true;
    }
    queue_.push_back(std::move(entry));
  }
  cv_.notify_one();
  return true;
}

void RequestLog::WriterLoop() {
  for (;;) {
    RequestLogEntry entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything written
      entry = std::move(queue_.front());
      queue_.pop_front();
      writing_ = true;
    }
    {
      std::lock_guard<std::mutex> file_lock(file_mu_);
      if (file_ != nullptr) {
        const std::string line = ToJson(entry);
        std::fwrite(line.data(), 1, line.size(), file_);
        std::fputc('\n', file_);
        active_bytes_ += line.size() + 1;
        written_.fetch_add(1, std::memory_order_relaxed);
        WrittenCounter().Increment();
        if (options_.rotate_bytes > 0 &&
            active_bytes_ >= options_.rotate_bytes) {
          Rotate();
        }
      } else {
        // A failed rotation reopen left the log without a file: the entry
        // was accepted and cannot be written, so it is dropped — the
        // contract written + dropped == accepted survives the failure.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        DroppedCounter().Increment();
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      writing_ = false;
      if (queue_.empty()) drained_.notify_all();
    }
  }
}

void RequestLog::Rotate() {
  std::fclose(file_);
  file_ = nullptr;
  if (options_.max_rotated_files == 0) {
    std::remove(options_.path.c_str());
  } else {
    // Shift the chain from the oldest end: path.N-1 -> path.N (clobbering
    // the previous path.N), ..., path -> path.1.
    const std::string oldest =
        options_.path + "." + std::to_string(options_.max_rotated_files);
    std::remove(oldest.c_str());
    for (size_t i = options_.max_rotated_files; i > 1; --i) {
      const std::string from = options_.path + "." + std::to_string(i - 1);
      const std::string to = options_.path + "." + std::to_string(i);
      std::rename(from.c_str(), to.c_str());
    }
    std::rename(options_.path.c_str(), (options_.path + ".1").c_str());
  }
  file_ = std::fopen(options_.path.c_str(), "a");
  active_bytes_ = 0;
  rotations_.fetch_add(1, std::memory_order_relaxed);
  RotationsCounter().Increment();
}

void RequestLog::Flush() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return queue_.empty() && !writing_; });
  }
  std::lock_guard<std::mutex> file_lock(file_mu_);
  if (file_ != nullptr) std::fflush(file_);
}

std::string RequestLog::ToJson(const RequestLogEntry& entry) {
  std::string out = "{\"request_id\":" + std::to_string(entry.request_id);
  out += ",\"user\":" + std::to_string(entry.user);
  out += ",\"query\":\"" + JsonEscape(entry.query) + "\"";
  out += ",\"k\":" + std::to_string(entry.k);
  out += ",\"total_us\":" + std::to_string(entry.total_us);
  out += ",\"cache_hit\":";
  out += entry.cache_hit ? "true" : "false";
  out += ",\"ok\":";
  out += entry.ok ? "true" : "false";
  if (!entry.ok) {
    out += ",\"status\":\"" + JsonEscape(entry.status) + "\"";
  }
  if (!entry.stage_us.empty()) {
    out += ",\"stage_us\":{";
    for (size_t i = 0; i < entry.stage_us.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(entry.stage_us[i].first) +
             "\":" + std::to_string(entry.stage_us[i].second);
    }
    out += "}";
  }
  if (!entry.suggestions.empty()) {
    out += ",\"suggestions\":[";
    for (size_t i = 0; i < entry.suggestions.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + JsonEscape(entry.suggestions[i]) + "\"";
    }
    out += "]";
  }
  out += "}";
  return out;
}

}  // namespace pqsda::obs
