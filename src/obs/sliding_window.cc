#include "obs/sliding_window.h"

#include <algorithm>
#include <chrono>
#include <mutex>

namespace pqsda::obs {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t SanitizeEpochNs(int64_t epoch_ns) {
  return epoch_ns > 0 ? epoch_ns : 1;
}

size_t SanitizeEpochs(size_t epochs) { return epochs > 0 ? epochs : 1; }

// Number of trailing epochs (including the current one) a window of
// `window_ns` covers, clamped to the ring size.
size_t WindowEpochs(int64_t window_ns, int64_t epoch_ns, size_t ring) {
  if (window_ns <= 0) return 1;
  auto n = static_cast<size_t>((window_ns + epoch_ns - 1) / epoch_ns);
  return std::min(std::max<size_t>(n, 1), ring);
}

}  // namespace

WindowedRate::WindowedRate(WindowOptions options)
    : options_(std::move(options)) {
  options_.epoch_ns = SanitizeEpochNs(options_.epoch_ns);
  options_.epochs = SanitizeEpochs(options_.epochs);
  slots_ = std::make_unique<Slot[]>(options_.epochs);
}

int64_t WindowedRate::NowNs() const {
  return options_.clock ? options_.clock() : SteadyNowNs();
}

void WindowedRate::Add(uint64_t n) {
  const int64_t epoch = NowNs() / options_.epoch_ns;
  Slot& slot = slots_[static_cast<size_t>(epoch) % options_.epochs];
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (slot.epoch.load(std::memory_order_acquire) == epoch) {
      slot.count.fetch_add(n, std::memory_order_relaxed);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int64_t stored = slot.epoch.load(std::memory_order_relaxed);
  // A writer that computed its epoch before a long stall may arrive after
  // the slot already rotated forward; its event belongs to an epoch the ring
  // no longer tracks, so it is dropped rather than corrupting a newer epoch.
  if (stored > epoch) return;
  if (stored < epoch) {
    slot.count.store(0, std::memory_order_relaxed);
    slot.epoch.store(epoch, std::memory_order_release);
  }
  slot.count.fetch_add(n, std::memory_order_relaxed);
}

uint64_t WindowedRate::SumOver(int64_t window_ns) const {
  const int64_t epoch = NowNs() / options_.epoch_ns;
  const size_t span = WindowEpochs(window_ns, options_.epoch_ns,
                                   options_.epochs);
  const int64_t oldest = epoch - static_cast<int64_t>(span) + 1;
  uint64_t total = 0;
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (size_t i = 0; i < options_.epochs; ++i) {
    const int64_t e = slots_[i].epoch.load(std::memory_order_acquire);
    if (e >= oldest && e <= epoch) {
      total += slots_[i].count.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double WindowedRate::RatePerSec(int64_t window_ns) const {
  if (window_ns <= 0) return 0.0;
  return static_cast<double>(SumOver(window_ns)) /
         (static_cast<double>(window_ns) * 1e-9);
}

SlidingWindowHistogram::SlidingWindowHistogram(WindowOptions options,
                                               const std::vector<double>* bounds)
    : options_(std::move(options)),
      bounds_(bounds != nullptr ? *bounds
                                : Histogram::DefaultLatencyBoundsUs()) {
  options_.epoch_ns = SanitizeEpochNs(options_.epoch_ns);
  options_.epochs = SanitizeEpochs(options_.epochs);
  slots_.reserve(options_.epochs);
  for (size_t i = 0; i < options_.epochs; ++i) {
    slots_.push_back(std::make_unique<Slot>(bounds_));
  }
}

int64_t SlidingWindowHistogram::NowNs() const {
  return options_.clock ? options_.clock() : SteadyNowNs();
}

void SlidingWindowHistogram::Record(double value) {
  const int64_t epoch = NowNs() / options_.epoch_ns;
  Slot& slot = *slots_[static_cast<size_t>(epoch) % options_.epochs];
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (slot.epoch.load(std::memory_order_acquire) == epoch) {
      slot.hist.Observe(value);
      return;
    }
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  const int64_t stored = slot.epoch.load(std::memory_order_relaxed);
  if (stored > epoch) return;  // stale writer; see WindowedRate::Add
  if (stored < epoch) {
    slot.hist.Reset();
    slot.epoch.store(epoch, std::memory_order_release);
  }
  slot.hist.Observe(value);
}

WindowSnapshot SlidingWindowHistogram::SnapshotOver(int64_t window_ns) const {
  const int64_t epoch = NowNs() / options_.epoch_ns;
  const size_t span = WindowEpochs(window_ns, options_.epoch_ns,
                                   options_.epochs);
  const int64_t oldest = epoch - static_cast<int64_t>(span) + 1;

  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  WindowSnapshot snap;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& slot : slots_) {
      const int64_t e = slot->epoch.load(std::memory_order_acquire);
      if (e < oldest || e > epoch) continue;
      std::vector<uint64_t> counts = slot->hist.BucketCounts();
      for (size_t b = 0; b < merged.size(); ++b) merged[b] += counts[b];
      snap.sum += slot->hist.Sum();
    }
  }
  for (uint64_t c : merged) snap.count += c;
  if (snap.count == 0) return WindowSnapshot{};
  snap.mean = snap.sum / static_cast<double>(snap.count);
  snap.p50 = QuantileFromBucketCounts(bounds_, merged, 0.50);
  snap.p95 = QuantileFromBucketCounts(bounds_, merged, 0.95);
  snap.p99 = QuantileFromBucketCounts(bounds_, merged, 0.99);
  return snap;
}

uint64_t SlidingWindowHistogram::CountAbove(int64_t window_ns,
                                            double threshold) const {
  const int64_t epoch = NowNs() / options_.epoch_ns;
  const size_t span = WindowEpochs(window_ns, options_.epoch_ns,
                                   options_.epochs);
  const int64_t oldest = epoch - static_cast<int64_t>(span) + 1;

  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto& slot : slots_) {
      const int64_t e = slot->epoch.load(std::memory_order_acquire);
      if (e < oldest || e > epoch) continue;
      std::vector<uint64_t> counts = slot->hist.BucketCounts();
      for (size_t b = 0; b < merged.size(); ++b) merged[b] += counts[b];
    }
  }
  double above = 0.0;
  double lower = 0.0;  // observed values are nonnegative latencies
  for (size_t b = 0; b < bounds_.size(); ++b) {
    const double upper = bounds_[b];
    if (upper <= threshold) {
      lower = upper;
      continue;
    }
    double fraction = 1.0;
    if (threshold > lower && upper > lower) {
      fraction = (upper - threshold) / (upper - lower);
    }
    above += fraction * static_cast<double>(merged[b]);
    lower = upper;
  }
  above += static_cast<double>(merged[bounds_.size()]);  // overflow bucket
  return static_cast<uint64_t>(above + 0.5);
}

}  // namespace pqsda::obs
