#include "obs/retire.h"

#include <mutex>
#include <vector>

namespace pqsda::obs {

void RetireForever(void* p) {
  if (p == nullptr) return;
  // Heap-allocated so the parking lot itself survives static destruction;
  // the function-local static pointers keep it (and everything parked in
  // it) a garbage-collection root for the whole process lifetime.
  static std::mutex* mu = new std::mutex();
  static std::vector<void*>* retired = new std::vector<void*>();
  std::lock_guard<std::mutex> lock(*mu);
  retired->push_back(p);
}

}  // namespace pqsda::obs
