#ifndef PQSDA_OBS_SLIDING_WINDOW_H_
#define PQSDA_OBS_SLIDING_WINDOW_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "obs/metrics.h"

namespace pqsda::obs {

/// Time base shared by the windowed aggregators. The clock is injectable so
/// tests can step epochs deterministically instead of sleeping; the default
/// reads std::chrono::steady_clock.
struct WindowOptions {
  /// Width of one ring epoch. Windowed queries are answered at this
  /// resolution: a "last 10s" query over 5s epochs sums the 2 most recent
  /// epochs (including the partially-filled current one).
  int64_t epoch_ns = 5'000'000'000;
  /// Ring size. Coverage = epochs * epoch_ns (default 64 * 5s = 5m20s), so
  /// the ring answers 10s/1m/5m windows without ever allocating after
  /// construction.
  size_t epochs = 64;
  /// Monotonic nanosecond clock; null means steady_clock.
  std::function<int64_t()> clock;
};

/// Event counter over a ring of epochs: Add() is one shared-lock acquire plus
/// a relaxed atomic add on the steady-state path (the exclusive lock is taken
/// only on the first event of a new epoch, to retire the slot the epoch
/// reuses). SumOver/RatePerSec answer "events in the trailing W" — the live
/// QPS / error-rate / hit-rate numbers a scrape surface needs, where the
/// since-process-start counters in MetricsRegistry cannot distinguish a storm
/// one minute ago from one an hour ago.
class WindowedRate {
 public:
  explicit WindowedRate(WindowOptions options = {});

  void Add(uint64_t n = 1);

  /// Total events recorded in the trailing `window_ns` (clamped to the
  /// ring's coverage). The current partially-elapsed epoch is included.
  uint64_t SumOver(int64_t window_ns) const;

  /// SumOver / window seconds.
  double RatePerSec(int64_t window_ns) const;

  const WindowOptions& options() const { return options_; }

 private:
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> count{0};
  };

  int64_t NowNs() const;

  WindowOptions options_;
  /// Exclusive only while a slot is retired into a new epoch; Add and
  /// SumOver hold it shared, so recording stays concurrent.
  mutable std::shared_mutex mu_;
  std::unique_ptr<Slot[]> slots_;
};

/// Point-in-time aggregate of a sliding window's observations.
struct WindowSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Latency histogram over a ring of epochs: each epoch owns a full
/// fixed-bucket Histogram, and SnapshotOver merges the in-window epochs'
/// bucket counts to report windowed p50/p95/p99 — "p99 over the last minute"
/// instead of p99 since process start. Record() costs the same as
/// Histogram::Observe plus a shared-lock acquire; epoch rotation reuses the
/// slot's histogram in place (Reset), so steady-state serving is
/// allocation-free.
class SlidingWindowHistogram {
 public:
  /// `bounds` as in Histogram; null means Histogram::DefaultLatencyBoundsUs.
  explicit SlidingWindowHistogram(WindowOptions options = {},
                                  const std::vector<double>* bounds = nullptr);

  void Record(double value);

  WindowSnapshot SnapshotOver(int64_t window_ns) const;

  /// Observations in the trailing window whose value exceeded `threshold`,
  /// at bucket resolution: buckets entirely above the threshold count in
  /// full, the bucket containing it contributes a linearly-interpolated
  /// share, and the overflow bucket always counts (its observations are at
  /// least the last bound). This is what the SLO engine's latency burn
  /// rates read; thresholds should sit on (or near) bucket bounds for
  /// exact answers.
  uint64_t CountAbove(int64_t window_ns, double threshold) const;

  const std::vector<double>& bounds() const { return bounds_; }
  const WindowOptions& options() const { return options_; }

 private:
  struct Slot {
    explicit Slot(const std::vector<double>& bounds) : hist(bounds) {}
    std::atomic<int64_t> epoch{-1};
    Histogram hist;
  };

  int64_t NowNs() const;

  WindowOptions options_;
  std::vector<double> bounds_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_SLIDING_WINDOW_H_
