#ifndef PQSDA_OBS_STAGE_PROFILER_H_
#define PQSDA_OBS_STAGE_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>

#include "obs/sliding_window.h"

namespace pqsda::obs {

/// The attribution buckets of the serving pipeline. kRequest is the
/// pseudo-stage covering the whole admitted request (everything between
/// BeginRequest and EndRequest); the others map 1:1 onto the pipeline's
/// trace spans:
///   kCache           - suggestion-cache lookup ("cache" has no trace span)
///   kExpansion       - §IV-A compact build ("expansion")
///   kSolve           - Eq. 15 regularization solve ("regularization_solve")
///   kSelection       - Algorithm 1 rounds ("hitting_time_selection") or the
///                      walk-only scatter on rung 2 ("walk_only_scatter")
///   kPersonalization - §V-B UPM rerank ("personalization")
///
/// The rebuild/ingest path shares the same machinery under its own lane
/// (kProfileRebuildLane): IndexManager brackets each rebuild with
/// BeginRequest/EndRequest and marks its phases with the kDrain..kPublish
/// stages, so /profilez shows where rebuild time goes alongside serving.
enum class ProfileStage : size_t {
  kRequest = 0,
  kCache,
  kExpansion,
  kSolve,
  kSelection,
  kPersonalization,
  // Rebuild-path stages (only folded into the rebuild lane).
  kDrain,      // delta-stream drain + record concatenation
  kSessionize, // record -> session grouping
  kGraphBuild, // bipartite representation + corpus
  kPublish,    // snapshot swap + gauge updates
  // Sharded serving: cross-shard fetch + ordered merge time of the
  // scatter-gather coordinator. Nests inside kExpansion (the backend runs
  // under the expansion scope); ProfilezJson clamps self-time at zero, so
  // the overlap is safe and the leaf reads as "of the expansion, this much
  // was spent gathering from remote shards".
  kScatterGather,
};

inline constexpr size_t kProfileStageCount = 11;
/// Lanes 0..3 are DegradationRung values; lane 4 is the rebuild path.
inline constexpr size_t kProfileRungCount = 5;
inline constexpr size_t kProfileRebuildLane = 4;

const char* ProfileStageName(ProfileStage stage);

/// Aggregate cost of one stage: how many times it ran, wall time, thread
/// CPU time, and a stage-defined work counter (walk steps for expansion,
/// solver iterations for the solve, candidates scored for selection, UPM
/// words scored for personalization).
struct StageCost {
  uint64_t count = 0;
  int64_t wall_ns = 0;
  int64_t cpu_ns = 0;
  uint64_t work = 0;
};

/// CLOCK_THREAD_CPUTIME_ID in nanoseconds (0 where unavailable). CPU time
/// is attributed to the thread that owns the stage scope; cycles a pool
/// worker spends help-executing another request's parallel chunks land on
/// the helper's current scope — wall time is the authoritative per-stage
/// total, CPU time shows on-thread compute vs. wait.
int64_t ThreadCpuNowNs();

/// Windowed per-stage, per-degradation-rung cost attribution with
/// near-zero request-path overhead: stage scopes accumulate into a plain
/// thread-local struct (two clock reads per stage, no locks, no atomics),
/// and EndRequest folds the finished request once into a ring of epochs
/// (same shared-lock + relaxed-atomic discipline as SlidingWindowHistogram)
/// plus the cumulative pqsda.profile.* counters.
///
/// The engine brackets every admitted request with BeginRequest/EndRequest;
/// the pipeline stages mark themselves with StageScope/AddWork and cost
/// nothing outside a bracketed request (or when the profiler is disabled).
class StageProfiler {
 public:
  explicit StageProfiler(WindowOptions options = {});

  /// The instance the request path folds into. Created on first use with
  /// default window options, enabled.
  static StageProfiler& Default();
  /// Replaces Default() (the predecessor leaks deliberately — request
  /// threads may hold references across the swap).
  static StageProfiler& Install(WindowOptions options);

  /// Toggles attribution. Disabling stops BeginRequest from arming the
  /// thread-local accumulator, so stage scopes degrade to a single
  /// thread-local bool read.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Arms the calling thread's accumulator for one request. A request is
  /// profiled entirely on the thread that entered it.
  void BeginRequest();
  /// Folds the accumulated stages into the window ring under the rung the
  /// request was served at (DegradationRung numeric value), and disarms
  /// the thread. No-op when BeginRequest did not arm.
  void EndRequest(size_t rung);

  /// Adds stage-defined work units to the current thread's in-flight
  /// request; no-op outside BeginRequest/EndRequest.
  static void AddWork(ProfileStage stage, uint64_t items);

  struct Snapshot {
    StageCost total[kProfileStageCount];
    StageCost per_rung[kProfileRungCount][kProfileStageCount];
  };
  /// Merged per-stage costs over the trailing window (clamped to the
  /// ring's coverage, current epoch included).
  Snapshot SnapshotOver(int64_t window_ns) const;

  /// Flame-graph-ready JSON tree for /profilez: root "suggest" node, one
  /// child per rung that served traffic, stage leaves underneath plus a
  /// "self" leaf for request time outside any stage scope.
  std::string ProfilezJson(int64_t window_ns) const;

  const WindowOptions& options() const { return options_; }

 private:
  struct Cell {
    std::atomic<uint64_t> count{0};
    std::atomic<int64_t> wall_ns{0};
    std::atomic<int64_t> cpu_ns{0};
    std::atomic<uint64_t> work{0};
  };
  struct Slot {
    std::atomic<int64_t> epoch{-1};
    Cell cells[kProfileRungCount][kProfileStageCount];
  };

  int64_t NowNs() const;
  void Fold(size_t rung, const StageCost (&stages)[kProfileStageCount]);

  WindowOptions options_;
  std::atomic<bool> enabled_{true};
  /// Exclusive only while a slot is retired into a new epoch; Fold and
  /// SnapshotOver hold it shared.
  mutable std::shared_mutex mu_;
  std::unique_ptr<Slot[]> slots_;
};

/// RAII stage bracket: measures wall + thread-CPU time of the enclosed
/// block into the current request's thread-local accumulator. Free when no
/// request is armed on this thread.
class StageScope {
 public:
  explicit StageScope(ProfileStage stage);
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  ProfileStage stage_;
  bool armed_;
  int64_t wall0_ = 0;
  int64_t cpu0_ = 0;
};

}  // namespace pqsda::obs

#endif  // PQSDA_OBS_STAGE_PROFILER_H_
