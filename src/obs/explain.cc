#include "obs/explain.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace pqsda::obs {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ULL;

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

constexpr const char* kRungNames[4] = {"full", "truncated_solve", "walk_only",
                                       "cache_only"};

thread_local ExplainRecord* tls_explain = nullptr;

}  // namespace

void Fingerprint64::Mix(std::string_view s) {
  for (unsigned char c : s) {
    h_ ^= c;
    h_ *= kFnvPrime;
  }
  // Length terminator so ("ab","c") never collides with ("a","bc").
  Mix(static_cast<uint64_t>(s.size()));
}

void Fingerprint64::Mix(uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h_ ^= (v >> (b * 8)) & 0xff;
    h_ *= kFnvPrime;
  }
}

void Fingerprint64::MixDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  Mix(bits);
}

std::string FingerprintToHex(uint64_t fingerprint) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fingerprint);
  return buf;
}

bool FingerprintFromHex(std::string_view hex, uint64_t* fingerprint) {
  if (hex.empty() || hex.size() > 16) return false;
  uint64_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *fingerprint = v;
  return true;
}

ExplainRecord* CurrentExplain() { return tls_explain; }

ExplainScope::ExplainScope(ExplainRecord* record) : prev_(tls_explain) {
  tls_explain = record;
}

ExplainScope::~ExplainScope() { tls_explain = prev_; }

std::string ExplainRecord::ToJson() const {
  std::string out = "{\"request_id\":" + std::to_string(request_id);
  out += ",\"query\":\"" + JsonEscape(query) + "\"";
  out += ",\"user\":" + std::to_string(user);
  out += ",\"k\":" + std::to_string(k);
  out += ",\"generation\":" + std::to_string(generation);
  out += ",\"rung\":" + std::to_string(rung);
  out += ",\"rung_name\":\"";
  out += rung < 4 ? kRungNames[rung] : "unknown";
  out += "\"";
  out += ",\"cache_hit\":";
  out += cache_hit ? "true" : "false";
  out += ",\"walk_only\":";
  out += walk_only ? "true" : "false";
  out += ",\"personalized\":";
  out += personalized ? "true" : "false";
  if (personalized) {
    out += ",\"preference_weight\":" + std::to_string(preference_weight);
  }
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  if (!ok) out += ",\"status\":\"" + JsonEscape(status) + "\"";
  out += ",\"total_us\":" + std::to_string(total_us);
  out += ",\"fingerprint\":\"" + FingerprintToHex(fingerprint) + "\"";
  out += ",\"candidates\":[";
  for (size_t i = 0; i < candidates.size(); ++i) {
    const ExplainCandidate& c = candidates[i];
    if (i > 0) out += ",";
    out += "{\"query\":\"" + JsonEscape(c.query) + "\"";
    out += ",\"final_rank\":" + std::to_string(c.final_rank);
    out += ",\"score\":" + Num(c.score);
    out += ",\"relevance\":" + Num(c.relevance);
    if (!walk_only) {
      out += ",\"selection_round\":" + std::to_string(c.selection_round);
      out += ",\"hitting_time\":" + Num(c.hitting_time);
      if (c.chain_rank[0] != SIZE_MAX) {
        out += ",\"chain_rank\":{";
        for (size_t x = 0; x < kExplainChainCount; ++x) {
          if (x > 0) out += ",";
          out += "\"" + std::string(kExplainChainNames[x]) +
                 "\":" + std::to_string(c.chain_rank[x]);
        }
        out += "}";
      }
    }
    if (personalized) {
      out += ",\"upm_preference\":" + Num(c.upm_preference);
      out += ",\"borda\":{\"diversification\":" + Num(c.borda_diversification);
      out += ",\"preference\":" + Num(c.borda_preference);
      out += ",\"total\":" + Num(c.borda_diversification + c.borda_preference);
      out += "}";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string ExplainRecord::Render() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "request %llu \"%s\" | generation %llu | rung %zu (%s) | "
                "%s%s| %lld us | fingerprint %s\n",
                static_cast<unsigned long long>(request_id), query.c_str(),
                static_cast<unsigned long long>(generation), rung,
                rung < 4 ? kRungNames[rung] : "?",
                cache_hit ? "cache hit " : "",
                personalized ? "personalized " : "",
                static_cast<long long>(total_us),
                FingerprintToHex(fingerprint).c_str());
  out += buf;
  if (!ok) {
    out += "  status: " + status + "\n";
    return out;
  }
  if (candidates.empty()) {
    out += cache_hit
               ? "  (cache hit: the pipeline did not run; replay the request "
                 "or re-ask with explain to decompose)\n"
               : "  (no candidates)\n";
    return out;
  }
  for (const ExplainCandidate& c : candidates) {
    std::snprintf(buf, sizeof(buf), "  %2zu. %-28s F*=%-11.6g",
                  c.final_rank + 1, c.query.c_str(), c.relevance);
    out += buf;
    if (!walk_only) {
      std::snprintf(buf, sizeof(buf), " round=%zu h=%-10.5g",
                    c.selection_round, c.hitting_time);
      out += buf;
      if (c.chain_rank[0] != SIZE_MAX) {
        std::snprintf(buf, sizeof(buf), " chains[U/S/T]=%zu/%zu/%zu",
                      c.chain_rank[0], c.chain_rank[1], c.chain_rank[2]);
        out += buf;
      }
    }
    if (personalized) {
      std::snprintf(buf, sizeof(buf),
                    " upm=%-9.4g borda=%.4g+%.4g=%.5g", c.upm_preference,
                    c.borda_diversification, c.borda_preference,
                    c.borda_diversification + c.borda_preference);
      out += buf;
    }
    out += "\n";
  }
  return out;
}

ExplainStore::ExplainStore(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void ExplainStore::Add(std::shared_ptr<const ExplainRecord> record) {
  if (record == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(record));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::shared_ptr<const ExplainRecord> ExplainStore::Find(
    uint64_t request_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Newest first: a reused id (never in practice — ids are monotonic)
  // resolves to the most recent record.
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if ((*it)->request_id == request_id) return *it;
  }
  return nullptr;
}

std::vector<std::pair<uint64_t, std::string>> ExplainStore::Index() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<uint64_t, std::string>> out;
  out.reserve(ring_.size());
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    out.emplace_back((*it)->request_id, (*it)->query);
  }
  return out;
}

size_t ExplainStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

}  // namespace pqsda::obs
