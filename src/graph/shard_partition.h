#ifndef PQSDA_GRAPH_SHARD_PARTITION_H_
#define PQSDA_GRAPH_SHARD_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/shard_router.h"
#include "graph/multi_bipartite.h"

namespace pqsda {

/// Partitioning knobs for the sharded serving path.
struct ShardPartitionOptions {
  size_t shards = 1;
  /// Query rows whose total query->object degree (summed over the three
  /// bipartites) reaches this are *hot boundary rows*: they are reached
  /// from nearly every expansion frontier, so instead of paying a
  /// cross-shard fetch per round they are replicated to every shard and
  /// answered locally. 0 disables replication (strict ownership — what the
  /// routing-discipline tests use).
  size_t hot_row_min_degree = 48;
};

/// A query-hash partition of one MultiBipartite: which shard owns each
/// query row, which rows are replicated everywhere, and a content
/// fingerprint per shard that detects whether a rebuild actually changed
/// the shard's slice of the graph.
///
/// The partition is a *view* over the immutable snapshot, not a physical
/// re-layout: every shard reads the shared CSR storage, and ownership is
/// enforced at the fetch API (ShardedWalkBackend), where a read of a row
/// that is neither owned nor replicated is a routing bug the differential
/// harness turns into a loud failure. Splitting the physical row storage
/// behind the same view API is mechanical follow-up work; the semantics —
/// what the scatter-gather layer is allowed to read where — are fixed here.
struct ShardPartition {
  size_t shards = 1;
  /// Owning shard of each global query id (ShardRouter::QueryShardOf over
  /// the query *string*, so ownership survives id renumbering between
  /// generations).
  std::vector<uint32_t> query_owner;
  /// 1 for hot boundary rows replicated to every shard.
  std::vector<uint8_t> hot;
  size_t replicated_rows = 0;

  struct PerShard {
    size_t owned_queries = 0;
    /// query->object nonzeros of the owned rows, summed over the three
    /// bipartites (the shard's share of the walkable graph).
    size_t owned_nnz = 0;
    /// Content fingerprint of everything this shard serves (owned + hot
    /// rows). Defined over query/URL/term *strings* and the full
    /// object->query row contents of every adjacent object — never
    /// interned ids — and combined order-independently, so it is stable
    /// under the id renumbering a rebuild may cause and changes exactly
    /// when the data a walk through the shard's rows can read changes.
    /// Covering adjacent objects' whole rows (not just their identities)
    /// matters: an edge-count delta on a query owned by another shard
    /// still changes the contributions flowing through a shared object
    /// into this shard's rows. The sharded engine bumps a shard's
    /// generation only on a fingerprint change, which is what lets a
    /// single-shard delta invalidate only the cache entries whose served
    /// content it could actually have affected.
    uint64_t content_fingerprint = 0;
  };
  std::vector<PerShard> shard;

  bool Owns(size_t s, StringId q) const { return query_owner[q] == s; }
  /// Whether shard `s` can answer a fetch of query row `q` (owned or hot).
  bool HasRow(size_t s, StringId q) const {
    return query_owner[q] == s || hot[q] != 0;
  }
};

/// Partitions `mb` into `options.shards` shards. Deterministic: same
/// representation and options, same partition (including fingerprints).
ShardPartition BuildShardPartition(const MultiBipartite& mb,
                                   const ShardPartitionOptions& options);

}  // namespace pqsda

#endif  // PQSDA_GRAPH_SHARD_PARTITION_H_
