#ifndef PQSDA_GRAPH_MULTI_BIPARTITE_H_
#define PQSDA_GRAPH_MULTI_BIPARTITE_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/interner.h"
#include "graph/bipartite.h"
#include "log/record.h"
#include "log/sessionizer.h"

namespace pqsda {

/// The three bipartites of §III.
enum class BipartiteKind { kUrl = 0, kSession = 1, kTerm = 2 };
inline constexpr std::array<BipartiteKind, 3> kAllBipartites = {
    BipartiteKind::kUrl, BipartiteKind::kSession, BipartiteKind::kTerm};

/// Edge-weight scheme: raw co-occurrence counts, or cfiqf (Eqs. 4–6).
enum class EdgeWeighting { kRaw, kCfIqf };

/// The multi-bipartite query-log representation of §III: one shared query
/// side (distinct query strings) connected to URLs, sessions and terms
/// through three bipartite graphs.
class MultiBipartite {
 public:
  /// Builds the representation from a (user, time)-sorted log and its
  /// sessions. Stopword terms are excluded from the term bipartite.
  static MultiBipartite Build(const std::vector<QueryLogRecord>& records,
                              const std::vector<Session>& sessions,
                              EdgeWeighting weighting);

  size_t num_queries() const { return queries_.size(); }

  /// Dense id of a query string; kInvalidStringId if the query never
  /// occurred in the log.
  StringId QueryId(const std::string& query) const {
    return queries_.Lookup(query);
  }
  const std::string& QueryString(StringId id) const {
    return queries_.Get(id);
  }
  const StringInterner& queries() const { return queries_; }
  const StringInterner& urls() const { return urls_; }
  const StringInterner& terms() const { return terms_; }

  const BipartiteGraph& graph(BipartiteKind kind) const {
    return graphs_[static_cast<size_t>(kind)];
  }

  EdgeWeighting weighting() const { return weighting_; }

  /// Total log occurrences of each query (used as a popularity prior by some
  /// baselines).
  const std::vector<uint32_t>& query_counts() const { return query_counts_; }

 private:
  StringInterner queries_;
  StringInterner urls_;
  StringInterner terms_;
  std::array<BipartiteGraph, 3> graphs_;
  std::vector<uint32_t> query_counts_;
  EdgeWeighting weighting_ = EdgeWeighting::kRaw;
};

}  // namespace pqsda

#endif  // PQSDA_GRAPH_MULTI_BIPARTITE_H_
