#ifndef PQSDA_GRAPH_BIPARTITE_H_
#define PQSDA_GRAPH_BIPARTITE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/csr_matrix.h"

namespace pqsda {

/// A weighted bipartite graph between queries (left side, dense ids) and
/// objects (right side, dense ids — URLs, sessions or terms). Stores both
/// orientations plus per-object distinct-query degrees (the n^X(o_j) counts
/// of Eqs. 1–3).
class BipartiteGraph {
 public:
  BipartiteGraph() = default;

  const CsrMatrix& query_to_object() const { return q2o_; }
  const CsrMatrix& object_to_query() const { return o2q_; }
  size_t num_queries() const { return q2o_.rows(); }
  size_t num_objects() const { return q2o_.cols(); }

  /// Number of distinct queries connected to object j.
  uint32_t ObjectQueryDegree(size_t j) const { return object_degree_[j]; }

  /// Inverse query frequency of object j (Eqs. 1–3):
  /// log(num_distinct_queries / n(o_j)), clamped at >= 0.
  double Iqf(size_t j) const;

  /// Returns a copy whose edge weights are cfiqf (Eqs. 4–6): each raw count
  /// c_ij scaled by Iqf(j).
  BipartiteGraph ApplyIqf() const;

  /// Incremental builder; finalize with Build().
  class Builder {
   public:
    /// Accumulates weight onto edge (query, object).
    void AddEdge(uint32_t query, uint32_t object, double weight = 1.0);
    /// Assembles the graph. `num_queries`/`num_objects` must exceed every id
    /// seen by AddEdge.
    BipartiteGraph Build(size_t num_queries, size_t num_objects) &&;

   private:
    std::vector<Triplet> triplets_;
  };

 private:
  CsrMatrix q2o_;
  CsrMatrix o2q_;
  std::vector<uint32_t> object_degree_;
};

}  // namespace pqsda

#endif  // PQSDA_GRAPH_BIPARTITE_H_
