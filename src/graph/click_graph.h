#ifndef PQSDA_GRAPH_CLICK_GRAPH_H_
#define PQSDA_GRAPH_CLICK_GRAPH_H_

#include <string>
#include <vector>

#include "common/interner.h"
#include "graph/bipartite.h"
#include "graph/multi_bipartite.h"
#include "log/record.h"

namespace pqsda {

/// The conventional query–URL click graph (Fig. 2(a)); the substrate the
/// baseline suggesters (FRW, BRW, HT, DQS, PHT) were designed for.
class ClickGraph {
 public:
  /// Builds from a log; only records with clicks contribute edges, but every
  /// distinct query gets a node (possibly isolated).
  static ClickGraph Build(const std::vector<QueryLogRecord>& records,
                          EdgeWeighting weighting);

  size_t num_queries() const { return queries_.size(); }
  StringId QueryId(const std::string& query) const {
    return queries_.Lookup(query);
  }
  const std::string& QueryString(StringId id) const {
    return queries_.Get(id);
  }
  const StringInterner& queries() const { return queries_; }
  const StringInterner& urls() const { return urls_; }
  const BipartiteGraph& graph() const { return graph_; }

  /// Row-normalized query->URL transition matrix (forward walk step).
  const CsrMatrix& forward() const { return forward_; }
  /// Row-normalized URL->query transition matrix (backward walk step).
  const CsrMatrix& backward() const { return backward_; }

  /// Total log occurrences of each query.
  const std::vector<uint32_t>& query_counts() const { return query_counts_; }

 private:
  StringInterner queries_;
  StringInterner urls_;
  BipartiteGraph graph_;
  CsrMatrix forward_;
  CsrMatrix backward_;
  std::vector<uint32_t> query_counts_;
};

}  // namespace pqsda

#endif  // PQSDA_GRAPH_CLICK_GRAPH_H_
