#include "graph/bipartite.h"

#include <algorithm>
#include <cmath>

namespace pqsda {

double BipartiteGraph::Iqf(size_t j) const {
  uint32_t n = object_degree_[j];
  if (n == 0) return 0.0;
  double iqf = std::log(static_cast<double>(num_queries()) /
                        static_cast<double>(n));
  return std::max(iqf, 0.0);
}

BipartiteGraph BipartiteGraph::ApplyIqf() const {
  BipartiteGraph out;
  out.q2o_ = q2o_;
  std::vector<double> factor(num_objects());
  for (size_t j = 0; j < num_objects(); ++j) {
    // Keep a small floor so ubiquitous objects do not disconnect the graph
    // entirely (iqf == 0 would delete the edge).
    factor[j] = std::max(Iqf(j), 1e-3);
  }
  out.q2o_.ScaleColumns(factor);
  out.o2q_ = out.q2o_.Transpose();
  out.object_degree_ = object_degree_;
  return out;
}

void BipartiteGraph::Builder::AddEdge(uint32_t query, uint32_t object,
                                      double weight) {
  triplets_.push_back(Triplet{query, object, weight});
}

BipartiteGraph BipartiteGraph::Builder::Build(size_t num_queries,
                                              size_t num_objects) && {
  BipartiteGraph g;
  g.q2o_ = CsrMatrix::FromTriplets(num_queries, num_objects,
                                   std::move(triplets_));
  g.o2q_ = g.q2o_.Transpose();
  g.object_degree_.assign(num_objects, 0);
  for (size_t j = 0; j < num_objects; ++j) {
    g.object_degree_[j] = static_cast<uint32_t>(g.o2q_.RowNnz(j));
  }
  return g;
}

}  // namespace pqsda
