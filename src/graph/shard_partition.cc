#include "graph/shard_partition.h"

#include <bit>

#include "graph/bipartite.h"
#include "graph/csr_matrix.h"

namespace pqsda {

namespace {

// Order-independent pairwise combine: the entries of a CSR row are listed
// in object-id order, and object ids (like query ids) are renumbered by
// every rebuild, so per-entry hashes must be combined commutatively
// (wrapping addition) to make the row fingerprint content-defined.
uint64_t Mix2(uint64_t a, uint64_t b) {
  return ShardRouter::MixUser(a ^ ShardRouter::MixUser(b));
}

uint64_t DoubleBits(double v) { return std::bit_cast<uint64_t>(v); }

}  // namespace

ShardPartition BuildShardPartition(const MultiBipartite& mb,
                                   const ShardPartitionOptions& options) {
  ShardPartition p;
  p.shards = options.shards < 1 ? 1 : options.shards;
  const size_t nq = mb.num_queries();
  p.query_owner.resize(nq);
  p.hot.assign(nq, 0);
  p.shard.resize(p.shards);

  ShardRouter router{p.shards};

  // Content hash of every query string (used both for the session-row
  // content hashes and for the per-row fingerprints).
  std::vector<uint64_t> query_hash(nq);
  for (StringId q = 0; q < nq; ++q) {
    query_hash[q] = ShardRouter::HashBytes(mb.QueryString(q));
  }

  // Content hash of every object, per bipartite: the object's identity
  // (URL/term string; sessions have none — their membership is their
  // identity) mixed with the *content* of its object->query row (query
  // string hashes + value bits, combined order-independently). The row
  // contents are part of every kind's hash, not just the session kind's,
  // because the walk reads the full o2q row — values and RowSum — of every
  // object adjacent to a frontier query: a changed edge count c_zu anywhere
  // in an object's row (a duplicate record, say) changes the contributions
  // flowing through that object to *every* adjacent query, including ones
  // owned by other shards, so it must perturb all of their row
  // fingerprints or the cache's per-shard validation vectors would pass on
  // stale entries.
  std::array<std::vector<uint64_t>, 3> obj_hash;
  for (BipartiteKind kind : kAllBipartites) {
    const size_t ki = static_cast<size_t>(kind);
    const CsrMatrix& o2q = mb.graph(kind).object_to_query();
    obj_hash[ki].resize(o2q.rows());
    for (size_t obj = 0; obj < o2q.rows(); ++obj) {
      uint64_t h = 0;
      if (kind == BipartiteKind::kUrl) {
        h = ShardRouter::HashBytes(mb.urls().Get(static_cast<StringId>(obj)));
      } else if (kind == BipartiteKind::kTerm) {
        h = ShardRouter::HashBytes(mb.terms().Get(static_cast<StringId>(obj)));
      }
      uint64_t row = 0;
      auto idx = o2q.RowIndices(obj);
      auto val = o2q.RowValues(obj);
      for (size_t k = 0; k < idx.size(); ++k) {
        row += Mix2(query_hash[idx[k]], DoubleBits(val[k]));
      }
      obj_hash[ki][obj] = Mix2(h, row);
    }
  }

  // Ownership, hot rows, and per-row fingerprints.
  std::vector<uint64_t> row_fp(nq);
  for (StringId q = 0; q < nq; ++q) {
    p.query_owner[q] =
        static_cast<uint32_t>(router.QueryShardOf(mb.QueryString(q)));
    size_t degree = 0;
    // Sequential FNV-style chain over the three per-kind row hashes: the
    // kind order is fixed, so a chain is safe here; only *within* a row is
    // the combine order-independent.
    uint64_t fp = query_hash[q];
    for (BipartiteKind kind : kAllBipartites) {
      const size_t ki = static_cast<size_t>(kind);
      const CsrMatrix& q2o = mb.graph(kind).query_to_object();
      auto idx = q2o.RowIndices(q);
      auto val = q2o.RowValues(q);
      degree += idx.size();
      uint64_t row = 0;
      for (size_t k = 0; k < idx.size(); ++k) {
        row += Mix2(obj_hash[ki][idx[k]], DoubleBits(val[k]));
      }
      fp = Mix2(fp, row);
    }
    row_fp[q] = fp;
    if (options.hot_row_min_degree > 0 &&
        degree >= options.hot_row_min_degree) {
      p.hot[q] = 1;
      ++p.replicated_rows;
    }
    ShardPartition::PerShard& owner = p.shard[p.query_owner[q]];
    ++owner.owned_queries;
    owner.owned_nnz += degree;
  }

  // Shard fingerprint: wrapping sum of the fingerprints of every row the
  // shard serves (owned rows plus the hot replicas — a hot row that changes
  // changes every shard's content, honestly).
  for (StringId q = 0; q < nq; ++q) {
    for (size_t s = 0; s < p.shards; ++s) {
      if (p.HasRow(s, q)) p.shard[s].content_fingerprint += row_fp[q];
    }
  }
  return p;
}

}  // namespace pqsda
