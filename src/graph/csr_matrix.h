#ifndef PQSDA_GRAPH_CSR_MATRIX_H_
#define PQSDA_GRAPH_CSR_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "common/aligned.h"

namespace pqsda {

/// One (row, col, value) entry used to assemble a CsrMatrix.
struct Triplet {
  uint32_t row = 0;
  uint32_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix of doubles. The workhorse of the graph and
/// solver layers: bipartite adjacency, query-affinity products and the
/// regularization system (Eq. 15) are all CSR.
class CsrMatrix {
 public:
  /// Empty rows x cols matrix.
  CsrMatrix(size_t rows = 0, size_t cols = 0);

  /// Assembles from triplets; duplicate (row, col) entries are summed and
  /// zero-valued entries dropped.
  static CsrMatrix FromTriplets(size_t rows, size_t cols,
                                std::vector<Triplet> triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// Column indices of row i (ascending).
  std::span<const uint32_t> RowIndices(size_t i) const {
    return {col_idx_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  /// Values of row i, aligned with RowIndices.
  std::span<const double> RowValues(size_t i) const {
    return {values_.data() + row_ptr_[i], row_ptr_[i + 1] - row_ptr_[i]};
  }
  size_t RowNnz(size_t i) const { return row_ptr_[i + 1] - row_ptr_[i]; }

  /// Value at (i, j); 0 if the entry is absent. O(log nnz(row)).
  double At(size_t i, size_t j) const;

  /// Sum of the values in row i.
  double RowSum(size_t i) const;

  /// y = A x. x.size() must equal cols(); y is resized to rows().
  void MatVec(const std::vector<double>& x, std::vector<double>& y) const;

  /// y = A^T x. x.size() must equal rows(); y is resized to cols().
  void TransposeMatVec(const std::vector<double>& x,
                       std::vector<double>& y) const;

  /// A^T as a new CSR matrix.
  CsrMatrix Transpose() const;

  /// Returns a copy with each row L1-normalized (rows summing to 0 stay 0).
  CsrMatrix RowNormalized() const;

  /// Scales column j of the matrix by factor[j] (in place).
  void ScaleColumns(const std::vector<double>& factor);

  /// Scales all values by s (in place).
  void Scale(double s);

  /// Computes A * A^T (rows x rows) with a per-row sparse accumulator. This
  /// is the query-affinity product W^X W^{X^T} of the smoothness constraint
  /// (Eq. 9). Entries below `drop_tol` are dropped to bound fill-in.
  CsrMatrix MultiplySelfTranspose(double drop_tol = 0.0) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<size_t> row_ptr_;
  std::vector<uint32_t> col_idx_;
  /// 64-byte-aligned so the SIMD MatVec/TransposeMatVec kernels stream
  /// whole cache lines.
  AlignedVector<double> values_;
};

}  // namespace pqsda

#endif  // PQSDA_GRAPH_CSR_MATRIX_H_
