#include "graph/click_graph.h"

namespace pqsda {

ClickGraph ClickGraph::Build(const std::vector<QueryLogRecord>& records,
                             EdgeWeighting weighting) {
  ClickGraph cg;
  BipartiteGraph::Builder builder;
  std::vector<StringId> record_query(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    record_query[i] = cg.queries_.Intern(records[i].query);
  }
  cg.query_counts_.assign(cg.queries_.size(), 0);
  for (StringId q : record_query) ++cg.query_counts_[q];
  for (size_t i = 0; i < records.size(); ++i) {
    if (!records[i].has_click()) continue;
    StringId u = cg.urls_.Intern(records[i].clicked_url);
    builder.AddEdge(record_query[i], u, 1.0);
  }
  cg.graph_ = std::move(builder).Build(cg.queries_.size(), cg.urls_.size());
  if (weighting == EdgeWeighting::kCfIqf) {
    cg.graph_ = cg.graph_.ApplyIqf();
  }
  cg.forward_ = cg.graph_.query_to_object().RowNormalized();
  cg.backward_ = cg.graph_.object_to_query().RowNormalized();
  return cg;
}

}  // namespace pqsda
