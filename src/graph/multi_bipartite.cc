#include "graph/multi_bipartite.h"

#include "text/tokenizer.h"

namespace pqsda {

MultiBipartite MultiBipartite::Build(
    const std::vector<QueryLogRecord>& records,
    const std::vector<Session>& sessions, EdgeWeighting weighting) {
  MultiBipartite mb;
  mb.weighting_ = weighting;

  // Intern all distinct queries first so ids are stable across bipartites.
  std::vector<StringId> record_query(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    record_query[i] = mb.queries_.Intern(records[i].query);
  }
  mb.query_counts_.assign(mb.queries_.size(), 0);
  for (StringId q : record_query) ++mb.query_counts_[q];

  BipartiteGraph::Builder url_builder;
  BipartiteGraph::Builder session_builder;
  BipartiteGraph::Builder term_builder;

  for (size_t i = 0; i < records.size(); ++i) {
    StringId q = record_query[i];
    if (records[i].has_click()) {
      StringId u = mb.urls_.Intern(records[i].clicked_url);
      url_builder.AddEdge(q, u, 1.0);
    }
    for (const std::string& term : Tokenize(records[i].query)) {
      if (IsStopword(term)) continue;
      StringId t = mb.terms_.Intern(term);
      term_builder.AddEdge(q, t, 1.0);
    }
  }
  for (const Session& s : sessions) {
    for (size_t idx : s.record_indices) {
      session_builder.AddEdge(record_query[idx], s.id, 1.0);
    }
  }

  size_t nq = mb.queries_.size();
  mb.graphs_[static_cast<size_t>(BipartiteKind::kUrl)] =
      std::move(url_builder).Build(nq, mb.urls_.size());
  mb.graphs_[static_cast<size_t>(BipartiteKind::kSession)] =
      std::move(session_builder).Build(nq, sessions.size());
  mb.graphs_[static_cast<size_t>(BipartiteKind::kTerm)] =
      std::move(term_builder).Build(nq, mb.terms_.size());

  if (weighting == EdgeWeighting::kCfIqf) {
    for (auto& g : mb.graphs_) g = g.ApplyIqf();
  }
  return mb;
}

}  // namespace pqsda
