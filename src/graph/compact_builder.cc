#include "graph/compact_builder.h"

#include <algorithm>
#include <cmath>

namespace pqsda {

namespace {

// One walk step from `mass` (global query id -> probability) through one
// bipartite: q -> object -> q', using row-normalized transitions. Results are
// accumulated into `out`. The flat maps iterate in insertion order, so the
// accumulation order — and with it the admitted set — is deterministic.
// This loop nest *is* the canonical order of the CompactWalkBackend bitwise
// contract; the sharded backend (src/core/sharded_engine.cc) mirrors the
// inner expression and replays this merge order on gathered contributions.
void StepThroughBipartite(const BipartiteGraph& g,
                          const FlatMap<StringId, double>& mass,
                          double scale, FlatMap<StringId, double>& out) {
  const CsrMatrix& q2o = g.query_to_object();
  const CsrMatrix& o2q = g.object_to_query();
  for (const auto& [q, p] : mass) {
    double row_sum = q2o.RowSum(q);
    if (row_sum <= 0.0) continue;
    auto obj_idx = q2o.RowIndices(q);
    auto obj_val = q2o.RowValues(q);
    for (size_t k = 0; k < obj_idx.size(); ++k) {
      double p_obj = obj_val[k] / row_sum;
      uint32_t obj = obj_idx[k];
      double obj_sum = o2q.RowSum(obj);
      if (obj_sum <= 0.0) continue;
      auto q_idx = o2q.RowIndices(obj);
      auto q_val = o2q.RowValues(obj);
      for (size_t k2 = 0; k2 < q_idx.size(); ++k2) {
        out[q_idx[k2]] += scale * p * p_obj * q_val[k2] / obj_sum;
      }
    }
  }
}

}  // namespace

StatusOr<CompactRepresentation> CompactBuilder::Build(
    StringId input_query, const std::vector<StringId>& context,
    const CompactBuilderOptions& options, CompactBuildStats* stats) const {
  if (input_query >= mb_->num_queries()) {
    return Status::InvalidArgument("input query id out of range");
  }
  std::vector<StringId> seeds = {input_query};
  for (StringId c : context) {
    if (c < mb_->num_queries()) seeds.push_back(c);
  }
  return BuildFromSeeds(seeds, options, stats);
}

StatusOr<CompactRepresentation> CompactBuilder::BuildFromSeeds(
    const std::vector<StringId>& seeds, const CompactBuilderOptions& options,
    CompactBuildStats* stats) const {
  if (seeds.empty()) {
    return Status::InvalidArgument("seed set must not be empty");
  }
  for (StringId s : seeds) {
    if (s >= mb_->num_queries()) {
      return Status::InvalidArgument("seed query id out of range");
    }
  }
  if (options.target_size == 0) {
    return Status::InvalidArgument("target_size must be positive");
  }

  CompactRepresentation rep;
  auto add_query = [&rep](StringId q) {
    if (rep.local_index.count(q) > 0) return;
    rep.local_index.emplace(q, static_cast<uint32_t>(rep.queries.size()));
    rep.queries.push_back(q);
  };
  for (StringId s : seeds) add_query(s);
  if (stats != nullptr) {
    *stats = CompactBuildStats{};
    stats->seeds = rep.queries.size();
  }

  // Expansion: accumulate two-step walk probability from the current member
  // set, averaged over the three bipartites; each round admits the
  // highest-scoring outsiders.
  FlatMap<StringId, double> mass;
  for (StringId q : rep.queries) {
    mass[q] = 1.0 / static_cast<double>(rep.queries.size());
  }
  for (size_t round = 0;
       round < options.max_rounds && rep.queries.size() < options.target_size;
       ++round) {
    FlatMap<StringId, double> reached;
    for (BipartiteKind kind : kAllBipartites) {
      if (backend_ != nullptr) {
        Status step = backend_->Step(kind, mass, 1.0 / 3.0, reached);
        if (!step.ok()) return step;
      } else {
        StepThroughBipartite(mb_->graph(kind), mass, 1.0 / 3.0, reached);
      }
    }
    if (stats != nullptr) {
      ++stats->rounds;
      stats->walk_steps += 3;
    }
    std::vector<std::pair<double, StringId>> outsiders;
    for (const auto& [q, p] : reached) {
      if (rep.local_index.count(q) == 0) outsiders.emplace_back(p, q);
    }
    if (stats != nullptr) stats->candidates_scored += outsiders.size();
    if (outsiders.empty()) break;
    size_t admit = options.target_size - rep.queries.size();
    if (outsiders.size() > admit) {
      std::partial_sort(outsiders.begin(), outsiders.begin() + admit,
                        outsiders.end(), std::greater<>());
      outsiders.resize(admit);
    } else {
      std::sort(outsiders.begin(), outsiders.end(), std::greater<>());
    }
    for (const auto& [p, q] : outsiders) add_query(q);
    if (stats != nullptr) stats->queries_admitted += outsiders.size();
    // Next round walks from everything reached (members included) so deeper
    // neighborhoods can surface.
    mass = std::move(reached);
  }

  // Induce local W^X on the member queries; objects are re-indexed to those
  // actually touched.
  for (BipartiteKind kind : kAllBipartites) {
    size_t ki = static_cast<size_t>(kind);
    const CsrMatrix& q2o = mb_->graph(kind).query_to_object();
    FlatMap<uint32_t, uint32_t> object_index;
    std::vector<Triplet> triplets;
    for (uint32_t local = 0; local < rep.queries.size(); ++local) {
      StringId global = rep.queries[local];
      std::span<const uint32_t> idx;
      std::span<const double> val;
      if (backend_ != nullptr) {
        Status row = backend_->QueryRow(kind, global, idx, val);
        if (!row.ok()) return row;
      } else {
        idx = q2o.RowIndices(global);
        val = q2o.RowValues(global);
      }
      for (size_t k = 0; k < idx.size(); ++k) {
        auto [it, inserted] = object_index.emplace(
            idx[k], static_cast<uint32_t>(object_index.size()));
        triplets.push_back(Triplet{local, it->second, val[k]});
      }
    }
    rep.w[ki] = CsrMatrix::FromTriplets(rep.queries.size(),
                                        object_index.size(),
                                        std::move(triplets));
    rep.affinity[ki] = rep.w[ki].MultiplySelfTranspose();

    // S^X = D^{-1/2} A D^{-1/2} with D = diag(rowsum(A)).
    const CsrMatrix& a = rep.affinity[ki];
    std::vector<double> inv_sqrt(rep.queries.size(), 0.0);
    for (size_t i = 0; i < rep.queries.size(); ++i) {
      double d = a.RowSum(i);
      inv_sqrt[i] = d > 0.0 ? 1.0 / std::sqrt(d) : 0.0;
    }
    std::vector<Triplet> sym;
    for (uint32_t i = 0; i < rep.queries.size(); ++i) {
      auto idx = a.RowIndices(i);
      auto val = a.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        sym.push_back(
            Triplet{i, idx[k], val[k] * inv_sqrt[i] * inv_sqrt[idx[k]]});
      }
    }
    rep.sym_norm[ki] = CsrMatrix::FromTriplets(rep.queries.size(),
                                               rep.queries.size(),
                                               std::move(sym));
    rep.row_norm[ki] = a.RowNormalized();
  }
  return rep;
}

}  // namespace pqsda
