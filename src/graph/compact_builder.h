#ifndef PQSDA_GRAPH_COMPACT_BUILDER_H_
#define PQSDA_GRAPH_COMPACT_BUILDER_H_

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "common/flat_hash.h"
#include "common/status.h"
#include "graph/csr_matrix.h"
#include "graph/multi_bipartite.h"

namespace pqsda {

/// The compact multi-bipartite representation of §IV-A: the sub-multi-
/// bipartite induced by the ~Q queries most reachable from the input query
/// and its search context, with the derived per-bipartite matrices the
/// downstream algorithms need.
struct CompactRepresentation {
  /// Local index -> global query id. Entry 0.. are the seeds in seed order.
  std::vector<StringId> queries;
  /// Global query id -> local index. Flat open-addressing map: the suggest
  /// path probes it per candidate (seed construction, exclusion checks), so
  /// lookups stay one cache line instead of a node chase.
  FlatMap<StringId, uint32_t> local_index;
  /// W^X: local queries x local objects, weights copied from the full
  /// representation (raw or cfiqf according to the source MultiBipartite).
  std::array<CsrMatrix, 3> w;
  /// A^X = W^X W^{X^T}: query-affinity through shared objects.
  std::array<CsrMatrix, 3> affinity;
  /// S^X = D^{-1/2} A^X D^{-1/2}: symmetric-normalized affinity used by the
  /// smoothness constraint (Eq. 9) and the linear system (Eq. 15).
  std::array<CsrMatrix, 3> sym_norm;
  /// P^X = row-normalized A^X: intra-bipartite transition probabilities
  /// p^X(q_a | q_b) used by the cross-bipartite hitting time (§IV-C).
  std::array<CsrMatrix, 3> row_norm;

  size_t size() const { return queries.size(); }

  const CsrMatrix& W(BipartiteKind k) const {
    return w[static_cast<size_t>(k)];
  }
  const CsrMatrix& S(BipartiteKind k) const {
    return sym_norm[static_cast<size_t>(k)];
  }
  const CsrMatrix& P(BipartiteKind k) const {
    return row_norm[static_cast<size_t>(k)];
  }
};

/// Options for the expansion.
struct CompactBuilderOptions {
  /// Desired number of queries in the compact representation (the paper's Q).
  size_t target_size = 400;
  /// Maximum expansion rounds (each round is one random-walk step from the
  /// whole frontier).
  size_t max_rounds = 6;
};

/// Work counters of one compact-representation build, filled when the caller
/// passes a stats pointer (the observability layer's hook into §IV-A
/// expansion; the graph layer itself stays metrics-free).
struct CompactBuildStats {
  /// Seed queries the expansion started from.
  size_t seeds = 0;
  /// Expansion rounds actually executed (<= max_rounds).
  size_t rounds = 0;
  /// Two-step walk passes through a bipartite (3 per round).
  size_t walk_steps = 0;
  /// Outsider queries scored across all rounds (admitted or not).
  size_t candidates_scored = 0;
  /// Queries admitted beyond the seeds.
  size_t queries_admitted = 0;
};

/// The row-source seam of the §IV-A expansion. The walk and the induction
/// read the full representation only through these two operations, so a
/// scatter-gather coordinator can substitute per-shard fetches without the
/// builder (or anything downstream of the compact representation) knowing.
///
/// Bitwise contract — what makes sharded results provably equal to the
/// unsharded ones (tests/sharding_test.cc): FP addition is non-associative,
/// so an implementation must reproduce the *canonical accumulation order*
/// of the local walk exactly:
///  - Step accumulates into `out` iterating `mass` in insertion order, each
///    frontier row's objects in row order, each object row in row order,
///    and every contribution evaluated as
///    `((((scale * p) * p_obj) * q_val[k2]) / obj_sum)` — where contributions
///    are computed is free (replica, remote shard), where they are *summed*
///    is not.
///  - QueryRow returns the query->object row verbatim (the induction copies
///    it in row order).
class CompactWalkBackend {
 public:
  virtual ~CompactWalkBackend() = default;

  /// One two-step walk pass (q -> object -> q') through `kind` from `mass`,
  /// accumulated into `out` in canonical order. Errors abort the build.
  virtual Status Step(BipartiteKind kind, const FlatMap<StringId, double>& mass,
                      double scale, FlatMap<StringId, double>& out) const = 0;

  /// The query->object row of one member query for the induction. An
  /// implementation may return empty spans for a row it cannot serve (a
  /// degraded shard's cold row) — deterministically for the whole request.
  virtual Status QueryRow(BipartiteKind kind, StringId query,
                          std::span<const uint32_t>& indices,
                          std::span<const double>& values) const = 0;
};

/// Expands the seed set (input query + search context) through the full
/// multi-bipartite representation, scoring candidate queries by accumulated
/// two-step walk probability (query -> object -> query averaged over the
/// three bipartites), and induces the compact representation on the best
/// `target_size` queries.
class CompactBuilder {
 public:
  /// A null `backend` reads `mb` directly (the unsharded serving path, kept
  /// branch-for-branch identical to the pre-seam code); a non-null backend
  /// owns every row read of the expansion and induction.
  explicit CompactBuilder(const MultiBipartite& mb,
                          const CompactWalkBackend* backend = nullptr)
      : mb_(&mb), backend_(backend) {}

  /// `input_query` must be a valid query id of the source representation;
  /// context ids that are invalid are skipped. `stats`, when non-null,
  /// receives the expansion work counters.
  StatusOr<CompactRepresentation> Build(
      StringId input_query, const std::vector<StringId>& context,
      const CompactBuilderOptions& options,
      CompactBuildStats* stats = nullptr) const;

  /// Seed-set variant: expands from an arbitrary non-empty set of valid
  /// query ids (used for unknown input queries, which are seeded by their
  /// term-bipartite matches).
  StatusOr<CompactRepresentation> BuildFromSeeds(
      const std::vector<StringId>& seeds, const CompactBuilderOptions& options,
      CompactBuildStats* stats = nullptr) const;

 private:
  const MultiBipartite* mb_;
  const CompactWalkBackend* backend_;
};

}  // namespace pqsda

#endif  // PQSDA_GRAPH_COMPACT_BUILDER_H_
