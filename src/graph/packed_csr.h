#ifndef PQSDA_GRAPH_PACKED_CSR_H_
#define PQSDA_GRAPH_PACKED_CSR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned.h"

namespace pqsda {

/// Request-path CSR layout: 32-bit row pointers and column ids (a compact
/// representation holds at most a few thousand queries, so nnz always fits)
/// and 64-byte-aligned value storage for the SIMD row kernels. Half the
/// index bandwidth of the general CsrMatrix (size_t row_ptr) and values the
/// gather loads can stream. Built once per request (Eq. 15 operator, merged
/// hitting-time chain), swept many times.
struct PackedCsr {
  uint32_t rows = 0;
  uint32_t cols = 0;
  /// rows + 1 prefix offsets into col/val.
  std::vector<uint32_t> row_ptr;
  std::vector<uint32_t> col;
  AlignedVector<double> val;

  size_t nnz() const { return val.size(); }

  std::span<const uint32_t> RowIndices(size_t i) const {
    return {col.data() + row_ptr[i], row_ptr[i + 1] - row_ptr[i]};
  }
  std::span<const double> RowValues(size_t i) const {
    return {val.data() + row_ptr[i], row_ptr[i + 1] - row_ptr[i]};
  }
  size_t RowNnz(size_t i) const { return row_ptr[i + 1] - row_ptr[i]; }
};

}  // namespace pqsda

#endif  // PQSDA_GRAPH_PACKED_CSR_H_
