#include "graph/csr_matrix.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "common/simd.h"

namespace pqsda {

CsrMatrix::CsrMatrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return std::tie(a.row, a.col) < std::tie(b.row, b.col);
            });
  CsrMatrix m(rows, cols);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  // The loop runs over every row index, not just rows present in the
  // triplet list: a row with no triplets still executes the
  // `row_ptr_[row + 1] = col_idx_.size()` epilogue, so interior and
  // trailing empty rows get a correct (empty) [row_ptr_[r], row_ptr_[r+1])
  // range instead of the zero-initialized garbage a triplet-driven loop
  // would leave behind. Guarded by the EmptyRow regression tests in
  // graph_test.
  for (size_t row = 0; row < rows; ++row) {
    while (i < triplets.size() && triplets[i].row == row) {
      uint32_t col = triplets[i].col;
      assert(col < cols);
      double v = 0.0;
      while (i < triplets.size() && triplets[i].row == row &&
             triplets[i].col == col) {
        v += triplets[i].value;
        ++i;
      }
      if (v != 0.0) {
        m.col_idx_.push_back(col);
        m.values_.push_back(v);
      }
    }
    m.row_ptr_[row + 1] = m.col_idx_.size();
  }
  assert(i == triplets.size());
  return m;
}

double CsrMatrix::At(size_t i, size_t j) const {
  auto idx = RowIndices(i);
  auto it = std::lower_bound(idx.begin(), idx.end(), static_cast<uint32_t>(j));
  if (it == idx.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + static_cast<size_t>(it - idx.begin())];
}

double CsrMatrix::RowSum(size_t i) const {
  double s = 0.0;
  for (double v : RowValues(i)) s += v;
  return s;
}

void CsrMatrix::MatVec(const std::vector<double>& x,
                       std::vector<double>& y) const {
  assert(x.size() == cols_);
  y.assign(rows_, 0.0);
  const auto dot = simd::ActiveSparseDot();
  const double* xp = x.data();
  for (size_t i = 0; i < rows_; ++i) {
    const size_t begin = row_ptr_[i];
    y[i] = dot(values_.data() + begin, col_idx_.data() + begin,
               row_ptr_[i + 1] - begin, xp);
  }
}

void CsrMatrix::TransposeMatVec(const std::vector<double>& x,
                                std::vector<double>& y) const {
  assert(x.size() == rows_);
  y.assign(cols_, 0.0);
  const auto axpy = simd::ActiveAxpyScatter();
  double* yp = y.data();
  for (size_t i = 0; i < rows_; ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    const size_t begin = row_ptr_[i];
    axpy(values_.data() + begin, col_idx_.data() + begin,
         row_ptr_[i + 1] - begin, xi, yp);
  }
}

CsrMatrix CsrMatrix::Transpose() const {
  CsrMatrix t(cols_, rows_);
  std::vector<size_t> counts(cols_, 0);
  for (uint32_t c : col_idx_) ++counts[c];
  t.row_ptr_.assign(cols_ + 1, 0);
  for (size_t c = 0; c < cols_; ++c) {
    t.row_ptr_[c + 1] = t.row_ptr_[c] + counts[c];
  }
  t.col_idx_.resize(nnz());
  t.values_.resize(nnz());
  std::vector<size_t> cursor(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      size_t pos = cursor[col_idx_[k]]++;
      t.col_idx_[pos] = static_cast<uint32_t>(i);
      t.values_[pos] = values_[k];
    }
  }
  return t;
}

CsrMatrix CsrMatrix::RowNormalized() const {
  CsrMatrix out = *this;
  for (size_t i = 0; i < rows_; ++i) {
    double s = RowSum(i);
    if (s <= 0.0) continue;
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      out.values_[k] = values_[k] / s;
    }
  }
  return out;
}

void CsrMatrix::ScaleColumns(const std::vector<double>& factor) {
  assert(factor.size() == cols_);
  for (size_t k = 0; k < values_.size(); ++k) {
    values_[k] *= factor[col_idx_[k]];
  }
}

void CsrMatrix::Scale(double s) {
  for (double& v : values_) v *= s;
}

CsrMatrix CsrMatrix::MultiplySelfTranspose(double drop_tol) const {
  // Row-wise SpGEMM: (A A^T)(i, j) = sum_k A(i,k) A(j,k). We iterate row i,
  // scattering through the transpose's rows (columns of A).
  CsrMatrix at = Transpose();
  CsrMatrix out(rows_, rows_);
  out.row_ptr_.assign(rows_ + 1, 0);
  std::unordered_map<uint32_t, double> acc;
  for (size_t i = 0; i < rows_; ++i) {
    acc.clear();
    for (size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      uint32_t obj = col_idx_[k];
      double w = values_[k];
      for (size_t k2 = at.row_ptr_[obj]; k2 < at.row_ptr_[obj + 1]; ++k2) {
        acc[at.col_idx_[k2]] += w * at.values_[k2];
      }
    }
    std::vector<std::pair<uint32_t, double>> row(acc.begin(), acc.end());
    std::sort(row.begin(), row.end());
    for (const auto& [j, v] : row) {
      if (std::abs(v) <= drop_tol) continue;
      out.col_idx_.push_back(j);
      out.values_.push_back(v);
    }
    out.row_ptr_[i + 1] = out.col_idx_.size();
  }
  return out;
}

}  // namespace pqsda
