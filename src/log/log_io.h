#ifndef PQSDA_LOG_LOG_IO_H_
#define PQSDA_LOG_LOG_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "log/record.h"

namespace pqsda {

/// Writes records as a tab-separated file with the columns
/// `user_id\tquery\tclicked_url\ttimestamp` (AOL-log style). Tabs inside
/// queries/URLs are replaced by spaces.
Status WriteLogTsv(const std::string& path,
                   const std::vector<QueryLogRecord>& records);

/// Reads a TSV query log written by WriteLogTsv. Malformed lines produce a
/// Corruption error naming the line number.
StatusOr<std::vector<QueryLogRecord>> ReadLogTsv(const std::string& path);

/// Parses a single TSV line (no trailing newline) into a record.
StatusOr<QueryLogRecord> ParseLogLine(const std::string& line);

}  // namespace pqsda

#endif  // PQSDA_LOG_LOG_IO_H_
