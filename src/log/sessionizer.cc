#include "log/sessionizer.h"

#include <unordered_set>

#include "text/tokenizer.h"

namespace pqsda {

bool QueriesShareTerm(const std::string& a, const std::string& b) {
  auto ta = Tokenize(a);
  auto tb = Tokenize(b);
  std::unordered_set<std::string> set(ta.begin(), ta.end());
  for (const auto& t : tb) {
    if (set.count(t) > 0) return true;
  }
  return false;
}

std::vector<Session> Sessionize(const std::vector<QueryLogRecord>& records,
                                const SessionizerOptions& options) {
  std::vector<Session> sessions;
  for (size_t i = 0; i < records.size(); ++i) {
    bool start_new = true;
    if (!sessions.empty() && !sessions.back().record_indices.empty()) {
      const Session& cur = sessions.back();
      size_t prev_idx = cur.record_indices.back();
      const QueryLogRecord& prev = records[prev_idx];
      const QueryLogRecord& now = records[i];
      if (prev.user_id == now.user_id) {
        int64_t gap = now.timestamp - prev.timestamp;
        if (gap <= options.max_gap_seconds) {
          start_new = false;
        } else if (options.use_lexical_overlap &&
                   gap <= options.extended_gap_seconds &&
                   QueriesShareTerm(prev.query, now.query)) {
          start_new = false;
        }
      }
    }
    if (start_new) {
      Session s;
      s.id = static_cast<SessionId>(sessions.size());
      s.user_id = records[i].user_id;
      sessions.push_back(std::move(s));
    }
    sessions.back().record_indices.push_back(i);
  }
  return sessions;
}

std::vector<SessionId> RecordToSession(const std::vector<Session>& sessions,
                                       size_t num_records) {
  std::vector<SessionId> map(num_records, 0);
  for (const Session& s : sessions) {
    for (size_t idx : s.record_indices) {
      if (idx < num_records) map[idx] = s.id;
    }
  }
  return map;
}

}  // namespace pqsda
