#ifndef PQSDA_LOG_STREAM_SESSIONIZER_H_
#define PQSDA_LOG_STREAM_SESSIONIZER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "log/record.h"
#include "log/sessionizer.h"

namespace pqsda {

/// Incremental counterpart of the batch `Sessionize`: records are pushed one
/// at a time as they stream off the live query log, and each record is
/// assigned to its user's open tail session (or starts a new one) under the
/// same time-gap + lexical-overlap rule.
///
/// Equivalence contract (enforced by tests/ingest_test.cc): pushing a
/// (user, time)-sorted record stream yields exactly the sessions batch
/// `Sessionize` derives from the same vector — same session ids, same
/// record indices, same boundaries, including the `max_gap_seconds`
/// boundary itself and the lexical-overlap extension window. On an
/// *interleaved* stream (multiple users in flight at once — the live-ingest
/// arrival order) the per-user keying additionally keeps every user's tail
/// open across other users' records, which the back()-only batch scan cannot
/// do; that is the point of the streaming variant.
///
/// Open tails double as the live serving context (Definition 2): the queries
/// of a user's open session are exactly the context of their next request.
/// `Flush*` closes tails without discarding the sessions — the flush-on-swap
/// hook: once a snapshot swap has absorbed the tail's records into the
/// immutable index, the stream state restarts and the user's next query
/// opens a fresh session.
///
/// Not thread-safe; the owner (IndexManager) serializes access.
class StreamSessionizer {
 public:
  explicit StreamSessionizer(SessionizerOptions options = {});

  /// Feeds one record. `record_index` is the position the caller stores the
  /// record at (it lands in the assigned session's `record_indices`).
  /// Returns the id of the session the record was assigned to.
  SessionId Push(const QueryLogRecord& record, size_t record_index);

  /// Every session derived so far, id order, open tails included. A sorted
  /// stream replayed through Push yields exactly `Sessionize`'s output.
  const std::vector<Session>& Sessions() const { return sessions_; }

  /// (query, timestamp) pairs of the user's open tail session, oldest first;
  /// empty when the user has no open tail. This is the live request context.
  std::vector<std::pair<std::string, int64_t>> TailContext(UserId user) const;

  /// Closes one user's open tail (no-op when there is none). The session
  /// stays in Sessions(); only the "next record may extend it" state is
  /// dropped.
  void FlushUser(UserId user);

  /// Closes every open tail — the swap hook.
  void FlushAll();

  /// Users with an open tail session.
  size_t open_tails() const { return tails_.size(); }

  size_t num_sessions() const { return sessions_.size(); }

  const SessionizerOptions& options() const { return options_; }

 private:
  /// Per-user open-session state: which session the next record may extend,
  /// and the tail queries that provide serving context.
  struct Tail {
    size_t session_index = 0;
    std::string last_query;
    int64_t last_timestamp = 0;
    std::vector<std::pair<std::string, int64_t>> queries;
  };

  SessionizerOptions options_;
  std::vector<Session> sessions_;
  std::unordered_map<UserId, Tail> tails_;
};

}  // namespace pqsda

#endif  // PQSDA_LOG_STREAM_SESSIONIZER_H_
