#include "log/record.h"

#include <algorithm>
#include <tuple>

namespace pqsda {

void SortByUserAndTime(std::vector<QueryLogRecord>& records) {
  std::stable_sort(records.begin(), records.end(),
                   [](const QueryLogRecord& a, const QueryLogRecord& b) {
                     return std::tie(a.user_id, a.timestamp, a.query) <
                            std::tie(b.user_id, b.timestamp, b.query);
                   });
}

}  // namespace pqsda
