#ifndef PQSDA_LOG_CLEANER_H_
#define PQSDA_LOG_CLEANER_H_

#include <cstdint>
#include <vector>

#include "log/record.h"

namespace pqsda {

/// Knobs for query-log cleaning, modeled after the preprocessing of
/// Wang & Zhai (SIGIR'07) that the paper cites (§VI-A): drop empty/overlong
/// queries, collapse immediate duplicates, and drop hyperactive (likely
/// robot) users.
struct CleanerOptions {
  /// Queries with fewer terms are dropped (0 disables).
  uint32_t min_terms = 1;
  /// Queries with more terms are dropped (0 disables).
  uint32_t max_terms = 10;
  /// Queries longer than this many characters are dropped (0 disables).
  uint32_t max_chars = 100;
  /// Collapse a query identical to the user's immediately preceding one
  /// (re-click / pagination noise). The click of the later record is kept if
  /// the earlier one had none.
  bool collapse_adjacent_duplicates = true;
  /// Users with more records than this are dropped as robots (0 disables).
  uint32_t max_records_per_user = 0;
};

/// Statistics reported by CleanLog for observability.
struct CleanerStats {
  size_t input_records = 0;
  size_t dropped_empty = 0;
  size_t dropped_length = 0;
  size_t collapsed_duplicates = 0;
  size_t dropped_robot_users = 0;
  size_t output_records = 0;
};

/// Cleans a query log in canonical (user, time) order; the input is sorted
/// first. Returns the surviving records.
std::vector<QueryLogRecord> CleanLog(std::vector<QueryLogRecord> records,
                                     const CleanerOptions& options,
                                     CleanerStats* stats = nullptr);

}  // namespace pqsda

#endif  // PQSDA_LOG_CLEANER_H_
