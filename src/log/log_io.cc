#include "log/log_io.h"

#include <charconv>
#include <fstream>
#include <sstream>

namespace pqsda {

namespace {
std::string SanitizeField(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}
}  // namespace

Status WriteLogTsv(const std::string& path,
                   const std::vector<QueryLogRecord>& records) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  for (const auto& r : records) {
    out << r.user_id << '\t' << SanitizeField(r.query) << '\t'
        << SanitizeField(r.clicked_url) << '\t' << r.timestamp << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<QueryLogRecord> ParseLogLine(const std::string& line) {
  QueryLogRecord rec;
  size_t pos = 0;
  std::string fields[4];
  for (int i = 0; i < 4; ++i) {
    size_t tab = line.find('\t', pos);
    if (i < 3) {
      if (tab == std::string::npos) {
        return Status::Corruption("expected 4 tab-separated fields");
      }
      fields[i] = line.substr(pos, tab - pos);
      pos = tab + 1;
    } else {
      fields[i] = line.substr(pos);
    }
  }
  {
    auto [p, ec] = std::from_chars(fields[0].data(),
                                   fields[0].data() + fields[0].size(),
                                   rec.user_id);
    if (ec != std::errc() || p != fields[0].data() + fields[0].size()) {
      return Status::Corruption("bad user id: " + fields[0]);
    }
  }
  rec.query = fields[1];
  rec.clicked_url = fields[2];
  {
    auto [p, ec] = std::from_chars(fields[3].data(),
                                   fields[3].data() + fields[3].size(),
                                   rec.timestamp);
    if (ec != std::errc() || p != fields[3].data() + fields[3].size()) {
      return Status::Corruption("bad timestamp: " + fields[3]);
    }
  }
  return rec;
}

StatusOr<std::vector<QueryLogRecord>> ReadLogTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<QueryLogRecord> records;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto rec = ParseLogLine(line);
    if (!rec.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                rec.status().message());
    }
    records.push_back(std::move(rec).value());
  }
  return records;
}

}  // namespace pqsda
