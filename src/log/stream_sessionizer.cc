#include "log/stream_sessionizer.h"

namespace pqsda {

StreamSessionizer::StreamSessionizer(SessionizerOptions options)
    : options_(options) {}

SessionId StreamSessionizer::Push(const QueryLogRecord& record,
                                  size_t record_index) {
  auto it = tails_.find(record.user_id);
  bool extend = false;
  if (it != tails_.end()) {
    // Same decision rule as the batch scan, against the user's own open tail
    // instead of the globally most recent session.
    const int64_t gap = record.timestamp - it->second.last_timestamp;
    if (gap <= options_.max_gap_seconds) {
      extend = true;
    } else if (options_.use_lexical_overlap &&
               gap <= options_.extended_gap_seconds &&
               QueriesShareTerm(it->second.last_query, record.query)) {
      extend = true;
    }
  }
  if (!extend) {
    Session s;
    s.id = static_cast<SessionId>(sessions_.size());
    s.user_id = record.user_id;
    sessions_.push_back(std::move(s));
    Tail tail;
    tail.session_index = sessions_.size() - 1;
    tails_[record.user_id] = std::move(tail);
    it = tails_.find(record.user_id);
  }
  Tail& tail = it->second;
  sessions_[tail.session_index].record_indices.push_back(record_index);
  tail.last_query = record.query;
  tail.last_timestamp = record.timestamp;
  tail.queries.emplace_back(record.query, record.timestamp);
  return sessions_[tail.session_index].id;
}

std::vector<std::pair<std::string, int64_t>> StreamSessionizer::TailContext(
    UserId user) const {
  auto it = tails_.find(user);
  if (it == tails_.end()) return {};
  return it->second.queries;
}

void StreamSessionizer::FlushUser(UserId user) { tails_.erase(user); }

void StreamSessionizer::FlushAll() { tails_.clear(); }

}  // namespace pqsda
