#ifndef PQSDA_LOG_SESSIONIZER_H_
#define PQSDA_LOG_SESSIONIZER_H_

#include <cstdint>
#include <vector>

#include "log/record.h"

namespace pqsda {

/// Dense session id.
using SessionId = uint32_t;

/// A session (Definition 1): consecutive queries of one user serving a single
/// information need. `record_indices` index into the record vector that was
/// sessionized.
struct Session {
  SessionId id = 0;
  UserId user_id = 0;
  std::vector<size_t> record_indices;

  size_t size() const { return record_indices.size(); }
};

/// Knobs for session derivation, following the time-gap + lexical-overlap
/// heuristic of the context-aware personalization line of work the paper
/// cites ([25]): a new session starts when the inter-query gap exceeds
/// `max_gap_seconds`, unless the adjacent queries share a term (an apparent
/// reformulation), in which case the session is extended up to
/// `extended_gap_seconds`.
struct SessionizerOptions {
  int64_t max_gap_seconds = 30 * 60;
  int64_t extended_gap_seconds = 60 * 60;
  /// When false, only the time gap is used.
  bool use_lexical_overlap = true;
};

/// The lexical-overlap half of the session rule: true when the two queries
/// share at least one token. Shared by the batch scan below and the
/// incremental StreamSessionizer so the two paths can never diverge on the
/// reformulation test.
bool QueriesShareTerm(const std::string& a, const std::string& b);

/// Splits records (must be sorted by user and time; see SortByUserAndTime)
/// into sessions. Every record lands in exactly one session; session ids are
/// contiguous from 0 in record order.
std::vector<Session> Sessionize(const std::vector<QueryLogRecord>& records,
                                const SessionizerOptions& options = {});

/// Returns for each record the id of its session; inverse of Sessionize's
/// grouping. `num_records` must equal the record count the sessions came
/// from.
std::vector<SessionId> RecordToSession(const std::vector<Session>& sessions,
                                       size_t num_records);

}  // namespace pqsda

#endif  // PQSDA_LOG_SESSIONIZER_H_
