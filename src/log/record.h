#ifndef PQSDA_LOG_RECORD_H_
#define PQSDA_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pqsda {

/// Dense user id.
using UserId = uint32_t;

/// One query-log entry, mirroring Table I of the paper: who searched what,
/// which URL (if any) was clicked, and when. The entry id is the record's
/// index in its containing vector.
struct QueryLogRecord {
  UserId user_id = 0;
  std::string query;
  /// Empty when the query had no click.
  std::string clicked_url;
  /// Seconds since epoch.
  int64_t timestamp = 0;

  bool has_click() const { return !clicked_url.empty(); }

  friend bool operator==(const QueryLogRecord&, const QueryLogRecord&) =
      default;
};

/// Orders records by (user, time, query); the canonical order expected by the
/// sessionizer.
void SortByUserAndTime(std::vector<QueryLogRecord>& records);

}  // namespace pqsda

#endif  // PQSDA_LOG_RECORD_H_
