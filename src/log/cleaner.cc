#include "log/cleaner.h"

#include <unordered_map>

#include "text/tokenizer.h"

namespace pqsda {

std::vector<QueryLogRecord> CleanLog(std::vector<QueryLogRecord> records,
                                     const CleanerOptions& options,
                                     CleanerStats* stats) {
  CleanerStats local;
  local.input_records = records.size();
  SortByUserAndTime(records);

  std::vector<QueryLogRecord> out;
  out.reserve(records.size());
  for (auto& rec : records) {
    if (rec.query.empty()) {
      ++local.dropped_empty;
      continue;
    }
    if (options.max_chars > 0 && rec.query.size() > options.max_chars) {
      ++local.dropped_length;
      continue;
    }
    if (options.min_terms > 0 || options.max_terms > 0) {
      auto terms = Tokenize(rec.query);
      if (terms.empty() ||
          (options.min_terms > 0 && terms.size() < options.min_terms) ||
          (options.max_terms > 0 && terms.size() > options.max_terms)) {
        ++local.dropped_length;
        continue;
      }
    }
    if (options.collapse_adjacent_duplicates && !out.empty() &&
        out.back().user_id == rec.user_id && out.back().query == rec.query) {
      // Keep the click if the earlier record lacked one.
      if (!out.back().has_click() && rec.has_click()) {
        out.back().clicked_url = rec.clicked_url;
      }
      ++local.collapsed_duplicates;
      continue;
    }
    out.push_back(std::move(rec));
  }

  if (options.max_records_per_user > 0) {
    std::unordered_map<UserId, size_t> counts;
    for (const auto& rec : out) ++counts[rec.user_id];
    std::vector<QueryLogRecord> filtered;
    filtered.reserve(out.size());
    for (auto& rec : out) {
      if (counts[rec.user_id] > options.max_records_per_user) {
        ++local.dropped_robot_users;
        continue;
      }
      filtered.push_back(std::move(rec));
    }
    out = std::move(filtered);
  }

  local.output_records = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace pqsda
