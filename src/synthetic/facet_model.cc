#include "synthetic/facet_model.h"

#include <algorithm>
#include <cassert>

namespace pqsda {

namespace {

// Root-branch index of a leaf: which top-level subtree it lives in.
uint32_t TopBranch(const Taxonomy& taxonomy, CategoryId leaf) {
  auto path = taxonomy.PathFromRoot(leaf);
  if (path.size() < 2) return 0;
  return path[1];
}

std::string JoinTerms(const std::vector<std::string>& terms) {
  std::string out;
  for (const auto& t : terms) {
    if (!out.empty()) out += ' ';
    out += t;
  }
  return out;
}

}  // namespace

FacetModel::FacetModel(const Taxonomy& taxonomy,
                       const FacetModelConfig& config, Rng& rng) {
  std::vector<CategoryId> leaves = taxonomy.Leaves();
  assert(!leaves.empty());
  rng.Shuffle(leaves);

  // Per-top-branch shared terms.
  std::unordered_map<uint32_t, std::vector<std::string>> branch_terms;

  // --- Facet skeletons: category + vocabulary. ---
  facets_.resize(config.num_facets);
  for (FacetId f = 0; f < config.num_facets; ++f) {
    Facet& facet = facets_[f];
    facet.id = f;
    facet.category = leaves[f % leaves.size()];
    facet.terms.reserve(config.terms_per_facet);
    for (uint32_t t = 0; t < config.terms_per_facet; ++t) {
      facet.terms.push_back("w" + std::to_string(f) + "x" + std::to_string(t));
    }
    uint32_t branch = TopBranch(taxonomy, facet.category);
    auto& shared = branch_terms[branch];
    if (shared.empty()) {
      for (uint32_t t = 0; t < config.branch_terms_per_branch; ++t) {
        shared.push_back("b" + std::to_string(branch) + "x" +
                         std::to_string(t));
      }
    }
  }

  // --- Ambiguous concepts: one token shared across facets from distinct
  // branches where possible. ---
  concept_tokens_.reserve(config.num_concepts);
  concept_members_.resize(config.num_concepts);
  std::vector<FacetId> order(config.num_facets);
  for (FacetId f = 0; f < config.num_facets; ++f) order[f] = f;
  rng.Shuffle(order);
  size_t cursor = 0;
  for (uint32_t c = 0; c < config.num_concepts; ++c) {
    std::string token = "amb" + std::to_string(c);
    concept_tokens_.push_back(token);
    for (uint32_t m = 0;
         m < config.facets_per_concept && cursor < order.size(); ++m) {
      FacetId f = order[cursor++];
      facets_[f].concept_token = token;
      concept_members_[c].push_back(f);
    }
  }

  // --- Query pools. ---
  for (Facet& facet : facets_) {
    uint32_t branch = TopBranch(taxonomy, facet.category);
    const auto& shared = branch_terms[branch];
    facet.query_pool.reserve(config.queries_per_facet);
    if (!facet.concept_token.empty()) {
      // The bare ambiguous head query, identical across concept members.
      facet.query_pool.push_back(facet.concept_token);
    }
    while (facet.query_pool.size() < config.queries_per_facet) {
      std::vector<std::string> parts;
      if (!facet.concept_token.empty() && rng.NextDouble() < 0.5) {
        parts.push_back(facet.concept_token);
      }
      uint32_t n_terms = 1 + static_cast<uint32_t>(rng.NextBounded(2));
      for (uint32_t i = 0; i < n_terms; ++i) {
        parts.push_back(facet.terms[rng.NextBounded(facet.terms.size())]);
      }
      if (!shared.empty() && rng.NextDouble() < config.branch_term_prob) {
        parts.push_back(shared[rng.NextBounded(shared.size())]);
      }
      std::string q = JoinTerms(parts);
      if (std::find(facet.query_pool.begin(), facet.query_pool.end(), q) ==
          facet.query_pool.end()) {
        facet.query_pool.push_back(std::move(q));
      }
    }
    facet.query_popularity.resize(facet.query_pool.size());
    ZipfSampler qz(facet.query_pool.size(), config.query_pop_zipf);
    for (size_t i = 0; i < facet.query_pool.size(); ++i) {
      facet.query_popularity[i] = qz.Pmf(i);
    }
    query_samplers_.emplace_back(facet.query_pool.size(),
                                 config.query_pop_zipf);
    for (const auto& q : facet.query_pool) {
      query_to_facets_[q].push_back(facet.id);
    }
  }

  // --- URLs and documents. ---
  for (Facet& facet : facets_) {
    uint32_t branch = TopBranch(taxonomy, facet.category);
    const auto& shared = branch_terms[branch];
    facet.urls.reserve(config.urls_per_facet);
    for (uint32_t u = 0; u < config.urls_per_facet; ++u) {
      std::string url = "www.f" + std::to_string(facet.id) + "u" +
                        std::to_string(u) + ".example.com";
      facet.urls.push_back(url);

      UrlDocument doc;
      doc.category = facet.category;
      doc.facet = facet.id;
      std::unordered_map<uint32_t, double> weights;
      std::vector<std::string> title_terms;
      for (uint32_t t = 0; t < config.doc_terms_per_url; ++t) {
        const std::string* term = nullptr;
        if (!shared.empty() && rng.NextDouble() < 0.30) {
          term = &shared[rng.NextBounded(shared.size())];
        } else {
          term = &facet.terms[rng.NextBounded(facet.terms.size())];
        }
        uint32_t id = TermIdOrIntern(*term);
        weights[id] += 1.0;
        if (title_terms.size() < 6) title_terms.push_back(*term);
      }
      if (!facet.concept_token.empty()) {
        weights[TermIdOrIntern(facet.concept_token)] += 1.0;
      }
      doc.term_vector.assign(weights.begin(), weights.end());
      std::sort(doc.term_vector.begin(), doc.term_vector.end());
      doc.title = JoinTerms(title_terms);
      documents_.emplace(url, std::move(doc));
    }
    facet.url_popularity.resize(facet.urls.size());
    ZipfSampler uz(facet.urls.size(), config.url_pop_zipf);
    for (size_t i = 0; i < facet.urls.size(); ++i) {
      facet.url_popularity[i] = uz.Pmf(i);
    }
    url_samplers_.emplace_back(facet.urls.size(), config.url_pop_zipf);
  }

  // Intern all query terms so QueryTermVector covers query-only words too.
  for (const Facet& facet : facets_) {
    for (const std::string& t : facet.terms) TermIdOrIntern(t);
  }
  for (const auto& [branch, terms] : branch_terms) {
    (void)branch;
    for (const std::string& t : terms) TermIdOrIntern(t);
  }
  for (const std::string& t : concept_tokens_) TermIdOrIntern(t);
}

size_t FacetModel::SampleQueryIndex(FacetId id, Rng& rng) const {
  return query_samplers_[id].Sample(rng);
}

size_t FacetModel::SampleUrlIndex(FacetId id, Rng& rng) const {
  return url_samplers_[id].Sample(rng);
}

const UrlDocument* FacetModel::FindDocument(const std::string& url) const {
  auto it = documents_.find(url);
  if (it == documents_.end()) return nullptr;
  return &it->second;
}

bool FacetModel::QueryFacet(const std::string& query, FacetId* facet) const {
  auto it = query_to_facets_.find(query);
  if (it == query_to_facets_.end() || it->second.empty()) return false;
  *facet = it->second.front();
  return true;
}

std::vector<FacetId> FacetModel::QueryFacets(const std::string& query) const {
  auto it = query_to_facets_.find(query);
  if (it == query_to_facets_.end()) return {};
  return it->second;
}

uint32_t FacetModel::TermIdOrIntern(const std::string& term) {
  return term_interner_.Intern(term);
}

uint32_t FacetModel::TermId(const std::string& term) const {
  return term_interner_.Lookup(term);
}

size_t FacetModel::vocab_size() const { return term_interner_.size(); }

std::vector<std::pair<uint32_t, double>> FacetModel::QueryTermVector(
    const std::string& query) const {
  std::unordered_map<uint32_t, double> weights;
  size_t start = 0;
  while (start <= query.size()) {
    size_t space = query.find(' ', start);
    std::string term = query.substr(
        start, space == std::string::npos ? std::string::npos : space - start);
    if (!term.empty()) {
      uint32_t id = TermId(term);
      if (id != kInvalidStringId) weights[id] += 1.0;
    }
    if (space == std::string::npos) break;
    start = space + 1;
  }
  std::vector<std::pair<uint32_t, double>> out(weights.begin(), weights.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pqsda
