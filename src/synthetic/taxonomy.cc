#include "synthetic/taxonomy.h"

#include <algorithm>
#include <cassert>

namespace pqsda {

Taxonomy Taxonomy::BuildUniform(uint32_t depth, uint32_t branching) {
  Taxonomy tax;
  std::vector<CategoryId> frontier = {0};
  for (uint32_t level = 0; level < depth; ++level) {
    std::vector<CategoryId> next;
    for (CategoryId parent : frontier) {
      for (uint32_t b = 0; b < branching; ++b) {
        std::string label = "c" + std::to_string(level) + "_" +
                            std::to_string(parent) + "_" + std::to_string(b);
        next.push_back(tax.AddChild(parent, std::move(label)));
      }
    }
    frontier = std::move(next);
  }
  return tax;
}

CategoryId Taxonomy::AddChild(CategoryId parent, std::string label) {
  assert(parent < nodes_.size());
  CategoryId id = static_cast<CategoryId>(nodes_.size());
  nodes_.push_back(Node{parent, std::move(label), {}});
  nodes_[parent].children.push_back(id);
  return id;
}

std::vector<CategoryId> Taxonomy::PathFromRoot(CategoryId node) const {
  assert(node < nodes_.size());
  std::vector<CategoryId> path;
  CategoryId cur = node;
  for (;;) {
    path.push_back(cur);
    if (cur == 0) break;
    cur = nodes_[cur].parent;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::string Taxonomy::PathString(CategoryId node) const {
  std::string out;
  for (CategoryId id : PathFromRoot(node)) {
    if (!out.empty()) out += '/';
    out += nodes_[id].label;
  }
  return out;
}

std::vector<CategoryId> Taxonomy::Leaves() const {
  std::vector<CategoryId> leaves;
  for (CategoryId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].children.empty()) leaves.push_back(id);
  }
  return leaves;
}

double Taxonomy::PathRelevance(CategoryId a, CategoryId b) const {
  std::vector<CategoryId> pa = PathFromRoot(a);
  std::vector<CategoryId> pb = PathFromRoot(b);
  size_t common = 0;
  while (common < pa.size() && common < pb.size() &&
         pa[common] == pb[common]) {
    ++common;
  }
  size_t longest = std::max(pa.size(), pb.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(common) / static_cast<double>(longest);
}

}  // namespace pqsda
