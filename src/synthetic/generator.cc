#include "synthetic/generator.h"

#include <algorithm>
#include <cassert>

namespace pqsda {

bool SyntheticDataset::QueryCategory(const std::string& query,
                                     CategoryId* category) const {
  FacetId f;
  if (!facets.QueryFacet(query, &f)) return false;
  *category = facets.facet(f).category;
  return true;
}

SyntheticDataset GenerateLog(const GeneratorConfig& config) {
  Rng rng(config.seed);
  Taxonomy taxonomy =
      Taxonomy::BuildUniform(config.taxonomy_depth, config.taxonomy_branching);
  FacetModel facets(taxonomy, config.facet_config, rng);
  SyntheticDataset data(std::move(taxonomy), std::move(facets));
  data.config = config;

  data.users.reserve(config.num_users);
  for (UserId u = 0; u < config.num_users; ++u) {
    data.users.emplace_back(u, data.facets, config.user_config, rng);
  }

  uint32_t session_counter = 0;
  for (const SimulatedUser& user : data.users) {
    uint32_t n_sessions = static_cast<uint32_t>(
        rng.NextInt(config.sessions_per_user_min,
                    config.sessions_per_user_max));
    // Session start offsets: sorted uniform draws over the log span.
    std::vector<int64_t> starts(n_sessions);
    for (auto& s : starts) {
      s = config.start_time +
          static_cast<int64_t>(rng.NextBounded(
              static_cast<uint64_t>(config.duration_seconds)));
    }
    std::sort(starts.begin(), starts.end());

    // Sessions must not overlap: a session's records extend past its start,
    // so push each start beyond the previous session's last record.
    int64_t cursor = 0;
    for (uint32_t s = 0; s < n_sessions; ++s) {
      starts[s] = std::max(starts[s], cursor);
      double t_norm = static_cast<double>(starts[s] - config.start_time) /
                      static_cast<double>(config.duration_seconds);
      FacetId facet = user.SampleFacet(t_norm, rng);
      uint32_t n_queries = static_cast<uint32_t>(
          rng.NextInt(config.queries_per_session_min,
                      config.queries_per_session_max));
      int64_t t = starts[s];
      uint32_t session_id = session_counter++;
      std::vector<size_t> used_queries;
      for (uint32_t q = 0; q < n_queries; ++q) {
        size_t qi = user.SampleQuery(data.facets, facet, rng);
        // Prefer a fresh phrasing within a session (reformulation).
        for (int attempt = 0;
             attempt < 4 && std::find(used_queries.begin(),
                                      used_queries.end(),
                                      qi) != used_queries.end();
             ++attempt) {
          qi = user.SampleQuery(data.facets, facet, rng);
        }
        used_queries.push_back(qi);

        QueryLogRecord rec;
        rec.user_id = user.id();
        rec.query = data.facets.facet(facet).query_pool[qi];
        rec.timestamp = t;
        if (rng.NextDouble() < config.click_prob) {
          size_t ui = user.SampleUrl(data.facets, facet, rng);
          rec.clicked_url = data.facets.facet(facet).urls[ui];
        }
        data.records.push_back(std::move(rec));
        data.record_facet.push_back(facet);
        data.record_session.push_back(session_id);
        t += rng.NextInt(config.gap_min_seconds, config.gap_max_seconds);
      }
      cursor = t + 5 * 60;  // inter-session spacing
    }
  }
  return data;
}

}  // namespace pqsda
