#ifndef PQSDA_SYNTHETIC_TAXONOMY_H_
#define PQSDA_SYNTHETIC_TAXONOMY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace pqsda {

/// Node id inside a Taxonomy; the root is node 0.
using CategoryId = uint32_t;

/// A synthetic hierarchical category tree standing in for the Open Directory
/// Project (ODP) taxonomy that the paper's Relevance metric (Eq. 34) needs.
/// Each generated facet is attached to one leaf; relevance between two
/// queries is computed from their categories' paths.
class Taxonomy {
 public:
  Taxonomy() { nodes_.push_back(Node{0, "Top", {}}); }

  Taxonomy(const Taxonomy&) = delete;
  Taxonomy& operator=(const Taxonomy&) = delete;
  Taxonomy(Taxonomy&&) = default;
  Taxonomy& operator=(Taxonomy&&) = default;

  /// Builds a uniform random tree: `depth` levels below the root, each
  /// internal node with `branching` children.
  static Taxonomy BuildUniform(uint32_t depth, uint32_t branching);

  /// Adds a child under `parent` and returns its id.
  CategoryId AddChild(CategoryId parent, std::string label);

  /// Node ids from the root (inclusive) down to `node` (inclusive).
  std::vector<CategoryId> PathFromRoot(CategoryId node) const;

  /// "Top/Science/Astronomy"-style rendering of the path.
  std::string PathString(CategoryId node) const;

  /// All leaves in id order.
  std::vector<CategoryId> Leaves() const;

  /// Eq. 34: |longest common path prefix| / max(|path_a|, |path_b|).
  /// Identical categories score 1; categories sharing only the root score
  /// 1/depth.
  double PathRelevance(CategoryId a, CategoryId b) const;

  CategoryId parent(CategoryId node) const { return nodes_[node].parent; }
  const std::string& label(CategoryId node) const {
    return nodes_[node].label;
  }
  size_t size() const { return nodes_.size(); }

 private:
  struct Node {
    CategoryId parent;
    std::string label;
    std::vector<CategoryId> children;
  };
  std::vector<Node> nodes_;
};

}  // namespace pqsda

#endif  // PQSDA_SYNTHETIC_TAXONOMY_H_
