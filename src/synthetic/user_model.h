#ifndef PQSDA_SYNTHETIC_USER_MODEL_H_
#define PQSDA_SYNTHETIC_USER_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "log/record.h"
#include "synthetic/facet_model.h"

namespace pqsda {

/// Configuration for simulated users.
struct UserModelConfig {
  /// Size of the facet support each user concentrates on.
  uint32_t facets_of_interest = 5;
  /// Dirichlet concentration over the support (small = skewed).
  double preference_concentration = 0.7;
  /// Per-user multiplicative bias applied to preferred URLs/queries of a
  /// facet ("Toyota vs Ford" effect motivating UPM's per-user priors).
  /// Strong biases reproduce the heavy re-finding behaviour of real logs
  /// (users re-issue their own phrasings and re-click their own pages for a
  /// large share of traffic), which is what per-user emission models (UPM)
  /// exploit.
  double url_bias_strength = 8.0;
  double query_bias_strength = 8.0;
  /// Probability mass any facet outside the support can still receive
  /// (exploration; keeps the log from being perfectly separable).
  double exploration_prob = 0.08;
};

/// A simulated search-engine user: a facet preference that drifts linearly
/// over normalized time (web dynamics, §I), plus deterministic per-user
/// biases over each facet's URLs and query phrasings (per-user word/URL
/// preference, §V-A).
class SimulatedUser {
 public:
  SimulatedUser(UserId id, const FacetModel& facets,
                const UserModelConfig& config, Rng& rng);

  UserId id() const { return id_; }

  /// Facet preference at normalized time t in [0,1]: linear interpolation
  /// between the user's early and late mixtures, flattened by the
  /// exploration mass.
  std::vector<double> FacetWeightsAt(double t) const;

  /// Samples the facet of the next information need at time t.
  FacetId SampleFacet(double t, Rng& rng) const;

  /// Samples a URL index of facet f, combining facet popularity with this
  /// user's URL bias.
  size_t SampleUrl(const FacetModel& facets, FacetId f, Rng& rng) const;

  /// Samples a query-pool index of facet f, combining query popularity with
  /// this user's phrasing bias.
  size_t SampleQuery(const FacetModel& facets, FacetId f, Rng& rng) const;

  /// Deterministic per-user bias factor in [1, strength] for item `index`
  /// of facet `f` in stream `stream` (0 = URLs, 1 = queries).
  double Bias(FacetId f, size_t index, int stream, double strength) const;

  const std::vector<FacetId>& support() const { return support_; }

 private:
  UserId id_ = 0;
  size_t num_facets_ = 0;
  double exploration_prob_ = 0.0;
  double url_bias_strength_ = 1.0;
  double query_bias_strength_ = 1.0;
  std::vector<FacetId> support_;
  std::vector<double> start_weights_;
  std::vector<double> end_weights_;
  uint64_t bias_seed_ = 0;
};

}  // namespace pqsda

#endif  // PQSDA_SYNTHETIC_USER_MODEL_H_
