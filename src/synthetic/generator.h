#ifndef PQSDA_SYNTHETIC_GENERATOR_H_
#define PQSDA_SYNTHETIC_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "log/record.h"
#include "synthetic/facet_model.h"
#include "synthetic/taxonomy.h"
#include "synthetic/user_model.h"

namespace pqsda {

/// Everything that controls the synthetic query log. The defaults produce a
/// laptop-scale log (~40k records) whose statistical structure matches what
/// the paper's methods exploit; scale `num_users` up for the full-size runs.
struct GeneratorConfig {
  uint64_t seed = 42;
  uint32_t num_users = 400;
  uint32_t sessions_per_user_min = 14;
  uint32_t sessions_per_user_max = 30;
  uint32_t queries_per_session_min = 1;
  uint32_t queries_per_session_max = 5;
  /// Probability a query receives a click.
  double click_prob = 0.72;
  /// Log start time (epoch seconds) and total span.
  int64_t start_time = 1355270400;  // 2012-12-12, as in Table I.
  int64_t duration_seconds = 120LL * 24 * 3600;
  /// Within-session inter-query gap bounds (seconds).
  int64_t gap_min_seconds = 10;
  int64_t gap_max_seconds = 240;
  uint32_t taxonomy_depth = 3;
  uint32_t taxonomy_branching = 4;
  FacetModelConfig facet_config;
  UserModelConfig user_config;
};

/// The generated log plus the ground truth that the paper obtained from real
/// resources (ODP categories, clicked-page content, human raters).
struct SyntheticDataset {
  GeneratorConfig config;
  Taxonomy taxonomy;
  FacetModel facets;
  std::vector<SimulatedUser> users;
  /// Records in (user, time) order.
  std::vector<QueryLogRecord> records;
  /// Ground-truth facet of each record (the user's actual intent).
  std::vector<FacetId> record_facet;
  /// Ground-truth session index of each record (generation-time grouping;
  /// the sessionizer is evaluated against this).
  std::vector<uint32_t> record_session;

  SyntheticDataset(Taxonomy tax, FacetModel fm)
      : taxonomy(std::move(tax)), facets(std::move(fm)) {}
  SyntheticDataset(const SyntheticDataset&) = delete;
  SyntheticDataset& operator=(const SyntheticDataset&) = delete;
  SyntheticDataset(SyntheticDataset&&) = default;

  /// Ground-truth category of a canonical query (its primary facet's leaf);
  /// returns false for non-canonical strings.
  bool QueryCategory(const std::string& query, CategoryId* category) const;
};

/// Generates the synthetic dataset deterministically from config.seed.
SyntheticDataset GenerateLog(const GeneratorConfig& config);

}  // namespace pqsda

#endif  // PQSDA_SYNTHETIC_GENERATOR_H_
