#include "synthetic/user_model.h"

#include <algorithm>
#include <cassert>

namespace pqsda {

namespace {
uint64_t MixHash(uint64_t a, uint64_t b) {
  uint64_t x = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

SimulatedUser::SimulatedUser(UserId id, const FacetModel& facets,
                             const UserModelConfig& config, Rng& rng)
    : id_(id),
      num_facets_(facets.num_facets()),
      exploration_prob_(config.exploration_prob),
      url_bias_strength_(config.url_bias_strength),
      query_bias_strength_(config.query_bias_strength),
      bias_seed_(MixHash(0xA5A5A5A5ULL, id)) {
  assert(num_facets_ > 0);
  uint32_t k = std::min<uint32_t>(config.facets_of_interest,
                                  static_cast<uint32_t>(num_facets_));
  std::vector<FacetId> all(num_facets_);
  for (size_t f = 0; f < num_facets_; ++f) all[f] = static_cast<FacetId>(f);
  rng.Shuffle(all);
  support_.assign(all.begin(), all.begin() + k);
  start_weights_ = rng.NextDirichlet(config.preference_concentration, k);
  // Drift: the late mixture re-draws weights and may swap one support facet
  // for a fresh one (interest change over time).
  end_weights_ = rng.NextDirichlet(config.preference_concentration, k);
  if (k < num_facets_ && rng.NextDouble() < 0.5) {
    support_.push_back(all[k]);
    start_weights_.push_back(0.0);
    double w = 0.3 + 0.4 * rng.NextDouble();
    for (auto& v : end_weights_) v *= (1.0 - w);
    end_weights_.push_back(w);
  }
}

std::vector<double> SimulatedUser::FacetWeightsAt(double t) const {
  t = std::clamp(t, 0.0, 1.0);
  std::vector<double> weights(num_facets_,
                              exploration_prob_ / static_cast<double>(
                                                      num_facets_));
  for (size_t i = 0; i < support_.size(); ++i) {
    double w = (1.0 - t) * start_weights_[i] + t * end_weights_[i];
    weights[support_[i]] += (1.0 - exploration_prob_) * w;
  }
  return weights;
}

FacetId SimulatedUser::SampleFacet(double t, Rng& rng) const {
  std::vector<double> weights = FacetWeightsAt(t);
  return static_cast<FacetId>(rng.NextDiscrete(weights));
}

double SimulatedUser::Bias(FacetId f, size_t index, int stream,
                           double strength) const {
  uint64_t h = MixHash(bias_seed_, MixHash(f * 2654435761ULL + stream,
                                           index + 1));
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return 1.0 + u * (strength - 1.0);
}

size_t SimulatedUser::SampleUrl(const FacetModel& facets, FacetId f,
                                Rng& rng) const {
  const Facet& facet = facets.facet(f);
  std::vector<double> weights(facet.urls.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = facet.url_popularity[i] * Bias(f, i, 0, url_bias_strength_);
  }
  return rng.NextDiscrete(weights);
}

size_t SimulatedUser::SampleQuery(const FacetModel& facets, FacetId f,
                                  Rng& rng) const {
  const Facet& facet = facets.facet(f);
  std::vector<double> weights(facet.query_pool.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] =
        facet.query_popularity[i] * Bias(f, i, 1, query_bias_strength_);
  }
  return rng.NextDiscrete(weights);
}

}  // namespace pqsda
