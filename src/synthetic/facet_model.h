#ifndef PQSDA_SYNTHETIC_FACET_MODEL_H_
#define PQSDA_SYNTHETIC_FACET_MODEL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "synthetic/taxonomy.h"

namespace pqsda {

/// Dense facet id.
using FacetId = uint32_t;

/// A facet is one ground-truth interpretation of an information need: a leaf
/// category plus its own term pool, URL pool and a pool of canonical query
/// strings. Facets are the unit of diversity: a diversified suggestion list
/// should cover many facets; a personalized ranking should put the user's
/// preferred facets first.
struct Facet {
  FacetId id = 0;
  CategoryId category = 0;
  /// Facet-specific vocabulary.
  std::vector<std::string> terms;
  /// URLs belonging to this facet; index aligns with url_popularity.
  std::vector<std::string> urls;
  std::vector<double> url_popularity;
  /// Canonical query strings; identical information needs produce identical
  /// strings across users, which is what makes query-graph methods work.
  std::vector<std::string> query_pool;
  std::vector<double> query_popularity;
  /// The ambiguous concept token shared with other facets ("" if none). When
  /// non-empty, query_pool[0] is the bare token — the genuinely ambiguous
  /// head query shared verbatim across all facets of the concept.
  std::string concept_token;
};

/// Configuration for FacetModel.
struct FacetModelConfig {
  uint32_t num_facets = 64;
  uint32_t terms_per_facet = 24;
  uint32_t urls_per_facet = 16;
  /// Large pools with a steep popularity law give the canonical long tail of
  /// real query logs: most distinct queries occur a handful of times and a
  /// sizable fraction never receives a click — the regime in which the click
  /// graph's coverage problem (§III) actually bites.
  uint32_t queries_per_facet = 120;
  /// Number of ambiguous "sun"-style concepts.
  uint32_t num_concepts = 12;
  /// How many facets share each concept token.
  uint32_t facets_per_concept = 3;
  /// Shared terms per top-level taxonomy branch (connect related facets in
  /// the query-term bipartite).
  uint32_t branch_terms_per_branch = 12;
  /// Probability that a pool query draws one branch term.
  double branch_term_prob = 0.35;
  /// Zipf exponents for query/URL popularity inside a facet.
  double query_pop_zipf = 1.25;
  double url_pop_zipf = 1.0;
  /// Terms sampled into each URL's synthetic document.
  uint32_t doc_terms_per_url = 12;
};

/// Synthetic web-page content attached to a URL; consumed by the Diversity
/// metric (Eq. 32: page-pair similarity) and by PPR (title field).
struct UrlDocument {
  CategoryId category = 0;
  FacetId facet = 0;
  /// Sparse (term-id, weight) vector over the FacetModel's term interner,
  /// sorted by term id.
  std::vector<std::pair<uint32_t, double>> term_vector;
  /// High-quality field (HTML title stand-in): the document's top terms.
  std::string title;
};

/// Builds and owns the facets, their concept structure, and the synthetic
/// documents of their URLs.
class FacetModel {
 public:
  FacetModel(const Taxonomy& taxonomy, const FacetModelConfig& config,
             Rng& rng);

  FacetModel(const FacetModel&) = delete;
  FacetModel& operator=(const FacetModel&) = delete;
  FacetModel(FacetModel&&) = default;
  FacetModel& operator=(FacetModel&&) = default;

  const std::vector<Facet>& facets() const { return facets_; }
  const Facet& facet(FacetId id) const { return facets_[id]; }
  size_t num_facets() const { return facets_.size(); }

  /// All concept tokens ("sun"-style ambiguous heads).
  const std::vector<std::string>& concept_tokens() const {
    return concept_tokens_;
  }

  /// Facets sharing the given concept token index.
  const std::vector<FacetId>& concept_facets(size_t concept_index) const {
    return concept_members_[concept_index];
  }

  /// Samples a query-pool index for a facet, Zipf-weighted.
  size_t SampleQueryIndex(FacetId id, Rng& rng) const;

  /// Samples a URL index for a facet, Zipf-weighted.
  size_t SampleUrlIndex(FacetId id, Rng& rng) const;

  /// Synthetic document for a URL string; nullptr if unknown.
  const UrlDocument* FindDocument(const std::string& url) const;

  /// Ground-truth facet of a canonical query string. For ambiguous bare
  /// concept queries this returns the first owning facet; use
  /// QueryFacets() for the full set. Returns false if the query string is
  /// not canonical.
  bool QueryFacet(const std::string& query, FacetId* facet) const;

  /// All facets whose pool contains this query string.
  std::vector<FacetId> QueryFacets(const std::string& query) const;

  /// Interner mapping document/query terms to dense ids (for cosine math).
  uint32_t TermIdOrIntern(const std::string& term);
  /// Lookup without interning; UINT32_MAX if unseen.
  uint32_t TermId(const std::string& term) const;
  size_t vocab_size() const;

  /// Sparse, id-sorted term vector of a query string (unknown terms are
  /// skipped).
  std::vector<std::pair<uint32_t, double>> QueryTermVector(
      const std::string& query) const;

 private:
  std::vector<Facet> facets_;
  std::vector<std::string> concept_tokens_;
  std::vector<std::vector<FacetId>> concept_members_;
  std::vector<ZipfSampler> query_samplers_;
  std::vector<ZipfSampler> url_samplers_;
  std::unordered_map<std::string, UrlDocument> documents_;
  std::unordered_map<std::string, std::vector<FacetId>> query_to_facets_;
  StringInterner term_interner_;
};

}  // namespace pqsda

#endif  // PQSDA_SYNTHETIC_FACET_MODEL_H_
