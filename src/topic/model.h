#ifndef PQSDA_TOPIC_MODEL_H_
#define PQSDA_TOPIC_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "topic/corpus.h"

namespace pqsda {

/// Hyperparameters and Gibbs controls shared by all topic models.
struct TopicModelOptions {
  size_t num_topics = 20;
  /// Symmetric document-topic prior (initial value; UPM learns it).
  double alpha = 0.5;
  /// Symmetric topic-word prior (initial value; UPM learns it per word).
  double beta = 0.01;
  /// Symmetric topic-URL prior (initial value; UPM learns it per URL).
  double delta = 0.01;
  size_t gibbs_iterations = 120;
  uint64_t seed = 7;
};

/// Common interface of the generative models compared in Fig. 4 (LDA, TOT,
/// PTM1/2, MWM, TUM, CTM, SSTM and the paper's UPM). Train once, then query
/// per-document predictive distributions for the document-completion
/// perplexity (Eq. 35) and topic mixtures for personalization.
class TopicModel {
 public:
  virtual ~TopicModel() = default;

  /// Name as used in Fig. 4.
  virtual std::string name() const = 0;

  /// Runs Gibbs sampling (and any hyperparameter learning) on the corpus.
  virtual void Train(const QueryLogCorpus& corpus) = 0;

  /// Smoothed p(w | document d) over the full vocabulary, derived from the
  /// trained state. Sums to 1.
  virtual std::vector<double> PredictiveWordDistribution(size_t doc) const = 0;

  /// theta_d: the document's (user's) topic mixture.
  virtual std::vector<double> DocumentTopicMixture(size_t doc) const = 0;

  virtual size_t num_topics() const = 0;
};

/// One word token flattened out of a corpus, with its provenance.
struct WordToken {
  uint32_t doc = 0;
  uint32_t word = 0;
  /// Normalized timestamp of the token's session.
  double timestamp = 0.5;
};

/// Flattens all documents' session words into a token list (for word-level
/// Gibbs samplers).
std::vector<WordToken> FlattenWordTokens(const QueryLogCorpus& corpus);

}  // namespace pqsda

#endif  // PQSDA_TOPIC_MODEL_H_
