#include "topic/tot.h"

#include "common/math_util.h"
#include "optim/beta_fit.h"

namespace pqsda {

TotModel::TotModel(TopicModelOptions options) : LdaModel(options) {}

void TotModel::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.num_topics;
  vocab_ = corpus.vocab_size();
  docs_ = corpus.num_documents();
  std::vector<WordToken> tokens = FlattenWordTokens(corpus);

  doc_topic_.assign(docs_, std::vector<double>(K, 0.0));
  topic_word_.assign(K, std::vector<double>(vocab_, 0.0));
  topic_total_.assign(K, 0.0);
  doc_total_.assign(docs_, 0.0);
  beta_params_.assign(K, {1.0, 1.0});

  Rng rng(options_.seed);
  std::vector<uint32_t> z(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    z[i] = static_cast<uint32_t>(rng.NextBounded(K));
    doc_topic_[tokens[i].doc][z[i]] += 1.0;
    topic_word_[z[i]][tokens[i].word] += 1.0;
    topic_total_[z[i]] += 1.0;
    doc_total_[tokens[i].doc] += 1.0;
  }

  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double v_beta = static_cast<double>(vocab_) * beta;
  std::vector<double> weights(K);
  std::vector<std::vector<double>> topic_timestamps(K);

  for (size_t it = 0; it < options_.gibbs_iterations; ++it) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint32_t d = tokens[i].doc;
      const uint32_t w = tokens[i].word;
      const double t = tokens[i].timestamp;
      uint32_t old = z[i];
      doc_topic_[d][old] -= 1.0;
      topic_word_[old][w] -= 1.0;
      topic_total_[old] -= 1.0;
      for (size_t k = 0; k < K; ++k) {
        double time_term =
            BetaPdf(t, beta_params_[k].first, beta_params_[k].second);
        weights[k] = (doc_topic_[d][k] + alpha) *
                     (topic_word_[k][w] + beta) /
                     (topic_total_[k] + v_beta) * (time_term + 1e-8);
      }
      uint32_t knew = static_cast<uint32_t>(rng.NextDiscrete(weights));
      z[i] = knew;
      doc_topic_[d][knew] += 1.0;
      topic_word_[knew][w] += 1.0;
      topic_total_[knew] += 1.0;
    }
    // Re-fit the Beta temporal parameters every few sweeps (Eqs. 28–29
    // style moment updates).
    if (it % 10 == 9 || it + 1 == options_.gibbs_iterations) {
      for (auto& v : topic_timestamps) v.clear();
      for (size_t i = 0; i < tokens.size(); ++i) {
        topic_timestamps[z[i]].push_back(tokens[i].timestamp);
      }
      for (size_t k = 0; k < K; ++k) {
        beta_params_[k] = FitBetaMoments(topic_timestamps[k]);
      }
    }
  }
}

}  // namespace pqsda
