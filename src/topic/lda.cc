#include "topic/lda.h"

#include <cassert>

namespace pqsda {

LdaModel::LdaModel(TopicModelOptions options) : options_(options) {}

void LdaModel::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.num_topics;
  vocab_ = corpus.vocab_size();
  docs_ = corpus.num_documents();
  std::vector<WordToken> tokens = FlattenWordTokens(corpus);

  doc_topic_.assign(docs_, std::vector<double>(K, 0.0));
  topic_word_.assign(K, std::vector<double>(vocab_, 0.0));
  topic_total_.assign(K, 0.0);
  doc_total_.assign(docs_, 0.0);

  Rng rng(options_.seed);
  std::vector<uint32_t> z(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    z[i] = static_cast<uint32_t>(rng.NextBounded(K));
    doc_topic_[tokens[i].doc][z[i]] += 1.0;
    topic_word_[z[i]][tokens[i].word] += 1.0;
    topic_total_[z[i]] += 1.0;
    doc_total_[tokens[i].doc] += 1.0;
  }

  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double v_beta = static_cast<double>(vocab_) * beta;
  std::vector<double> weights(K);
  for (size_t it = 0; it < options_.gibbs_iterations; ++it) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      const uint32_t d = tokens[i].doc;
      const uint32_t w = tokens[i].word;
      uint32_t old = z[i];
      doc_topic_[d][old] -= 1.0;
      topic_word_[old][w] -= 1.0;
      topic_total_[old] -= 1.0;
      for (size_t k = 0; k < K; ++k) {
        weights[k] = (doc_topic_[d][k] + alpha) *
                     (topic_word_[k][w] + beta) / (topic_total_[k] + v_beta);
      }
      uint32_t knew = static_cast<uint32_t>(rng.NextDiscrete(weights));
      z[i] = knew;
      doc_topic_[d][knew] += 1.0;
      topic_word_[knew][w] += 1.0;
      topic_total_[knew] += 1.0;
    }
  }
}

std::vector<double> LdaModel::DocumentTopicMixture(size_t doc) const {
  const size_t K = options_.num_topics;
  std::vector<double> theta(K);
  double denom = doc_total_[doc] + static_cast<double>(K) * options_.alpha;
  for (size_t k = 0; k < K; ++k) {
    theta[k] = (doc_topic_[doc][k] + options_.alpha) / denom;
  }
  return theta;
}

std::vector<double> LdaModel::TopicWordDistribution(size_t topic) const {
  std::vector<double> phi(vocab_);
  double denom =
      topic_total_[topic] + static_cast<double>(vocab_) * options_.beta;
  for (size_t w = 0; w < vocab_; ++w) {
    phi[w] = (topic_word_[topic][w] + options_.beta) / denom;
  }
  return phi;
}

std::vector<double> LdaModel::PredictiveWordDistribution(size_t doc) const {
  assert(doc < docs_);
  const size_t K = options_.num_topics;
  std::vector<double> theta = DocumentTopicMixture(doc);
  std::vector<double> p(vocab_, 0.0);
  for (size_t k = 0; k < K; ++k) {
    double denom =
        topic_total_[k] + static_cast<double>(vocab_) * options_.beta;
    double scale = theta[k] / denom;
    for (size_t w = 0; w < vocab_; ++w) {
      p[w] += scale * (topic_word_[k][w] + options_.beta);
    }
  }
  return p;
}

}  // namespace pqsda
