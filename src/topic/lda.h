#ifndef PQSDA_TOPIC_LDA_H_
#define PQSDA_TOPIC_LDA_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "topic/model.h"

namespace pqsda {

/// Latent Dirichlet Allocation [19] with collapsed Gibbs sampling; the
/// classic baseline of Fig. 4. Word-level topic assignments, global
/// topic-word distributions, one document per user.
class LdaModel : public TopicModel {
 public:
  explicit LdaModel(TopicModelOptions options = {});

  std::string name() const override { return "LDA"; }
  void Train(const QueryLogCorpus& corpus) override;
  std::vector<double> PredictiveWordDistribution(size_t doc) const override;
  std::vector<double> DocumentTopicMixture(size_t doc) const override;
  size_t num_topics() const override { return options_.num_topics; }

  /// phi_k: smoothed topic-word distribution.
  std::vector<double> TopicWordDistribution(size_t topic) const;

 protected:
  TopicModelOptions options_;
  size_t vocab_ = 0;
  size_t docs_ = 0;
  /// n_dk, n_kw, n_k counts after the final sweep.
  std::vector<std::vector<double>> doc_topic_;
  std::vector<std::vector<double>> topic_word_;
  std::vector<double> topic_total_;
  std::vector<double> doc_total_;
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_LDA_H_
