#include "topic/corpus.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "text/tokenizer.h"

namespace pqsda {

QueryLogCorpus QueryLogCorpus::Build(
    const std::vector<QueryLogRecord>& records,
    const std::vector<Session>& sessions) {
  QueryLogCorpus corpus;

  int64_t t_min = std::numeric_limits<int64_t>::max();
  int64_t t_max = std::numeric_limits<int64_t>::min();
  for (const auto& rec : records) {
    t_min = std::min(t_min, rec.timestamp);
    t_max = std::max(t_max, rec.timestamp);
  }
  double span = static_cast<double>(std::max<int64_t>(t_max - t_min, 1));

  for (const Session& s : sessions) {
    if (s.record_indices.empty()) continue;
    UserId user = s.user_id;
    if (user >= corpus.user_to_document_.size()) {
      corpus.user_to_document_.resize(user + 1, SIZE_MAX);
    }
    if (corpus.user_to_document_[user] == SIZE_MAX) {
      corpus.user_to_document_[user] = corpus.documents_.size();
      corpus.documents_.push_back(UserDocument{user, {}});
    }
    UserDocument& doc = corpus.documents_[corpus.user_to_document_[user]];

    SessionObservation obs;
    int64_t ts_sum = 0;
    for (size_t idx : s.record_indices) {
      const QueryLogRecord& rec = records[idx];
      obs.query_offsets.push_back(static_cast<uint32_t>(obs.words.size()));
      for (const std::string& w : Tokenize(rec.query)) {
        obs.words.push_back(corpus.words_.Intern(w));
      }
      if (rec.has_click()) {
        obs.urls.push_back(corpus.urls_.Intern(rec.clicked_url));
        obs.url_query_index.push_back(
            static_cast<uint32_t>(obs.query_offsets.size() - 1));
      }
      ts_sum += rec.timestamp;
    }
    double mean_ts =
        static_cast<double>(ts_sum) / static_cast<double>(s.size());
    obs.timestamp = std::clamp((mean_ts - static_cast<double>(t_min)) / span,
                               0.01, 0.99);
    if (!obs.words.empty()) doc.sessions.push_back(std::move(obs));
  }
  return corpus;
}

std::vector<uint32_t> QueryLogCorpus::WordIds(const std::string& query) const {
  std::vector<uint32_t> ids;
  for (const std::string& w : Tokenize(query)) {
    StringId id = words_.Lookup(w);
    if (id != kInvalidStringId) ids.push_back(id);
  }
  return ids;
}

size_t QueryLogCorpus::DocumentOf(UserId user) const {
  if (user >= user_to_document_.size()) return SIZE_MAX;
  return user_to_document_[user];
}

QueryLogCorpus QueryLogCorpus::ShellLike(const QueryLogCorpus& src) {
  QueryLogCorpus out;
  out.words_ = src.words_;
  out.urls_ = src.urls_;
  out.user_to_document_ = src.user_to_document_;
  out.documents_.reserve(src.documents_.size());
  for (const auto& doc : src.documents_) {
    out.documents_.push_back(UserDocument{doc.user, {}});
  }
  return out;
}

void QueryLogCorpus::SplitBySessions(double holdout_fraction,
                                     QueryLogCorpus* train,
                                     QueryLogCorpus* test) const {
  *train = ShellLike(*this);
  *test = ShellLike(*this);
  for (size_t d = 0; d < documents_.size(); ++d) {
    const auto& sessions = documents_[d].sessions;
    size_t n_test = static_cast<size_t>(
        std::floor(holdout_fraction * static_cast<double>(sessions.size())));
    // Keep at least one training session.
    n_test = std::min(n_test, sessions.size() > 0 ? sessions.size() - 1 : 0);
    size_t n_train = sessions.size() - n_test;
    for (size_t s = 0; s < sessions.size(); ++s) {
      if (s < n_train) {
        train->documents_[d].sessions.push_back(sessions[s]);
      } else {
        test->documents_[d].sessions.push_back(sessions[s]);
      }
    }
  }
}

}  // namespace pqsda
