#include "topic/model.h"

namespace pqsda {

std::vector<WordToken> FlattenWordTokens(const QueryLogCorpus& corpus) {
  std::vector<WordToken> tokens;
  for (uint32_t d = 0; d < corpus.num_documents(); ++d) {
    for (const SessionObservation& s : corpus.documents()[d].sessions) {
      for (uint32_t w : s.words) {
        tokens.push_back(WordToken{d, w, s.timestamp});
      }
    }
  }
  return tokens;
}

}  // namespace pqsda
