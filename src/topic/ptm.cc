#include "topic/ptm.h"

#include <cmath>

#include "common/math_util.h"

namespace pqsda {

namespace {

// Log sequential Dirichlet-multinomial likelihood of emitting `items` from
// the distribution with counts `count[k][item]` (block already removed),
// total `total[k]` and symmetric prior `prior` over `dim` outcomes.
double BlockLogLikelihood(const std::vector<uint32_t>& items, size_t begin,
                          size_t end, const std::vector<double>& count,
                          double total, double prior, size_t dim) {
  double ll = 0.0;
  // c_sofar counts earlier occurrences of each item within the block; the
  // blocks are tiny (query/session length), so a linear scan suffices.
  for (size_t i = begin; i < end; ++i) {
    int prev = 0;
    for (size_t j = begin; j < i; ++j) {
      if (items[j] == items[i]) ++prev;
    }
    ll += std::log(count[items[i]] + prior + static_cast<double>(prev));
    ll -= std::log(total + prior * static_cast<double>(dim) +
                   static_cast<double>(i - begin));
  }
  return ll;
}

}  // namespace

Ptm1Model::Ptm1Model(TopicModelOptions options) : options_(options) {}

void Ptm1Model::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.num_topics;
  vocab_ = corpus.vocab_size();
  num_urls_ = corpus.num_urls();
  docs_ = corpus.num_documents();

  doc_topic_.assign(docs_, std::vector<double>(K, 0.0));
  topic_word_.assign(K, std::vector<double>(vocab_, 0.0));
  topic_word_total_.assign(K, 0.0);
  topic_url_.assign(K, std::vector<double>(num_urls_, 0.0));
  topic_url_total_.assign(K, 0.0);
  doc_total_.assign(docs_, 0.0);

  // Collect query blocks: (doc, session, query-index) with topic state.
  struct Block {
    uint32_t doc;
    const SessionObservation* session;
    uint32_t query;
    uint32_t topic;
  };
  std::vector<Block> blocks;
  for (uint32_t d = 0; d < docs_; ++d) {
    for (const SessionObservation& s : corpus.documents()[d].sessions) {
      for (uint32_t qi = 0; qi < s.num_queries(); ++qi) {
        blocks.push_back(Block{d, &s, qi, 0});
      }
    }
  }

  Rng rng(options_.seed);
  auto apply = [&](const Block& b, double sign) {
    auto [begin, end] = b.session->QueryWordRange(b.query);
    for (uint32_t i = begin; i < end; ++i) {
      topic_word_[b.topic][b.session->words[i]] += sign;
      topic_word_total_[b.topic] += sign;
    }
    doc_topic_[b.doc][b.topic] += sign;
    doc_total_[b.doc] += sign;
    if (use_urls()) {
      for (size_t u = 0; u < b.session->urls.size(); ++u) {
        if (b.session->url_query_index[u] != b.query) continue;
        topic_url_[b.topic][b.session->urls[u]] += sign;
        topic_url_total_[b.topic] += sign;
      }
    }
  };

  for (Block& b : blocks) {
    b.topic = static_cast<uint32_t>(rng.NextBounded(K));
    apply(b, +1.0);
  }

  std::vector<double> logw(K);
  for (size_t it = 0; it < options_.gibbs_iterations; ++it) {
    for (Block& b : blocks) {
      apply(b, -1.0);
      auto [begin, end] = b.session->QueryWordRange(b.query);
      for (size_t k = 0; k < K; ++k) {
        double lw = std::log(doc_topic_[b.doc][k] + options_.alpha);
        lw += BlockLogLikelihood(b.session->words, begin, end, topic_word_[k],
                                 topic_word_total_[k], options_.beta, vocab_);
        if (use_urls()) {
          // URL emissions of this query.
          for (size_t u = 0; u < b.session->urls.size(); ++u) {
            if (b.session->url_query_index[u] != b.query) continue;
            lw += std::log(topic_url_[k][b.session->urls[u]] +
                           options_.delta) -
                  std::log(topic_url_total_[k] +
                           options_.delta * static_cast<double>(num_urls_));
          }
        }
        logw[k] = lw;
      }
      double lse = LogSumExp(logw);
      std::vector<double> w(K);
      for (size_t k = 0; k < K; ++k) w[k] = std::exp(logw[k] - lse);
      b.topic = static_cast<uint32_t>(rng.NextDiscrete(w));
      apply(b, +1.0);
    }
  }
}

std::vector<double> Ptm1Model::DocumentTopicMixture(size_t doc) const {
  const size_t K = options_.num_topics;
  std::vector<double> theta(K);
  double denom = doc_total_[doc] + static_cast<double>(K) * options_.alpha;
  for (size_t k = 0; k < K; ++k) {
    theta[k] = (doc_topic_[doc][k] + options_.alpha) / denom;
  }
  return theta;
}

std::vector<double> Ptm1Model::PredictiveWordDistribution(size_t doc) const {
  const size_t K = options_.num_topics;
  std::vector<double> theta = DocumentTopicMixture(doc);
  std::vector<double> p(vocab_, 0.0);
  for (size_t k = 0; k < K; ++k) {
    double denom = topic_word_total_[k] +
                   static_cast<double>(vocab_) * options_.beta;
    double scale = theta[k] / denom;
    for (size_t w = 0; w < vocab_; ++w) {
      p[w] += scale * (topic_word_[k][w] + options_.beta);
    }
  }
  return p;
}

}  // namespace pqsda
