#ifndef PQSDA_TOPIC_PERPLEXITY_H_
#define PQSDA_TOPIC_PERPLEXITY_H_

#include "topic/model.h"

namespace pqsda {

/// Outcome of a perplexity evaluation.
struct PerplexityResult {
  double perplexity = 0.0;
  double log_likelihood = 0.0;
  size_t predicted_words = 0;
};

/// Document-completion perplexity (Eq. 35, the Fig. 4 protocol): the model
/// was trained on the observed portion of each user's history; this
/// evaluates how well its per-document predictive distribution explains the
/// held-out query words. `test` must share document indices and vocabularies
/// with the training corpus (see QueryLogCorpus::SplitBySessions).
PerplexityResult EvaluatePerplexity(const TopicModel& model,
                                    const QueryLogCorpus& test);

}  // namespace pqsda

#endif  // PQSDA_TOPIC_PERPLEXITY_H_
