#include "topic/parallel_lda.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace pqsda {

ParallelLdaModel::ParallelLdaModel(TopicModelOptions options, size_t threads)
    : LdaModel(options),
      threads_(threads != 0 ? threads
                            : std::max<size_t>(
                                  std::thread::hardware_concurrency(), 1)) {}

void ParallelLdaModel::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.num_topics;
  vocab_ = corpus.vocab_size();
  docs_ = corpus.num_documents();
  std::vector<WordToken> tokens = FlattenWordTokens(corpus);

  doc_topic_.assign(docs_, std::vector<double>(K, 0.0));
  topic_word_.assign(K, std::vector<double>(vocab_, 0.0));
  topic_total_.assign(K, 0.0);
  doc_total_.assign(docs_, 0.0);

  Rng init_rng(options_.seed);
  std::vector<uint32_t> z(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    z[i] = static_cast<uint32_t>(init_rng.NextBounded(K));
    doc_topic_[tokens[i].doc][z[i]] += 1.0;
    topic_word_[z[i]][tokens[i].word] += 1.0;
    topic_total_[z[i]] += 1.0;
    doc_total_[tokens[i].doc] += 1.0;
  }

  // Shard tokens by *document* so the doc-topic counts of a document are
  // touched by exactly one thread; only the topic-word counts are
  // approximate (AD-LDA).
  const size_t shards = std::min(threads_, std::max<size_t>(docs_, 1));
  std::vector<std::vector<size_t>> shard_tokens(shards);
  for (size_t i = 0; i < tokens.size(); ++i) {
    shard_tokens[tokens[i].doc % shards].push_back(i);
  }

  const double alpha = options_.alpha;
  const double beta = options_.beta;
  const double v_beta = static_cast<double>(vocab_) * beta;

  for (size_t it = 0; it < options_.gibbs_iterations; ++it) {
    // Per-shard private copies of the global counts.
    std::vector<std::vector<std::vector<double>>> local_tw(
        shards, topic_word_);
    std::vector<std::vector<double>> local_tt(shards, topic_total_);

    auto sweep = [&](size_t shard) {
      Rng rng(options_.seed + 0x9E37ULL * (it * shards + shard + 1));
      std::vector<double> weights(K);
      auto& tw = local_tw[shard];
      auto& tt = local_tt[shard];
      for (size_t i : shard_tokens[shard]) {
        const uint32_t d = tokens[i].doc;
        const uint32_t w = tokens[i].word;
        uint32_t old = z[i];
        doc_topic_[d][old] -= 1.0;
        tw[old][w] -= 1.0;
        tt[old] -= 1.0;
        for (size_t k = 0; k < K; ++k) {
          weights[k] = (doc_topic_[d][k] + alpha) *
                       std::max(tw[k][w] + beta, beta) /
                       std::max(tt[k] + v_beta, v_beta);
        }
        uint32_t knew = static_cast<uint32_t>(rng.NextDiscrete(weights));
        z[i] = knew;
        doc_topic_[d][knew] += 1.0;
        tw[knew][w] += 1.0;
        tt[knew] += 1.0;
      }
    };

    std::vector<std::thread> workers;
    for (size_t s = 1; s < shards; ++s) workers.emplace_back(sweep, s);
    sweep(0);
    for (auto& t : workers) t.join();

    // Merge: global += sum of per-shard deltas.
    for (size_t s = 0; s < shards; ++s) {
      for (size_t k = 0; k < K; ++k) {
        for (size_t w = 0; w < vocab_; ++w) {
          local_tw[s][k][w] -= topic_word_[k][w];
        }
        local_tt[s][k] -= topic_total_[k];
      }
    }
    for (size_t s = 0; s < shards; ++s) {
      for (size_t k = 0; k < K; ++k) {
        for (size_t w = 0; w < vocab_; ++w) {
          topic_word_[k][w] += local_tw[s][k][w];
        }
        topic_total_[k] += local_tt[s][k];
      }
    }
  }
}

}  // namespace pqsda
