#include "topic/perplexity.h"

#include <cmath>

namespace pqsda {

PerplexityResult EvaluatePerplexity(const TopicModel& model,
                                    const QueryLogCorpus& test) {
  PerplexityResult result;
  for (size_t d = 0; d < test.num_documents(); ++d) {
    const UserDocument& doc = test.documents()[d];
    if (doc.sessions.empty()) continue;
    std::vector<double> p = model.PredictiveWordDistribution(d);
    for (const SessionObservation& s : doc.sessions) {
      for (uint32_t w : s.words) {
        double pw = w < p.size() ? p[w] : 0.0;
        result.log_likelihood += std::log(std::max(pw, 1e-12));
        ++result.predicted_words;
      }
    }
  }
  if (result.predicted_words == 0) {
    result.perplexity = 0.0;
    return result;
  }
  result.perplexity = std::exp(-result.log_likelihood /
                               static_cast<double>(result.predicted_words));
  return result;
}

}  // namespace pqsda
