#ifndef PQSDA_TOPIC_SSTM_H_
#define PQSDA_TOPIC_SSTM_H_

#include <string>
#include <utility>
#include <vector>

#include "topic/click_models.h"

namespace pqsda {

/// SSTM (Jiang & Ng, SIGIR'13 [35]): session-level clickthrough topics with
/// per-topic temporal (Beta) patterns — CTM plus a topics-over-time prior on
/// the session timestamp, with the Beta parameters re-fit by moments after
/// each sweep.
class SstmModel : public CtmModel {
 public:
  explicit SstmModel(TopicModelOptions options = {});

  std::string name() const override { return "SSTM"; }
  void Train(const QueryLogCorpus& corpus) override;

  std::pair<double, double> TopicBeta(size_t k) const {
    return beta_params_[k];
  }

 protected:
  double SessionLogPrior(size_t topic,
                         const SessionObservation& session) const override;
  void AfterSweep(const std::vector<const SessionObservation*>& sessions,
                  const std::vector<uint32_t>& topics) override;

 private:
  std::vector<std::pair<double, double>> beta_params_;
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_SSTM_H_
