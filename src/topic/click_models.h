#ifndef PQSDA_TOPIC_CLICK_MODELS_H_
#define PQSDA_TOPIC_CLICK_MODELS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "topic/model.h"

namespace pqsda {

/// MWM — Meta-word Model (Jiang et al., DASFAA'13 [34]): clicked URLs are
/// folded into the vocabulary as meta-words and a word-level LDA runs over
/// the combined token stream. Word prediction renormalizes over the word
/// sub-vocabulary.
class MwmModel : public TopicModel {
 public:
  explicit MwmModel(TopicModelOptions options = {});

  std::string name() const override { return "MWM"; }
  void Train(const QueryLogCorpus& corpus) override;
  std::vector<double> PredictiveWordDistribution(size_t doc) const override;
  std::vector<double> DocumentTopicMixture(size_t doc) const override;
  size_t num_topics() const override { return options_.num_topics; }

 private:
  TopicModelOptions options_;
  size_t word_vocab_ = 0;
  size_t combined_vocab_ = 0;
  size_t docs_ = 0;
  std::vector<std::vector<double>> doc_topic_;
  std::vector<std::vector<double>> topic_token_;
  std::vector<double> topic_total_;
  std::vector<double> doc_total_;
};

/// TUM — Term-URL Model [34]: word-level topics with *separate* emission
/// distributions for terms and URLs; both token kinds share the user's topic
/// mixture but never compete in one multinomial (unlike MWM).
class TumModel : public TopicModel {
 public:
  explicit TumModel(TopicModelOptions options = {});

  std::string name() const override { return "TUM"; }
  void Train(const QueryLogCorpus& corpus) override;
  std::vector<double> PredictiveWordDistribution(size_t doc) const override;
  std::vector<double> DocumentTopicMixture(size_t doc) const override;
  size_t num_topics() const override { return options_.num_topics; }

 private:
  TopicModelOptions options_;
  size_t vocab_ = 0;
  size_t num_urls_ = 0;
  size_t docs_ = 0;
  std::vector<std::vector<double>> doc_topic_;
  std::vector<std::vector<double>> topic_word_;
  std::vector<double> topic_word_total_;
  std::vector<std::vector<double>> topic_url_;
  std::vector<double> topic_url_total_;
  std::vector<double> doc_total_;
};

/// CTM — Clickthrough Model [34]: one topic per *session*; all words and
/// clicked URLs of the session are emitted from that topic's global word and
/// URL distributions. The structural ancestor of SSTM and UPM.
class CtmModel : public TopicModel {
 public:
  explicit CtmModel(TopicModelOptions options = {});

  std::string name() const override { return "CTM"; }
  void Train(const QueryLogCorpus& corpus) override;
  std::vector<double> PredictiveWordDistribution(size_t doc) const override;
  std::vector<double> DocumentTopicMixture(size_t doc) const override;
  size_t num_topics() const override { return options_.num_topics; }

 protected:
  /// SSTM hook: extra per-topic log weight for a session (time prior).
  virtual double SessionLogPrior(size_t topic,
                                 const SessionObservation& session) const {
    (void)topic;
    (void)session;
    return 0.0;
  }
  /// SSTM hook: called after each sweep with the topic of every session.
  virtual void AfterSweep(const std::vector<const SessionObservation*>& sessions,
                          const std::vector<uint32_t>& topics) {
    (void)sessions;
    (void)topics;
  }

  TopicModelOptions options_;
  size_t vocab_ = 0;
  size_t num_urls_ = 0;
  size_t docs_ = 0;
  std::vector<std::vector<double>> doc_topic_;
  std::vector<std::vector<double>> topic_word_;
  std::vector<double> topic_word_total_;
  std::vector<std::vector<double>> topic_url_;
  std::vector<double> topic_url_total_;
  std::vector<double> doc_total_;
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_CLICK_MODELS_H_
