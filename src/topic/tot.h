#ifndef PQSDA_TOPIC_TOT_H_
#define PQSDA_TOPIC_TOT_H_

#include <string>
#include <utility>
#include <vector>

#include "topic/lda.h"

namespace pqsda {

/// Topics-over-Time (Wang & McCallum [29]): LDA whose sampling weight is
/// additionally shaped by a per-topic Beta distribution over normalized
/// timestamps, re-fit by moments between sweeps. Captures the temporal
/// prominence of topics, which plain LDA ignores.
class TotModel : public LdaModel {
 public:
  explicit TotModel(TopicModelOptions options = {});

  std::string name() const override { return "TOT"; }
  void Train(const QueryLogCorpus& corpus) override;

  /// (a, b) of topic k's Beta over time.
  std::pair<double, double> TopicBeta(size_t k) const { return beta_params_[k]; }

 private:
  std::vector<std::pair<double, double>> beta_params_;
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_TOT_H_
