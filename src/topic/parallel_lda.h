#ifndef PQSDA_TOPIC_PARALLEL_LDA_H_
#define PQSDA_TOPIC_PARALLEL_LDA_H_

#include <cstddef>
#include <string>

#include "topic/lda.h"

namespace pqsda {

/// Approximate-distributed LDA (the AD-LDA paradigm of Newman et al. [31],
/// which the paper names as the route to scaling the UPM family "to very
/// large datasets"). Word tokens are partitioned across threads; each
/// thread sweeps its shard against a private copy of the topic-word counts,
/// and the shards' count deltas are merged after every sweep. The result is
/// a slightly stale-count Gibbs chain that converges to the same
/// distribution in practice while using all cores.
class ParallelLdaModel : public LdaModel {
 public:
  /// `threads == 0` uses the hardware concurrency.
  explicit ParallelLdaModel(TopicModelOptions options = {},
                            size_t threads = 0);

  std::string name() const override { return "LDA-par"; }
  void Train(const QueryLogCorpus& corpus) override;

  size_t threads() const { return threads_; }

 private:
  size_t threads_;
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_PARALLEL_LDA_H_
