#include "topic/upm.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "obs/stage_profiler.h"
#include "optim/beta_fit.h"
#include "optim/dirichlet_opt.h"

namespace pqsda {

UpmModel::UpmModel(UpmOptions options) : options_(options) {}

void UpmModel::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.base.num_topics;
  vocab_ = corpus.vocab_size();
  num_urls_ = corpus.num_urls();
  docs_ = corpus.num_documents();

  alpha_.assign(K, options_.base.alpha);
  beta_.assign(K, std::vector<double>(vocab_, options_.base.beta));
  delta_.assign(K, std::vector<double>(num_urls_, options_.base.delta));
  beta_sum_.assign(K, options_.base.beta * static_cast<double>(vocab_));
  delta_sum_.assign(K, options_.base.delta * static_cast<double>(num_urls_));
  tau_.assign(K, {1.0, 1.0});

  c_dk_.assign(docs_, std::vector<double>(K, 0.0));
  c_d_total_.assign(docs_, 0.0);
  c_wkd_.assign(docs_, std::vector<SparseMap>(K));
  c_wkd_total_.assign(docs_, std::vector<double>(K, 0.0));
  c_ukd_.assign(docs_, std::vector<SparseMap>(K));
  c_ukd_total_.assign(docs_, std::vector<double>(K, 0.0));

  struct Block {
    uint32_t doc;
    const SessionObservation* session;
    uint32_t topic;
  };
  std::vector<Block> blocks;
  unigram_.assign(vocab_, 1.0);  // add-one smoothing
  double total_words = static_cast<double>(vocab_);
  for (uint32_t d = 0; d < docs_; ++d) {
    for (const SessionObservation& s : corpus.documents()[d].sessions) {
      blocks.push_back(Block{d, &s, 0});
      for (uint32_t w : s.words) {
        unigram_[w] += 1.0;
        total_words += 1.0;
      }
    }
  }
  for (double& u : unigram_) u /= total_words;

  Rng rng(options_.base.seed);
  auto apply = [this](const Block& b, double sign) {
    c_dk_[b.doc][b.topic] += sign;
    c_d_total_[b.doc] += sign;
    for (uint32_t w : b.session->words) {
      c_wkd_[b.doc][b.topic][w] += sign;
      c_wkd_total_[b.doc][b.topic] += sign;
    }
    for (uint32_t u : b.session->urls) {
      c_ukd_[b.doc][b.topic][u] += sign;
      c_ukd_total_[b.doc][b.topic] += sign;
    }
  };
  for (Block& b : blocks) {
    b.topic = static_cast<uint32_t>(rng.NextBounded(K));
    apply(b, +1.0);
  }

  const size_t total_iters = options_.base.gibbs_iterations;
  const size_t hyper_interval =
      options_.learn_hyperparameters && options_.hyper_rounds > 0
          ? std::max<size_t>(total_iters / (options_.hyper_rounds + 1), 1)
          : total_iters + 1;

  std::vector<double> logw(K);
  std::vector<std::vector<double>> topic_stamps(K);
  const bool report = static_cast<bool>(options_.progress);
  for (size_t it = 0; it < total_iters; ++it) {
    WallTimer sweep_timer;
    double log_posterior = 0.0;
    for (Block& b : blocks) {
      apply(b, -1.0);
      const SparseMap* wm;
      const SparseMap* um;
      for (size_t k = 0; k < K; ++k) {
        double lw = std::log(c_dk_[b.doc][k] + alpha_[k]);
        wm = &c_wkd_[b.doc][k];
        um = &c_ukd_[b.doc][k];
        // Sequential Dirichlet-multinomial over the session's words under
        // the per-document distribution with prior beta_k (Eq. 23).
        const auto& words = b.session->words;
        for (size_t i = 0; i < words.size(); ++i) {
          int prev = 0;
          for (size_t j = 0; j < i; ++j) {
            if (words[j] == words[i]) ++prev;
          }
          auto itc = wm->find(words[i]);
          double c = itc != wm->end() ? itc->second : 0.0;
          lw += std::log(c + beta_[k][words[i]] + static_cast<double>(prev));
          lw -= std::log(c_wkd_total_[b.doc][k] + beta_sum_[k] +
                         static_cast<double>(i));
        }
        const auto& urls = b.session->urls;
        for (size_t i = 0; i < urls.size(); ++i) {
          int prev = 0;
          for (size_t j = 0; j < i; ++j) {
            if (urls[j] == urls[i]) ++prev;
          }
          auto itc = um->find(urls[i]);
          double c = itc != um->end() ? itc->second : 0.0;
          lw += std::log(c + delta_[k][urls[i]] + static_cast<double>(prev));
          lw -= std::log(c_ukd_total_[b.doc][k] + delta_sum_[k] +
                         static_cast<double>(i));
        }
        if (options_.use_timestamps) {
          lw += std::log(
              BetaPdf(b.session->timestamp, tau_[k].first, tau_[k].second) +
              1e-8);
        }
        logw[k] = lw;
      }
      double lse = LogSumExp(logw);
      std::vector<double> w(K);
      for (size_t k = 0; k < K; ++k) w[k] = std::exp(logw[k] - lse);
      b.topic = static_cast<uint32_t>(rng.NextDiscrete(w));
      if (report) log_posterior += logw[b.topic];
      apply(b, +1.0);
    }

    // Temporal parameters by moments (Eqs. 28–29), every sweep.
    if (options_.use_timestamps) {
      for (auto& v : topic_stamps) v.clear();
      for (const Block& b : blocks) {
        topic_stamps[b.topic].push_back(b.session->timestamp);
      }
      for (size_t k = 0; k < K; ++k) tau_[k] = FitBetaMoments(topic_stamps[k]);
    }

    if ((it + 1) % hyper_interval == 0 && it + 1 < total_iters) {
      OptimizeHyperparameters();
    }

    if (report) {
      GibbsSweepStats sweep_stats;
      sweep_stats.sweep = it;
      sweep_stats.total_sweeps = total_iters;
      sweep_stats.duration_us = sweep_timer.ElapsedMicros();
      sweep_stats.log_posterior = log_posterior;
      options_.progress(sweep_stats);
    }
  }
  if (options_.learn_hyperparameters) OptimizeHyperparameters();
  BuildScoreIndex();
}

void UpmModel::BuildScoreIndex() {
  const size_t K = options_.base.num_topics;
  score_offsets_.assign(docs_ * K + 1, 0);
  size_t total = 0;
  for (size_t d = 0; d < docs_; ++d) {
    for (size_t k = 0; k < K; ++k) total += c_wkd_[d][k].size();
  }
  score_words_.clear();
  score_counts_.clear();
  score_words_.reserve(total);
  score_counts_.reserve(total);
  std::vector<std::pair<uint32_t, double>> segment;
  for (size_t d = 0; d < docs_; ++d) {
    for (size_t k = 0; k < K; ++k) {
      const SparseMap& m = c_wkd_[d][k];
      segment.assign(m.begin(), m.end());
      std::sort(segment.begin(), segment.end());
      for (const auto& [w, c] : segment) {
        score_words_.push_back(w);
        score_counts_.push_back(c);
      }
      score_offsets_[d * K + k + 1] = score_words_.size();
    }
  }
}

void UpmModel::OptimizeHyperparameters() {
  const size_t K = options_.base.num_topics;
  // alpha (Eq. 25): groups = documents, counts = C_dk.
  {
    std::vector<SparseCounts> groups(docs_);
    for (size_t d = 0; d < docs_; ++d) {
      for (uint32_t k = 0; k < K; ++k) {
        if (c_dk_[d][k] > 0.0) groups[d].emplace_back(k, c_dk_[d][k]);
      }
    }
    OptimizeDirichlet(groups, K, alpha_, options_.lbfgs);
  }
  // beta_.k (Eq. 26): per topic, groups = documents, counts = C_kwd.
  for (size_t k = 0; k < K; ++k) {
    std::vector<SparseCounts> groups(docs_);
    for (size_t d = 0; d < docs_; ++d) {
      groups[d].assign(c_wkd_[d][k].begin(), c_wkd_[d][k].end());
    }
    OptimizeDirichlet(groups, vocab_, beta_[k], options_.lbfgs);
    beta_sum_[k] = 0.0;
    for (double v : beta_[k]) beta_sum_[k] += v;
  }
  // delta_.k (Eq. 27).
  for (size_t k = 0; k < K; ++k) {
    std::vector<SparseCounts> groups(docs_);
    for (size_t d = 0; d < docs_; ++d) {
      groups[d].assign(c_ukd_[d][k].begin(), c_ukd_[d][k].end());
    }
    OptimizeDirichlet(groups, num_urls_, delta_[k], options_.lbfgs);
    delta_sum_[k] = 0.0;
    for (double v : delta_[k]) delta_sum_[k] += v;
  }
}

std::vector<double> UpmModel::DocumentTopicMixture(size_t doc) const {
  const size_t K = options_.base.num_topics;
  std::vector<double> theta(K);
  double alpha_total = 0.0;
  for (double a : alpha_) alpha_total += a;
  double denom = c_d_total_[doc] + alpha_total;
  for (size_t k = 0; k < K; ++k) {
    // Eq. 30.
    theta[k] = (c_dk_[doc][k] + alpha_[k]) / denom;
  }
  return theta;
}

double UpmModel::WordProbability(size_t doc, size_t topic,
                                 uint32_t word) const {
  double c = 0.0;
  if (!score_offsets_.empty()) {
    // Binary search of the packed (doc, topic) segment — the request-path
    // fast path; same count the map would return.
    const size_t K = options_.base.num_topics;
    const size_t begin = score_offsets_[doc * K + topic];
    const size_t end = score_offsets_[doc * K + topic + 1];
    const uint32_t* lo = score_words_.data() + begin;
    const uint32_t* hi = score_words_.data() + end;
    const uint32_t* it = std::lower_bound(lo, hi, word);
    if (it != hi && *it == word) c = score_counts_[it - score_words_.data()];
  } else {
    const SparseMap& m = c_wkd_[doc][topic];
    auto it = m.find(word);
    c = it != m.end() ? it->second : 0.0;
  }
  return (c + beta_[topic][word]) /
         (c_wkd_total_[doc][topic] + beta_sum_[topic]);
}

std::vector<double> UpmModel::PredictiveWordDistribution(size_t doc) const {
  const size_t K = options_.base.num_topics;
  std::vector<double> theta = DocumentTopicMixture(doc);
  std::vector<double> p(vocab_, 0.0);
  for (size_t k = 0; k < K; ++k) {
    // Smoothed per-user distribution: learned shared prior beta_k carries
    // the mass for words this user never typed.
    double denom = c_wkd_total_[doc][k] + beta_sum_[k];
    double scale = theta[k] / denom;
    for (size_t w = 0; w < vocab_; ++w) {
      p[w] += scale * beta_[k][w];
    }
    if (!score_offsets_.empty()) {
      // Packed segment walk (each word id appears once per (doc, topic), so
      // the accumulation is order-independent and matches the map path).
      for (size_t i = score_offsets_[doc * K + k];
           i < score_offsets_[doc * K + k + 1]; ++i) {
        p[score_words_[i]] += scale * score_counts_[i];
      }
    } else {
      for (const auto& [w, c] : c_wkd_[doc][k]) {
        p[w] += scale * c;
      }
    }
  }
  return p;
}

double UpmModel::PreferenceScore(size_t doc,
                                 const std::vector<uint32_t>& words) const {
  if (doc >= docs_ || words.empty()) return 1e-9;
  // Personalization work = candidate words scored through the topic mixture
  // (Eq. 31); one rerank calls this once per candidate.
  obs::StageProfiler::AddWork(obs::ProfileStage::kPersonalization,
                              words.size());
  const size_t K = options_.base.num_topics;
  std::vector<double> theta = DocumentTopicMixture(doc);
  double score = 0.0;
  for (uint32_t w : words) {
    if (w >= vocab_) continue;
    double pw = 0.0;
    for (size_t k = 0; k < K; ++k) {
      pw += theta[k] * WordProbability(doc, k, w);
    }
    score += pw / unigram_[w];
  }
  return score / static_cast<double>(words.size());
}

}  // namespace pqsda
