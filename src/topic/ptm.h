#ifndef PQSDA_TOPIC_PTM_H_
#define PQSDA_TOPIC_PTM_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "topic/model.h"

namespace pqsda {

/// PTM1 (Carman et al., CIKM'10 [21]): personalization topic model for
/// query logs. One topic per *query* (all words of a query share the
/// topic), per-user topic mixtures, global topic-word distributions.
class Ptm1Model : public TopicModel {
 public:
  explicit Ptm1Model(TopicModelOptions options = {});

  std::string name() const override { return "PTM1"; }
  void Train(const QueryLogCorpus& corpus) override;
  std::vector<double> PredictiveWordDistribution(size_t doc) const override;
  std::vector<double> DocumentTopicMixture(size_t doc) const override;
  size_t num_topics() const override { return options_.num_topics; }

 protected:
  /// True for PTM2: query blocks also emit their clicked URLs from a global
  /// topic-URL distribution, coupling word topics to clickthrough.
  virtual bool use_urls() const { return false; }

  TopicModelOptions options_;
  size_t vocab_ = 0;
  size_t num_urls_ = 0;
  size_t docs_ = 0;
  std::vector<std::vector<double>> doc_topic_;
  std::vector<std::vector<double>> topic_word_;
  std::vector<double> topic_word_total_;
  std::vector<std::vector<double>> topic_url_;
  std::vector<double> topic_url_total_;
  std::vector<double> doc_total_;
};

/// PTM2 [21]: PTM1 plus clicked-URL emission per query.
class Ptm2Model : public Ptm1Model {
 public:
  explicit Ptm2Model(TopicModelOptions options = {}) : Ptm1Model(options) {}

  std::string name() const override { return "PTM2"; }

 protected:
  bool use_urls() const override { return true; }
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_PTM_H_
