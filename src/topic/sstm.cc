#include "topic/sstm.h"

#include <cmath>

#include "common/math_util.h"
#include "optim/beta_fit.h"

namespace pqsda {

SstmModel::SstmModel(TopicModelOptions options) : CtmModel(options) {}

void SstmModel::Train(const QueryLogCorpus& corpus) {
  beta_params_.assign(options_.num_topics, {1.0, 1.0});
  CtmModel::Train(corpus);
}

double SstmModel::SessionLogPrior(size_t topic,
                                  const SessionObservation& session) const {
  double pdf = BetaPdf(session.timestamp, beta_params_[topic].first,
                       beta_params_[topic].second);
  return std::log(pdf + 1e-8);
}

void SstmModel::AfterSweep(
    const std::vector<const SessionObservation*>& sessions,
    const std::vector<uint32_t>& topics) {
  std::vector<std::vector<double>> stamps(options_.num_topics);
  for (size_t i = 0; i < sessions.size(); ++i) {
    stamps[topics[i]].push_back(sessions[i]->timestamp);
  }
  for (size_t k = 0; k < options_.num_topics; ++k) {
    beta_params_[k] = FitBetaMoments(stamps[k]);
  }
}

}  // namespace pqsda
