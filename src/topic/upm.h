#ifndef PQSDA_TOPIC_UPM_H_
#define PQSDA_TOPIC_UPM_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "optim/lbfgs.h"
#include "topic/model.h"

namespace pqsda {

/// Progress report of one Gibbs sweep, delivered through
/// UpmOptions::progress so callers (the engine's observability wiring, CLIs,
/// tests) can watch convergence and per-sweep cost without touching the
/// sampler.
struct GibbsSweepStats {
  /// 0-based sweep index and the configured total.
  size_t sweep = 0;
  size_t total_sweeps = 0;
  int64_t duration_us = 0;
  /// Sum over session blocks of the unnormalized log posterior weight of the
  /// sampled topic (Eq. 23 terms) — a convergence proxy comparable across
  /// sweeps of one Train call; it typically rises and plateaus as the chain
  /// mixes.
  double log_posterior = 0.0;
};

/// Options of the User Profiling Model.
struct UpmOptions {
  TopicModelOptions base;
  /// Learn alpha, beta, delta by L-BFGS on the complete likelihood
  /// (Eqs. 25–27); when false the symmetric initial values are kept (used by
  /// the hyperparameter ablation).
  bool learn_hyperparameters = true;
  /// Number of hyperparameter-optimization rounds interleaved with Gibbs.
  size_t hyper_rounds = 2;
  /// Include the Beta temporal term (Eq. 22) in sampling.
  bool use_timestamps = true;
  LbfgsOptions lbfgs;
  /// Invoked after every Gibbs sweep when set. Keep it cheap — it runs on
  /// the training thread.
  std::function<void(const GibbsSweepStats&)> progress;
};

/// UPM — User Profiling Model (§V-A). One document per user; one topic per
/// session; the session's words and URLs are emitted from *per-document*
/// multinomials phi_kd / Omega_kd whose Dirichlet priors beta_k / delta_k
/// are shared across users and learned — that sharing is what lets a user's
/// sparse history borrow strength while keeping their personal word/URL
/// preferences (the "Toyota vs Ford" effect). Session timestamps follow
/// per-topic Beta distributions (Eqs. 28–29).
class UpmModel : public TopicModel {
 public:
  explicit UpmModel(UpmOptions options = {});

  std::string name() const override { return "UPM"; }
  void Train(const QueryLogCorpus& corpus) override;
  std::vector<double> PredictiveWordDistribution(size_t doc) const override;
  std::vector<double> DocumentTopicMixture(size_t doc) const override;
  size_t num_topics() const override { return options_.base.num_topics; }

  /// Eq. 31: the user's preference score of a query given as word ids —
  /// the mean, over the query's words, of the profile-weighted per-user
  /// predictive word probability, normalized by the corpus unigram
  /// probability (lift). The lift controls for global word popularity so
  /// the score ranks queries by *user-specific* preference rather than by
  /// how common their words are. Returns a floor value for docs out of
  /// range (unknown users).
  double PreferenceScore(size_t doc, const std::vector<uint32_t>& words) const;

  /// Learned hyperparameters (for inspection/tests).
  const std::vector<double>& alpha() const { return alpha_; }
  const std::vector<std::vector<double>>& beta() const { return beta_; }
  const std::vector<std::vector<double>>& delta() const { return delta_; }
  std::pair<double, double> TopicBeta(size_t k) const { return tau_[k]; }

 private:
  using SparseMap = std::unordered_map<uint32_t, double>;

  double WordProbability(size_t doc, size_t topic, uint32_t word) const;

  void OptimizeHyperparameters();

  /// Packs the per-(doc, topic) word-count maps into sorted parallel arrays
  /// for the request-path scorers. Called at the end of Train; the maps
  /// themselves stay authoritative for training and hyperparameter fits
  /// (whose L-BFGS inputs are sensitive to map iteration order).
  void BuildScoreIndex();

  UpmOptions options_;
  size_t vocab_ = 0;
  size_t num_urls_ = 0;
  size_t docs_ = 0;

  /// alpha_k (K), beta_[k][w] (K x V), delta_[k][u] (K x U).
  std::vector<double> alpha_;
  std::vector<std::vector<double>> beta_;
  std::vector<double> beta_sum_;
  std::vector<std::vector<double>> delta_;
  std::vector<double> delta_sum_;
  /// Per-topic Beta over session timestamps.
  std::vector<std::pair<double, double>> tau_;

  /// Smoothed corpus unigram probabilities (for the preference-score lift).
  std::vector<double> unigram_;
  /// C_dk (D x K) and its row sums.
  std::vector<std::vector<double>> c_dk_;
  std::vector<double> c_d_total_;
  /// C_kwd: per (doc, topic) sparse word counts, plus per-(doc, topic)
  /// totals. Same for URLs.
  std::vector<std::vector<SparseMap>> c_wkd_;
  std::vector<std::vector<double>> c_wkd_total_;
  std::vector<std::vector<SparseMap>> c_ukd_;
  std::vector<std::vector<double>> c_ukd_total_;

  /// Read-only SoA view of c_wkd_ for scoring: per (doc, topic) the word
  /// ids sorted ascending with their counts in lockstep, all segments
  /// concatenated. score_offsets_[doc * K + topic] bounds the segment.
  /// WordProbability binary-searches this instead of probing the hash map
  /// once per candidate word per topic on every personalized rerank.
  /// Empty until Train runs (the scorers fall back to the maps).
  std::vector<uint32_t> score_words_;
  std::vector<double> score_counts_;
  std::vector<size_t> score_offsets_;
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_UPM_H_
