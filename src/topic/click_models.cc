#include "topic/click_models.h"

#include <cmath>

#include "common/math_util.h"

namespace pqsda {

namespace {

double BlockLogLikelihood(const std::vector<uint32_t>& items,
                          const std::vector<double>& count, double total,
                          double prior, size_t dim, size_t items_before = 0) {
  double ll = 0.0;
  for (size_t i = 0; i < items.size(); ++i) {
    int prev = 0;
    for (size_t j = 0; j < i; ++j) {
      if (items[j] == items[i]) ++prev;
    }
    ll += std::log(count[items[i]] + prior + static_cast<double>(prev));
    ll -= std::log(total + prior * static_cast<double>(dim) +
                   static_cast<double>(items_before + i));
  }
  return ll;
}

std::vector<double> SmoothedMixture(const std::vector<double>& counts,
                                    double total, double alpha) {
  const size_t k_count = counts.size();
  std::vector<double> theta(k_count);
  double denom = total + static_cast<double>(k_count) * alpha;
  for (size_t k = 0; k < k_count; ++k) theta[k] = (counts[k] + alpha) / denom;
  return theta;
}

std::vector<double> MixPredictive(
    const std::vector<double>& theta,
    const std::vector<std::vector<double>>& topic_item,
    const std::vector<double>& topic_total, double prior, size_t dim) {
  std::vector<double> p(dim, 0.0);
  for (size_t k = 0; k < theta.size(); ++k) {
    double denom = topic_total[k] + prior * static_cast<double>(dim);
    double scale = theta[k] / denom;
    for (size_t v = 0; v < dim; ++v) {
      p[v] += scale * (topic_item[k][v] + prior);
    }
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------- MWM ----

MwmModel::MwmModel(TopicModelOptions options) : options_(options) {}

void MwmModel::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.num_topics;
  word_vocab_ = corpus.vocab_size();
  combined_vocab_ = word_vocab_ + corpus.num_urls();
  docs_ = corpus.num_documents();

  struct Token {
    uint32_t doc;
    uint32_t item;  // word id, or word_vocab_ + url id
  };
  std::vector<Token> tokens;
  for (uint32_t d = 0; d < docs_; ++d) {
    for (const SessionObservation& s : corpus.documents()[d].sessions) {
      for (uint32_t w : s.words) tokens.push_back(Token{d, w});
      for (uint32_t u : s.urls) {
        tokens.push_back(Token{d, static_cast<uint32_t>(word_vocab_) + u});
      }
    }
  }

  doc_topic_.assign(docs_, std::vector<double>(K, 0.0));
  topic_token_.assign(K, std::vector<double>(combined_vocab_, 0.0));
  topic_total_.assign(K, 0.0);
  doc_total_.assign(docs_, 0.0);

  Rng rng(options_.seed);
  std::vector<uint32_t> z(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    z[i] = static_cast<uint32_t>(rng.NextBounded(K));
    doc_topic_[tokens[i].doc][z[i]] += 1.0;
    topic_token_[z[i]][tokens[i].item] += 1.0;
    topic_total_[z[i]] += 1.0;
    doc_total_[tokens[i].doc] += 1.0;
  }
  const double v_beta = static_cast<double>(combined_vocab_) * options_.beta;
  std::vector<double> weights(K);
  for (size_t it = 0; it < options_.gibbs_iterations; ++it) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      uint32_t d = tokens[i].doc, v = tokens[i].item, old = z[i];
      doc_topic_[d][old] -= 1.0;
      topic_token_[old][v] -= 1.0;
      topic_total_[old] -= 1.0;
      for (size_t k = 0; k < K; ++k) {
        weights[k] = (doc_topic_[d][k] + options_.alpha) *
                     (topic_token_[k][v] + options_.beta) /
                     (topic_total_[k] + v_beta);
      }
      uint32_t knew = static_cast<uint32_t>(rng.NextDiscrete(weights));
      z[i] = knew;
      doc_topic_[d][knew] += 1.0;
      topic_token_[knew][v] += 1.0;
      topic_total_[knew] += 1.0;
    }
  }
}

std::vector<double> MwmModel::DocumentTopicMixture(size_t doc) const {
  return SmoothedMixture(doc_topic_[doc], doc_total_[doc], options_.alpha);
}

std::vector<double> MwmModel::PredictiveWordDistribution(size_t doc) const {
  std::vector<double> theta = DocumentTopicMixture(doc);
  // Mix over the combined space, then renormalize over the word slice.
  std::vector<double> p = MixPredictive(theta, topic_token_, topic_total_,
                                        options_.beta, combined_vocab_);
  p.resize(word_vocab_);
  NormalizeL1(p);
  return p;
}

// ---------------------------------------------------------------- TUM ----

TumModel::TumModel(TopicModelOptions options) : options_(options) {}

void TumModel::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.num_topics;
  vocab_ = corpus.vocab_size();
  num_urls_ = corpus.num_urls();
  docs_ = corpus.num_documents();

  struct Token {
    uint32_t doc;
    uint32_t item;
    bool is_url;
  };
  std::vector<Token> tokens;
  for (uint32_t d = 0; d < docs_; ++d) {
    for (const SessionObservation& s : corpus.documents()[d].sessions) {
      for (uint32_t w : s.words) tokens.push_back(Token{d, w, false});
      for (uint32_t u : s.urls) tokens.push_back(Token{d, u, true});
    }
  }

  doc_topic_.assign(docs_, std::vector<double>(K, 0.0));
  topic_word_.assign(K, std::vector<double>(vocab_, 0.0));
  topic_word_total_.assign(K, 0.0);
  topic_url_.assign(K, std::vector<double>(num_urls_, 0.0));
  topic_url_total_.assign(K, 0.0);
  doc_total_.assign(docs_, 0.0);

  Rng rng(options_.seed);
  std::vector<uint32_t> z(tokens.size());
  auto apply = [&](const Token& t, uint32_t k, double sign) {
    doc_topic_[t.doc][k] += sign;
    doc_total_[t.doc] += sign;
    if (t.is_url) {
      topic_url_[k][t.item] += sign;
      topic_url_total_[k] += sign;
    } else {
      topic_word_[k][t.item] += sign;
      topic_word_total_[k] += sign;
    }
  };
  for (size_t i = 0; i < tokens.size(); ++i) {
    z[i] = static_cast<uint32_t>(rng.NextBounded(K));
    apply(tokens[i], z[i], +1.0);
  }
  std::vector<double> weights(K);
  for (size_t it = 0; it < options_.gibbs_iterations; ++it) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      apply(tokens[i], z[i], -1.0);
      for (size_t k = 0; k < K; ++k) {
        double emit;
        if (tokens[i].is_url) {
          emit = (topic_url_[k][tokens[i].item] + options_.delta) /
                 (topic_url_total_[k] +
                  options_.delta * static_cast<double>(num_urls_));
        } else {
          emit = (topic_word_[k][tokens[i].item] + options_.beta) /
                 (topic_word_total_[k] +
                  options_.beta * static_cast<double>(vocab_));
        }
        weights[k] = (doc_topic_[tokens[i].doc][k] + options_.alpha) * emit;
      }
      z[i] = static_cast<uint32_t>(rng.NextDiscrete(weights));
      apply(tokens[i], z[i], +1.0);
    }
  }
}

std::vector<double> TumModel::DocumentTopicMixture(size_t doc) const {
  return SmoothedMixture(doc_topic_[doc], doc_total_[doc], options_.alpha);
}

std::vector<double> TumModel::PredictiveWordDistribution(size_t doc) const {
  std::vector<double> theta = DocumentTopicMixture(doc);
  return MixPredictive(theta, topic_word_, topic_word_total_, options_.beta,
                       vocab_);
}

// ---------------------------------------------------------------- CTM ----

CtmModel::CtmModel(TopicModelOptions options) : options_(options) {}

void CtmModel::Train(const QueryLogCorpus& corpus) {
  const size_t K = options_.num_topics;
  vocab_ = corpus.vocab_size();
  num_urls_ = corpus.num_urls();
  docs_ = corpus.num_documents();

  doc_topic_.assign(docs_, std::vector<double>(K, 0.0));
  topic_word_.assign(K, std::vector<double>(vocab_, 0.0));
  topic_word_total_.assign(K, 0.0);
  topic_url_.assign(K, std::vector<double>(num_urls_, 0.0));
  topic_url_total_.assign(K, 0.0);
  doc_total_.assign(docs_, 0.0);

  struct Block {
    uint32_t doc;
    const SessionObservation* session;
    uint32_t topic;
  };
  std::vector<Block> blocks;
  for (uint32_t d = 0; d < docs_; ++d) {
    for (const SessionObservation& s : corpus.documents()[d].sessions) {
      blocks.push_back(Block{d, &s, 0});
    }
  }

  Rng rng(options_.seed);
  auto apply = [&](const Block& b, double sign) {
    for (uint32_t w : b.session->words) {
      topic_word_[b.topic][w] += sign;
      topic_word_total_[b.topic] += sign;
    }
    for (uint32_t u : b.session->urls) {
      topic_url_[b.topic][u] += sign;
      topic_url_total_[b.topic] += sign;
    }
    doc_topic_[b.doc][b.topic] += sign;
    doc_total_[b.doc] += sign;
  };
  for (Block& b : blocks) {
    b.topic = static_cast<uint32_t>(rng.NextBounded(K));
    apply(b, +1.0);
  }

  std::vector<double> logw(K);
  std::vector<const SessionObservation*> sweep_sessions;
  std::vector<uint32_t> sweep_topics;
  for (const Block& b : blocks) sweep_sessions.push_back(b.session);
  sweep_topics.resize(blocks.size());

  for (size_t it = 0; it < options_.gibbs_iterations; ++it) {
    for (Block& b : blocks) {
      apply(b, -1.0);
      for (size_t k = 0; k < K; ++k) {
        double lw = std::log(doc_topic_[b.doc][k] + options_.alpha);
        lw += BlockLogLikelihood(b.session->words, topic_word_[k],
                                 topic_word_total_[k], options_.beta, vocab_);
        lw += BlockLogLikelihood(b.session->urls, topic_url_[k],
                                 topic_url_total_[k], options_.delta,
                                 num_urls_);
        lw += SessionLogPrior(k, *b.session);
        logw[k] = lw;
      }
      double lse = LogSumExp(logw);
      std::vector<double> w(K);
      for (size_t k = 0; k < K; ++k) w[k] = std::exp(logw[k] - lse);
      b.topic = static_cast<uint32_t>(rng.NextDiscrete(w));
      apply(b, +1.0);
    }
    for (size_t i = 0; i < blocks.size(); ++i) sweep_topics[i] = blocks[i].topic;
    AfterSweep(sweep_sessions, sweep_topics);
  }
}

std::vector<double> CtmModel::DocumentTopicMixture(size_t doc) const {
  return SmoothedMixture(doc_topic_[doc], doc_total_[doc], options_.alpha);
}

std::vector<double> CtmModel::PredictiveWordDistribution(size_t doc) const {
  std::vector<double> theta = DocumentTopicMixture(doc);
  return MixPredictive(theta, topic_word_, topic_word_total_, options_.beta,
                       vocab_);
}

}  // namespace pqsda
