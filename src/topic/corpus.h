#ifndef PQSDA_TOPIC_CORPUS_H_
#define PQSDA_TOPIC_CORPUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "log/record.h"
#include "log/sessionizer.h"

namespace pqsda {

/// One session as the topic models see it: the bag of query words, the bag
/// of clicked URLs (empty = the paper's X_ds = 0 indicator) and the session
/// timestamp normalized into (0, 1) over the log span (for the Beta
/// temporal components).
struct SessionObservation {
  std::vector<uint32_t> words;
  std::vector<uint32_t> urls;
  /// Start offset in `words` of each query of the session (query-level
  /// models assign one topic per [offset, next offset) block).
  std::vector<uint32_t> query_offsets;
  /// For each entry of `urls`: index of the query (into query_offsets) whose
  /// click produced it.
  std::vector<uint32_t> url_query_index;
  double timestamp = 0.5;

  size_t num_queries() const { return query_offsets.size(); }

  /// Word ids of query block qi.
  std::pair<uint32_t, uint32_t> QueryWordRange(size_t qi) const {
    uint32_t begin = query_offsets[qi];
    uint32_t end = qi + 1 < query_offsets.size()
                       ? query_offsets[qi + 1]
                       : static_cast<uint32_t>(words.size());
    return {begin, end};
  }
};

/// One "document" of the UPM: all of one user's sessions (§V-A organizes the
/// query log entries of each user as a document).
struct UserDocument {
  UserId user = 0;
  std::vector<SessionObservation> sessions;

  size_t TotalWords() const {
    size_t n = 0;
    for (const auto& s : sessions) n += s.words.size();
    return n;
  }
};

/// The query log recast as a topic-model corpus: per-user documents of
/// sessions, with word and URL vocabularies interned to dense ids.
class QueryLogCorpus {
 public:
  /// Builds from a (user, time)-sorted log and its sessions. Stopwords are
  /// kept (models smooth them away); timestamps are normalized over the
  /// observed span and clamped into [0.01, 0.99].
  static QueryLogCorpus Build(const std::vector<QueryLogRecord>& records,
                              const std::vector<Session>& sessions);

  const std::vector<UserDocument>& documents() const { return documents_; }
  size_t num_documents() const { return documents_.size(); }
  size_t vocab_size() const { return words_.size(); }
  size_t num_urls() const { return urls_.size(); }

  const StringInterner& words() const { return words_; }
  const StringInterner& urls() const { return urls_; }

  /// Word ids of a query string (known words only).
  std::vector<uint32_t> WordIds(const std::string& query) const;

  /// Document index of a user; SIZE_MAX if the user has no document.
  size_t DocumentOf(UserId user) const;

  /// Splits off the last `holdout_fraction` of each document's sessions into
  /// a test corpus; the remainder stays in the returned train corpus. Both
  /// share this corpus's vocabularies. Documents keep their indices (a
  /// document with too few sessions simply has an empty test entry).
  void SplitBySessions(double holdout_fraction, QueryLogCorpus* train,
                       QueryLogCorpus* test) const;

 private:
  std::vector<UserDocument> documents_;
  std::vector<size_t> user_to_document_;
  StringInterner words_;
  StringInterner urls_;

  static QueryLogCorpus ShellLike(const QueryLogCorpus& src);
};

}  // namespace pqsda

#endif  // PQSDA_TOPIC_CORPUS_H_
