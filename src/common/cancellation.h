#ifndef PQSDA_COMMON_CANCELLATION_H_
#define PQSDA_COMMON_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>

#include "common/status.h"

namespace pqsda {

/// Per-request deadline and cooperative cancellation flag, threaded through
/// the suggestion pipeline (engine -> diversifier -> solver / hitting-time
/// sweeps) and checked at iteration / selection-round granularity. The token
/// never preempts anything: the expensive stages poll Check() between
/// iterations and unwind with kDeadlineExceeded / kCancelled, so a response
/// either carries the full result of its rung or no result at all.
///
/// The clock is injectable (same pattern as obs::WindowOptions) so the
/// fault-injection tests can expire a deadline at an exact iteration instead
/// of racing wall time. Cancel() may be called from any thread while the
/// request is in flight; Check() is a couple of relaxed atomic loads.
class CancelToken {
 public:
  static constexpr int64_t kNoDeadline = std::numeric_limits<int64_t>::max();

  CancelToken() = default;
  /// `clock` returns monotonic nanoseconds; null means steady_clock.
  explicit CancelToken(std::function<int64_t()> clock)
      : clock_(std::move(clock)) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Current time in the token's clock domain.
  int64_t NowNanos() const;

  /// Absolute deadline in the token's clock domain; kNoDeadline clears it.
  void SetDeadline(int64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }
  /// Deadline `budget_ns` from now (saturating).
  void SetDeadlineAfter(int64_t budget_ns);

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != kNoDeadline;
  }
  /// Nanoseconds until the deadline (negative once past); kNoDeadline when
  /// none is set.
  int64_t RemainingNanos() const;
  bool expired() const { return has_deadline() && RemainingNanos() <= 0; }

  /// OK while the request may keep running; kCancelled / kDeadlineExceeded
  /// once it must unwind. Cancellation wins over expiry when both hold.
  Status Check() const;

 private:
  std::function<int64_t()> clock_;  // null -> steady_clock
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_CANCELLATION_H_
