#include "common/interner.h"

namespace pqsda {

StringId StringInterner::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  StringId id = static_cast<StringId>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), id);
  return id;
}

StringId StringInterner::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  if (it == index_.end()) return kInvalidStringId;
  return it->second;
}

}  // namespace pqsda
