#ifndef PQSDA_COMMON_THREAD_POOL_H_
#define PQSDA_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pqsda {

/// Fixed-size pool of long-lived worker threads. This is the serving layer's
/// execution substrate: solver sweeps, hitting-time row ranges and batched
/// Suggest requests all run on it, so the hot path never pays per-call
/// std::thread spawn/join churn.
///
/// Tasks must not throw (the library is exception-free; a throwing task
/// would terminate). ParallelFor calls issued from inside a pool worker run
/// inline on the caller — nested parallelism degrades to sequential instead
/// of deadlocking on a full pool.
class ThreadPool {
 public:
  /// `threads == 0` sizes the pool to the hardware concurrency (at least 1).
  explicit ThreadPool(size_t threads = 0);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains nothing: outstanding tasks finish, then workers join.
  ~ThreadPool();

  size_t size() const { return workers_.size(); }

  /// Tasks queued but not yet picked up by a worker. Instantaneous reading
  /// for telemetry (/statusz); approximate under concurrent submit/drain.
  size_t QueueDepth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Workers currently executing a task (the ParallelFor caller's own chunk
  /// is not counted — utilization measures pool workers only).
  size_t ActiveWorkers() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Enqueues one fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Partitions [begin, end) into contiguous chunks, runs `fn(chunk_begin,
  /// chunk_end)` across the pool (the caller executes the first chunk) and
  /// blocks until every chunk finished. Ranges smaller than two grains, a
  /// pool of size 0, and calls from a pool worker all run inline.
  /// `max_parts == 0` means workers + caller.
  void ParallelFor(size_t begin, size_t end, size_t min_grain,
                   const std::function<void(size_t, size_t)>& fn,
                   size_t max_parts = 0);

  /// True on a thread that is currently a worker of any ThreadPool.
  static bool OnWorkerThread();

  /// Process-wide pool shared by the library's default parallel paths.
  /// Sized to the hardware concurrency, overridable with PQSDA_THREADS.
  /// Never destroyed (leaked intentionally to dodge static-teardown races).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<size_t> queue_depth_{0};
  std::atomic<size_t> active_{0};
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_THREAD_POOL_H_
