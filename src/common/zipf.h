#ifndef PQSDA_COMMON_ZIPF_H_
#define PQSDA_COMMON_ZIPF_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"

namespace pqsda {

/// Samples ranks from a Zipf(s) distribution over {0, ..., n-1} by inverse
/// transform over the precomputed CDF. Used by the synthetic log generator
/// for query/term/URL popularity, which in real logs is strongly Zipfian.
class ZipfSampler {
 public:
  /// Builds the CDF for `n` items with exponent `s` (s >= 0; s == 0 is
  /// uniform). Requires n > 0.
  ZipfSampler(size_t n, double s);

  /// Draws a rank in [0, n). Rank 0 is the most popular item.
  size_t Sample(Rng& rng) const;

  /// Probability mass of the given rank.
  double Pmf(size_t rank) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_ZIPF_H_
