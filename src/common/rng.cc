#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace pqsda {

namespace {
inline uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBounded(uint64_t n) {
  assert(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  uint64_t threshold = (-n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 then scale back (Marsaglia–Tsang note).
    double u = 0.0;
    do {
      u = NextDouble();
    } while (u <= 1e-300);
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = NextGaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::NextBeta(double a, double b) {
  double x = NextGamma(a);
  double y = NextGamma(b);
  double s = x + y;
  if (s <= 0.0) return 0.5;
  return x / s;
}

size_t Rng::NextDiscrete(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Rng::NextDirichlet(double alpha, size_t dim) {
  return NextDirichlet(std::vector<double>(dim, alpha));
}

std::vector<double> Rng::NextDirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = NextGamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    double uniform = 1.0 / static_cast<double>(alpha.size());
    for (auto& v : out) v = uniform;
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

}  // namespace pqsda
