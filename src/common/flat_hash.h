#ifndef PQSDA_COMMON_FLAT_HASH_H_
#define PQSDA_COMMON_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

namespace pqsda {

/// Open-addressing hash map over a dense arena: the (key, value) pairs live
/// contiguously in insertion order in one vector, and a separate
/// power-of-two slot table holds 32-bit indices into it. Compared to
/// std::unordered_map this is one indirection instead of a node chase per
/// lookup, a single allocation growth pattern, and *deterministic
/// insertion-order iteration* — the property the compact-representation
/// expansion relies on for reproducible request handling.
///
/// Supports the subset of the unordered_map API the hot paths use: find /
/// at / count / operator[] / emplace / range-for / initializer-list
/// assignment. No erase — the request-path maps are build-once, read-many.
/// Iterators are invalidated by any insertion (the arena may reallocate).
template <typename K, typename V, typename Hash = std::hash<K>>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;
  FlatMap(std::initializer_list<value_type> init) { assign(init); }
  FlatMap& operator=(std::initializer_list<value_type> init) {
    assign(init);
    return *this;
  }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  void clear() {
    entries_.clear();
    slots_.assign(slots_.size(), kEmpty);
  }

  void reserve(size_t n) {
    entries_.reserve(n);
    if (n * 4 >= slots_.size() * 3) Rehash(SlotCountFor(n));
  }

  iterator find(const K& key) {
    size_t s = FindSlot(key);
    return s == kNotFound ? entries_.end() : entries_.begin() + slots_[s];
  }
  const_iterator find(const K& key) const {
    size_t s = FindSlot(key);
    return s == kNotFound ? entries_.end() : entries_.begin() + slots_[s];
  }

  size_t count(const K& key) const { return FindSlot(key) == kNotFound ? 0 : 1; }

  V& at(const K& key) {
    size_t s = FindSlot(key);
    if (s == kNotFound) throw std::out_of_range("FlatMap::at: missing key");
    return entries_[slots_[s]].second;
  }
  const V& at(const K& key) const {
    size_t s = FindSlot(key);
    if (s == kNotFound) throw std::out_of_range("FlatMap::at: missing key");
    return entries_[slots_[s]].second;
  }

  V& operator[](const K& key) { return TryEmplace(key).first->second; }

  /// Inserts (key, value) if the key is absent; returns the entry and
  /// whether an insertion happened (unordered_map::emplace contract).
  std::pair<iterator, bool> emplace(const K& key, V value) {
    auto [it, inserted] = TryEmplace(key);
    if (inserted) it->second = std::move(value);
    return {it, inserted};
  }

 private:
  static constexpr uint32_t kEmpty = UINT32_MAX;
  static constexpr size_t kNotFound = SIZE_MAX;

  static size_t SlotCountFor(size_t entries) {
    size_t slots = 16;
    // Keep the load factor under 3/4.
    while (entries * 4 >= slots * 3) slots *= 2;
    return slots;
  }

  // Fibonacci mixing on top of Hash: identity hashes (dense uint32 ids, the
  // common case here) still spread across the high bits the mask keeps.
  size_t SlotOf(const K& key) const {
    uint64_t h = static_cast<uint64_t>(Hash{}(key)) * 0x9E3779B97F4A7C15ull;
    return static_cast<size_t>(h >> shift_);
  }

  size_t FindSlot(const K& key) const {
    if (slots_.empty()) return kNotFound;
    const size_t mask = slots_.size() - 1;
    for (size_t s = SlotOf(key);; s = (s + 1) & mask) {
      uint32_t e = slots_[s];
      if (e == kEmpty) return kNotFound;
      if (entries_[e].first == key) return s;
    }
  }

  std::pair<iterator, bool> TryEmplace(const K& key) {
    if ((entries_.size() + 1) * 4 >= slots_.size() * 3) {
      Rehash(SlotCountFor(entries_.size() + 1));
    }
    const size_t mask = slots_.size() - 1;
    for (size_t s = SlotOf(key);; s = (s + 1) & mask) {
      uint32_t e = slots_[s];
      if (e == kEmpty) {
        slots_[s] = static_cast<uint32_t>(entries_.size());
        entries_.emplace_back(key, V{});
        return {entries_.end() - 1, true};
      }
      if (entries_[e].first == key) return {entries_.begin() + e, false};
    }
  }

  void Rehash(size_t new_slots) {
    slots_.assign(new_slots, kEmpty);
    shift_ = 64;
    for (size_t s = new_slots; s > 1; s /= 2) --shift_;
    const size_t mask = new_slots - 1;
    for (size_t e = 0; e < entries_.size(); ++e) {
      size_t s = SlotOf(entries_[e].first);
      while (slots_[s] != kEmpty) s = (s + 1) & mask;
      slots_[s] = static_cast<uint32_t>(e);
    }
  }

  void assign(std::initializer_list<value_type> init) {
    entries_.clear();
    slots_.clear();
    for (const auto& [k, v] : init) emplace(k, v);
  }

  std::vector<value_type> entries_;
  std::vector<uint32_t> slots_;
  // 64 - log2(slots_.size()): SlotOf keeps the top bits of the mixed hash.
  unsigned shift_ = 64;
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_FLAT_HASH_H_
