#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace pqsda {

double Digamma(double x) {
  assert(x > 0.0);
  double result = 0.0;
  // Shift x up to >= 6 where the asymptotic series is accurate.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0));
  return result;
}

double Trigamma(double x) {
  assert(x > 0.0);
  double result = 0.0;
  while (x < 6.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0)));
  return result;
}

double LogGamma(double x) { return std::lgamma(x); }

double LogMultiBeta(const std::vector<double>& a) {
  double sum = 0.0;
  double out = 0.0;
  for (double v : a) {
    out += std::lgamma(v);
    sum += v;
  }
  return out - std::lgamma(sum);
}

double LogBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

double BetaPdf(double t, double a, double b) {
  if (t <= 0.0 || t >= 1.0) return 0.0;
  return std::exp((a - 1.0) * std::log(t) + (b - 1.0) * std::log(1.0 - t) -
                  LogBeta(a, b));
}

double LogSumExp(const std::vector<double>& x) {
  if (x.empty()) return -std::numeric_limits<double>::infinity();
  double m = *std::max_element(x.begin(), x.end());
  if (!std::isfinite(m)) return m;
  double s = 0.0;
  for (double v : x) s += std::exp(v - m);
  return m + std::log(s);
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double SparseCosine(const std::vector<std::pair<uint32_t, double>>& a,
                    const std::vector<std::pair<uint32_t, double>>& b) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].first == b[j].first) {
      dot += a[i].second * b[j].second;
      ++i;
      ++j;
    } else if (a[i].first < b[j].first) {
      ++i;
    } else {
      ++j;
    }
  }
  for (const auto& [idx, v] : a) {
    (void)idx;
    na += v * v;
  }
  for (const auto& [idx, v] : b) {
    (void)idx;
    nb += v * v;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void NormalizeL1(std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  if (total <= 0.0) return;
  for (double& x : v) x /= total;
}

double Norm2(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 1) return 0.0;
  double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

}  // namespace pqsda
