#ifndef PQSDA_COMMON_TIMER_H_
#define PQSDA_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace pqsda {

/// Monotonic wall-clock timer used by the efficiency benchmarks (Fig. 7).
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// Elapsed time in nanoseconds (full clock resolution; used by the
  /// observability layer so sub-microsecond stages don't round to zero).
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_TIMER_H_
