#ifndef PQSDA_COMMON_SIMD_H_
#define PQSDA_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace pqsda::simd {

/// Instruction set driving the sparse row kernels.
enum class Level { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// The level the kernels currently dispatch to. Resolved once on first use:
/// the best set the host supports, unless the PQSDA_SIMD environment
/// variable (`scalar`, `avx2`, `neon`, `auto`) says otherwise.
Level ActiveLevel();

/// Forces a level (clamped to what the host supports; kScalar always
/// sticks). The oracle tests and the before/after benchmark use this to run
/// the identical build with the vector units switched off.
void SetLevel(Level level);

const char* LevelName(Level level);

/// sum_i values[i] * x[cols[i]] in the canonical kernel order: four partial
/// accumulators over index strides of 4, combined as (l0 + l1) + (l2 + l3),
/// then the tail (< 4 leftover elements) added sequentially. Every
/// implementation — scalar, AVX2, NEON — performs these exact IEEE
/// operations in this exact order (no FMA contraction), so results are
/// bitwise identical across levels and SetLevel is purely a speed knob.
double SparseDot(const double* values, const uint32_t* cols, size_t n,
                 const double* x);

/// Function-pointer form of SparseDot so row loops resolve the dispatch
/// once outside the loop instead of per row.
using SparseDotFn = double (*)(const double*, const uint32_t*, size_t,
                               const double*);
SparseDotFn ActiveSparseDot();

/// The scalar reference implementation of the canonical order (the oracle
/// the kernel_equivalence suite compares the vector paths against).
double SparseDotScalar(const double* values, const uint32_t* cols, size_t n,
                       const double* x);

/// y[cols[i]] += values[i] * xi for i in [0, n) — the transpose-MatVec
/// scatter. Column ids are unique within a CSR row, so every element
/// updates a distinct slot and the result is bitwise independent of how
/// the products are computed; the vector path computes 4 products at a
/// time and scatters with scalar stores (x86 has no double scatter below
/// AVX-512).
void AxpyScatter(const double* values, const uint32_t* cols, size_t n,
                 double xi, double* y);

using AxpyScatterFn = void (*)(const double*, const uint32_t*, size_t, double,
                               double*);
AxpyScatterFn ActiveAxpyScatter();

/// Scalar reference for AxpyScatter (sequential products and stores).
void AxpyScatterScalar(const double* values, const uint32_t* cols, size_t n,
                       double xi, double* y);

/// One fused Jacobi sweep over rows [row_begin, row_end) of a split
/// operator: next[i] = (b[i] - off_row_i . x) * inv_diag[i], with every
/// row dot computed in the canonical SparseDot order (so sweeps are
/// bitwise identical across levels, like the dots themselves). Fusing the
/// row loop into the kernel removes the per-row indirect dispatch, which
/// at the short rows of the Eq. 15 operator costs as much as the dot.
using JacobiSweepFn = void (*)(const double* values, const uint32_t* cols,
                               const uint32_t* row_ptr, const double* b,
                               const double* inv_diag, const double* x,
                               double* next, size_t row_begin,
                               size_t row_end);
JacobiSweepFn ActiveJacobiSweep();

/// Scalar reference for the fused sweep.
void JacobiSweepScalar(const double* values, const uint32_t* cols,
                       const uint32_t* row_ptr, const double* b,
                       const double* inv_diag, const double* x, double* next,
                       size_t row_begin, size_t row_end);

/// Plain left-to-right sequential sum — the pre-SIMD accumulation order.
/// Differs from SparseDot only in floating-point association; kept as the
/// numerical (tolerance-gated) oracle and the before-side of the kernel
/// benchmarks.
double SparseDotSequential(const double* values, const uint32_t* cols,
                           size_t n, const double* x);

}  // namespace pqsda::simd

#endif  // PQSDA_COMMON_SIMD_H_
