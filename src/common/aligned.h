#ifndef PQSDA_COMMON_ALIGNED_H_
#define PQSDA_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace pqsda {

/// Minimal allocator handing out 64-byte-aligned blocks — one cache line /
/// one AVX-512 lane set — so SIMD loads over value arrays never split a
/// line and the vector-load fast path needs no alignment prologue.
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// std::vector whose storage starts on a 64-byte boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace pqsda

#endif  // PQSDA_COMMON_ALIGNED_H_
