#include "common/cancellation.h"

#include <chrono>

namespace pqsda {

int64_t CancelToken::NowNanos() const {
  if (clock_) return clock_();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void CancelToken::SetDeadlineAfter(int64_t budget_ns) {
  const int64_t now = NowNanos();
  if (budget_ns >= kNoDeadline - now) {
    SetDeadline(kNoDeadline);
  } else {
    SetDeadline(now + budget_ns);
  }
}

int64_t CancelToken::RemainingNanos() const {
  const int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline == kNoDeadline) return kNoDeadline;
  return deadline - NowNanos();
}

Status CancelToken::Check() const {
  if (cancelled()) return Status::Cancelled("request cancelled");
  if (expired()) return Status::DeadlineExceeded("request deadline elapsed");
  return Status::OK();
}

}  // namespace pqsda
