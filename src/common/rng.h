#ifndef PQSDA_COMMON_RNG_H_
#define PQSDA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pqsda {

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// SplitMix64). All stochastic components of the library draw from this type
/// so that experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBounded(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller.
  double NextGaussian();

  /// Gamma(shape, 1) via Marsaglia–Tsang; shape > 0.
  double NextGamma(double shape);

  /// Beta(a, b) sample; a, b > 0.
  double NextBeta(double a, double b);

  /// Samples an index proportional to the (unnormalized, non-negative)
  /// weights. Returns weights.size()-1 on accumulated-rounding fallthrough.
  /// Requires a non-empty vector with a positive total weight.
  size_t NextDiscrete(const std::vector<double>& weights);

  /// Symmetric Dirichlet(alpha) sample of the given dimension.
  std::vector<double> NextDirichlet(double alpha, size_t dim);

  /// Dirichlet sample with a per-component parameter vector.
  std::vector<double> NextDirichlet(const std::vector<double>& alpha);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_RNG_H_
