#include "common/fault_injector.h"

namespace pqsda {

FaultInjector& FaultInjector::Default() {
  // Leaked like ThreadPool::Shared(): instrumented sites may fire during
  // static teardown of test fixtures.
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

std::function<int64_t()> FaultInjector::ClockFn() {
  return [this] { return NowNs(); };
}

void FaultInjector::Arm(const std::string& point, FaultAction action) {
  std::lock_guard<std::mutex> lock(mu_);
  actions_[point].push_back(action);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::SetValue(const std::string& point, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  values_[point] = value;
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  actions_.clear();
  hits_.clear();
  values_.clear();
  armed_.store(false, std::memory_order_release);
}

void FaultInjector::Hit(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return;
  // Collect the side effects under the lock but apply the clock/cancel
  // writes after releasing it: actions touch atomics only, but keeping the
  // critical section minimal keeps concurrent storms honest under TSAN.
  int64_t advance = 0;
  std::vector<CancelToken*> to_cancel;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t hit = ++hits_[point];
    auto it = actions_.find(point);
    if (it != actions_.end()) {
      for (const FaultAction& action : it->second) {
        const bool fires =
            hit == action.at_hit || (action.repeat && hit > action.at_hit);
        if (!fires) continue;
        advance += action.advance_clock_ns;
        if (action.cancel != nullptr) to_cancel.push_back(action.cancel);
      }
    }
  }
  if (advance != 0) AdvanceClock(advance);
  for (CancelToken* token : to_cancel) token->Cancel();
}

int64_t FaultInjector::Value(const char* point, int64_t fallback) const {
  if (!armed_.load(std::memory_order_relaxed)) return fallback;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = values_.find(point);
  return it != values_.end() ? it->second : fallback;
}

uint64_t FaultInjector::Hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it != hits_.end() ? it->second : 0;
}

}  // namespace pqsda
