#include "common/timer.h"

// WallTimer is header-only; this translation unit anchors the header in the
// build so include hygiene is checked by every compile.
