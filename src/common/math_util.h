#ifndef PQSDA_COMMON_MATH_UTIL_H_
#define PQSDA_COMMON_MATH_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace pqsda {

/// Digamma function psi(x) for x > 0 (asymptotic expansion with recurrence
/// shift). Used by the Dirichlet-hyperparameter gradient (Eqs. 25–27).
double Digamma(double x);

/// Trigamma function psi'(x) for x > 0.
double Trigamma(double x);

/// log Gamma(x) for x > 0 (thin wrapper over std::lgamma, kept here so all
/// special functions share one header).
double LogGamma(double x);

/// log of the multivariate Beta function: sum(lgamma(a_i)) - lgamma(sum a_i).
double LogMultiBeta(const std::vector<double>& a);

/// log Beta(a, b).
double LogBeta(double a, double b);

/// Beta(a,b) density at t in (0,1); returns 0 outside the open interval.
double BetaPdf(double t, double a, double b);

/// Numerically stable log(sum_i exp(x_i)). Returns -inf for empty input.
double LogSumExp(const std::vector<double>& x);

/// Cosine similarity of two dense vectors of equal length. Returns 0 when
/// either vector is all-zero.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// Cosine similarity of two sparse vectors given as sorted (index, value)
/// pairs. Returns 0 when either vector is empty or all-zero.
double SparseCosine(const std::vector<std::pair<uint32_t, double>>& a,
                    const std::vector<std::pair<uint32_t, double>>& b);

/// L1-normalizes a vector in place; a zero vector is left untouched.
void NormalizeL1(std::vector<double>& v);

/// L2 norm.
double Norm2(const std::vector<double>& v);

/// Mean of a vector; 0 for empty.
double Mean(const std::vector<double>& v);

/// Biased sample variance; 0 for size < 1.
double Variance(const std::vector<double>& v);

}  // namespace pqsda

#endif  // PQSDA_COMMON_MATH_UTIL_H_
