#include "common/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define PQSDA_SIMD_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define PQSDA_SIMD_NEON 1
#endif

namespace pqsda::simd {

namespace {

// All implementations below compute the SAME canonical operation order (see
// simd.h): lane j accumulates elements i with i % 4 == j over full blocks
// of 4, lanes combine as (l0 + l1) + (l2 + l3), the tail is appended
// sequentially. Keep them in lockstep — the kernel_equivalence suite
// asserts bitwise equality across levels.

double DotScalar(const double* values, const uint32_t* cols, size_t n,
                 const double* x) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += values[i] * x[cols[i]];
    a1 += values[i + 1] * x[cols[i + 1]];
    a2 += values[i + 2] * x[cols[i + 2]];
    a3 += values[i + 3] * x[cols[i + 3]];
  }
  double s = (a0 + a1) + (a2 + a3);
  for (; i < n; ++i) s += values[i] * x[cols[i]];
  return s;
}

#ifdef PQSDA_SIMD_X86
// No FMA: mul then add, exactly like the scalar reference — a fused
// multiply-add would round once instead of twice and break the bitwise
// contract between levels.
__attribute__((target("avx2"))) double DotAvx2(const double* values,
                                               const uint32_t* cols, size_t n,
                                               const double* x) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // x lanes are assembled with scalar loads: vgatherdpd is microcoded on
    // most cores and loses to four plain loads at CSR row lengths.
    __m128d x01 = _mm_loadh_pd(_mm_load_sd(x + cols[i]), x + cols[i + 1]);
    __m128d x23 =
        _mm_loadh_pd(_mm_load_sd(x + cols[i + 2]), x + cols[i + 3]);
    __m256d xv = _mm256_set_m128d(x23, x01);
    __m256d vv = _mm256_loadu_pd(values + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vv, xv));
  }
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) s += values[i] * x[cols[i]];
  return s;
}
#endif

#ifdef PQSDA_SIMD_NEON
double DotNeon(const double* values, const uint32_t* cols, size_t n,
               const double* x) {
  // Two 2-lane accumulators: v01 carries lanes {0,1}, v23 lanes {2,3}; the
  // (l0 + l1) + (l2 + l3) combine then matches the canonical order. NEON
  // has no gather, so x is loaded lane by lane.
  float64x2_t acc01 = vdupq_n_f64(0.0);
  float64x2_t acc23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    float64x2_t x01 = {x[cols[i]], x[cols[i + 1]]};
    float64x2_t x23 = {x[cols[i + 2]], x[cols[i + 3]]};
    float64x2_t v01 = vld1q_f64(values + i);
    float64x2_t v23 = vld1q_f64(values + i + 2);
    acc01 = vaddq_f64(acc01, vmulq_f64(v01, x01));
    acc23 = vaddq_f64(acc23, vmulq_f64(v23, x23));
  }
  double s = (vgetq_lane_f64(acc01, 0) + vgetq_lane_f64(acc01, 1)) +
             (vgetq_lane_f64(acc23, 0) + vgetq_lane_f64(acc23, 1));
  for (; i < n; ++i) s += values[i] * x[cols[i]];
  return s;
}
#endif

void ScatterScalar(const double* values, const uint32_t* cols, size_t n,
                   double xi, double* y) {
  for (size_t i = 0; i < n; ++i) y[cols[i]] += values[i] * xi;
}

#ifdef PQSDA_SIMD_X86
__attribute__((target("avx2"))) void ScatterAvx2(const double* values,
                                                 const uint32_t* cols,
                                                 size_t n, double xi,
                                                 double* y) {
  const __m256d xv = _mm256_set1_pd(xi);
  size_t i = 0;
  alignas(32) double lanes[4];
  for (; i + 4 <= n; i += 4) {
    _mm256_store_pd(lanes, _mm256_mul_pd(_mm256_loadu_pd(values + i), xv));
    y[cols[i]] += lanes[0];
    y[cols[i + 1]] += lanes[1];
    y[cols[i + 2]] += lanes[2];
    y[cols[i + 3]] += lanes[3];
  }
  for (; i < n; ++i) y[cols[i]] += values[i] * xi;
}
#endif

#ifdef PQSDA_SIMD_NEON
void ScatterNeon(const double* values, const uint32_t* cols, size_t n,
                 double xi, double* y) {
  const float64x2_t xv = vdupq_n_f64(xi);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    float64x2_t prod = vmulq_f64(vld1q_f64(values + i), xv);
    y[cols[i]] += vgetq_lane_f64(prod, 0);
    y[cols[i + 1]] += vgetq_lane_f64(prod, 1);
  }
  for (; i < n; ++i) y[cols[i]] += values[i] * xi;
}
#endif

// Fused Jacobi sweeps: one call per sweep instead of one indirect dot call
// per row. Each body is the level's Dot* inlined into the row loop, so the
// per-row IEEE operations — and therefore the results — match the
// dispatch-per-row form bit for bit.

void SweepScalar(const double* values, const uint32_t* cols,
                 const uint32_t* row_ptr, const double* b,
                 const double* inv_diag, const double* x, double* next,
                 size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t begin = row_ptr[i];
    const double off =
        DotScalar(values + begin, cols + begin, row_ptr[i + 1] - begin, x);
    next[i] = (b[i] - off) * inv_diag[i];
  }
}

#ifdef PQSDA_SIMD_X86
__attribute__((target("avx2"))) void SweepAvx2(
    const double* values, const uint32_t* cols, const uint32_t* row_ptr,
    const double* b, const double* inv_diag, const double* x, double* next,
    size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t begin = row_ptr[i];
    const double off =
        DotAvx2(values + begin, cols + begin, row_ptr[i + 1] - begin, x);
    next[i] = (b[i] - off) * inv_diag[i];
  }
}
#endif

#ifdef PQSDA_SIMD_NEON
void SweepNeon(const double* values, const uint32_t* cols,
               const uint32_t* row_ptr, const double* b,
               const double* inv_diag, const double* x, double* next,
               size_t row_begin, size_t row_end) {
  for (size_t i = row_begin; i < row_end; ++i) {
    const size_t begin = row_ptr[i];
    const double off =
        DotNeon(values + begin, cols + begin, row_ptr[i + 1] - begin, x);
    next[i] = (b[i] - off) * inv_diag[i];
  }
}
#endif

Level BestSupported() {
#ifdef PQSDA_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
#endif
#ifdef PQSDA_SIMD_NEON
  return Level::kNeon;
#endif
  return Level::kScalar;
}

Level ClampToSupported(Level want) {
  Level best = BestSupported();
  if (want == Level::kScalar) return Level::kScalar;
  return want == best ? want : best == Level::kScalar ? Level::kScalar : best;
}

Level InitialLevel() {
  const char* env = std::getenv("PQSDA_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return Level::kScalar;
    if (std::strcmp(env, "avx2") == 0) return ClampToSupported(Level::kAvx2);
    if (std::strcmp(env, "neon") == 0) return ClampToSupported(Level::kNeon);
  }
  return BestSupported();
}

SparseDotFn FnFor(Level level) {
  switch (level) {
#ifdef PQSDA_SIMD_X86
    case Level::kAvx2:
      return &DotAvx2;
#endif
#ifdef PQSDA_SIMD_NEON
    case Level::kNeon:
      return &DotNeon;
#endif
    default:
      return &DotScalar;
  }
}

JacobiSweepFn SweepFnFor(Level level) {
  switch (level) {
#ifdef PQSDA_SIMD_X86
    case Level::kAvx2:
      return &SweepAvx2;
#endif
#ifdef PQSDA_SIMD_NEON
    case Level::kNeon:
      return &SweepNeon;
#endif
    default:
      return &SweepScalar;
  }
}

AxpyScatterFn ScatterFnFor(Level level) {
  switch (level) {
#ifdef PQSDA_SIMD_X86
    case Level::kAvx2:
      return &ScatterAvx2;
#endif
#ifdef PQSDA_SIMD_NEON
    case Level::kNeon:
      return &ScatterNeon;
#endif
    default:
      return &ScatterScalar;
  }
}

// The active level and its function pointers, published together. Relaxed
// is enough: SetLevel is a test/bench knob, not a synchronization point,
// and every value either pointer can hold computes the identical result.
std::atomic<Level>& LevelCell() {
  static std::atomic<Level> level{InitialLevel()};
  return level;
}
std::atomic<SparseDotFn>& FnCell() {
  static std::atomic<SparseDotFn> fn{FnFor(LevelCell().load())};
  return fn;
}
std::atomic<AxpyScatterFn>& ScatterFnCell() {
  static std::atomic<AxpyScatterFn> fn{ScatterFnFor(LevelCell().load())};
  return fn;
}
std::atomic<JacobiSweepFn>& SweepFnCell() {
  static std::atomic<JacobiSweepFn> fn{SweepFnFor(LevelCell().load())};
  return fn;
}

}  // namespace

Level ActiveLevel() { return LevelCell().load(std::memory_order_relaxed); }

void SetLevel(Level level) {
  Level clamped = ClampToSupported(level);
  LevelCell().store(clamped, std::memory_order_relaxed);
  FnCell().store(FnFor(clamped), std::memory_order_relaxed);
  ScatterFnCell().store(ScatterFnFor(clamped), std::memory_order_relaxed);
  SweepFnCell().store(SweepFnFor(clamped), std::memory_order_relaxed);
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

double SparseDot(const double* values, const uint32_t* cols, size_t n,
                 const double* x) {
  return FnCell().load(std::memory_order_relaxed)(values, cols, n, x);
}

SparseDotFn ActiveSparseDot() {
  return FnCell().load(std::memory_order_relaxed);
}

double SparseDotScalar(const double* values, const uint32_t* cols, size_t n,
                       const double* x) {
  return DotScalar(values, cols, n, x);
}

double SparseDotSequential(const double* values, const uint32_t* cols,
                           size_t n, const double* x) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += values[i] * x[cols[i]];
  return s;
}

void AxpyScatter(const double* values, const uint32_t* cols, size_t n,
                 double xi, double* y) {
  ScatterFnCell().load(std::memory_order_relaxed)(values, cols, n, xi, y);
}

AxpyScatterFn ActiveAxpyScatter() {
  return ScatterFnCell().load(std::memory_order_relaxed);
}

void AxpyScatterScalar(const double* values, const uint32_t* cols, size_t n,
                       double xi, double* y) {
  ScatterScalar(values, cols, n, xi, y);
}

JacobiSweepFn ActiveJacobiSweep() {
  return SweepFnCell().load(std::memory_order_relaxed);
}

void JacobiSweepScalar(const double* values, const uint32_t* cols,
                       const uint32_t* row_ptr, const double* b,
                       const double* inv_diag, const double* x, double* next,
                       size_t row_begin, size_t row_end) {
  SweepScalar(values, cols, row_ptr, b, inv_diag, x, next, row_begin,
              row_end);
}

}  // namespace pqsda::simd
