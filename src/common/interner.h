#ifndef PQSDA_COMMON_INTERNER_H_
#define PQSDA_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pqsda {

/// Dense id assigned by StringInterner; ids are contiguous from 0.
using StringId = uint32_t;

/// Sentinel for "not interned".
inline constexpr StringId kInvalidStringId = UINT32_MAX;

/// Bidirectional string <-> dense-id map. Queries, URLs, terms and user names
/// are interned once so that all graph/matrix code operates on dense integer
/// ids.
class StringInterner {
 public:
  StringInterner() = default;

  StringInterner(const StringInterner&) = default;
  StringInterner& operator=(const StringInterner&) = default;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `s`, creating one if unseen.
  StringId Intern(std::string_view s);

  /// Returns the id for `s`, or kInvalidStringId if unseen.
  StringId Lookup(std::string_view s) const;

  /// Returns the string for an id. Requires id < size().
  const std::string& Get(StringId id) const { return strings_[id]; }

  size_t size() const { return strings_.size(); }

 private:
  std::unordered_map<std::string, StringId> index_;
  std::vector<std::string> strings_;
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_INTERNER_H_
