#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace pqsda {

namespace {
thread_local bool tl_on_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  if (threads == 0) {
    threads = std::max<size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    queue_depth_.store(queue_.size(), std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  tl_on_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.store(queue_.size(), std::memory_order_relaxed);
    }
    active_.fetch_add(1, std::memory_order_relaxed);
    task();
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t min_grain,
                             const std::function<void(size_t, size_t)>& fn,
                             size_t max_parts) {
  if (end <= begin) return;
  const size_t n = end - begin;
  min_grain = std::max<size_t>(min_grain, 1);
  size_t parts = std::min(workers_.size() + 1, n / min_grain);
  if (max_parts != 0) parts = std::min(parts, max_parts);
  if (parts <= 1 || workers_.empty() || OnWorkerThread()) {
    fn(begin, end);
    return;
  }
  const size_t chunk = (n + parts - 1) / parts;

  // Completion is tracked with a counter + condvar rather than std::latch.
  // The counter is guarded by done_mu (not an atomic): the 0-transition
  // happens inside the critical section, so the waiter cannot observe
  // completion and destroy these stack-owned primitives while a worker is
  // still acquiring the mutex or signalling the condvar.
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t pending = 0;  // guarded by done_mu once workers start
  for (size_t b = begin + chunk; b < end; b += chunk) ++pending;
  for (size_t b = begin + chunk; b < end; b += chunk) {
    const size_t e = std::min(b + chunk, end);
    Submit([&fn, &pending, &done_mu, &done_cv, b, e] {
      fn(b, e);
      std::lock_guard<std::mutex> lock(done_mu);
      if (--pending == 0) done_cv.notify_one();
    });
  }
  fn(begin, std::min(begin + chunk, end));
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&pending] { return pending == 0; });
}

bool ThreadPool::OnWorkerThread() { return tl_on_worker; }

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    size_t threads = 0;
    if (const char* env = std::getenv("PQSDA_THREADS")) {
      threads = static_cast<size_t>(std::strtoull(env, nullptr, 10));
    }
    return new ThreadPool(threads);
  }();
  return *pool;
}

}  // namespace pqsda
