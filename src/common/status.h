#ifndef PQSDA_COMMON_STATUS_H_
#define PQSDA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pqsda {

/// Error categories used across the library. Fallible operations return a
/// Status (or StatusOr<T>) instead of throwing; this follows the
/// RocksDB/Arrow idiom of exception-free public APIs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kNotConverged,
  kInternal,
  /// The request's deadline elapsed before the pipeline finished; the
  /// response carries no partial results.
  kDeadlineExceeded,
  /// The request was cancelled cooperatively (caller gave up).
  kCancelled,
  /// The server shed the request under overload (admission control);
  /// retryable with backoff.
  kUnavailable,
};

/// A lightweight success-or-error result. Cheap to copy on the success path
/// (no allocation); error paths carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotConverged(std::string msg) {
    return Status(StatusCode::kNotConverged, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: k must be positive".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Access to the value when the
/// status is not OK is a programming error (checked by assert in debug
/// builds).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value: `return my_t;` in functions
  /// returning StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define PQSDA_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::pqsda::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace pqsda

#endif  // PQSDA_COMMON_STATUS_H_
