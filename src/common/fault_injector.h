#ifndef PQSDA_COMMON_FAULT_INJECTOR_H_
#define PQSDA_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"

namespace pqsda {

/// Names of the injection points instrumented on the request path. A point
/// fires once per pass through the instrumented site (e.g. once per solver
/// iteration), so a test can target "the 3rd Jacobi sweep of the request"
/// exactly.
namespace faults {
/// Top of every iteration in the linear solvers (all four kinds).
inline constexpr char kSolverIteration[] = "solver.iteration";
/// Top of every hitting-time sweep iteration (chain and bipartite).
inline constexpr char kHittingIteration[] = "hitting.iteration";
/// Top of every Algorithm 1 selection round in the diversifier.
inline constexpr char kHittingRound[] = "suggest.hitting_round";
/// End of the §IV-A expansion stage, before the solve starts.
inline constexpr char kExpansionDone[] = "suggest.expansion_done";
/// Engine admission: fired once per request before rung selection.
inline constexpr char kAdmission[] = "suggest.admission";
/// Value override: observed pool queue depth at admission (pool
/// saturation without actually saturating a pool).
inline constexpr char kQueueDepth[] = "admission.queue_depth";
/// Value override: observed windowed p95 latency (us) at admission.
inline constexpr char kP95Us[] = "admission.p95_us";
/// Fired once per per-shard fetch of the scatter-gather coordinator
/// (ShardedWalkBackend), before the fetch computes anything.
inline constexpr char kShardFetch[] = "shard.fetch";
/// Fired once per shard publication slot on every sharded-build swap.
inline constexpr char kShardSwap[] = "shard.swap";
/// Value override: shard id whose fetches report a per-fetch deadline
/// expiry (a slow shard, without a wall-clock race). -1/unset = none.
inline constexpr char kShardDeadlineShard[] = "shard.deadline_shard";
/// Value override: shard id whose admission gate sheds its fetches (that
/// shard degrades alone; the request survives). -1/unset = none.
inline constexpr char kShardShedShard[] = "shard.shed_shard";
/// Value override: shard id whose publication slot skips the next swap and
/// keeps serving the previous build ("one shard mid-swap": the coordinator
/// must fall back to the last build every shard can serve consistently).
inline constexpr char kShardSwapHoldback[] = "shard.swap_holdback";
}  // namespace faults

/// What an armed injection point does when it fires.
struct FaultAction {
  /// Trigger on the Nth hit of the point (1-based) ...
  uint64_t at_hit = 1;
  /// ... and, when true, on every hit from then on.
  bool repeat = false;
  /// Step the injector's fake clock forward by this much (expiring any
  /// deadline computed against FaultInjector clock time).
  int64_t advance_clock_ns = 0;
  /// Cancel this token.
  CancelToken* cancel = nullptr;
};

/// Deterministic fault injection for the robustness test harness: tests arm
/// named points with actions (advance the fake clock, cancel a token) and
/// numeric overrides (fake pool saturation), then drive the engine normally.
/// Production cost is one relaxed atomic load per instrumented site while
/// nothing is armed.
///
/// The injector owns a fake monotonic clock (ClockFn() hands it to
/// CancelToken / obs::WindowOptions, reusing the PR 3 injectable-clock
/// pattern), so "the deadline expires during iteration 3 of the solve" is a
/// deterministic statement, not a sleep-based race.
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Process-wide instance the instrumented sites consult.
  static FaultInjector& Default();

  // --- fake clock -------------------------------------------------------
  int64_t NowNs() const { return fake_now_ns_.load(std::memory_order_acquire); }
  void SetClock(int64_t now_ns) {
    fake_now_ns_.store(now_ns, std::memory_order_release);
  }
  void AdvanceClock(int64_t delta_ns) {
    fake_now_ns_.fetch_add(delta_ns, std::memory_order_acq_rel);
  }
  /// A clock function reading the fake clock (for CancelToken and the
  /// telemetry windows).
  std::function<int64_t()> ClockFn();

  // --- arming -----------------------------------------------------------
  /// Arms `action` on `point`; multiple actions per point stack.
  void Arm(const std::string& point, FaultAction action);
  /// Sets a numeric override consulted via Value().
  void SetValue(const std::string& point, int64_t value);
  /// Disarms everything and zeroes hit counts (the clock keeps its value).
  void Reset();

  // --- instrumented-site API -------------------------------------------
  /// Fires `point`: counts the hit and applies any armed actions whose
  /// trigger matches. A single relaxed load when nothing is armed.
  void Hit(const char* point);
  /// Numeric override for `point`, or `fallback` when none is set.
  int64_t Value(const char* point, int64_t fallback) const;
  /// Hits recorded for `point` since the last Reset.
  uint64_t Hits(const std::string& point) const;

 private:
  std::atomic<bool> armed_{false};
  std::atomic<int64_t> fake_now_ns_{0};
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::vector<FaultAction>> actions_;
  std::unordered_map<std::string, uint64_t> hits_;
  std::unordered_map<std::string, int64_t> values_;
};

}  // namespace pqsda

#endif  // PQSDA_COMMON_FAULT_INJECTOR_H_
