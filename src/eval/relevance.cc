#include "eval/relevance.h"

#include <algorithm>

namespace pqsda {

double QueryPairRelevance(const std::string& query_a,
                          const std::string& query_b,
                          const Taxonomy& taxonomy,
                          const QueryCategoryProvider& categories) {
  std::vector<CategoryId> ca = categories.Categories(query_a);
  std::vector<CategoryId> cb = categories.Categories(query_b);
  if (ca.empty() || cb.empty()) return 0.0;
  double best = 0.0;
  for (CategoryId a : ca) {
    for (CategoryId b : cb) {
      best = std::max(best, taxonomy.PathRelevance(a, b));
    }
  }
  return best;
}

double ListRelevance(const std::string& input_query,
                     const std::vector<Suggestion>& list, size_t k,
                     const Taxonomy& taxonomy,
                     const QueryCategoryProvider& categories) {
  size_t n = std::min(k, list.size());
  if (n == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total +=
        QueryPairRelevance(input_query, list[i].query, taxonomy, categories);
  }
  return total / static_cast<double>(n);
}

}  // namespace pqsda
