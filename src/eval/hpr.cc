#include "eval/hpr.h"

#include <algorithm>
#include <cmath>

namespace pqsda {

double SnapToSixPointScale(double value) {
  value = std::clamp(value, 0.0, 1.0);
  return std::round(value * 5.0) / 5.0;
}

SimulatedRater::SimulatedRater(const Taxonomy& taxonomy,
                               const FacetModel& facets, double noise,
                               uint64_t seed)
    : taxonomy_(&taxonomy), facets_(&facets), noise_(noise), rng_(seed) {}

double SimulatedRater::Rate(FacetId intent,
                            const std::string& suggested_query,
                            const std::vector<double>* profile_weights) {
  std::vector<FacetId> owners = facets_->QueryFacets(suggested_query);
  double best = 0.0;
  CategoryId intent_cat = facets_->facet(intent).category;
  double profile_max = 0.0;
  if (profile_weights != nullptr) {
    for (double w : *profile_weights) profile_max = std::max(profile_max, w);
  }
  for (FacetId f : owners) {
    if (f == intent) {
      best = 1.0;
      break;
    }
    // Partial credit by taxonomy closeness: a same-domain suggestion rates
    // "partially relevant" (the 0.4-0.6 band of the 6-point scale), a far
    // one near-irrelevant.
    double rel =
        taxonomy_->PathRelevance(intent_cat, facets_->facet(f).category);
    best = std::max(best, 0.9 * rel);
    // Standing-interest credit: a suggestion serving one of the rater's
    // strong long-term interests is valuable even off the current intent.
    if (profile_weights != nullptr && profile_max > 0.0 &&
        f < profile_weights->size()) {
      best = std::max(best, 0.85 * (*profile_weights)[f] / profile_max);
    }
  }
  double noisy = best + noise_ * rng_.NextGaussian();
  return SnapToSixPointScale(noisy);
}

double SimulatedRater::RateList(FacetId intent,
                                const std::vector<Suggestion>& list, size_t k,
                                const std::vector<double>* profile_weights) {
  size_t n = std::min(k, list.size());
  if (n == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += Rate(intent, list[i].query, profile_weights);
  }
  return total / static_cast<double>(n);
}

}  // namespace pqsda
