#include "eval/harness.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"

namespace pqsda {

std::vector<TestQuery> SampleTestQueries(const SyntheticDataset& data,
                                         size_t count, uint64_t seed,
                                         TestSampling sampling) {
  Rng rng(seed);
  std::vector<size_t> order;
  if (sampling == TestSampling::kByRecord) {
    order.resize(data.records.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  } else {
    // Uniform over distinct query strings: one random representative
    // occurrence per query.
    std::unordered_map<std::string, std::vector<size_t>> occurrences;
    for (size_t i = 0; i < data.records.size(); ++i) {
      occurrences[data.records[i].query].push_back(i);
    }
    order.reserve(occurrences.size());
    for (auto& [q, idxs] : occurrences) {
      (void)q;
      order.push_back(idxs[rng.NextBounded(idxs.size())]);
    }
  }
  rng.Shuffle(order);

  std::vector<TestQuery> out;
  for (size_t idx : order) {
    if (out.size() >= count) break;
    const QueryLogRecord& rec = data.records[idx];
    TestQuery tq;
    tq.request.query = rec.query;
    tq.request.timestamp = rec.timestamp;
    tq.request.user = rec.user_id;
    tq.intent = data.record_facet[idx];
    // Search context: earlier records of the same ground-truth session.
    uint32_t session = data.record_session[idx];
    for (size_t j = idx; j-- > 0;) {
      if (data.record_session[j] != session) break;
      tq.request.context.emplace_back(data.records[j].query,
                                      data.records[j].timestamp);
    }
    std::reverse(tq.request.context.begin(), tq.request.context.end());
    out.push_back(std::move(tq));
  }
  return out;
}

TrainTestSplit SplitByRecentSessions(const SyntheticDataset& data,
                                     size_t test_sessions_per_user) {
  // Group record indices by ground-truth session (records are in
  // (user, time) order, sessions contiguous).
  std::vector<std::pair<uint32_t, std::vector<size_t>>> sessions;
  for (size_t i = 0; i < data.records.size(); ++i) {
    uint32_t s = data.record_session[i];
    if (sessions.empty() || sessions.back().first != s) {
      sessions.push_back({s, {}});
    }
    sessions.back().second.push_back(i);
  }
  // Per user, list their sessions in time order.
  std::unordered_map<UserId, std::vector<size_t>> user_sessions;
  for (size_t si = 0; si < sessions.size(); ++si) {
    user_sessions[data.records[sessions[si].second.front()].user_id]
        .push_back(si);
  }
  std::vector<bool> is_test(sessions.size(), false);
  for (auto& [user, sids] : user_sessions) {
    (void)user;
    size_t n_test = std::min(test_sessions_per_user,
                             sids.size() > 1 ? sids.size() - 1 : 0);
    for (size_t i = sids.size() - n_test; i < sids.size(); ++i) {
      is_test[sids[i]] = true;
    }
  }

  TrainTestSplit split;
  for (size_t si = 0; si < sessions.size(); ++si) {
    if (!is_test[si]) {
      for (size_t idx : sessions[si].second) {
        split.train.push_back(data.records[idx]);
      }
      continue;
    }
    TestSession ts;
    ts.user = data.records[sessions[si].second.front()].user_id;
    ts.intent = data.record_facet[sessions[si].second.front()];
    for (size_t idx : sessions[si].second) {
      ts.records.push_back(data.records[idx]);
      const QueryLogRecord& rec = data.records[idx];
      if (rec.has_click()) {
        const UrlDocument* doc = data.facets.FindDocument(rec.clicked_url);
        if (doc != nullptr) ts.clicked_titles.push_back(doc->title);
      }
    }
    split.test_sessions.push_back(std::move(ts));
  }
  return split;
}

SuggestionRequest RequestFromTestSession(const TestSession& session) {
  SuggestionRequest request;
  request.query = session.records.front().query;
  request.timestamp = session.records.front().timestamp;
  request.user = session.user;
  return request;
}

}  // namespace pqsda
