#include "eval/report.h"

#include <cstdio>
#include <iomanip>
#include <sstream>

namespace pqsda {

void FigureTable::AddSeries(std::string name, std::vector<double> values) {
  series.push_back(Series{std::move(name), std::move(values)});
}

std::string FigureTable::ToString() const {
  std::ostringstream out;
  out << "== " << title << " ==\n";
  size_t name_width = x_label.size();
  for (const Series& s : series) name_width = std::max(name_width, s.name.size());
  name_width += 2;
  out << std::left << std::setw(static_cast<int>(name_width)) << x_label;
  for (const std::string& x : x_values) {
    out << std::right << std::setw(9) << x;
  }
  out << '\n';
  for (const Series& s : series) {
    out << std::left << std::setw(static_cast<int>(name_width)) << s.name;
    for (size_t i = 0; i < x_values.size(); ++i) {
      if (i < s.values.size()) {
        out << std::right << std::setw(9) << std::fixed
            << std::setprecision(4) << s.values[i];
      } else {
        out << std::right << std::setw(9) << "-";
      }
    }
    out << '\n';
  }
  return out.str();
}

void FigureTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace pqsda
