#ifndef PQSDA_EVAL_DIVERSITY_H_
#define PQSDA_EVAL_DIVERSITY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "log/record.h"
#include "suggest/engine.h"

namespace pqsda {

/// Pairwise similarity of two web pages, backing sim(p, q) of Eq. 32. The
/// paper computed it from page content; our benches back it with the
/// synthetic URL documents.
class PageSimilarity {
 public:
  virtual ~PageSimilarity() = default;
  virtual double Similarity(const std::string& url_a,
                            const std::string& url_b) const = 0;
};

/// Clicked-page sets P(q) per query string, harvested from a log.
class ClickedPages {
 public:
  static ClickedPages Build(const std::vector<QueryLogRecord>& records);

  /// Distinct URLs clicked for the query; nullptr if the query has none.
  const std::vector<std::string>* Pages(const std::string& query) const;

 private:
  std::unordered_map<std::string, std::vector<std::string>> pages_;
};

/// d(q_i, q_j) of Eq. 32: 1 - mean pairwise page similarity between the two
/// queries' clicked-page sets. Queries without clicked pages count as
/// maximally diverse (1), matching the metric's "no evidence of overlap"
/// reading.
double QueryPairDiversity(const std::string& query_a,
                          const std::string& query_b,
                          const ClickedPages& pages,
                          const PageSimilarity& sim);

/// D(L) of Eq. 33: mean pairwise diversity over the top-k prefix of the
/// list. Lists with fewer than 2 entries score 0.
double ListDiversity(const std::vector<Suggestion>& list, size_t k,
                     const ClickedPages& pages, const PageSimilarity& sim);

/// Simpson's-index diversity of the list's term multiset (Zhou et al.):
/// the probability that two term draws without replacement differ — 0 for
/// a list repeating one term, approaching 1 when every term is distinct.
/// Cheap enough (tokenize <= k short strings) for the online quality
/// telemetry that samples served lists, where the clicked-page metric
/// above needs offline page data.
double ListSimpsonDiversity(const std::vector<Suggestion>& list);

}  // namespace pqsda

#endif  // PQSDA_EVAL_DIVERSITY_H_
