#ifndef PQSDA_EVAL_PPR_H_
#define PQSDA_EVAL_PPR_H_

#include <string>
#include <vector>

#include "suggest/engine.h"

namespace pqsda {

/// Cosine similarity between the word bags of two texts (whitespace/punct
/// tokenized, lowercase). 0 when either side is empty.
double TextCosine(const std::string& a, const std::string& b);

/// Pseudo Personalized Relevance of one suggestion (§VI-C2): cosine between
/// the suggested query's word vector and the concatenated high-quality
/// fields (titles) of the pages the user clicked in the test session.
double SuggestionPpr(const std::string& suggested_query,
                     const std::vector<std::string>& clicked_titles);

/// Mean PPR over the top-k prefix of a suggestion list. Empty prefixes or
/// sessions without clicked titles score 0.
double ListPpr(const std::vector<Suggestion>& list, size_t k,
               const std::vector<std::string>& clicked_titles);

}  // namespace pqsda

#endif  // PQSDA_EVAL_PPR_H_
