#include "eval/diversity.h"

#include <algorithm>

#include "obs/quality.h"
#include "text/tokenizer.h"

namespace pqsda {

ClickedPages ClickedPages::Build(const std::vector<QueryLogRecord>& records) {
  ClickedPages out;
  for (const auto& rec : records) {
    if (!rec.has_click()) continue;
    auto& urls = out.pages_[rec.query];
    if (std::find(urls.begin(), urls.end(), rec.clicked_url) == urls.end()) {
      urls.push_back(rec.clicked_url);
    }
  }
  return out;
}

const std::vector<std::string>* ClickedPages::Pages(
    const std::string& query) const {
  auto it = pages_.find(query);
  if (it == pages_.end()) return nullptr;
  return &it->second;
}

double QueryPairDiversity(const std::string& query_a,
                          const std::string& query_b,
                          const ClickedPages& pages,
                          const PageSimilarity& sim) {
  const std::vector<std::string>* pa = pages.Pages(query_a);
  const std::vector<std::string>* pb = pages.Pages(query_b);
  if (pa == nullptr || pb == nullptr || pa->empty() || pb->empty()) {
    return 1.0;
  }
  double total = 0.0;
  for (const std::string& a : *pa) {
    for (const std::string& b : *pb) {
      total += sim.Similarity(a, b);
    }
  }
  double mean = total / (static_cast<double>(pa->size()) *
                         static_cast<double>(pb->size()));
  return 1.0 - mean;
}

double ListDiversity(const std::vector<Suggestion>& list, size_t k,
                     const ClickedPages& pages, const PageSimilarity& sim) {
  size_t n = std::min(k, list.size());
  if (n < 2) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      total += QueryPairDiversity(list[i].query, list[j].query, pages, sim);
    }
  }
  return total / (static_cast<double>(n) * static_cast<double>(n - 1));
}

double ListSimpsonDiversity(const std::vector<Suggestion>& list) {
  std::unordered_map<std::string, uint64_t> term_counts;
  for (const Suggestion& s : list) {
    for (const std::string& term : Tokenize(s.query)) {
      ++term_counts[term];
    }
  }
  std::vector<uint64_t> counts;
  counts.reserve(term_counts.size());
  for (const auto& [term, count] : term_counts) {
    (void)term;
    counts.push_back(count);
  }
  return obs::SimpsonDiversityFromCounts(counts);
}

}  // namespace pqsda
