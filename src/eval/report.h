#ifndef PQSDA_EVAL_REPORT_H_
#define PQSDA_EVAL_REPORT_H_

#include <string>
#include <vector>

namespace pqsda {

/// One method's metric values across the swept x-axis (e.g. k = 1..10).
struct Series {
  std::string name;
  std::vector<double> values;
};

/// A figure-shaped table: a title, the x-axis labels (columns) and one row
/// per method. Print() renders it aligned; the bench binaries use this to
/// emit the same rows/series the paper's figures report.
struct FigureTable {
  std::string title;
  std::string x_label;
  std::vector<std::string> x_values;
  std::vector<Series> series;

  void AddSeries(std::string name, std::vector<double> values);

  /// Renders to stdout.
  void Print() const;

  /// Renders as a string (tested; Print uses this).
  std::string ToString() const;
};

}  // namespace pqsda

#endif  // PQSDA_EVAL_REPORT_H_
