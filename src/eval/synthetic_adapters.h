#ifndef PQSDA_EVAL_SYNTHETIC_ADAPTERS_H_
#define PQSDA_EVAL_SYNTHETIC_ADAPTERS_H_

#include <string>
#include <utility>
#include <vector>

#include "eval/diversity.h"
#include "eval/relevance.h"
#include "suggest/concept_suggester.h"
#include "synthetic/generator.h"

namespace pqsda {

/// PageSimilarity over the synthetic URL documents: cosine of their sparse
/// term vectors (what the paper computed from real page content).
class SyntheticPageSimilarity : public PageSimilarity {
 public:
  explicit SyntheticPageSimilarity(const FacetModel& facets)
      : facets_(&facets) {}

  double Similarity(const std::string& url_a,
                    const std::string& url_b) const override;

 private:
  const FacetModel* facets_;
};

/// PageContentProvider (for the CM baseline) over the synthetic URL
/// documents. `snippet_terms` caps how many of a page's terms the provider
/// exposes, emulating the lossy snippet/ontology-based concept extraction
/// the original CM had to work from (0 = full oracle vectors).
class SyntheticPageContentProvider : public PageContentProvider {
 public:
  explicit SyntheticPageContentProvider(const FacetModel& facets,
                                        size_t snippet_terms = 5)
      : facets_(&facets), snippet_terms_(snippet_terms) {}

  const std::vector<std::pair<uint32_t, double>>* TermVector(
      const std::string& url) const override;

 private:
  const FacetModel* facets_;
  size_t snippet_terms_;
  mutable std::unordered_map<std::string,
                             std::vector<std::pair<uint32_t, double>>>
      truncated_;
};

/// QueryCategoryProvider over the synthetic ground truth (stands in for the
/// ODP directory lookup of Eq. 34).
class SyntheticQueryCategories : public QueryCategoryProvider {
 public:
  explicit SyntheticQueryCategories(const SyntheticDataset& data)
      : data_(&data) {}

  std::vector<CategoryId> Categories(
      const std::string& query) const override;

 private:
  const SyntheticDataset* data_;
};

}  // namespace pqsda

#endif  // PQSDA_EVAL_SYNTHETIC_ADAPTERS_H_
