#ifndef PQSDA_EVAL_HPR_H_
#define PQSDA_EVAL_HPR_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "suggest/engine.h"
#include "synthetic/facet_model.h"
#include "synthetic/taxonomy.h"

namespace pqsda {

/// Simulated human expert for Human Personalized Relevance (Fig. 6). The
/// paper recruited experts for four months; the simulator rates a suggestion
/// against the user's *hidden* current intent facet (which the synthetic
/// ground truth knows exactly): same facet -> "entirely relevant", facets in
/// the same taxonomy branch -> partially relevant, unrelated -> irrelevant;
/// rater noise is added, and the result snaps to the paper's 6-point scale
/// {0, 0.2, 0.4, 0.6, 0.8, 1}.
class SimulatedRater {
 public:
  /// `noise` is the standard deviation of rater disagreement before
  /// snapping (paper-scale units; 0 = oracle).
  SimulatedRater(const Taxonomy& taxonomy, const FacetModel& facets,
                 double noise = 0.1, uint64_t seed = 99);

  /// Rating of one suggested query for a searcher whose current information
  /// need is `intent`. `profile_weights` (optional, per-facet) are the
  /// rater's standing interests: the paper's experts rated suggestions over
  /// four months of their own searches, so a suggestion serving *any* of
  /// their strong interests earns a high mark even when it misses the
  /// current query's facet.
  double Rate(FacetId intent, const std::string& suggested_query,
              const std::vector<double>* profile_weights = nullptr);

  /// Mean rating of the top-k prefix.
  double RateList(FacetId intent, const std::vector<Suggestion>& list,
                  size_t k,
                  const std::vector<double>* profile_weights = nullptr);

 private:
  const Taxonomy* taxonomy_;
  const FacetModel* facets_;
  double noise_;
  Rng rng_;
};

/// Snaps a value in [0, 1] to the nearest of {0, 0.2, 0.4, 0.6, 0.8, 1}.
double SnapToSixPointScale(double value);

}  // namespace pqsda

#endif  // PQSDA_EVAL_HPR_H_
