#include "eval/synthetic_adapters.h"

#include <algorithm>

#include "common/math_util.h"

namespace pqsda {

double SyntheticPageSimilarity::Similarity(const std::string& url_a,
                                           const std::string& url_b) const {
  const UrlDocument* da = facets_->FindDocument(url_a);
  const UrlDocument* db = facets_->FindDocument(url_b);
  if (da == nullptr || db == nullptr) return 0.0;
  return SparseCosine(da->term_vector, db->term_vector);
}

const std::vector<std::pair<uint32_t, double>>*
SyntheticPageContentProvider::TermVector(const std::string& url) const {
  const UrlDocument* doc = facets_->FindDocument(url);
  if (doc == nullptr) return nullptr;
  if (snippet_terms_ == 0 || doc->term_vector.size() <= snippet_terms_) {
    return &doc->term_vector;
  }
  auto it = truncated_.find(url);
  if (it == truncated_.end()) {
    // Keep only the heaviest `snippet_terms_` entries (id-sorted).
    auto vec = doc->term_vector;
    std::sort(vec.begin(), vec.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    vec.resize(snippet_terms_);
    std::sort(vec.begin(), vec.end());
    it = truncated_.emplace(url, std::move(vec)).first;
  }
  return &it->second;
}

std::vector<CategoryId> SyntheticQueryCategories::Categories(
    const std::string& query) const {
  std::vector<CategoryId> out;
  for (FacetId f : data_->facets.QueryFacets(query)) {
    out.push_back(data_->facets.facet(f).category);
  }
  return out;
}

}  // namespace pqsda
