#ifndef PQSDA_EVAL_HARNESS_H_
#define PQSDA_EVAL_HARNESS_H_

#include <string>
#include <vector>

#include "suggest/engine.h"
#include "synthetic/generator.h"

namespace pqsda {

/// An evaluation input: a suggestion request plus the ground truth the
/// metrics need.
struct TestQuery {
  SuggestionRequest request;
  /// The user's true information-need facet at this point (HPR oracle).
  FacetId intent = 0;
};

/// How test inputs are drawn from the log.
enum class TestSampling {
  /// Uniform over records: popular queries appear proportionally often.
  kByRecord,
  /// Uniform over *distinct query strings*: the long tail (including
  /// click-less queries, where the click graph has no edges) is fully
  /// represented. This is the Fig. 3 protocol reading we adopt.
  kByDistinctQuery,
};

/// Samples `count` test inputs (the Fig. 3 protocol: randomly selected
/// testing queries). Each request carries the query, a timestamp, the user
/// and the search context (the earlier queries of the same ground-truth
/// session) of one of its log occurrences.
std::vector<TestQuery> SampleTestQueries(
    const SyntheticDataset& data, size_t count, uint64_t seed,
    TestSampling sampling = TestSampling::kByRecord);

/// One held-out session of the personalization protocol (§VI-C2).
struct TestSession {
  UserId user = 0;
  /// Records of the session, in time order.
  std::vector<QueryLogRecord> records;
  /// Ground-truth facet of the session.
  FacetId intent = 0;
  /// High-quality fields (titles) of the pages clicked in this session; the
  /// PPR reference.
  std::vector<std::string> clicked_titles;
};

/// Train/test split of the Fig. 5/6 protocol: the most recent
/// `test_sessions_per_user` ground-truth sessions of every user are held
/// out; everything else is training data.
struct TrainTestSplit {
  std::vector<QueryLogRecord> train;
  std::vector<TestSession> test_sessions;
};

TrainTestSplit SplitByRecentSessions(const SyntheticDataset& data,
                                     size_t test_sessions_per_user);

/// The suggestion request for a held-out session: its first query, no
/// context (nothing earlier in the session), the session's user.
SuggestionRequest RequestFromTestSession(const TestSession& session);

}  // namespace pqsda

#endif  // PQSDA_EVAL_HARNESS_H_
