#ifndef PQSDA_EVAL_RELEVANCE_H_
#define PQSDA_EVAL_RELEVANCE_H_

#include <string>
#include <vector>

#include "suggest/engine.h"
#include "synthetic/taxonomy.h"

namespace pqsda {

/// Maps a query string to its taxonomy categories, backing the ODP lookup
/// of Eq. 34. Ambiguous queries are listed under several ODP categories, so
/// the lookup returns a set; benches implement it over the synthetic ground
/// truth (one category per owning facet).
class QueryCategoryProvider {
 public:
  virtual ~QueryCategoryProvider() = default;
  /// All categories of the query; empty when unknown (non-canonical string).
  virtual std::vector<CategoryId> Categories(
      const std::string& query) const = 0;
};

/// R(q_i, q_j) of Eq. 34: |longest common category-path prefix| divided by
/// the longer path length, maximized over the two queries' category sets
/// (the best-matching ODP listing pair). Queries without categories score 0.
double QueryPairRelevance(const std::string& query_a,
                          const std::string& query_b,
                          const Taxonomy& taxonomy,
                          const QueryCategoryProvider& categories);

/// Mean R(input, suggestion) over the top-k prefix of the list (the Fig. 3
/// relevance@k series). Empty prefixes score 0.
double ListRelevance(const std::string& input_query,
                     const std::vector<Suggestion>& list, size_t k,
                     const Taxonomy& taxonomy,
                     const QueryCategoryProvider& categories);

}  // namespace pqsda

#endif  // PQSDA_EVAL_RELEVANCE_H_
