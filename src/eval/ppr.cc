#include "eval/ppr.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/tokenizer.h"

namespace pqsda {

namespace {
std::unordered_map<std::string, double> WordBag(const std::string& text) {
  std::unordered_map<std::string, double> bag;
  for (const std::string& t : Tokenize(text)) bag[t] += 1.0;
  return bag;
}

double BagCosine(const std::unordered_map<std::string, double>& a,
                 const std::unordered_map<std::string, double>& b) {
  if (a.empty() || b.empty()) return 0.0;
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (const auto& [w, v] : a) {
    na += v * v;
    auto it = b.find(w);
    if (it != b.end()) dot += v * it->second;
  }
  for (const auto& [w, v] : b) {
    (void)w;
    nb += v * v;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}
}  // namespace

double TextCosine(const std::string& a, const std::string& b) {
  return BagCosine(WordBag(a), WordBag(b));
}

double SuggestionPpr(const std::string& suggested_query,
                     const std::vector<std::string>& clicked_titles) {
  if (clicked_titles.empty()) return 0.0;
  std::unordered_map<std::string, double> titles;
  for (const std::string& t : clicked_titles) {
    for (const std::string& w : Tokenize(t)) titles[w] += 1.0;
  }
  return BagCosine(WordBag(suggested_query), titles);
}

double ListPpr(const std::vector<Suggestion>& list, size_t k,
               const std::vector<std::string>& clicked_titles) {
  size_t n = std::min(k, list.size());
  if (n == 0) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += SuggestionPpr(list[i].query, clicked_titles);
  }
  return total / static_cast<double>(n);
}

}  // namespace pqsda
