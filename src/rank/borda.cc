#include "rank/borda.h"

#include <algorithm>
#include <unordered_map>

namespace pqsda {

std::vector<Suggestion> BordaAggregate(
    const std::vector<std::vector<Suggestion>>& lists) {
  // Universe and first-appearance order (for deterministic tie-breaks).
  std::vector<std::string> universe;
  std::unordered_map<std::string, size_t> index;
  for (const auto& list : lists) {
    for (const auto& s : list) {
      if (index.emplace(s.query, universe.size()).second) {
        universe.push_back(s.query);
      }
    }
  }
  const double n = static_cast<double>(universe.size());
  std::vector<double> points(universe.size(), 0.0);
  for (const auto& list : lists) {
    for (size_t rank = 0; rank < list.size(); ++rank) {
      points[index[list[rank].query]] += n - static_cast<double>(rank);
    }
  }
  std::vector<Suggestion> out;
  out.reserve(universe.size());
  for (size_t i = 0; i < universe.size(); ++i) {
    out.push_back(Suggestion{universe[i], points[i]});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     return a.score > b.score;
                   });
  return out;
}

std::vector<Suggestion> RankByScore(const std::vector<std::string>& items,
                                    const std::vector<double>& scores) {
  std::vector<Suggestion> out;
  out.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    out.push_back(Suggestion{items[i], scores[i]});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     return a.score > b.score;
                   });
  return out;
}

}  // namespace pqsda
