#ifndef PQSDA_RANK_BORDA_H_
#define PQSDA_RANK_BORDA_H_

#include <string>
#include <vector>

#include "suggest/engine.h"

namespace pqsda {

/// Borda's rank-aggregation method [32], used by §V-B to merge the
/// diversification ranking with the personalized-preference ranking. Each
/// list awards an item (n - rank) points, where n is the universe size (the
/// union of all lists) — items missing from a list get 0 from it. Ties in
/// total points preserve the order of the first list.
std::vector<Suggestion> BordaAggregate(
    const std::vector<std::vector<Suggestion>>& lists);

/// Ranks items descending by `scores` and returns them as a Suggestion list
/// (helper for building the personalization ranking).
std::vector<Suggestion> RankByScore(const std::vector<std::string>& items,
                                    const std::vector<double>& scores);

}  // namespace pqsda

#endif  // PQSDA_RANK_BORDA_H_
