#include "suggest/suggest_stats.h"

#include <cstdio>

namespace pqsda {

std::string SuggestStats::Render() const {
  std::string out = trace.Render();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "compact: %zu queries (%zu seeds, %zu rounds, %zu candidates "
                "scored)\n",
                compact_size, expansion.seeds, expansion.rounds,
                expansion.candidates_scored);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "solve: %zu iterations, residual %.3g%s\n", solve.iterations,
                solve.relative_residual,
                solve.converged ? "" : " (NOT CONVERGED)");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "selection: %zu rounds, %zu candidates scored\n",
                hitting_rounds, candidates_scored);
  out += buf;
  std::snprintf(buf, sizeof(buf), "personalized: %s, %zu suggestions\n",
                personalized ? "yes" : "no", suggestions_returned);
  out += buf;
  static const char* kRungNames[] = {"full", "truncated-solve", "walk-only",
                                     "cache-only"};
  std::snprintf(buf, sizeof(buf), "robustness: rung %zu (%s)%s\n",
                degradation_rung,
                degradation_rung < 4 ? kRungNames[degradation_rung] : "?",
                shed ? ", SHED" : "");
  out += buf;
  if (!shard_rungs.empty()) {
    std::snprintf(buf, sizeof(buf), "shards: %zu touched of %zu%s [",
                  shards_touched, shard_rungs.size(),
                  partial_merge ? ", PARTIAL MERGE" : "");
    out += buf;
    static const char* kShardRungNames[] = {"full", "degraded", "deadline"};
    for (size_t s = 0; s < shard_rungs.size(); ++s) {
      if (s > 0) out += ' ';
      out += std::to_string(s);
      out += ':';
      out += shard_rungs[s] == kShardUntouched
                 ? "-"
                 : (shard_rungs[s] < 3 ? kShardRungNames[shard_rungs[s]]
                                       : "?");
    }
    out += "]\n";
  }
  return out;
}

}  // namespace pqsda
