#include "suggest/suggestion_cache.h"

#include <algorithm>
#include <functional>

#include "obs/metrics.h"

namespace pqsda {

namespace {

// FNV-1a over the context (query, timestamp-offset) pairs; collisions only
// merge *context hashes* inside the full key, and the full key still differs
// in query/user/k, so a collision can at worst alias two near-identical
// contexts — acceptable for a cache.
uint64_t ContextHash(const SuggestionRequest& request) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (const auto& [q, ts] : request.context) {
    for (char c : q) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    mix(static_cast<uint64_t>(ts - request.timestamp));
  }
  return h;
}

obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.hits_total");
  return c;
}
obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.misses_total");
  return c;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.evictions_total");
  return c;
}
obs::Gauge& SizeGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Default().GetGauge("pqsda.cache.size");
  return g;
}

}  // namespace

struct SuggestionCache::Shard {
  mutable std::mutex mu;
  /// Front = most recently used. The key is stored in the entry so the
  /// index can hold iterators only.
  std::list<std::pair<std::string, std::vector<Suggestion>>> lru;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string,
                                         std::vector<Suggestion>>>::iterator>
      index;
};

SuggestionCache::SuggestionCache(SuggestionCacheOptions options) {
  const size_t capacity = std::max<size_t>(options.capacity, 1);
  const size_t shards = std::min(std::max<size_t>(options.shards, 1), capacity);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  capacity_ = per_shard_capacity_ * shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  obs::MetricsRegistry::Default()
      .GetGauge("pqsda.cache.capacity")
      .Set(static_cast<double>(capacity_));
}

SuggestionCache::~SuggestionCache() = default;

std::string SuggestionCache::KeyOf(const SuggestionRequest& request,
                                   size_t k, uint64_t generation) {
  std::string key = request.query;
  key += '\x1f';
  key += std::to_string(ContextHash(request));
  key += '\x1f';
  key += std::to_string(request.user);
  key += '\x1f';
  key += std::to_string(k);
  key += '\x1f';
  key += std::to_string(generation);
  return key;
}

SuggestionCache::Shard& SuggestionCache::ShardOf(
    const std::string& key) const {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool SuggestionCache::Lookup(const std::string& key,
                             std::vector<Suggestion>* out) const {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    MissesCounter().Increment();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->second;
  HitsCounter().Increment();
  return true;
}

void SuggestionCache::Insert(const std::string& key,
                             std::vector<Suggestion> value) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(value));
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    EvictionsCounter().Increment();
  } else {
    SizeGauge().Add(1.0);
  }
}

size_t SuggestionCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

void SuggestionCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    SizeGauge().Add(-static_cast<double>(shard->lru.size()));
    shard->index.clear();
    shard->lru.clear();
  }
}

}  // namespace pqsda
