#include "suggest/suggestion_cache.h"

#include <algorithm>
#include <functional>

#include "obs/metrics.h"

namespace pqsda {

namespace {

// Serializes the context (query, timestamp-offset) pairs verbatim. An
// earlier revision stored an FNV-1a hash of this instead; two colliding
// contexts then shared one cache entry and one session could be served
// another session's suggestions. Offsets are taken relative to the request
// timestamp so time-shifted but otherwise identical requests still share an
// entry (the decay of Eq. 7 only sees relative age). Context queries are
// length-prefixed so their bytes cannot be confused with the separators.
std::string SerializeContext(const SuggestionRequest& request) {
  std::string out;
  for (const auto& [q, ts] : request.context) {
    out += std::to_string(q.size());
    out += ':';
    out += q;
    out += '\x1e';
    out += std::to_string(static_cast<int64_t>(ts - request.timestamp));
    out += '\x1e';
  }
  return out;
}

obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.hits_total");
  return c;
}
obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.misses_total");
  return c;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.evictions_total");
  return c;
}
obs::Counter& StaleInvalidationsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.stale_invalidations_total");
  return c;
}
obs::Counter& MismatchMissesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.mismatch_misses_total");
  return c;
}
obs::Counter& GhostHitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.ghost_hits_total");
  return c;
}
obs::Gauge& SizeGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Default().GetGauge("pqsda.cache.size");
  return g;
}

obs::Counter& NegativeHitsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.negative_hits_total");
  return c;
}
obs::Counter& NegativeMissesCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.negative_misses_total");
  return c;
}
obs::Counter& NegativeInsertionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.negative_insertions_total");
  return c;
}
obs::Counter& NegativeEvictionsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.negative_evictions_total");
  return c;
}
obs::Counter& NegativeInvalidationsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.negative_invalidations_total");
  return c;
}
obs::Gauge& NegativeSizeGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Default().GetGauge("pqsda.cache.negative_size");
  return g;
}

// Registry of live caches for the /statusz "caches" section. Caches are
// created at engine Build time and destroyed with the engine; registration
// is cheap enough to take a global mutex.
std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}
std::vector<const SuggestionCache*>& Registry() {
  static std::vector<const SuggestionCache*>* v =
      new std::vector<const SuggestionCache*>;
  return *v;
}

}  // namespace

struct SuggestionCache::Shard {
  struct Entry {
    std::vector<Suggestion> value;
    /// Empty when the entry's generation lives inside the key string (the
    /// whole-generation path); otherwise the per-component generations the
    /// entry was built against, graded by validating Lookups.
    ValidationVector components;
  };
  mutable std::mutex mu;
  std::unordered_map<std::string, Entry> index;
  std::unique_ptr<CachePolicy> policy;
};

SuggestionCache::SuggestionCache(SuggestionCacheOptions options)
    : policy_(options.policy), name_(std::move(options.name)) {
  const size_t capacity = std::max<size_t>(options.capacity, 1);
  const size_t shards = std::min(std::max<size_t>(options.shards, 1), capacity);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  capacity_ = per_shard_capacity_ * shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->policy = MakeCachePolicy(policy_, per_shard_capacity_);
    shards_.push_back(std::move(shard));
  }
  obs::MetricsRegistry::Default()
      .GetGauge("pqsda.cache.capacity")
      .Set(static_cast<double>(capacity_));
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    Registry().push_back(this);
  }
}

SuggestionCache::~SuggestionCache() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto& reg = Registry();
  reg.erase(std::remove(reg.begin(), reg.end(), this), reg.end());
}

SuggestionCache::CacheKey::CacheKey(std::string full_key)
    : hash(std::hash<std::string>{}(full_key)), full(std::move(full_key)) {}

SuggestionCache::CacheKey SuggestionCache::KeyOf(
    const SuggestionRequest& request, size_t k, uint64_t generation) {
  std::string key = request.query;
  key += '\x1f';
  key += SerializeContext(request);
  key += '\x1f';
  key += std::to_string(request.user);
  key += '\x1f';
  key += std::to_string(k);
  key += '\x1f';
  key += std::to_string(generation);
  return CacheKey(std::move(key));
}

SuggestionCache::Shard& SuggestionCache::ShardOf(const CacheKey& key) const {
  // The hash only routes to a shard; inside the shard the index compares
  // full keys, so hash collisions cost a probe, never a wrong answer.
  return *shards_[key.hash % shards_.size()];
}

bool SuggestionCache::Lookup(const CacheKey& key,
                             std::vector<Suggestion>* out) const {
  return Lookup(key, out, Validator());
}

bool SuggestionCache::Lookup(const CacheKey& key, std::vector<Suggestion>* out,
                             const Validator& validator) const {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.full);
  if (it == shard.index.end()) {
    MissesCounter().Increment();
    return false;
  }
  if (validator && !it->second.components.empty()) {
    switch (validator(it->second.components)) {
      case CacheValidity::kValid:
        break;
      case CacheValidity::kStale:
        // Some component the entry read has been rebuilt since. Erase it
        // now — keeping it would re-grade it on every probe and the entry
        // can never become valid again (generations only move forward).
        shard.policy->OnErase(key.full);
        shard.index.erase(it);
        SizeGauge().Add(-1.0);
        StaleInvalidationsCounter().Increment();
        MissesCounter().Increment();
        return false;
      case CacheValidity::kMismatch:
        // The entry was built against a *newer* generation than the
        // caller's pinned snapshot — the caller raced a swap on the
        // outgoing side. Miss without erasing: the entry is exactly what
        // post-swap readers want.
        MismatchMissesCounter().Increment();
        MissesCounter().Increment();
        return false;
    }
  }
  shard.policy->OnHit(key.full);
  if (out != nullptr) *out = it->second.value;
  HitsCounter().Increment();
  return true;
}

void SuggestionCache::Insert(const CacheKey& key,
                             std::vector<Suggestion> value) {
  Insert(key, std::move(value), ValidationVector());
}

void SuggestionCache::Insert(const CacheKey& key, std::vector<Suggestion> value,
                             ValidationVector components) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.full);
  if (it != shard.index.end()) {
    it->second.value = std::move(value);
    it->second.components = std::move(components);
    shard.policy->OnHit(key.full);
    return;
  }
  std::vector<std::string> evicted;
  if (shard.policy->OnInsert(key.full, &evicted)) {
    GhostHitsCounter().Increment();
  }
  shard.index.emplace(key.full,
                      Shard::Entry{std::move(value), std::move(components)});
  for (const std::string& victim : evicted) {
    shard.index.erase(victim);
    EvictionsCounter().Increment();
  }
  SizeGauge().Add(1.0 - static_cast<double>(evicted.size()));
}

size_t SuggestionCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->index.size();
  }
  return total;
}

CachePolicyStatus SuggestionCache::PolicyStatus() const {
  CachePolicyStatus total;
  total.capacity = capacity_;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    const CachePolicyStatus s = shard->policy->StatusNow();
    total.resident += s.resident;
    total.t1 += s.t1;
    total.t2 += s.t2;
    total.b1 += s.b1;
    total.b2 += s.b2;
    total.p += s.p;
  }
  return total;
}

void SuggestionCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    SizeGauge().Add(-static_cast<double>(shard->index.size()));
    shard->index.clear();
    shard->policy->Clear();
  }
}

std::string SuggestionCachesStatusJson() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  std::string json = "[";
  bool first = true;
  for (const SuggestionCache* cache : Registry()) {
    const CachePolicyStatus s = cache->PolicyStatus();
    if (!first) json += ", ";
    first = false;
    json += "{\"name\": \"";
    json += cache->name();
    json += "\", \"policy\": \"";
    json += CachePolicyName(cache->policy());
    json += "\", \"capacity\": ";
    json += std::to_string(s.capacity);
    json += ", \"resident\": ";
    json += std::to_string(s.resident);
    json += ", \"t1\": ";
    json += std::to_string(s.t1);
    json += ", \"t2\": ";
    json += std::to_string(s.t2);
    json += ", \"b1\": ";
    json += std::to_string(s.b1);
    json += ", \"b2\": ";
    json += std::to_string(s.b2);
    json += ", \"p\": ";
    json += std::to_string(s.p);
    json += "}";
  }
  json += "]";
  return json;
}

NegativeSuggestionCache::NegativeSuggestionCache(size_t capacity)
    : capacity_(std::max<size_t>(capacity, 1)) {}

NegativeSuggestionCache::~NegativeSuggestionCache() {
  std::lock_guard<std::mutex> lock(mu_);
  NegativeSizeGauge().Add(-static_cast<double>(lru_.size()));
}

bool NegativeSuggestionCache::Lookup(const CacheKey& key,
                                     const Validator& validator) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.full);
  if (it == index_.end()) {
    NegativeMissesCounter().Increment();
    return false;
  }
  if (validator && !it->second->components.empty()) {
    switch (validator(it->second->components)) {
      case CacheValidity::kValid:
        break;
      case CacheValidity::kStale:
        // The owning component was rebuilt — an ingested record may have
        // made the query known, so the NotFound verdict no longer stands.
        lru_.erase(it->second);
        index_.erase(it);
        NegativeSizeGauge().Add(-1.0);
        NegativeInvalidationsCounter().Increment();
        NegativeMissesCounter().Increment();
        return false;
      case CacheValidity::kMismatch:
        NegativeMissesCounter().Increment();
        return false;
    }
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  NegativeHitsCounter().Increment();
  return true;
}

void NegativeSuggestionCache::Insert(const CacheKey& key,
                                     ValidationVector components) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key.full);
  if (it != index_.end()) {
    it->second->components = std::move(components);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(Entry{key.full, std::move(components)});
  index_.emplace(key.full, lru_.begin());
  NegativeInsertionsCounter().Increment();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    NegativeEvictionsCounter().Increment();
  } else {
    NegativeSizeGauge().Add(1.0);
  }
}

size_t NegativeSuggestionCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

void NegativeSuggestionCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  NegativeSizeGauge().Add(-static_cast<double>(lru_.size()));
  index_.clear();
  lru_.clear();
}

}  // namespace pqsda
