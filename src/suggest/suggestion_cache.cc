#include "suggest/suggestion_cache.h"

#include <algorithm>
#include <functional>

#include "obs/metrics.h"

namespace pqsda {

namespace {

// Serializes the context (query, timestamp-offset) pairs verbatim. An
// earlier revision stored an FNV-1a hash of this instead; two colliding
// contexts then shared one cache entry and one session could be served
// another session's suggestions. Offsets are taken relative to the request
// timestamp so time-shifted but otherwise identical requests still share an
// entry (the decay of Eq. 7 only sees relative age). Context queries are
// length-prefixed so their bytes cannot be confused with the separators.
std::string SerializeContext(const SuggestionRequest& request) {
  std::string out;
  for (const auto& [q, ts] : request.context) {
    out += std::to_string(q.size());
    out += ':';
    out += q;
    out += '\x1e';
    out += std::to_string(static_cast<int64_t>(ts - request.timestamp));
    out += '\x1e';
  }
  return out;
}

obs::Counter& HitsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.hits_total");
  return c;
}
obs::Counter& MissesCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.misses_total");
  return c;
}
obs::Counter& EvictionsCounter() {
  static obs::Counter& c =
      obs::MetricsRegistry::Default().GetCounter("pqsda.cache.evictions_total");
  return c;
}
obs::Counter& StaleInvalidationsCounter() {
  static obs::Counter& c = obs::MetricsRegistry::Default().GetCounter(
      "pqsda.cache.stale_invalidations_total");
  return c;
}
obs::Gauge& SizeGauge() {
  static obs::Gauge& g =
      obs::MetricsRegistry::Default().GetGauge("pqsda.cache.size");
  return g;
}

}  // namespace

struct SuggestionCache::Shard {
  struct Entry {
    std::string key;
    std::vector<Suggestion> value;
    /// Empty when the entry's generation lives inside the key string (the
    /// unsharded path); otherwise the per-component generations the entry
    /// was built against, checked by validating Lookups.
    ValidationVector components;
  };
  mutable std::mutex mu;
  /// Front = most recently used. The key is stored in the entry so the
  /// index can hold iterators only.
  std::list<Entry> lru;
  std::unordered_map<std::string, std::list<Entry>::iterator> index;
};

SuggestionCache::SuggestionCache(SuggestionCacheOptions options) {
  const size_t capacity = std::max<size_t>(options.capacity, 1);
  const size_t shards = std::min(std::max<size_t>(options.shards, 1), capacity);
  per_shard_capacity_ = (capacity + shards - 1) / shards;
  capacity_ = per_shard_capacity_ * shards;
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  obs::MetricsRegistry::Default()
      .GetGauge("pqsda.cache.capacity")
      .Set(static_cast<double>(capacity_));
}

SuggestionCache::~SuggestionCache() = default;

SuggestionCache::CacheKey::CacheKey(std::string full_key)
    : hash(std::hash<std::string>{}(full_key)), full(std::move(full_key)) {}

SuggestionCache::CacheKey SuggestionCache::KeyOf(
    const SuggestionRequest& request, size_t k, uint64_t generation) {
  std::string key = request.query;
  key += '\x1f';
  key += SerializeContext(request);
  key += '\x1f';
  key += std::to_string(request.user);
  key += '\x1f';
  key += std::to_string(k);
  key += '\x1f';
  key += std::to_string(generation);
  return CacheKey(std::move(key));
}

SuggestionCache::Shard& SuggestionCache::ShardOf(const CacheKey& key) const {
  // The hash only routes to a shard; inside the shard the index compares
  // full keys, so hash collisions cost a probe, never a wrong answer.
  return *shards_[key.hash % shards_.size()];
}

bool SuggestionCache::Lookup(const CacheKey& key,
                             std::vector<Suggestion>* out) const {
  return Lookup(key, out, Validator());
}

bool SuggestionCache::Lookup(const CacheKey& key, std::vector<Suggestion>* out,
                             const Validator& validator) const {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.full);
  if (it == shard.index.end()) {
    MissesCounter().Increment();
    return false;
  }
  if (validator && !it->second->components.empty() &&
      !validator(it->second->components)) {
    // Stale: some component the entry read has been rebuilt since. Erase it
    // now — keeping it would re-run the validator on every probe and the
    // entry can never become valid again (generations only move forward).
    shard.lru.erase(it->second);
    shard.index.erase(it);
    SizeGauge().Add(-1.0);
    StaleInvalidationsCounter().Increment();
    MissesCounter().Increment();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  if (out != nullptr) *out = it->second->value;
  HitsCounter().Increment();
  return true;
}

void SuggestionCache::Insert(const CacheKey& key,
                             std::vector<Suggestion> value) {
  Insert(key, std::move(value), ValidationVector());
}

void SuggestionCache::Insert(const CacheKey& key, std::vector<Suggestion> value,
                             ValidationVector components) {
  Shard& shard = ShardOf(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key.full);
  if (it != shard.index.end()) {
    it->second->value = std::move(value);
    it->second->components = std::move(components);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(
      Shard::Entry{key.full, std::move(value), std::move(components)});
  shard.index.emplace(key.full, shard.lru.begin());
  if (shard.lru.size() > per_shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    EvictionsCounter().Increment();
  } else {
    SizeGauge().Add(1.0);
  }
}

size_t SuggestionCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

void SuggestionCache::Clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    SizeGauge().Add(-static_cast<double>(shard->lru.size()));
    shard->index.clear();
    shard->lru.clear();
  }
}

}  // namespace pqsda
