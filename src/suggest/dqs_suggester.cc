#include "suggest/dqs_suggester.h"

#include <algorithm>

#include "suggest/hitting_time_suggester.h"

namespace pqsda {

DqsSuggester::DqsSuggester(const ClickGraph& graph, DqsOptions options)
    : graph_(&graph),
      options_(options),
      walker_(graph, WalkDirection::kForward, options.walk) {}

StatusOr<std::vector<Suggestion>> DqsSuggester::Suggest(
    const SuggestionRequest& request, size_t k) const {
  StringId input = graph_->QueryId(request.query);
  if (input == kInvalidStringId) {
    return Status::NotFound("query not in click graph: " + request.query);
  }
  auto dist = walker_.WalkDistribution(request.query);
  if (!dist.ok()) return dist.status();

  // Candidate pool: most relevant queries by walk probability, excluding the
  // input itself.
  std::vector<std::pair<double, uint32_t>> scored;
  for (uint32_t i = 0; i < dist->size(); ++i) {
    if (i == input || (*dist)[i] <= 0.0) continue;
    scored.emplace_back((*dist)[i], i);
  }
  size_t pool_size = std::min(options_.candidate_pool, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + pool_size, scored.end(),
                    std::greater<>());
  scored.resize(pool_size);
  if (scored.empty()) return std::vector<Suggestion>{};

  // Greedy: most relevant first, then repeatedly the pool query farthest
  // (largest hitting time) from the selected set.
  std::vector<uint32_t> selected = {scored[0].second};
  std::vector<bool> taken(dist->size(), false);
  taken[scored[0].second] = true;
  // Request a couple extra so FinalizeSuggestions can drop context queries.
  const size_t want = k + request.context.size() + 1;
  while (selected.size() < want && selected.size() < scored.size()) {
    std::vector<double> h =
        BipartiteHittingTime(graph_->graph().query_to_object(),
                           graph_->graph().object_to_query(), selected,
                             options_.iterations);
    double best = -1.0;
    uint32_t best_q = kInvalidStringId;
    for (const auto& [rel, q] : scored) {
      (void)rel;
      if (taken[q]) continue;
      if (h[q] > best) {
        best = h[q];
        best_q = q;
      }
    }
    if (best_q == kInvalidStringId) break;
    selected.push_back(best_q);
    taken[best_q] = true;
  }

  std::vector<Suggestion> out;
  out.reserve(selected.size());
  for (size_t rank = 0; rank < selected.size(); ++rank) {
    out.push_back(Suggestion{graph_->QueryString(selected[rank]),
                             static_cast<double>(selected.size() - rank)});
  }
  return FinalizeSuggestions(request, std::move(out), k);
}

}  // namespace pqsda
