#ifndef PQSDA_SUGGEST_PQSDA_DIVERSIFIER_H_
#define PQSDA_SUGGEST_PQSDA_DIVERSIFIER_H_

#include <string>
#include <vector>

#include "graph/compact_builder.h"
#include "graph/multi_bipartite.h"
#include "solver/regularization.h"
#include "suggest/engine.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/suggest_stats.h"

namespace pqsda {

/// Options for the PQS-DA diversification component (§IV).
struct PqsdaDiversifierOptions {
  CompactBuilderOptions compact;
  RegularizationOptions regularization;
  /// Truncation horizon l of the cross-bipartite hitting time (Algorithm 1).
  size_t hitting_iterations = 20;
  /// Mixing weights of the U/S/T chains in the cross-bipartite walk (the
  /// paper's no-prior-knowledge N_k is uniform; the representation ablation
  /// zeroes individual bipartites).
  std::array<double, 3> chain_weights = {1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0};
  /// The argmax of Algorithm 1 is taken over the top-`candidate_pool`
  /// queries by F* relevance, so diversity never strays into queries with no
  /// affinity to the input at all. This is the diversity/relevance dial:
  /// larger pools diversify more aggressively at the cost of tail relevance.
  size_t candidate_pool = 40;
  /// Walk-only degradation rung: skip the Eq. 15 solve and Algorithm 1
  /// entirely and rank the compact queries by one mixing step of the
  /// cross-bipartite random walk from the seed vector F^0 — the cheapest
  /// answer that still reflects the input's neighborhood. Deterministic,
  /// like the full pipeline.
  bool walk_only = false;
};

/// Marks the non-candidates of a diversification run: the input query (when
/// the compact-budget walk admitted it) and its context queries. An input or
/// context query absent from `rep` is simply not excluded — never a crash;
/// historically an unadmitted input turned into an uncaught
/// std::out_of_range on the request path. Public for tests.
std::vector<bool> ExcludedCandidates(const CompactRepresentation& rep,
                                     StringId input,
                                     const std::vector<StringId>& context);

/// Diagnostics-rich output of one diversification run.
struct DiversificationOutput {
  /// Selected candidates, in selection (= relevance) order.
  std::vector<Suggestion> candidates;
  /// F* relevance of every compact-representation query (Eq. 15 solution).
  std::vector<double> relevance;
  /// Global query ids of the compact representation rows.
  std::vector<StringId> compact_queries;
};

/// The diversification component of PQS-DA (§IV): compact multi-bipartite
/// construction, regularization-framework first candidate (Eq. 15), then
/// iterative selection of the remaining K-1 candidates by largest
/// cross-bipartite hitting time to the already-selected set (Algorithm 1).
class PqsdaDiversifier : public SuggestionEngine {
 public:
  /// `backend`, when non-null, owns every row read of the §IV-A expansion
  /// (see CompactWalkBackend) — the sharded coordinator constructs one
  /// per-request diversifier around its scatter-gather backend, and the
  /// solve/selection/personalization stages then run unchanged on the
  /// merged compact representation. Null is the local (unsharded) path.
  explicit PqsdaDiversifier(const MultiBipartite& mb,
                            PqsdaDiversifierOptions options = {},
                            const CompactWalkBackend* backend = nullptr);

  std::string name() const override { return "PQS-DA"; }

  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k) const override;

  /// Full-output variant of Suggest. When `stats` is non-null the call
  /// additionally records a per-stage trace ("expansion",
  /// "regularization_solve", "hitting_time_selection") and work counters
  /// into it; if an obs::TraceCollector is already installed on the thread
  /// (the engine's end-to-end trace) the stage spans attach to that trace
  /// instead of starting their own.
  StatusOr<DiversificationOutput> Diversify(const SuggestionRequest& request,
                                            size_t k,
                                            SuggestStats* stats = nullptr) const;

  /// Diversify under explicit per-call options — how the engine's
  /// degradation ladder serves the truncated and walk-only rungs without
  /// rebuilding the diversifier. `request.cancel`, when set, is polled
  /// between stages, inside the solver and per selection round; on
  /// cancellation/expiry the call returns kCancelled/kDeadlineExceeded and
  /// never a partial candidate list.
  StatusOr<DiversificationOutput> DiversifyWith(
      const SuggestionRequest& request, size_t k,
      const PqsdaDiversifierOptions& options,
      SuggestStats* stats = nullptr) const;

  const PqsdaDiversifierOptions& options() const { return options_; }

  /// For an input string absent from the log: the queries sharing its terms,
  /// scored by term-bipartite edge weight (descending, capped at 8). Public
  /// for tests.
  std::vector<std::pair<StringId, double>> TermMatchSeeds(
      const std::string& query) const;

 private:
  const MultiBipartite* mb_;
  PqsdaDiversifierOptions options_;
  CompactBuilder builder_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_PQSDA_DIVERSIFIER_H_
