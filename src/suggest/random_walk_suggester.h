#ifndef PQSDA_SUGGEST_RANDOM_WALK_SUGGESTER_H_
#define PQSDA_SUGGEST_RANDOM_WALK_SUGGESTER_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/click_graph.h"
#include "suggest/engine.h"

namespace pqsda {

/// Walk direction for the Craswell & Szummer random-walk baselines [15].
enum class WalkDirection {
  /// FRW: each two-step hop uses forward-normalized transitions
  /// (P(u|q) over q's clicks, then P(q'|u) over u's clicks).
  kForward,
  /// BRW: the time-reversed chain — transitions normalized over the
  /// *incoming* side, which boosts rare URLs and rare queries.
  kBackward,
};

/// Options shared by FRW and BRW.
struct RandomWalkOptions {
  /// Number of two-step (query -> URL -> query) hops.
  size_t steps = 3;
  /// Self-transition probability per hop (keeps mass near the start).
  double self_transition = 0.1;
};

/// Forward/Backward random-walk suggesters on the click graph: score
/// candidates by the walk's visiting probability started at the input query.
class RandomWalkSuggester : public SuggestionEngine {
 public:
  RandomWalkSuggester(const ClickGraph& graph, WalkDirection direction,
                      RandomWalkOptions options = {});

  std::string name() const override {
    return direction_ == WalkDirection::kForward ? "FRW" : "BRW";
  }

  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k) const override;

  /// Raw walk distribution over all queries, for reuse by other engines
  /// (DQS uses FRW relevance for its candidate pool).
  StatusOr<std::vector<double>> WalkDistribution(
      const std::string& query) const;

 private:
  const ClickGraph* graph_;
  WalkDirection direction_;
  RandomWalkOptions options_;
  /// Two-step transition matrices: q->u then u->q', normalized according to
  /// the walk direction.
  CsrMatrix step_q2u_;
  CsrMatrix step_u2q_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_RANDOM_WALK_SUGGESTER_H_
