#include "suggest/hitting_time_suggester.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "common/fault_injector.h"
#include "common/simd.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace pqsda {

namespace {

// Row-range grain for the pool sweeps: compact representations are a few
// hundred rows with a handful of nonzeros each, so chunks below this are
// all dispatch overhead.
constexpr size_t kSweepGrain = 128;

// Top-of-iteration cooperative check for the hitting-time sweeps (fault
// point first so an armed clock jump is visible to this very poll).
bool SweepInterrupted(const CancelToken* cancel) {
  FaultInjector::Default().Hit(faults::kHittingIteration);
  return cancel != nullptr && !cancel->Check().ok();
}

}  // namespace

void BipartiteHittingTimeInto(const CsrMatrix& q2u_stochastic,
                              const CsrMatrix& u2q_stochastic,
                              const std::vector<uint32_t>& seed_queries,
                              size_t iterations, const PseudoNode* pseudo,
                              ThreadPool* pool, HittingTimeWorkspace& ws,
                              const CancelToken* cancel) {
  const size_t nq = q2u_stochastic.rows();
  const size_t nu = q2u_stochastic.cols();
  const size_t total_q = nq + (pseudo != nullptr ? 1 : 0);

  ws.is_seed.assign(total_q, 0);
  for (uint32_t s : seed_queries) {
    // A bad seed id must never become an out-of-bounds write in a release
    // build — skip it instead of asserting.
    if (s < total_q) ws.is_seed[s] = 1;
  }

  double pseudo_total = 0.0;
  if (pseudo != nullptr) {
    for (const auto& [u, w] : pseudo->url_edges) {
      (void)u;
      pseudo_total += w;
    }
  }

  // Pseudo-node edges indexed by URL so the walk can *reach* the pseudo
  // query (URL rows gain a back-edge to it); without this the pseudo node
  // would be a source only and hitting times to it would be infinite.
  std::vector<double> pseudo_weight_of_url;
  if (pseudo != nullptr) {
    pseudo_weight_of_url.assign(nu, 0.0);
    for (const auto& [u, w] : pseudo->url_edges) {
      if (u < nu) pseudo_weight_of_url[u] += w;
    }
  }

  std::vector<double>& hq = ws.h;
  std::vector<double>& hq_next = ws.next;
  std::vector<double>& hu = ws.hu;
  std::vector<double>& hu_next = ws.hu_next;
  hq.assign(total_q, 0.0);
  hq_next.assign(total_q, 0.0);
  hu.assign(nu, 0.0);
  hu_next.assign(nu, 0.0);
  // The row sums do not change across iterations — hoist them out of the
  // sweeps (the sums were previously recomputed per row per iteration).
  ws.u_row_sum.resize(nu);
  for (size_t u = 0; u < nu; ++u) {
    double extra = pseudo != nullptr ? pseudo_weight_of_url[u] : 0.0;
    ws.u_row_sum[u] = u2q_stochastic.RowSum(u) + extra;
  }
  ws.q_row_sum.resize(nq);
  for (size_t q = 0; q < nq; ++q) ws.q_row_sum[q] = q2u_stochastic.RowSum(q);
  const auto dot = simd::ActiveSparseDot();
  for (size_t t = 0; t < iterations; ++t) {
    if (SweepInterrupted(cancel)) return;
    // URL side first: one hop u -> q. Rows write disjoint entries of the
    // next iterate and read only the previous one, so ranges parallelize.
    auto url_sweep = [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        double s = ws.u_row_sum[u];
        if (s <= 0.0) {
          hu_next[u] = static_cast<double>(t + 1);
          continue;
        }
        auto idx = u2q_stochastic.RowIndices(u);
        auto val = u2q_stochastic.RowValues(u);
        double acc = dot(val.data(), idx.data(), idx.size(), hq.data());
        if (pseudo != nullptr) acc += pseudo_weight_of_url[u] * hq[nq];
        hu_next[u] = 1.0 + acc / s;
      }
    };
    // Query side: one hop q -> u.
    auto query_sweep = [&](size_t begin, size_t end) {
      for (size_t q = begin; q < end; ++q) {
        if (ws.is_seed[q] != 0) {
          hq_next[q] = 0.0;
          continue;
        }
        double s = ws.q_row_sum[q];
        if (s <= 0.0) {
          hq_next[q] = static_cast<double>(t + 1);
          continue;
        }
        auto idx = q2u_stochastic.RowIndices(q);
        auto val = q2u_stochastic.RowValues(q);
        hq_next[q] = 1.0 + dot(val.data(), idx.data(), idx.size(),
                               hu.data()) / s;
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, nu, kSweepGrain, url_sweep);
      pool->ParallelFor(0, nq, kSweepGrain, query_sweep);
    } else {
      url_sweep(0, nu);
      query_sweep(0, nq);
    }
    if (pseudo != nullptr) {
      size_t q = nq;
      if (ws.is_seed[q] != 0) {
        hq_next[q] = 0.0;
      } else if (pseudo_total <= 0.0) {
        hq_next[q] = static_cast<double>(t + 1);
      } else {
        double acc = 0.0;
        for (const auto& [u, w] : pseudo->url_edges) {
          acc += (w / pseudo_total) * hu[u];
        }
        hq_next[q] = 1.0 + acc;
      }
    }
    hq.swap(hq_next);
    hu.swap(hu_next);
  }
}

std::vector<double> BipartiteHittingTime(
    const CsrMatrix& q2u_stochastic, const CsrMatrix& u2q_stochastic,
    const std::vector<uint32_t>& seed_queries, size_t iterations,
    const PseudoNode* pseudo, ThreadPool* pool) {
  HittingTimeWorkspace ws;
  BipartiteHittingTimeInto(q2u_stochastic, u2q_stochastic, seed_queries,
                           iterations, pseudo, pool, ws);
  return std::move(ws.h);
}

void ChainHittingTimeInto(const std::vector<const CsrMatrix*>& chains,
                          const std::vector<double>& weights,
                          const std::vector<uint32_t>& seeds,
                          size_t iterations, ThreadPool* pool,
                          HittingTimeWorkspace& ws,
                          const CancelToken* cancel) {
  assert(!chains.empty() && chains.size() == weights.size());
  const size_t n = chains[0]->rows();
  ws.is_seed.assign(n, 0);
  for (uint32_t s : seeds) {
    // Unconditional bounds check — see BipartiteHittingTimeInto.
    if (s < n) ws.is_seed[s] = 1;
  }
  std::vector<double>& h = ws.h;
  std::vector<double>& next = ws.next;
  h.assign(n, 0.0);
  next.assign(n, 0.0);
  for (size_t t = 0; t < iterations; ++t) {
    if (SweepInterrupted(cancel)) return;
    auto sweep = [&](size_t begin, size_t end) {
      for (size_t v = begin; v < end; ++v) {
        if (ws.is_seed[v] != 0) {
          next[v] = 0.0;
          continue;
        }
        double acc = 0.0;
        double mass = 0.0;
        for (size_t x = 0; x < chains.size(); ++x) {
          auto idx = chains[x]->RowIndices(v);
          auto val = chains[x]->RowValues(v);
          for (size_t k = 0; k < idx.size(); ++k) {
            acc += weights[x] * val[k] * h[idx[k]];
            mass += weights[x] * val[k];
          }
        }
        if (mass <= 0.0) {
          next[v] = static_cast<double>(t + 1);
        } else {
          // Sub-stochastic rows (drop-tolerance pruning) would leak mass
          // into an implicit absorbing state; renormalize instead.
          next[v] = 1.0 + acc / mass;
        }
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, n, kSweepGrain, sweep);
    } else {
      sweep(0, n);
    }
    h.swap(next);
  }
}

std::vector<double> ChainHittingTime(
    const std::vector<const CsrMatrix*>& chains,
    const std::vector<double>& weights, const std::vector<uint32_t>& seeds,
    size_t iterations, ThreadPool* pool) {
  HittingTimeWorkspace ws;
  ChainHittingTimeInto(chains, weights, seeds, iterations, pool, ws);
  return std::move(ws.h);
}

MergedChain BuildMergedChain(const std::vector<const CsrMatrix*>& chains,
                             const std::vector<double>& weights) {
  assert(!chains.empty() && chains.size() == weights.size());
  const size_t n = chains[0]->rows();
  const size_t nx = chains.size();
  MergedChain out;
  out.m.rows = static_cast<uint32_t>(n);
  out.m.cols = static_cast<uint32_t>(n);
  out.m.row_ptr.assign(n + 1, 0);
  out.mass.assign(n, 0.0);
  size_t cap = 0;
  for (const CsrMatrix* c : chains) cap += c->nnz();
  out.m.col.reserve(cap);
  out.m.val.reserve(cap);

  // N-way sorted merge per row: each output column accumulates its
  // weights[x] * chain[x](v, j) contributions in chain order; the row mass
  // sums the merged values as they are emitted, so it equals the row sum of
  // M exactly.
  std::vector<std::span<const uint32_t>> idx(nx);
  std::vector<std::span<const double>> val(nx);
  std::vector<size_t> p(nx);
  for (uint32_t v = 0; v < n; ++v) {
    for (size_t x = 0; x < nx; ++x) {
      idx[x] = chains[x]->RowIndices(v);
      val[x] = chains[x]->RowValues(v);
      p[x] = 0;
    }
    double mass = 0.0;
    for (;;) {
      uint32_t c = UINT32_MAX;
      for (size_t x = 0; x < nx; ++x) {
        if (p[x] < idx[x].size() && idx[x][p[x]] < c) c = idx[x][p[x]];
      }
      if (c == UINT32_MAX) break;
      double acc = 0.0;
      for (size_t x = 0; x < nx; ++x) {
        if (p[x] < idx[x].size() && idx[x][p[x]] == c) {
          acc += weights[x] * val[x][p[x]];
          ++p[x];
        }
      }
      if (acc != 0.0) {
        out.m.col.push_back(c);
        out.m.val.push_back(acc);
        mass += acc;
      }
    }
    out.mass[v] = mass;
    out.m.row_ptr[v + 1] = static_cast<uint32_t>(out.m.col.size());
  }
  return out;
}

void MergedChainHittingTimeInto(const MergedChain& chain,
                                const std::vector<uint32_t>& seeds,
                                size_t iterations, ThreadPool* pool,
                                HittingTimeWorkspace& ws,
                                const CancelToken* cancel) {
  const size_t n = chain.m.rows;
  ws.is_seed.assign(n, 0);
  for (uint32_t s : seeds) {
    // Unconditional bounds check — see BipartiteHittingTimeInto.
    if (s < n) ws.is_seed[s] = 1;
  }
  std::vector<double>& h = ws.h;
  std::vector<double>& next = ws.next;
  h.assign(n, 0.0);
  next.assign(n, 0.0);
  const auto dot = simd::ActiveSparseDot();
  for (size_t t = 0; t < iterations; ++t) {
    if (SweepInterrupted(cancel)) return;
    auto sweep = [&](size_t begin, size_t end) {
      const double* hp = h.data();
      for (size_t v = begin; v < end; ++v) {
        if (ws.is_seed[v] != 0) {
          next[v] = 0.0;
          continue;
        }
        const double mass = chain.mass[v];
        if (mass <= 0.0) {
          next[v] = static_cast<double>(t + 1);
          continue;
        }
        // Sub-stochastic rows (drop-tolerance pruning) would leak mass
        // into an implicit absorbing state; renormalize instead.
        const size_t row_begin = chain.m.row_ptr[v];
        next[v] = 1.0 + dot(chain.m.val.data() + row_begin,
                            chain.m.col.data() + row_begin,
                            chain.m.row_ptr[v + 1] - row_begin, hp) / mass;
      }
    };
    if (pool != nullptr) {
      pool->ParallelFor(0, n, kSweepGrain, sweep);
    } else {
      sweep(0, n);
    }
    h.swap(next);
  }
}

HittingTimeSuggester::HittingTimeSuggester(const ClickGraph& graph,
                                           HittingTimeOptions options)
    : graph_(&graph), options_(options) {}

StatusOr<std::vector<Suggestion>> HittingTimeSuggester::Suggest(
    const SuggestionRequest& request, size_t k) const {
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Default().GetHistogram("pqsda.ht.latency_us");
  obs::TraceSpan span("hitting_time");
  obs::ScopedTimer timer(latency_us);
  StringId q = graph_->QueryId(request.query);
  if (q == kInvalidStringId) {
    return Status::NotFound("query not in click graph: " + request.query);
  }
  std::vector<double> h =
      BipartiteHittingTime(graph_->graph().query_to_object(),
                           graph_->graph().object_to_query(), {q},
                           options_.iterations);
  const double horizon = static_cast<double>(options_.iterations);
  std::vector<Suggestion> candidates;
  for (size_t i = 0; i < graph_->num_queries(); ++i) {
    if (h[i] >= horizon) continue;  // never reached the seed
    candidates.push_back(Suggestion{
        graph_->QueryString(static_cast<StringId>(i)), horizon - h[i]});
  }
  span.Annotate("candidates_scored", static_cast<int64_t>(candidates.size()));
  return FinalizeSuggestions(request, std::move(candidates), k);
}

PersonalizedHittingTimeSuggester::PersonalizedHittingTimeSuggester(
    const ClickGraph& graph, const std::vector<QueryLogRecord>& records,
    HittingTimeOptions options)
    : graph_(&graph), options_(options) {
  std::unordered_map<UserId, std::unordered_map<uint32_t, double>> counts;
  for (const auto& rec : records) {
    if (!rec.has_click()) continue;
    StringId u = graph.urls().Lookup(rec.clicked_url);
    if (u == kInvalidStringId) continue;
    counts[rec.user_id][u] += 1.0;
  }
  for (auto& [user, urls] : counts) {
    PseudoNode node;
    node.url_edges.assign(urls.begin(), urls.end());
    std::sort(node.url_edges.begin(), node.url_edges.end());
    user_nodes_.emplace(user, std::move(node));
  }
}

StatusOr<std::vector<Suggestion>> PersonalizedHittingTimeSuggester::Suggest(
    const SuggestionRequest& request, size_t k) const {
  static obs::Histogram& latency_us =
      obs::MetricsRegistry::Default().GetHistogram("pqsda.pht.latency_us");
  obs::TraceSpan span("personalized_hitting_time");
  obs::ScopedTimer timer(latency_us);
  StringId q = graph_->QueryId(request.query);
  if (q == kInvalidStringId) {
    return Status::NotFound("query not in click graph: " + request.query);
  }
  const PseudoNode* pseudo = nullptr;
  std::vector<uint32_t> seeds = {q};
  auto it = user_nodes_.find(request.user);
  if (request.user != kNoUser && it != user_nodes_.end()) {
    pseudo = &it->second;
    seeds.push_back(static_cast<uint32_t>(graph_->num_queries()));
  }
  std::vector<double> h =
      BipartiteHittingTime(graph_->graph().query_to_object(),
                           graph_->graph().object_to_query(), seeds,
                           options_.iterations, pseudo);
  const double horizon = static_cast<double>(options_.iterations);
  std::vector<Suggestion> candidates;
  for (size_t i = 0; i < graph_->num_queries(); ++i) {
    if (h[i] >= horizon) continue;
    candidates.push_back(Suggestion{
        graph_->QueryString(static_cast<StringId>(i)), horizon - h[i]});
  }
  return FinalizeSuggestions(request, std::move(candidates), k);
}

}  // namespace pqsda
