#ifndef PQSDA_SUGGEST_ENGINE_H_
#define PQSDA_SUGGEST_ENGINE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "log/record.h"

namespace pqsda {

/// Sentinel user id for non-personalized suggestion requests.
inline constexpr UserId kNoUser = UINT32_MAX;

/// Everything an engine may use about the request: the input query, its
/// timestamp, the search context (Definition 2 — earlier queries of the same
/// session, with timestamps) and, for personalized engines, the user.
struct SuggestionRequest {
  std::string query;
  int64_t timestamp = 0;
  /// (query, timestamp) of preceding same-session queries, oldest first.
  std::vector<std::pair<std::string, int64_t>> context;
  UserId user = kNoUser;
  /// Optional per-request deadline / cancellation, polled cooperatively by
  /// the expensive pipeline stages (must outlive the call; not part of the
  /// cache key). Null means run to completion.
  const CancelToken* cancel = nullptr;
};

/// One suggested query. Higher score = better; scores are engine-specific
/// and only comparable within one list.
struct Suggestion {
  std::string query;
  double score = 0.0;

  friend bool operator==(const Suggestion&, const Suggestion&) = default;
};

/// Interface shared by every query-suggestion method in the library — the
/// PQS-DA diversifier and all baselines. Implementations are immutable after
/// construction and safe for concurrent Suggest calls.
class SuggestionEngine {
 public:
  virtual ~SuggestionEngine() = default;

  /// Short method name as used in the paper's figures ("FRW", "HT", ...).
  virtual std::string name() const = 0;

  /// Returns up to k suggestions, best first. The input query itself and its
  /// context queries are never suggested. An unknown input query yields
  /// NotFound.
  virtual StatusOr<std::vector<Suggestion>> Suggest(
      const SuggestionRequest& request, size_t k) const = 0;
};

/// Removes the request's own query/context from a scored candidate list and
/// truncates to k (shared post-processing helper for engines).
std::vector<Suggestion> FinalizeSuggestions(
    const SuggestionRequest& request,
    std::vector<Suggestion> candidates, size_t k);

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_ENGINE_H_
