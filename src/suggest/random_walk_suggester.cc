#include "suggest/random_walk_suggester.h"

namespace pqsda {

RandomWalkSuggester::RandomWalkSuggester(const ClickGraph& graph,
                                         WalkDirection direction,
                                         RandomWalkOptions options)
    : graph_(&graph), direction_(direction), options_(options) {
  if (direction == WalkDirection::kForward) {
    step_q2u_ = graph.graph().query_to_object().RowNormalized();
    step_u2q_ = graph.graph().object_to_query().RowNormalized();
  } else {
    // Time-reversed chain: normalize each step over the incoming side.
    // q -> u with weight / (u's total weight); u -> q' with
    // weight / (q's total weight); each row then renormalized to be
    // stochastic.
    const CsrMatrix& q2o = graph.graph().query_to_object();
    const CsrMatrix& o2q = graph.graph().object_to_query();
    std::vector<double> url_sums(o2q.rows());
    for (size_t u = 0; u < o2q.rows(); ++u) url_sums[u] = o2q.RowSum(u);
    std::vector<double> query_sums(q2o.rows());
    for (size_t q = 0; q < q2o.rows(); ++q) query_sums[q] = q2o.RowSum(q);

    CsrMatrix q2u = q2o;
    std::vector<double> inv_url(url_sums.size());
    for (size_t u = 0; u < url_sums.size(); ++u) {
      inv_url[u] = url_sums[u] > 0.0 ? 1.0 / url_sums[u] : 0.0;
    }
    q2u.ScaleColumns(inv_url);
    step_q2u_ = q2u.RowNormalized();

    CsrMatrix u2q = o2q;
    std::vector<double> inv_query(query_sums.size());
    for (size_t q = 0; q < query_sums.size(); ++q) {
      inv_query[q] = query_sums[q] > 0.0 ? 1.0 / query_sums[q] : 0.0;
    }
    u2q.ScaleColumns(inv_query);
    step_u2q_ = u2q.RowNormalized();
  }
}

StatusOr<std::vector<double>> RandomWalkSuggester::WalkDistribution(
    const std::string& query) const {
  StringId q = graph_->QueryId(query);
  if (q == kInvalidStringId) {
    return Status::NotFound("query not in click graph: " + query);
  }
  std::vector<double> v(graph_->num_queries(), 0.0);
  v[q] = 1.0;
  std::vector<double> start = v;
  std::vector<double> over_urls, stepped;
  for (size_t step = 0; step < options_.steps; ++step) {
    step_q2u_.TransposeMatVec(v, over_urls);
    step_u2q_.TransposeMatVec(over_urls, stepped);
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] = options_.self_transition * start[i] +
             (1.0 - options_.self_transition) * stepped[i];
    }
  }
  return v;
}

StatusOr<std::vector<Suggestion>> RandomWalkSuggester::Suggest(
    const SuggestionRequest& request, size_t k) const {
  auto dist = WalkDistribution(request.query);
  if (!dist.ok()) return dist.status();
  std::vector<Suggestion> candidates;
  for (size_t i = 0; i < dist->size(); ++i) {
    if ((*dist)[i] <= 0.0) continue;
    candidates.push_back(
        Suggestion{graph_->QueryString(static_cast<StringId>(i)),
                   (*dist)[i]});
  }
  return FinalizeSuggestions(request, std::move(candidates), k);
}

}  // namespace pqsda
