#ifndef PQSDA_SUGGEST_DQS_SUGGESTER_H_
#define PQSDA_SUGGEST_DQS_SUGGESTER_H_

#include <string>
#include <vector>

#include "graph/click_graph.h"
#include "suggest/engine.h"
#include "suggest/random_walk_suggester.h"

namespace pqsda {

/// Options for the DQS baseline.
struct DqsOptions {
  /// Size of the relevance-filtered candidate pool the greedy diversifier
  /// selects from.
  size_t candidate_pool = 60;
  /// Hitting-time truncation horizon.
  size_t iterations = 24;
  RandomWalkOptions walk;
};

/// DQS baseline (Ma, Lyu & King, AAAI'10 [6]): diversifying query
/// suggestion on the click graph. A forward random walk yields a relevant
/// candidate pool; suggestions are then picked greedily, each next one being
/// the pool query with the *largest* truncated hitting time to the already
/// selected set — far from the picked ones, hence novel.
class DqsSuggester : public SuggestionEngine {
 public:
  explicit DqsSuggester(const ClickGraph& graph, DqsOptions options = {});

  std::string name() const override { return "DQS"; }

  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k) const override;

 private:
  const ClickGraph* graph_;
  DqsOptions options_;
  RandomWalkSuggester walker_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_DQS_SUGGESTER_H_
