#ifndef PQSDA_SUGGEST_SUGGESTION_CACHE_H_
#define PQSDA_SUGGEST_SUGGESTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "suggest/engine.h"

namespace pqsda {

/// Sizing knobs for the suggestion result cache.
struct SuggestionCacheOptions {
  /// Total entries across all shards; 0 behaves as 1.
  size_t capacity = 4096;
  /// Independent LRU shards, each with its own mutex, so concurrent
  /// SuggestBatch workers rarely contend; 0 behaves as 1.
  size_t shards = 8;
};

/// Sharded LRU cache of finished suggestion lists, keyed by the full
/// (query, context offsets, user, k, index generation) tuple. Heavy serving
/// traffic is Zipf-shaped —
/// the same head queries arrive over and over — so a small cache absorbs a
/// large fraction of requests before they reach the expansion/solve/
/// selection pipeline.
///
/// The context component serializes every (query, timestamp offset) pair,
/// offsets taken relative to the request timestamp: the decay function
/// (Eq. 7) depends only on relative age, so two requests identical up to a
/// time shift correctly share an entry. An earlier revision collapsed the
/// context to a 64-bit hash inside the key, so a hash collision could serve
/// one session's list to another; the full serialization is compared on
/// every hit now and the precomputed hash only routes to a shard.
///
/// All methods are thread-safe. Hits, misses, evictions and stale
/// invalidations are counted into the default MetricsRegistry
/// (`pqsda.cache.hits_total`, `pqsda.cache.misses_total`,
/// `pqsda.cache.evictions_total`, `pqsda.cache.stale_invalidations_total`,
/// `pqsda.cache.size`).
class SuggestionCache {
 public:
  /// A cache key: the full serialized request tuple plus its 64-bit hash,
  /// computed once per request. The hash picks the shard; equality always
  /// compares the full serialization, so keys that collide in the hash are
  /// distinct entries, never aliases.
  struct CacheKey {
    uint64_t hash = 0;
    std::string full;

    CacheKey() = default;
    // Implicit: existing call sites (and tests) key by plain strings.
    CacheKey(std::string full_key);
    CacheKey(const char* full_key) : CacheKey(std::string(full_key)) {}

    friend bool operator==(const CacheKey& a, const CacheKey& b) {
      return a.full == b.full;
    }
    friend bool operator!=(const CacheKey& a, const CacheKey& b) {
      return !(a == b);
    }
  };

  /// What an entry's correctness depended on when it was inserted: a list of
  /// (component id, generation) pairs. The unsharded engine keys entries by a
  /// single scalar generation inside the key string; the sharded engine
  /// instead records the generation of every shard the request touched (plus
  /// a synthetic UPM component for personalized entries), so a rebuild that
  /// changes one shard invalidates only entries that actually read that
  /// shard — entries whose touched shards all carried over are still served.
  using ValidationVector = std::vector<std::pair<uint32_t, uint64_t>>;
  /// Checks a stored ValidationVector against current generations; false
  /// means the entry is stale and must not be served.
  using Validator = std::function<bool(const ValidationVector&)>;

  explicit SuggestionCache(SuggestionCacheOptions options = {});
  ~SuggestionCache();

  /// Stable cache key of a request against one index generation. The
  /// generation makes every pre-swap entry unreachable after a rebuild
  /// publishes a new snapshot — stale lists age out of the LRU instead of
  /// being served, with no explicit flush on the swap path.
  static CacheKey KeyOf(const SuggestionRequest& request, size_t k,
                        uint64_t generation = 0);

  /// On a hit, copies the cached list into `out`, refreshes the entry's LRU
  /// position and returns true.
  bool Lookup(const CacheKey& key, std::vector<Suggestion>* out) const;

  /// Lookup that additionally validates the entry's ValidationVector. When
  /// the entry carries components and `validator` rejects them, the entry is
  /// erased (counted as `pqsda.cache.stale_invalidations_total`) and the
  /// call is a miss — a stale list is never served and never lingers to be
  /// re-validated on every probe. Entries inserted without components are
  /// always considered valid (the key itself carries their generation).
  bool Lookup(const CacheKey& key, std::vector<Suggestion>* out,
              const Validator& validator) const;

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry when over budget.
  void Insert(const CacheKey& key, std::vector<Suggestion> value);

  /// Insert with a ValidationVector recording what the entry depends on
  /// (see ValidationVector). Components should be sorted by component id so
  /// tests can compare them structurally.
  void Insert(const CacheKey& key, std::vector<Suggestion> value,
              ValidationVector components);

  /// Current number of cached entries (sums the shards; approximate under
  /// concurrent writes).
  size_t size() const;

  /// Total entry budget across shards (shards * per-shard capacity — may
  /// round the configured capacity up by at most shards-1). Also exported
  /// as the `pqsda.cache.capacity` gauge so /statusz can report occupancy.
  size_t capacity() const { return capacity_; }

  /// Drops every entry (counters are left untouched).
  void Clear();

 private:
  struct Shard;

  Shard& ShardOf(const CacheKey& key) const;

  size_t per_shard_capacity_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_SUGGESTION_CACHE_H_
