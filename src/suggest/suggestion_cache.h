#ifndef PQSDA_SUGGEST_SUGGESTION_CACHE_H_
#define PQSDA_SUGGEST_SUGGESTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "suggest/cache_policy.h"
#include "suggest/engine.h"

namespace pqsda {

/// Sizing knobs for the suggestion result cache.
struct SuggestionCacheOptions {
  /// Total entries across all shards; 0 behaves as 1.
  size_t capacity = 4096;
  /// Independent shards, each with its own mutex and its own policy
  /// instance, so concurrent SuggestBatch workers rarely contend; 0 behaves
  /// as 1.
  size_t shards = 8;
  /// Replacement policy of each shard (see CachePolicyKind). LRU is the
  /// baseline; ARC/CAR adapt against scan pollution.
  CachePolicyKind policy = CachePolicyKind::kLru;
  /// Instance name on /statusz ("suggest", "sharded", ...).
  std::string name = "suggest";
};

/// Verdict of a validating Lookup on an entry's ValidationVector.
enum class CacheValidity {
  /// Every component the entry read still carries the generation it was
  /// built against: serve it.
  kValid,
  /// Some component has been rebuilt since (entry generation < current):
  /// the entry can never become valid again — erase it and miss.
  kStale,
  /// Some component is *newer* than what the caller's pinned snapshot
  /// serves (entry generation > current): the caller is mid-swap on an
  /// outgoing snapshot. Miss, but keep the entry — it is valid for readers
  /// of the incoming generation and erasing it would punish them for the
  /// outgoing reader's race.
  kMismatch,
};

/// Sharded cache of finished suggestion lists, keyed by the full
/// (query, context offsets, user, k, index generation) tuple. Heavy serving
/// traffic is Zipf-shaped —
/// the same head queries arrive over and over — so a small cache absorbs a
/// large fraction of requests before they reach the expansion/solve/
/// selection pipeline.
///
/// The context component serializes every (query, timestamp offset) pair,
/// offsets taken relative to the request timestamp: the decay function
/// (Eq. 7) depends only on relative age, so two requests identical up to a
/// time shift correctly share an entry. An earlier revision collapsed the
/// context to a 64-bit hash inside the key, so a hash collision could serve
/// one session's list to another; the full serialization is compared on
/// every hit now and the precomputed hash only routes to a shard.
///
/// All methods are thread-safe. Hits, misses, evictions, stale
/// invalidations and ghost-list hits are counted into the default
/// MetricsRegistry (`pqsda.cache.hits_total`, `pqsda.cache.misses_total`,
/// `pqsda.cache.evictions_total`, `pqsda.cache.stale_invalidations_total`,
/// `pqsda.cache.mismatch_misses_total`, `pqsda.cache.ghost_hits_total`,
/// `pqsda.cache.size`). Live instances additionally register themselves for
/// the /statusz "caches" section (see SuggestionCachesStatusJson).
class SuggestionCache {
 public:
  /// A cache key: the full serialized request tuple plus its 64-bit hash,
  /// computed once per request. The hash picks the shard; equality always
  /// compares the full serialization, so keys that collide in the hash are
  /// distinct entries, never aliases.
  struct CacheKey {
    uint64_t hash = 0;
    std::string full;

    CacheKey() = default;
    // Implicit: existing call sites (and tests) key by plain strings.
    CacheKey(std::string full_key);
    CacheKey(const char* full_key) : CacheKey(std::string(full_key)) {}

    friend bool operator==(const CacheKey& a, const CacheKey& b) {
      return a.full == b.full;
    }
    friend bool operator!=(const CacheKey& a, const CacheKey& b) {
      return !(a == b);
    }
  };

  /// What an entry's correctness depended on when it was inserted: a list of
  /// (component id, generation) pairs. The whole-generation mode keys
  /// entries by a single scalar generation inside the key string; the
  /// delta-aware mode instead records the generation of every index
  /// component the request read (plus a synthetic UPM component for
  /// personalized entries), so a rebuild that changes one component
  /// invalidates only entries that actually read it — entries whose touched
  /// components all carried their fingerprints over are still served.
  using ValidationVector = std::vector<std::pair<uint32_t, uint64_t>>;
  /// Grades a stored ValidationVector against the generations the caller's
  /// pinned snapshot serves (see CacheValidity).
  using Validator = std::function<CacheValidity(const ValidationVector&)>;

  explicit SuggestionCache(SuggestionCacheOptions options = {});
  ~SuggestionCache();

  /// Stable cache key of a request against one index generation. The
  /// generation makes every pre-swap entry unreachable after a rebuild
  /// publishes a new snapshot — stale lists age out instead of being
  /// served, with no explicit flush on the swap path. Delta-aware callers
  /// pass generation 0 and carry the real dependencies in the entry's
  /// ValidationVector instead.
  static CacheKey KeyOf(const SuggestionRequest& request, size_t k,
                        uint64_t generation = 0);

  /// On a hit, copies the cached list into `out`, refreshes the entry's
  /// policy position and returns true.
  bool Lookup(const CacheKey& key, std::vector<Suggestion>* out) const;

  /// Lookup that additionally grades the entry's ValidationVector. kStale
  /// entries are erased (counted as `pqsda.cache.stale_invalidations_total`)
  /// and miss; kMismatch entries miss but stay resident (counted as
  /// `pqsda.cache.mismatch_misses_total`) — they belong to a newer
  /// generation than the caller's pinned snapshot and other readers can
  /// still serve them. Entries inserted without components are always valid
  /// (the key itself carries their generation).
  bool Lookup(const CacheKey& key, std::vector<Suggestion>* out,
              const Validator& validator) const;

  /// Inserts or refreshes `key`, letting the shard's policy pick victims
  /// when over budget.
  void Insert(const CacheKey& key, std::vector<Suggestion> value);

  /// Insert with a ValidationVector recording what the entry depends on
  /// (see ValidationVector). Components should be sorted by component id so
  /// tests can compare them structurally.
  void Insert(const CacheKey& key, std::vector<Suggestion> value,
              ValidationVector components);

  /// Current number of cached entries (sums the shards; approximate under
  /// concurrent writes).
  size_t size() const;

  /// Total entry budget across shards (shards * per-shard capacity — may
  /// round the configured capacity up by at most shards-1). Also exported
  /// as the `pqsda.cache.capacity` gauge so /statusz can report occupancy.
  size_t capacity() const { return capacity_; }

  CachePolicyKind policy() const { return policy_; }
  const std::string& name() const { return name_; }

  /// Aggregated policy introspection across shards (T1/T2/B1/B2/p summed;
  /// only meaningful for ARC/CAR).
  CachePolicyStatus PolicyStatus() const;

  /// Drops every entry and all policy ghost state (counters untouched).
  void Clear();

 private:
  struct Shard;

  Shard& ShardOf(const CacheKey& key) const;

  size_t per_shard_capacity_;
  size_t capacity_;
  CachePolicyKind policy_;
  std::string name_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// JSON array describing every live SuggestionCache (name, policy,
/// occupancy, ARC/CAR list sizes), embedded in /statusz's "caches" field.
std::string SuggestionCachesStatusJson();

/// Bounded cache of *negative* results: request keys the engine answered
/// NotFound for, so storms of lookups for unknown queries are absorbed
/// without re-running expansion against the index every time. Entries carry
/// a ValidationVector just like positive entries — an ingested record can
/// make a query known, so a negative entry must die with the component that
/// would now resolve it (the owning component's content fingerprint covers
/// the query-string set). LRU, single mutex: the negative path is already
/// orders of magnitude cheaper than a walk, sharding would be noise.
///
/// Counters: `pqsda.cache.negative_hits_total`,
/// `pqsda.cache.negative_misses_total`,
/// `pqsda.cache.negative_insertions_total`,
/// `pqsda.cache.negative_evictions_total`,
/// `pqsda.cache.negative_invalidations_total`, gauge
/// `pqsda.cache.negative_size`.
class NegativeSuggestionCache {
 public:
  using CacheKey = SuggestionCache::CacheKey;
  using ValidationVector = SuggestionCache::ValidationVector;
  using Validator = SuggestionCache::Validator;

  /// Capacity 0 behaves as 1.
  explicit NegativeSuggestionCache(size_t capacity);
  ~NegativeSuggestionCache();

  /// True when `key` is a known-NotFound request whose ValidationVector
  /// still grades kValid. kStale entries are erased (counted as
  /// negative_invalidations_total) and miss; kMismatch entries miss but
  /// stay (same mid-swap rationale as SuggestionCache).
  bool Lookup(const CacheKey& key, const Validator& validator) const;

  /// Records `key` as NotFound under `components`.
  void Insert(const CacheKey& key, ValidationVector components);

  size_t size() const;
  void Clear();

 private:
  struct Entry {
    std::string key;
    ValidationVector components;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  /// Front = most recently confirmed NotFound.
  mutable std::list<Entry> lru_;
  mutable std::unordered_map<std::string, std::list<Entry>::iterator> index_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_SUGGESTION_CACHE_H_
