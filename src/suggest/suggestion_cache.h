#ifndef PQSDA_SUGGEST_SUGGESTION_CACHE_H_
#define PQSDA_SUGGEST_SUGGESTION_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "suggest/engine.h"

namespace pqsda {

/// Sizing knobs for the suggestion result cache.
struct SuggestionCacheOptions {
  /// Total entries across all shards; 0 behaves as 1.
  size_t capacity = 4096;
  /// Independent LRU shards, each with its own mutex, so concurrent
  /// SuggestBatch workers rarely contend; 0 behaves as 1.
  size_t shards = 8;
};

/// Sharded LRU cache of finished suggestion lists, keyed by
/// (query, context-hash, user, k, index generation). Heavy serving traffic
/// is Zipf-shaped —
/// the same head queries arrive over and over — so a small cache absorbs a
/// large fraction of requests before they reach the expansion/solve/
/// selection pipeline.
///
/// The context component hashes (query, timestamp offset) pairs, offsets
/// taken relative to the request timestamp: the decay function (Eq. 7)
/// depends only on relative age, so two requests identical up to a time
/// shift correctly share an entry.
///
/// All methods are thread-safe. Hits, misses and evictions are counted into
/// the default MetricsRegistry (`pqsda.cache.hits_total`,
/// `pqsda.cache.misses_total`, `pqsda.cache.evictions_total`,
/// `pqsda.cache.size`).
class SuggestionCache {
 public:
  explicit SuggestionCache(SuggestionCacheOptions options = {});
  ~SuggestionCache();

  /// Stable cache key of a request against one index generation. The
  /// generation makes every pre-swap entry unreachable after a rebuild
  /// publishes a new snapshot — stale lists age out of the LRU instead of
  /// being served, with no explicit flush on the swap path.
  static std::string KeyOf(const SuggestionRequest& request, size_t k,
                           uint64_t generation = 0);

  /// On a hit, copies the cached list into `out`, refreshes the entry's LRU
  /// position and returns true.
  bool Lookup(const std::string& key, std::vector<Suggestion>* out) const;

  /// Inserts or refreshes `key`, evicting the shard's least-recently-used
  /// entry when over budget.
  void Insert(const std::string& key, std::vector<Suggestion> value);

  /// Current number of cached entries (sums the shards; approximate under
  /// concurrent writes).
  size_t size() const;

  /// Total entry budget across shards (shards * per-shard capacity — may
  /// round the configured capacity up by at most shards-1). Also exported
  /// as the `pqsda.cache.capacity` gauge so /statusz can report occupancy.
  size_t capacity() const { return capacity_; }

  /// Drops every entry (counters are left untouched).
  void Clear();

 private:
  struct Shard;

  Shard& ShardOf(const std::string& key) const;

  size_t per_shard_capacity_;
  size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_SUGGESTION_CACHE_H_
