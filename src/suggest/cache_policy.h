#ifndef PQSDA_SUGGEST_CACHE_POLICY_H_
#define PQSDA_SUGGEST_CACHE_POLICY_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace pqsda {

/// Eviction policy of one SuggestionCache shard. LRU is the baseline the
/// serving path shipped with; CLOCK approximates it with one reference bit
/// per entry; ARC and CAR adapt the recency/frequency split online using
/// ghost lists of recently evicted keys, which is what absorbs the
/// scan-pollution pattern (a cold sweep through many one-shot queries) that
/// flushes a plain LRU.
enum class CachePolicyKind {
  kLru,
  kClock,
  kArc,
  kCar,
};

/// "lru" / "clock" / "arc" / "car".
const char* CachePolicyName(CachePolicyKind kind);
/// Parses a policy name (as accepted by --cache_policy=); false on an
/// unknown name, leaving `out` untouched.
bool ParseCachePolicy(const std::string& name, CachePolicyKind* out);

/// Introspection snapshot of one policy instance, surfaced per cache on
/// /statusz. The T1/T2/B1/B2 split and the adaptation target `p` are only
/// meaningful for ARC/CAR; LRU/CLOCK report resident entries in t1.
struct CachePolicyStatus {
  size_t resident = 0;
  size_t capacity = 0;
  size_t t1 = 0;  ///< recency-resident (ARC/CAR); all residents otherwise
  size_t t2 = 0;  ///< frequency-resident (ARC/CAR)
  size_t b1 = 0;  ///< recency ghost keys (ARC/CAR)
  size_t b2 = 0;  ///< frequency ghost keys (ARC/CAR)
  size_t p = 0;   ///< adaptation target for |T1| (ARC/CAR)
};

/// Replacement bookkeeping for one cache shard: which keys are resident and
/// which resident key gives way when the shard is full. The policy tracks
/// keys only — values live in the owning shard's map — and is deliberately
/// single-threaded: every call happens under the shard mutex.
///
/// The contract the differential oracle (tests/cache_policy_test.cc)
/// enforces against transparent reference models:
///  - OnInsert admits a non-resident key, appending every key it evicted to
///    `evicted` (at most one per call at steady state) and returning whether
///    the key was found in a ghost list (an ARC/CAR "history hit"; always
///    false for LRU/CLOCK).
///  - OnHit updates recency/reference state of a resident key.
///  - OnErase removes a resident key out-of-band (invalidation); the freed
///    slot is reusable immediately and ghost lists are not consulted.
///  - Decisions are deterministic: same op sequence, same evictions, same
///    StatusNow(), regardless of platform.
class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  /// A lookup hit on a resident key.
  virtual void OnHit(const std::string& key) = 0;

  /// Admits `key` (must not be resident). Keys evicted to make room are
  /// appended to `evicted` (may be null). Returns true when the key hit a
  /// ghost list.
  virtual bool OnInsert(const std::string& key,
                        std::vector<std::string>* evicted) = 0;

  /// Removes a resident key; no-op when the key is not resident. Ghost
  /// state referring to the key is left untouched (it records history, not
  /// residency).
  virtual void OnErase(const std::string& key) = 0;

  /// Drops all resident and ghost state.
  virtual void Clear() = 0;

  virtual size_t resident() const = 0;
  virtual CachePolicyStatus StatusNow() const = 0;
  virtual CachePolicyKind kind() const = 0;
};

/// Factory: one policy instance managing `capacity` resident slots
/// (capacity 0 behaves as 1).
std::unique_ptr<CachePolicy> MakeCachePolicy(CachePolicyKind kind,
                                             size_t capacity);

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_CACHE_POLICY_H_
