#include "suggest/concept_suggester.h"

#include <algorithm>

#include "common/math_util.h"

namespace pqsda {

namespace {

using SparseVec = std::vector<std::pair<uint32_t, double>>;

void Accumulate(std::unordered_map<uint32_t, double>& acc, const SparseVec& v,
                double scale = 1.0) {
  for (const auto& [id, w] : v) acc[id] += scale * w;
}

SparseVec ToSorted(const std::unordered_map<uint32_t, double>& acc) {
  SparseVec out(acc.begin(), acc.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

ConceptSuggester::ConceptSuggester(const ClickGraph& graph,
                                   const std::vector<QueryLogRecord>& records,
                                   const PageContentProvider& pages,
                                   ConceptSuggesterOptions options)
    : graph_(&graph), options_(options) {
  // Query concepts: centroid of clicked pages' term vectors.
  std::vector<std::unordered_map<uint32_t, double>> acc(graph.num_queries());
  std::unordered_map<UserId, std::unordered_map<uint32_t, double>> user_acc;
  for (const auto& rec : records) {
    if (!rec.has_click()) continue;
    StringId q = graph.QueryId(rec.query);
    if (q == kInvalidStringId) continue;
    const SparseVec* page = pages.TermVector(rec.clicked_url);
    if (page == nullptr) continue;
    Accumulate(acc[q], *page);
    Accumulate(user_acc[rec.user_id], *page);
  }
  query_concepts_.resize(graph.num_queries());
  for (size_t q = 0; q < acc.size(); ++q) {
    query_concepts_[q] = ToSorted(acc[q]);
  }
  for (const auto& [user, a] : user_acc) {
    user_profiles_.emplace(user, ToSorted(a));
  }
}

StatusOr<std::vector<Suggestion>> ConceptSuggester::Suggest(
    const SuggestionRequest& request, size_t k) const {
  StringId input = graph_->QueryId(request.query);
  if (input == kInvalidStringId) {
    return Status::NotFound("query not in click graph: " + request.query);
  }
  const SparseVec& input_concept = query_concepts_[input];
  const SparseVec* profile = nullptr;
  auto it = user_profiles_.find(request.user);
  if (request.user != kNoUser && it != user_profiles_.end()) {
    profile = &it->second;
  }
  double w_user = profile != nullptr ? options_.personalization_weight : 0.0;

  std::vector<Suggestion> candidates;
  for (uint32_t q = 0; q < query_concepts_.size(); ++q) {
    if (q == input || query_concepts_[q].empty()) continue;
    double sim_input = SparseCosine(query_concepts_[q], input_concept);
    if (sim_input <= 0.0) continue;  // unrelated to the input query
    double score = (1.0 - w_user) * sim_input;
    if (profile != nullptr) {
      score += w_user * SparseCosine(query_concepts_[q], *profile);
    }
    candidates.push_back(Suggestion{graph_->QueryString(q), score});
  }
  return FinalizeSuggestions(request, std::move(candidates), k);
}

}  // namespace pqsda
