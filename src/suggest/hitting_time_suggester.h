#ifndef PQSDA_SUGGEST_HITTING_TIME_SUGGESTER_H_
#define PQSDA_SUGGEST_HITTING_TIME_SUGGESTER_H_

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/aligned.h"
#include "common/cancellation.h"
#include "common/thread_pool.h"
#include "graph/click_graph.h"
#include "graph/packed_csr.h"
#include "suggest/engine.h"

namespace pqsda {

/// Reusable scratch buffers for the hitting-time kernels. Kept alive across
/// calls (e.g. thread_local on a serving thread) the K-1 selection rounds of
/// Algorithm 1 — and every request after the first — run allocation-free.
struct HittingTimeWorkspace {
  /// Query-side iterates; `h` holds the result after an Into call.
  std::vector<double> h, next;
  /// URL-side iterates (bipartite variant only).
  std::vector<double> hu, hu_next;
  /// Seed membership (char, not vector<bool>, so parallel row sweeps read
  /// plain bytes).
  std::vector<char> is_seed;
  /// Per-row sums of the two bipartite orientations, hoisted out of the
  /// sweep loop (bipartite variant only; recomputed per call).
  std::vector<double> q_row_sum, u_row_sum;
};

/// Extra node grafted onto the query side of a bipartite walk: a pseudo
/// query (Mei et al. [14]) whose URL edges summarize a user's click history.
struct PseudoNode {
  /// (url id, weight) pairs; need not be normalized.
  std::vector<std::pair<uint32_t, double>> url_edges;
};

/// Truncated expected hitting time on the alternating query/URL walk of a
/// click graph. `q2u` and `u2q` carry arbitrary non-negative edge weights
/// (raw counts or cfiqf); rows are normalized internally. Returns per-query
/// hitting times to the seed set after `iterations` single hops of the
/// alternating chain. Queries in `seed_queries` get 0; queries that cannot
/// reach the seeds (including dangling ones) saturate at the horizon.
///
/// If `pseudo` is non-null, a pseudo query node with index q2u.rows() is
/// appended and its URL edges are mirrored back from the URL side so the
/// walk can actually hit it; the returned vector then has rows()+1 entries.
/// Seed ids may refer to the pseudo node. Pseudo edge weights should be on
/// the same scale as the matrix weights.
///
/// Seed ids out of range are skipped unconditionally (not an assert): a bad
/// seed must never become an out-of-bounds write in a release-built server.
/// `pool`, when non-null, parallelizes each sweep over row ranges.
std::vector<double> BipartiteHittingTime(const CsrMatrix& q2u,
                                         const CsrMatrix& u2q,
                                         const std::vector<uint32_t>& seed_queries,
                                         size_t iterations,
                                         const PseudoNode* pseudo = nullptr,
                                         ThreadPool* pool = nullptr);

/// BipartiteHittingTime computing into `ws.h` (query-side hitting times)
/// with every buffer drawn from `ws` — zero allocations once the workspace
/// is warm. A non-null `cancel` is polled at the top of every sweep
/// iteration; on cancellation/expiry the sweep stops early and `ws.h` is
/// partial — the caller must re-check the token before using it.
void BipartiteHittingTimeInto(const CsrMatrix& q2u, const CsrMatrix& u2q,
                              const std::vector<uint32_t>& seed_queries,
                              size_t iterations, const PseudoNode* pseudo,
                              ThreadPool* pool, HittingTimeWorkspace& ws,
                              const CancelToken* cancel = nullptr);

/// Truncated expected hitting time on a mixture of query-level chains
/// (Eq. 17): M = sum_x weight[x] * chain[x], each chain row-stochastic (or
/// sub-stochastic). Used by the cross-bipartite hitting time of §IV-C (three
/// chains, uniform 1/3 weights) and by DQS (one chain). Out-of-range seeds
/// are skipped unconditionally; `pool` parallelizes the row sweeps.
std::vector<double> ChainHittingTime(const std::vector<const CsrMatrix*>& chains,
                                     const std::vector<double>& weights,
                                     const std::vector<uint32_t>& seeds,
                                     size_t iterations,
                                     ThreadPool* pool = nullptr);

/// ChainHittingTime computing into `ws.h`, allocation-free when warm. A
/// non-null `cancel` stops the sweep at iteration granularity (see
/// BipartiteHittingTimeInto for the partial-result contract). This is the
/// reference implementation (walks all chains per row per iteration); the
/// serving path builds a MergedChain once and sweeps that instead.
void ChainHittingTimeInto(const std::vector<const CsrMatrix*>& chains,
                          const std::vector<double>& weights,
                          const std::vector<uint32_t>& seeds,
                          size_t iterations, ThreadPool* pool,
                          HittingTimeWorkspace& ws,
                          const CancelToken* cancel = nullptr);

/// The mixture chain M = sum_x weights[x] chain[x] materialized once as
/// packed CSR, with the per-row mass (row sum of M, the renormalizer for
/// sub-stochastic rows) precomputed. Algorithm 1 runs K-1 selection rounds
/// of `iterations` sweeps each over the same mixture — merging up front
/// turns every sweep row into one SIMD sparse dot instead of three span
/// walks with a mass accumulation.
///
/// Values merge per column in chain order, so M(i, j) groups the weighted
/// terms differently than the reference's interleaved accumulation;
/// results agree to ~1 ulp per entry (tolerance-gated in the
/// kernel_equivalence suite, 1e-9 relative on hitting times).
struct MergedChain {
  PackedCsr m;
  AlignedVector<double> mass;
};

MergedChain BuildMergedChain(const std::vector<const CsrMatrix*>& chains,
                             const std::vector<double>& weights);

/// ChainHittingTimeInto over a prebuilt MergedChain: same contract
/// (seeds pinned to 0, dangling rows saturate at the horizon, cancel polled
/// per iteration, result in `ws.h`).
void MergedChainHittingTimeInto(const MergedChain& chain,
                                const std::vector<uint32_t>& seeds,
                                size_t iterations, ThreadPool* pool,
                                HittingTimeWorkspace& ws,
                                const CancelToken* cancel = nullptr);

/// Options for the hitting-time baselines.
struct HittingTimeOptions {
  /// Truncation horizon (alternating-walk steps).
  size_t iterations = 24;
};

/// HT baseline (Mei et al. [14]): rank candidates by ascending truncated
/// hitting time to the input query on the click graph.
class HittingTimeSuggester : public SuggestionEngine {
 public:
  explicit HittingTimeSuggester(const ClickGraph& graph,
                                HittingTimeOptions options = {});

  std::string name() const override { return "HT"; }

  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k) const override;

 private:
  const ClickGraph* graph_;
  HittingTimeOptions options_;
};

/// PHT baseline (Mei et al. [14], personalized variant): a pseudo query node
/// carrying the user's historical clicked URLs is added to the seed set, so
/// candidates near either the input query or the user's history rank high.
class PersonalizedHittingTimeSuggester : public SuggestionEngine {
 public:
  /// `records` is the training log from which per-user URL click counts are
  /// collected.
  PersonalizedHittingTimeSuggester(const ClickGraph& graph,
                                   const std::vector<QueryLogRecord>& records,
                                   HittingTimeOptions options = {});

  std::string name() const override { return "PHT"; }

  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k) const override;

 private:
  const ClickGraph* graph_;
  HittingTimeOptions options_;
  std::unordered_map<UserId, PseudoNode> user_nodes_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_HITTING_TIME_SUGGESTER_H_
