#ifndef PQSDA_SUGGEST_CONCEPT_SUGGESTER_H_
#define PQSDA_SUGGEST_CONCEPT_SUGGESTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/click_graph.h"
#include "suggest/engine.h"

namespace pqsda {

/// Supplies term vectors of web pages (the "concept space"). The CM baseline
/// needs page content, which the paper's version extracted from search
/// results; our benches back this with the synthetic URL documents.
class PageContentProvider {
 public:
  virtual ~PageContentProvider() = default;

  /// Sparse id-sorted term vector of a URL; nullptr if unknown.
  virtual const std::vector<std::pair<uint32_t, double>>* TermVector(
      const std::string& url) const = 0;
};

/// Options for the CM baseline.
struct ConceptSuggesterOptions {
  /// Weight of the user-profile similarity vs the input-query similarity.
  double personalization_weight = 0.5;
};

/// CM baseline (Leung, Ng & Lee, TKDE'08 [13]): concept-based personalized
/// query suggestion. Every query is embedded as the centroid of its clicked
/// pages' term vectors; each user is profiled as the centroid of their
/// clicked queries' concepts; candidates are ranked by a blend of concept
/// similarity to the input query and to the user profile. The full concept
/// scan per request is why CM is the slowest system in Fig. 7.
class ConceptSuggester : public SuggestionEngine {
 public:
  ConceptSuggester(const ClickGraph& graph,
                   const std::vector<QueryLogRecord>& records,
                   const PageContentProvider& pages,
                   ConceptSuggesterOptions options = {});

  std::string name() const override { return "CM"; }

  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k) const override;

 private:
  using SparseVec = std::vector<std::pair<uint32_t, double>>;

  const ClickGraph* graph_;
  ConceptSuggesterOptions options_;
  /// Concept vector per query id (may be empty for click-less queries).
  std::vector<SparseVec> query_concepts_;
  /// Concept profile per user.
  std::unordered_map<UserId, SparseVec> user_profiles_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_CONCEPT_SUGGESTER_H_
