#ifndef PQSDA_SUGGEST_CACB_SUGGESTER_H_
#define PQSDA_SUGGEST_CACB_SUGGESTER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/click_graph.h"
#include "log/sessionizer.h"
#include "suggest/engine.h"

namespace pqsda {

/// Options for the CACB baseline.
struct CacbOptions {
  /// Minimum Jaccard similarity of clicked-URL sets for two queries to be
  /// merged into one concept.
  double merge_threshold = 0.5;
  /// Longest concept-context suffix indexed (the suffix "tree" depth).
  size_t max_context = 2;
};

/// CACB — context-aware query suggestion by mining click-through and
/// session data (Cao et al., KDD'08 [2], simplified). Offline, queries are
/// clustered into concepts by clicked-URL similarity and every session
/// becomes a concept sequence; a suffix index maps each recent concept
/// context to the queries users issued next. Online, the current session's
/// concept suffix is matched (longest first) and the historical next
/// queries are suggested by frequency.
class CacbSuggester : public SuggestionEngine {
 public:
  CacbSuggester(const ClickGraph& graph,
                const std::vector<QueryLogRecord>& records,
                const std::vector<Session>& sessions,
                CacbOptions options = {});

  std::string name() const override { return "CACB"; }

  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k) const override;

  /// Concept id of a query; UINT32_MAX if the query is unknown.
  uint32_t ConceptOf(const std::string& query) const;

  size_t num_concepts() const { return num_concepts_; }

 private:
  /// Key for a concept-context suffix (concept ids joined).
  static std::string ContextKey(const std::vector<uint32_t>& concepts);

  const ClickGraph* graph_;
  CacbOptions options_;
  /// Query id -> concept id (union-find roots compacted).
  std::vector<uint32_t> concept_of_;
  size_t num_concepts_ = 0;
  /// Context key -> (next query id -> count).
  std::unordered_map<std::string, std::unordered_map<StringId, double>>
      transitions_;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_CACB_SUGGESTER_H_
