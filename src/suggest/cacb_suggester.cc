#include "suggest/cacb_suggester.h"

#include <algorithm>
#include <numeric>

namespace pqsda {

namespace {

// Union-find with path compression.
uint32_t Find(std::vector<uint32_t>& parent, uint32_t x) {
  while (parent[x] != x) {
    parent[x] = parent[parent[x]];
    x = parent[x];
  }
  return x;
}

double Jaccard(std::span<const uint32_t> a, std::span<const uint32_t> b) {
  // Row indices are sorted in CSR.
  size_t i = 0, j = 0, inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

CacbSuggester::CacbSuggester(const ClickGraph& graph,
                             const std::vector<QueryLogRecord>& records,
                             const std::vector<Session>& sessions,
                             CacbOptions options)
    : graph_(&graph), options_(options) {
  const size_t nq = graph.num_queries();
  const CsrMatrix& q2u = graph.graph().query_to_object();
  const CsrMatrix& u2q = graph.graph().object_to_query();

  // --- Concept clustering: merge query pairs sharing a URL whose clicked
  // URL sets are Jaccard-similar (one pass over URL co-click lists, the
  // spirit of Cao et al.'s agglomerative step). ---
  std::vector<uint32_t> parent(nq);
  std::iota(parent.begin(), parent.end(), 0);
  for (size_t u = 0; u < u2q.rows(); ++u) {
    auto qs = u2q.RowIndices(u);
    for (size_t i = 1; i < qs.size(); ++i) {
      uint32_t a = Find(parent, qs[0]);
      uint32_t b = Find(parent, qs[i]);
      if (a == b) continue;
      if (Jaccard(q2u.RowIndices(qs[0]), q2u.RowIndices(qs[i])) >=
          options.merge_threshold) {
        parent[b] = a;
      }
    }
  }
  concept_of_.assign(nq, 0);
  std::unordered_map<uint32_t, uint32_t> compact;
  for (uint32_t q = 0; q < nq; ++q) {
    uint32_t root = Find(parent, q);
    auto [it, inserted] =
        compact.emplace(root, static_cast<uint32_t>(compact.size()));
    concept_of_[q] = it->second;
  }
  num_concepts_ = compact.size();

  // --- Suffix index over concept sequences of sessions. ---
  for (const Session& s : sessions) {
    std::vector<uint32_t> concepts;
    std::vector<StringId> query_ids;
    for (size_t idx : s.record_indices) {
      StringId q = graph.QueryId(records[idx].query);
      if (q == kInvalidStringId) continue;
      query_ids.push_back(q);
      concepts.push_back(concept_of_[q]);
    }
    for (size_t pos = 0; pos + 1 < query_ids.size(); ++pos) {
      StringId next = query_ids[pos + 1];
      // Index every suffix of length 1..max_context ending at pos.
      for (size_t len = 1; len <= options.max_context && len <= pos + 1;
           ++len) {
        std::vector<uint32_t> ctx(concepts.begin() + (pos + 1 - len),
                                  concepts.begin() + (pos + 1));
        transitions_[ContextKey(ctx)][next] += 1.0;
      }
    }
  }
}

std::string CacbSuggester::ContextKey(const std::vector<uint32_t>& concepts) {
  std::string key;
  for (uint32_t c : concepts) {
    key += std::to_string(c);
    key += '|';
  }
  return key;
}

uint32_t CacbSuggester::ConceptOf(const std::string& query) const {
  StringId q = graph_->QueryId(query);
  if (q == kInvalidStringId) return UINT32_MAX;
  return concept_of_[q];
}

StatusOr<std::vector<Suggestion>> CacbSuggester::Suggest(
    const SuggestionRequest& request, size_t k) const {
  StringId input = graph_->QueryId(request.query);
  if (input == kInvalidStringId) {
    return Status::NotFound("query not in click graph: " + request.query);
  }
  // Concept sequence of the current session: context queries then the input.
  std::vector<uint32_t> concepts;
  for (const auto& [q, ts] : request.context) {
    (void)ts;
    StringId id = graph_->QueryId(q);
    if (id != kInvalidStringId) concepts.push_back(concept_of_[id]);
  }
  concepts.push_back(concept_of_[input]);

  // Longest-suffix match.
  for (size_t len = std::min(options_.max_context, concepts.size()); len >= 1;
       --len) {
    std::vector<uint32_t> ctx(concepts.end() - len, concepts.end());
    auto it = transitions_.find(ContextKey(ctx));
    if (it == transitions_.end()) continue;
    std::vector<Suggestion> candidates;
    candidates.reserve(it->second.size());
    for (const auto& [q, count] : it->second) {
      candidates.push_back(
          Suggestion{graph_->QueryString(q), count});
    }
    auto out = FinalizeSuggestions(request, std::move(candidates), k);
    if (!out.empty()) return out;
  }
  return std::vector<Suggestion>{};
}

}  // namespace pqsda
