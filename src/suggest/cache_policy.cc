#include "suggest/cache_policy.h"

#include <algorithm>
#include <cstring>
#include <list>
#include <unordered_map>
#include <utility>

namespace pqsda {

const char* CachePolicyName(CachePolicyKind kind) {
  switch (kind) {
    case CachePolicyKind::kLru: return "lru";
    case CachePolicyKind::kClock: return "clock";
    case CachePolicyKind::kArc: return "arc";
    case CachePolicyKind::kCar: return "car";
  }
  return "lru";
}

bool ParseCachePolicy(const std::string& name, CachePolicyKind* out) {
  if (name == "lru") *out = CachePolicyKind::kLru;
  else if (name == "clock") *out = CachePolicyKind::kClock;
  else if (name == "arc") *out = CachePolicyKind::kArc;
  else if (name == "car") *out = CachePolicyKind::kCar;
  else return false;
  return true;
}

namespace {

// ------------------------------------------------------------------ LRU --

class LruPolicy final : public CachePolicy {
 public:
  explicit LruPolicy(size_t capacity) : capacity_(std::max<size_t>(capacity, 1)) {}

  void OnHit(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    lru_.splice(lru_.begin(), lru_, it->second);
  }

  bool OnInsert(const std::string& key,
                std::vector<std::string>* evicted) override {
    lru_.push_front(key);
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      if (evicted != nullptr) evicted->push_back(lru_.back());
      index_.erase(lru_.back());
      lru_.pop_back();
    }
    return false;
  }

  void OnErase(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    lru_.erase(it->second);
    index_.erase(it);
  }

  void Clear() override {
    lru_.clear();
    index_.clear();
  }

  size_t resident() const override { return lru_.size(); }

  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = lru_.size();
    s.capacity = capacity_;
    s.t1 = lru_.size();
    return s;
  }

  CachePolicyKind kind() const override { return CachePolicyKind::kLru; }

 private:
  size_t capacity_;
  std::list<std::string> lru_;  // front = MRU
  std::unordered_map<std::string, std::list<std::string>::iterator> index_;
};

// ---------------------------------------------------------------- CLOCK --

// Fixed slot array with one reference bit per entry and a hand that only
// moves to evict. Deterministic slot discipline (the oracle's reference
// model mirrors it exactly): a free slot is always the lowest-index unused
// one; when full, the hand sweeps from its current position clearing
// reference bits until it finds a 0-bit victim, replaces it in place, and
// parks one past it.
class ClockPolicy final : public CachePolicy {
 public:
  explicit ClockPolicy(size_t capacity)
      : capacity_(std::max<size_t>(capacity, 1)), slots_(capacity_) {}

  void OnHit(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    slots_[it->second].ref = true;
  }

  bool OnInsert(const std::string& key,
                std::vector<std::string>* evicted) override {
    if (resident_ < capacity_) {
      size_t s = 0;
      while (slots_[s].used) ++s;
      slots_[s] = Slot{key, /*ref=*/false, /*used=*/true};
      index_[key] = s;
      ++resident_;
      return false;
    }
    while (slots_[hand_].ref) {
      slots_[hand_].ref = false;
      hand_ = (hand_ + 1) % capacity_;
    }
    if (evicted != nullptr) evicted->push_back(slots_[hand_].key);
    index_.erase(slots_[hand_].key);
    slots_[hand_] = Slot{key, /*ref=*/false, /*used=*/true};
    index_[key] = hand_;
    hand_ = (hand_ + 1) % capacity_;
    return false;
  }

  void OnErase(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    slots_[it->second] = Slot{};
    index_.erase(it);
    --resident_;
  }

  void Clear() override {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    index_.clear();
    resident_ = 0;
    hand_ = 0;
  }

  size_t resident() const override { return resident_; }

  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = resident_;
    s.capacity = capacity_;
    s.t1 = resident_;
    return s;
  }

  CachePolicyKind kind() const override { return CachePolicyKind::kClock; }

 private:
  struct Slot {
    std::string key;
    bool ref = false;
    bool used = false;
  };

  size_t capacity_;
  std::vector<Slot> slots_;
  std::unordered_map<std::string, size_t> index_;
  size_t resident_ = 0;
  size_t hand_ = 0;
};

// ------------------------------------------------------------------ ARC --

// Megiddo & Modha's ARC(c), transcribed from the canonical case analysis:
// T1/T2 resident (recency/frequency, MRU at front), B1/B2 ghost keys, and
// the adaptation target p for |T1|. Integer arithmetic throughout, exactly
// as the paper specifies, so the oracle's literal reference transcription
// must agree decision-for-decision.
class ArcPolicy final : public CachePolicy {
 public:
  explicit ArcPolicy(size_t capacity) : c_(std::max<size_t>(capacity, 1)) {}

  void OnHit(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end() || (it->second.list != kT1 && it->second.list != kT2)) {
      return;
    }
    Move(it->second, kT2);
  }

  bool OnInsert(const std::string& key,
                std::vector<std::string>* evicted) override {
    auto it = index_.find(key);
    if (it != index_.end() && it->second.list == kB1) {
      // Case II: ghost hit in B1 — recency is under-provisioned.
      const size_t delta = std::max<size_t>(b2_.size() / b1_.size(), 1);
      p_ = std::min(c_, p_ + delta);
      Replace(/*in_b2=*/false, evicted);
      Move(it->second, kT2);
      return true;
    }
    if (it != index_.end() && it->second.list == kB2) {
      // Case III: ghost hit in B2 — frequency is under-provisioned.
      const size_t delta = std::max<size_t>(b1_.size() / b2_.size(), 1);
      p_ = p_ > delta ? p_ - delta : 0;
      Replace(/*in_b2=*/true, evicted);
      Move(it->second, kT2);
      return true;
    }
    // Case IV: a completely new key.
    const size_t l1 = t1_.size() + b1_.size();
    if (l1 == c_) {
      if (t1_.size() < c_) {
        DropLru(kB1);
        Replace(/*in_b2=*/false, evicted);
      } else {
        // B1 is empty and T1 holds the whole budget: drop T1's LRU outright.
        if (evicted != nullptr) evicted->push_back(t1_.back());
        index_.erase(t1_.back());
        t1_.pop_back();
      }
    } else if (l1 < c_) {
      const size_t total = t1_.size() + t2_.size() + b1_.size() + b2_.size();
      if (total >= c_) {
        if (total == 2 * c_) DropLru(kB2);
        Replace(/*in_b2=*/false, evicted);
      }
    }
    t1_.push_front(key);
    index_[key] = Loc{kT1, t1_.begin()};
    return false;
  }

  void OnErase(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end() || (it->second.list != kT1 && it->second.list != kT2)) {
      return;
    }
    ListOf(it->second.list).erase(it->second.pos);
    index_.erase(it);
  }

  void Clear() override {
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    index_.clear();
    p_ = 0;
  }

  size_t resident() const override { return t1_.size() + t2_.size(); }

  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = resident();
    s.capacity = c_;
    s.t1 = t1_.size();
    s.t2 = t2_.size();
    s.b1 = b1_.size();
    s.b2 = b2_.size();
    s.p = p_;
    return s;
  }

  CachePolicyKind kind() const override { return CachePolicyKind::kArc; }

 private:
  enum ListId { kT1, kT2, kB1, kB2 };
  struct Loc {
    ListId list;
    std::list<std::string>::iterator pos;
  };

  std::list<std::string>& ListOf(ListId id) {
    switch (id) {
      case kT1: return t1_;
      case kT2: return t2_;
      case kB1: return b1_;
      case kB2: return b2_;
    }
    return t1_;
  }

  /// Moves the key at `loc` to the MRU position of `to`, updating the index.
  void Move(Loc& loc, ListId to) {
    std::list<std::string>& dst = ListOf(to);
    dst.splice(dst.begin(), ListOf(loc.list), loc.pos);
    loc.list = to;
    loc.pos = dst.begin();
  }

  /// The paper's REPLACE(x, p): demote T1's or T2's LRU to its ghost list.
  void Replace(bool in_b2, std::vector<std::string>* evicted) {
    if (!t1_.empty() &&
        ((in_b2 && t1_.size() == p_) || t1_.size() > p_)) {
      if (evicted != nullptr) evicted->push_back(t1_.back());
      auto it = index_.find(t1_.back());
      b1_.splice(b1_.begin(), t1_, it->second.pos);
      it->second = Loc{kB1, b1_.begin()};
    } else if (!t2_.empty()) {
      if (evicted != nullptr) evicted->push_back(t2_.back());
      auto it = index_.find(t2_.back());
      b2_.splice(b2_.begin(), t2_, it->second.pos);
      it->second = Loc{kB2, b2_.begin()};
    }
  }

  void DropLru(ListId id) {
    std::list<std::string>& l = ListOf(id);
    if (l.empty()) return;
    index_.erase(l.back());
    l.pop_back();
  }

  size_t c_;
  size_t p_ = 0;
  std::list<std::string> t1_, t2_, b1_, b2_;  // front = MRU (T) / head (B)
  std::unordered_map<std::string, Loc> index_;
};

// ------------------------------------------------------------------ CAR --

// Bansal & Modha's CLOCK with Adaptive Replacement: T1/T2 are circular
// clocks (front = hand) with one reference bit per page, B1/B2 plain LRU
// ghost lists, p the T1 target. A hit only sets the reference bit — no list
// movement, which is the point of CAR over ARC (hits are lock-free in the
// original; here they stay O(1) without touching list order).
class CarPolicy final : public CachePolicy {
 public:
  explicit CarPolicy(size_t capacity) : c_(std::max<size_t>(capacity, 1)) {}

  void OnHit(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end() || (it->second.list != kT1 && it->second.list != kT2)) {
      return;
    }
    it->second.clock_pos->ref = true;
  }

  bool OnInsert(const std::string& key,
                std::vector<std::string>* evicted) override {
    auto it = index_.find(key);
    const bool in_b1 = it != index_.end() && it->second.list == kB1;
    const bool in_b2 = it != index_.end() && it->second.list == kB2;
    if (t1_.size() + t2_.size() == c_) {
      ReplaceClock(evicted);
      // Ghost-directory bounding, exactly per the paper: only a miss on
      // both directories discards ghost history, and the checks read the
      // sizes *after* the replacement above.
      if (!in_b1 && !in_b2) {
        if (t1_.size() + b1_.size() == c_) {
          DropGhostLru(b1_);
        } else if (t1_.size() + t2_.size() + b1_.size() + b2_.size() ==
                   2 * c_) {
          DropGhostLru(b2_);
        }
      }
    }
    if (!in_b1 && !in_b2) {
      t1_.push_back(ClockEntry{key, false});
      index_[key] = Loc{kT1, std::prev(t1_.end()), {}};
      return false;
    }
    if (in_b1) {
      const size_t delta = std::max<size_t>(b2_.size() / b1_.size(), 1);
      p_ = std::min(c_, p_ + delta);
    } else {
      const size_t delta = std::max<size_t>(b1_.size() / b2_.size(), 1);
      p_ = p_ > delta ? p_ - delta : 0;
    }
    (in_b1 ? b1_ : b2_).erase(it->second.ghost_pos);
    t2_.push_back(ClockEntry{key, false});
    it->second = Loc{kT2, std::prev(t2_.end()), {}};
    return true;
  }

  void OnErase(const std::string& key) override {
    auto it = index_.find(key);
    if (it == index_.end() || (it->second.list != kT1 && it->second.list != kT2)) {
      return;
    }
    (it->second.list == kT1 ? t1_ : t2_).erase(it->second.clock_pos);
    index_.erase(it);
  }

  void Clear() override {
    t1_.clear();
    t2_.clear();
    b1_.clear();
    b2_.clear();
    index_.clear();
    p_ = 0;
  }

  size_t resident() const override { return t1_.size() + t2_.size(); }

  CachePolicyStatus StatusNow() const override {
    CachePolicyStatus s;
    s.resident = resident();
    s.capacity = c_;
    s.t1 = t1_.size();
    s.t2 = t2_.size();
    s.b1 = b1_.size();
    s.b2 = b2_.size();
    s.p = p_;
    return s;
  }

  CachePolicyKind kind() const override { return CachePolicyKind::kCar; }

 private:
  struct ClockEntry {
    std::string key;
    bool ref = false;
  };
  enum ListId { kT1, kT2, kB1, kB2 };
  struct Loc {
    ListId list;
    std::list<ClockEntry>::iterator clock_pos;  // kT1/kT2
    std::list<std::string>::iterator ghost_pos;  // kB1/kB2
  };

  /// The paper's replace(): sweep the T1 or T2 clock (head = front) until a
  /// 0-bit page surfaces, demoting it to the matching ghost list; 1-bit
  /// pages are cleared and recirculated to T2's tail.
  void ReplaceClock(std::vector<std::string>* evicted) {
    for (;;) {
      if (t1_.size() >= std::max<size_t>(p_, 1)) {
        ClockEntry& head = t1_.front();
        if (!head.ref) {
          if (evicted != nullptr) evicted->push_back(head.key);
          auto it = index_.find(head.key);
          b1_.push_front(head.key);
          it->second = Loc{kB1, {}, b1_.begin()};
          t1_.pop_front();
          return;
        }
        head.ref = false;
        auto it = index_.find(head.key);
        t2_.splice(t2_.end(), t1_, t1_.begin());
        it->second = Loc{kT2, std::prev(t2_.end()), {}};
      } else {
        ClockEntry& head = t2_.front();
        if (!head.ref) {
          if (evicted != nullptr) evicted->push_back(head.key);
          auto it = index_.find(head.key);
          b2_.push_front(head.key);
          it->second = Loc{kB2, {}, b2_.begin()};
          t2_.pop_front();
          return;
        }
        head.ref = false;
        auto it = index_.find(head.key);
        t2_.splice(t2_.end(), t2_, t2_.begin());
        it->second = Loc{kT2, std::prev(t2_.end()), {}};
      }
    }
  }

  void DropGhostLru(std::list<std::string>& ghosts) {
    if (ghosts.empty()) return;
    index_.erase(ghosts.back());
    ghosts.pop_back();
  }

  size_t c_;
  size_t p_ = 0;
  std::list<ClockEntry> t1_, t2_;      // front = clock hand
  std::list<std::string> b1_, b2_;     // front = MRU ghost
  std::unordered_map<std::string, Loc> index_;
};

}  // namespace

std::unique_ptr<CachePolicy> MakeCachePolicy(CachePolicyKind kind,
                                             size_t capacity) {
  switch (kind) {
    case CachePolicyKind::kLru:
      return std::make_unique<LruPolicy>(capacity);
    case CachePolicyKind::kClock:
      return std::make_unique<ClockPolicy>(capacity);
    case CachePolicyKind::kArc:
      return std::make_unique<ArcPolicy>(capacity);
    case CachePolicyKind::kCar:
      return std::make_unique<CarPolicy>(capacity);
  }
  return std::make_unique<LruPolicy>(capacity);
}

}  // namespace pqsda
