#include "suggest/pqsda_diversifier.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "text/tokenizer.h"

namespace pqsda {

PqsdaDiversifier::PqsdaDiversifier(const MultiBipartite& mb,
                                   PqsdaDiversifierOptions options)
    : mb_(&mb), options_(options), builder_(mb) {}

std::vector<std::pair<StringId, double>> PqsdaDiversifier::TermMatchSeeds(
    const std::string& query) const {
  const BipartiteGraph& terms = mb_->graph(BipartiteKind::kTerm);
  std::unordered_map<StringId, double> scores;
  for (const std::string& term : Tokenize(query)) {
    if (IsStopword(term)) continue;
    StringId t = mb_->terms().Lookup(term);
    if (t == kInvalidStringId) continue;
    auto idx = terms.object_to_query().RowIndices(t);
    auto val = terms.object_to_query().RowValues(t);
    for (size_t i = 0; i < idx.size(); ++i) {
      scores[idx[i]] += val[i];
    }
  }
  std::vector<std::pair<StringId, double>> out(scores.begin(), scores.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > 8) out.resize(8);
  return out;
}

StatusOr<DiversificationOutput> PqsdaDiversifier::Diversify(
    const SuggestionRequest& request, size_t k) const {
  StringId input = mb_->QueryId(request.query);
  std::vector<std::pair<StringId, int64_t>> context_ids;
  for (const auto& [q, ts] : request.context) {
    StringId id = mb_->QueryId(q);
    if (id != kInvalidStringId) context_ids.emplace_back(id, ts);
  }
  std::vector<StringId> context_only;
  for (const auto& [id, ts] : context_ids) {
    (void)ts;
    context_only.push_back(id);
  }

  StatusOr<CompactRepresentation> rep_or = Status::Internal("unset");
  // For a query string the log has never seen, the click-graph methods are
  // simply stuck; the multi-bipartite is not — seed the walk from the
  // queries that share the input's terms, weighted by cfiqf (the coverage
  // advantage of §III in action).
  std::vector<std::pair<StringId, double>> term_seeds;
  if (input == kInvalidStringId) {
    term_seeds = TermMatchSeeds(request.query);
    if (term_seeds.empty()) {
      return Status::NotFound("query has no term overlap with the log: " +
                              request.query);
    }
    std::vector<StringId> seeds;
    for (const auto& [q, w] : term_seeds) {
      (void)w;
      seeds.push_back(q);
    }
    for (StringId c : context_only) seeds.push_back(c);
    rep_or = builder_.BuildFromSeeds(seeds, options_.compact);
  } else {
    // §IV-A: compact representation around the input + context.
    rep_or = builder_.Build(input, context_only, options_.compact);
  }
  if (!rep_or.ok()) return rep_or.status();
  const CompactRepresentation& rep = *rep_or;

  // §IV-B: regularization framework for the relevance estimate F*.
  std::vector<double> f0;
  if (input != kInvalidStringId) {
    f0 = BuildF0(rep, input, request.timestamp, context_ids,
                 options_.regularization.decay_lambda);
  } else {
    f0.assign(rep.size(), 0.0);
    double max_w = term_seeds.front().second;
    for (const auto& [q, w] : term_seeds) {
      auto it = rep.local_index.find(q);
      if (it != rep.local_index.end() && max_w > 0.0) {
        f0[it->second] = w / max_w;
      }
    }
    for (const auto& [c, ts] : context_ids) {
      auto it = rep.local_index.find(c);
      if (it == rep.local_index.end()) continue;
      double dt = static_cast<double>(ts - request.timestamp);
      if (dt > 0.0) dt = 0.0;
      f0[it->second] = std::max(
          f0[it->second],
          std::exp(options_.regularization.decay_lambda * dt));
    }
  }
  auto f_or = SolveRegularization(rep, f0, options_.regularization);
  if (!f_or.ok()) return f_or.status();
  std::vector<double> f = std::move(f_or).value();

  // The input (when it is a log query) and its context are not candidates;
  // term-match seeds of an unseen input, by contrast, are perfectly good
  // suggestions.
  std::vector<bool> excluded(rep.size(), false);
  if (input != kInvalidStringId) {
    excluded[rep.local_index.at(input)] = true;
  }
  for (StringId c : context_only) {
    auto it = rep.local_index.find(c);
    if (it != rep.local_index.end()) excluded[it->second] = true;
  }

  // Candidate pool: top queries by F*.
  std::vector<std::pair<double, uint32_t>> by_relevance;
  for (uint32_t i = 0; i < rep.size(); ++i) {
    if (excluded[i]) continue;
    by_relevance.emplace_back(f[i], i);
  }
  size_t pool = std::min(options_.candidate_pool, by_relevance.size());
  std::partial_sort(by_relevance.begin(), by_relevance.begin() + pool,
                    by_relevance.end(), std::greater<>());
  by_relevance.resize(pool);

  DiversificationOutput out;
  out.relevance = f;
  out.compact_queries = rep.queries;
  if (by_relevance.empty()) return out;

  // First candidate: largest F* (Eq. 15).
  std::vector<uint32_t> selected = {by_relevance[0].second};
  std::vector<bool> taken(rep.size(), false);
  taken[selected[0]] = true;

  // §IV-C: remaining candidates by largest cross-bipartite hitting time to
  // the selected set, uniform 1/3 weight per bipartite (the paper's
  // no-prior-knowledge setting for N_k).
  std::vector<const CsrMatrix*> chains = {&rep.P(BipartiteKind::kUrl),
                                          &rep.P(BipartiteKind::kSession),
                                          &rep.P(BipartiteKind::kTerm)};
  std::vector<double> weights(options_.chain_weights.begin(),
                              options_.chain_weights.end());
  const size_t want = std::min(k, by_relevance.size());
  while (selected.size() < want) {
    std::vector<double> h = ChainHittingTime(chains, weights, selected,
                                             options_.hitting_iterations);
    double best = -1.0;
    uint32_t best_q = UINT32_MAX;
    for (const auto& [rel, q] : by_relevance) {
      (void)rel;
      if (taken[q]) continue;
      if (h[q] > best) {
        best = h[q];
        best_q = q;
      }
    }
    if (best_q == UINT32_MAX) break;
    selected.push_back(best_q);
    taken[best_q] = true;
  }

  // §IV-C: the final candidate list is "sorted with a descending relevance
  // to the input query" — order the selected set by F*.
  std::sort(selected.begin(), selected.end(),
            [&f](uint32_t a, uint32_t b) { return f[a] > f[b]; });
  out.candidates.reserve(selected.size());
  for (size_t rank = 0; rank < selected.size(); ++rank) {
    out.candidates.push_back(
        Suggestion{mb_->QueryString(rep.queries[selected[rank]]),
                   static_cast<double>(selected.size() - rank)});
  }
  return out;
}

StatusOr<std::vector<Suggestion>> PqsdaDiversifier::Suggest(
    const SuggestionRequest& request, size_t k) const {
  auto out = Diversify(request, k);
  if (!out.ok()) return out.status();
  return std::move(out->candidates);
}

}  // namespace pqsda
