#include "suggest/pqsda_diversifier.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <unordered_map>

#include "common/fault_injector.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"
#include "text/tokenizer.h"

namespace pqsda {

PqsdaDiversifier::PqsdaDiversifier(const MultiBipartite& mb,
                                   PqsdaDiversifierOptions options,
                                   const CompactWalkBackend* backend)
    : mb_(&mb), options_(options), builder_(mb, backend) {}

std::vector<bool> ExcludedCandidates(const CompactRepresentation& rep,
                                     StringId input,
                                     const std::vector<StringId>& context) {
  std::vector<bool> excluded(rep.size(), false);
  if (input != kInvalidStringId) {
    // Checked find, not at(): a compact-budget walk that failed to admit the
    // input simply has nothing to exclude.
    auto it = rep.local_index.find(input);
    if (it != rep.local_index.end()) excluded[it->second] = true;
  }
  for (StringId c : context) {
    auto it = rep.local_index.find(c);
    if (it != rep.local_index.end()) excluded[it->second] = true;
  }
  return excluded;
}

std::vector<std::pair<StringId, double>> PqsdaDiversifier::TermMatchSeeds(
    const std::string& query) const {
  const BipartiteGraph& terms = mb_->graph(BipartiteKind::kTerm);
  std::unordered_map<StringId, double> scores;
  for (const std::string& term : Tokenize(query)) {
    if (IsStopword(term)) continue;
    StringId t = mb_->terms().Lookup(term);
    if (t == kInvalidStringId) continue;
    auto idx = terms.object_to_query().RowIndices(t);
    auto val = terms.object_to_query().RowValues(t);
    for (size_t i = 0; i < idx.size(); ++i) {
      scores[idx[i]] += val[i];
    }
  }
  std::vector<std::pair<StringId, double>> out(scores.begin(), scores.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (out.size() > 8) out.resize(8);
  return out;
}

StatusOr<DiversificationOutput> PqsdaDiversifier::DiversifyWith(
    const SuggestionRequest& request, size_t k,
    const PqsdaDiversifierOptions& options, SuggestStats* stats) const {
  // Stage latencies always feed the registry (two clock reads per stage —
  // noise next to the ms-scale stages); the trace tree is only built when a
  // collector is installed (by the engine, or here when the caller asked
  // for stats outside any engine trace).
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Histogram& expansion_us =
      reg.GetHistogram("pqsda.suggest.expansion_us");
  static obs::Histogram& solve_us =
      reg.GetHistogram("pqsda.suggest.regularization_solve_us");
  static obs::Histogram& selection_us =
      reg.GetHistogram("pqsda.suggest.hitting_time_selection_us");
  static obs::Counter& compact_rounds =
      reg.GetCounter("pqsda.compact.rounds_total");
  static obs::Counter& compact_walk_steps =
      reg.GetCounter("pqsda.compact.walk_steps_total");
  static obs::Counter& compact_admitted =
      reg.GetCounter("pqsda.compact.queries_admitted_total");
  static obs::Counter& nonconverged_served =
      reg.GetCounter("pqsda.robust.nonconverged_served_total");

  const CancelToken* cancel = request.cancel;

  std::optional<obs::TraceCollector> own_trace;
  if (stats != nullptr && !obs::TraceActive()) own_trace.emplace("diversify");
  // Hands the finished trace to `stats` on every exit path (errors too).
  struct TraceHandoff {
    std::optional<obs::TraceCollector>& collector;
    SuggestStats* stats;
    ~TraceHandoff() {
      if (collector.has_value() && stats != nullptr) {
        stats->trace = collector->Take();
      }
    }
  } handoff{own_trace, stats};

  // §IV-A: compact representation around the input + context.
  StatusOr<CompactRepresentation> rep_or = Status::Internal("unset");
  std::vector<std::pair<StringId, int64_t>> context_ids;
  std::vector<StringId> context_only;
  std::vector<std::pair<StringId, double>> term_seeds;
  StringId input = kInvalidStringId;
  CompactBuildStats build_stats;
  {
    obs::TraceSpan span("expansion");
    obs::StageScope stage(obs::ProfileStage::kExpansion);
    obs::ScopedTimer timer(expansion_us);
    input = mb_->QueryId(request.query);
    for (const auto& [q, ts] : request.context) {
      StringId id = mb_->QueryId(q);
      if (id != kInvalidStringId) context_ids.emplace_back(id, ts);
    }
    for (const auto& [id, ts] : context_ids) {
      (void)ts;
      context_only.push_back(id);
    }

    // For a query string the log has never seen, the click-graph methods are
    // simply stuck; the multi-bipartite is not — seed the walk from the
    // queries that share the input's terms, weighted by cfiqf (the coverage
    // advantage of §III in action).
    if (input == kInvalidStringId) {
      term_seeds = TermMatchSeeds(request.query);
      if (term_seeds.empty()) {
        return Status::NotFound("query has no term overlap with the log: " +
                                request.query);
      }
      std::vector<StringId> seeds;
      for (const auto& [q, w] : term_seeds) {
        (void)w;
        seeds.push_back(q);
      }
      for (StringId c : context_only) seeds.push_back(c);
      rep_or = builder_.BuildFromSeeds(seeds, options.compact, &build_stats);
    } else {
      rep_or = builder_.Build(input, context_only, options.compact,
                              &build_stats);
    }
    compact_rounds.Increment(build_stats.rounds);
    compact_walk_steps.Increment(build_stats.walk_steps);
    compact_admitted.Increment(build_stats.queries_admitted);
    obs::StageProfiler::AddWork(obs::ProfileStage::kExpansion,
                                build_stats.walk_steps);
    if (rep_or.ok()) {
      span.Annotate("compact_size", static_cast<int64_t>(rep_or->size()));
      span.Annotate("rounds", static_cast<int64_t>(build_stats.rounds));
      span.Annotate("candidates_scored",
                    static_cast<int64_t>(build_stats.candidates_scored));
    }
  }
  if (!rep_or.ok()) return rep_or.status();
  const CompactRepresentation& rep = *rep_or;
  if (stats != nullptr) {
    stats->expansion = build_stats;
    stats->compact_size = rep.size();
  }

  // Stage boundary: a request whose budget died during expansion must not
  // start the solve (fault point first, so an armed clock jump lands before
  // this very poll).
  FaultInjector::Default().Hit(faults::kExpansionDone);
  if (cancel != nullptr) {
    Status interrupted = cancel->Check();
    if (!interrupted.ok()) return interrupted;
  }

  // Seed vector F^0 (Eq. 7), shared by the full solve and the walk-only
  // rung; rebuilt every request into a thread-lived buffer.
  auto build_seed = [&](std::vector<double>& f0) {
    if (input != kInvalidStringId) {
      BuildF0Into(rep, input, request.timestamp, context_ids,
                  options.regularization.decay_lambda, f0);
    } else {
      f0.assign(rep.size(), 0.0);
      double max_w = term_seeds.front().second;
      for (const auto& [q, w] : term_seeds) {
        auto it = rep.local_index.find(q);
        if (it != rep.local_index.end() && max_w > 0.0) {
          f0[it->second] = w / max_w;
        }
      }
      for (const auto& [c, ts] : context_ids) {
        auto it = rep.local_index.find(c);
        if (it == rep.local_index.end()) continue;
        double dt = static_cast<double>(ts - request.timestamp);
        if (dt > 0.0) dt = 0.0;
        f0[it->second] = std::max(
            f0[it->second],
            std::exp(options.regularization.decay_lambda * dt));
      }
    }
  };

  if (options.walk_only) {
    // Degradation rung 2: skip the Eq. 15 solve and Algorithm 1 entirely —
    // one mixing step of the cross-bipartite walk from F^0 scores the
    // compact queries, and the top-k by that score are the answer. One pass
    // over the seed rows' nonzeros; deterministic like the full pipeline.
    DiversificationOutput out;
    obs::TraceSpan span("walk_only_scatter");
    obs::StageScope stage(obs::ProfileStage::kSelection);
    obs::ScopedTimer timer(selection_us);
    static thread_local std::vector<double> f0;
    build_seed(f0);
    std::vector<double> f(rep.size(), 0.0);
    const CsrMatrix* chains[3] = {&rep.P(BipartiteKind::kUrl),
                                  &rep.P(BipartiteKind::kSession),
                                  &rep.P(BipartiteKind::kTerm)};
    size_t scored = 0;
    for (uint32_t i = 0; i < rep.size(); ++i) {
      if (f0[i] <= 0.0) continue;
      f[i] += f0[i];
      for (size_t x = 0; x < 3; ++x) {
        auto idx = chains[x]->RowIndices(i);
        auto val = chains[x]->RowValues(i);
        for (size_t e = 0; e < idx.size(); ++e) {
          f[idx[e]] += options.chain_weights[x] * val[e] * f0[i];
          ++scored;
        }
      }
    }
    std::vector<bool> excluded = ExcludedCandidates(rep, input, context_only);
    std::vector<std::pair<double, uint32_t>> by_score;
    for (uint32_t i = 0; i < rep.size(); ++i) {
      if (excluded[i] || f[i] <= 0.0) continue;
      by_score.emplace_back(f[i], i);
    }
    const size_t want = std::min(k, by_score.size());
    std::partial_sort(by_score.begin(), by_score.begin() + want,
                      by_score.end(), std::greater<>());
    by_score.resize(want);
    out.relevance = std::move(f);
    out.compact_queries = rep.queries;
    out.candidates.reserve(by_score.size());
    for (const auto& [score, i] : by_score) {
      out.candidates.push_back(
          Suggestion{mb_->QueryString(rep.queries[i]), score});
    }
    if (stats != nullptr) {
      stats->hitting_rounds = 0;
      stats->candidates_scored = scored;
      stats->suggestions_returned = out.candidates.size();
    }
    if (obs::ExplainRecord* er = obs::CurrentExplain()) {
      er->walk_only = true;
      er->candidates.clear();
      er->candidates.reserve(out.candidates.size());
      for (size_t rank = 0; rank < out.candidates.size(); ++rank) {
        obs::ExplainCandidate c;
        c.query = out.candidates[rank].query;
        c.final_rank = rank;
        c.score = out.candidates[rank].score;
        c.relevance = out.candidates[rank].score;  // the one-hop walk score
        er->candidates.push_back(std::move(c));
      }
    }
    obs::StageProfiler::AddWork(obs::ProfileStage::kSelection, scored);
    span.Annotate("candidates_scored", static_cast<int64_t>(scored));
    span.Annotate("selected", static_cast<int64_t>(out.candidates.size()));
    return out;
  }

  // §IV-B: regularization framework for the relevance estimate F*.
  std::vector<double> f;
  {
    obs::TraceSpan span("regularization_solve");
    obs::StageScope stage(obs::ProfileStage::kSolve);
    obs::ScopedTimer timer(solve_us);
    static thread_local std::vector<double> f0;
    build_seed(f0);
    SolverResult solve_result;
    // The solver scratch persists across requests served by this thread.
    static thread_local SolverWorkspace solver_workspace;
    // Local copy so the per-request token reaches the iteration loop.
    RegularizationOptions reg_options = options.regularization;
    reg_options.solver_options.cancel = cancel;
    auto f_or =
        SolveRegularization(rep, f0, reg_options, &solve_result,
                            &solver_workspace, &ThreadPool::Shared());
    if (stats != nullptr) stats->solve = solve_result;
    span.Annotate("iterations", static_cast<int64_t>(solve_result.iterations));
    span.Annotate("residual", solve_result.relative_residual);
    span.Annotate("converged", std::string(solve_result.converged ? "true"
                                                                  : "false"));
    if (!f_or.ok()) return f_or.status();
    if (!solve_result.converged) nonconverged_served.Increment();
    f = std::move(f_or).value();
  }

  // §IV-C: first candidate by largest F* (Eq. 15), the rest by largest
  // cross-bipartite hitting time to the already-selected set (Algorithm 1).
  DiversificationOutput out;
  {
    obs::TraceSpan span("hitting_time_selection");
    obs::StageScope stage(obs::ProfileStage::kSelection);
    obs::ScopedTimer timer(selection_us);

    // The input (when it is a log query) and its context are not candidates;
    // term-match seeds of an unseen input, by contrast, are perfectly good
    // suggestions.
    std::vector<bool> excluded = ExcludedCandidates(rep, input, context_only);

    // Candidate pool: top queries by F*.
    std::vector<std::pair<double, uint32_t>> by_relevance;
    for (uint32_t i = 0; i < rep.size(); ++i) {
      if (excluded[i]) continue;
      by_relevance.emplace_back(f[i], i);
    }
    size_t pool = std::min(options.candidate_pool, by_relevance.size());
    std::partial_sort(by_relevance.begin(), by_relevance.begin() + pool,
                      by_relevance.end(), std::greater<>());
    by_relevance.resize(pool);

    out.relevance = f;
    out.compact_queries = rep.queries;
    if (by_relevance.empty()) {
      // Legitimate empty answer (every compact query excluded). Stats and
      // annotations must reflect this run, not a previous one.
      if (stats != nullptr) {
        stats->hitting_rounds = 0;
        stats->candidates_scored = 0;
        stats->suggestions_returned = 0;
      }
      span.Annotate("rounds", static_cast<int64_t>(0));
      span.Annotate("candidates_scored", static_cast<int64_t>(0));
      span.Annotate("selected", static_cast<int64_t>(0));
      return out;
    }

    std::vector<uint32_t> selected = {by_relevance[0].second};
    std::vector<bool> taken(rep.size(), false);
    taken[selected[0]] = true;

    std::vector<const CsrMatrix*> chains = {&rep.P(BipartiteKind::kUrl),
                                            &rep.P(BipartiteKind::kSession),
                                            &rep.P(BipartiteKind::kTerm)};
    std::vector<double> weights(options.chain_weights.begin(),
                                options.chain_weights.end());
    // The K-1 selection rounds all sweep the same mixture M = sum_x w_x P^X
    // — merge it once, with per-row masses precomputed, so each sweep row
    // is a single SIMD sparse dot.
    MergedChain merged = BuildMergedChain(chains, weights);

    // Explain collection (sampled requests only): per selected candidate,
    // the round it won, its marginal hitting-time gain, and its rank under
    // each single-chain ordering at that round. The per-chain sweeps are the
    // explain surcharge — they run only when a record is installed, so the
    // unsampled request path pays one thread-local load here.
    obs::ExplainRecord* er = obs::CurrentExplain();
    struct SelMeta {
      size_t round = 0;
      double gain = 0.0;
      size_t chain_rank[obs::kExplainChainCount] = {SIZE_MAX, SIZE_MAX,
                                                    SIZE_MAX};
    };
    std::unordered_map<uint32_t, SelMeta> sel_meta;
    std::vector<MergedChain> single_chains;
    if (er != nullptr) {
      sel_meta.emplace(selected[0], SelMeta{});  // round 0: Eq. 15 argmax
      single_chains.reserve(chains.size());
      for (const CsrMatrix* chain : chains) {
        single_chains.push_back(
            BuildMergedChain({chain}, std::vector<double>{1.0}));
      }
    }
    size_t rounds = 0;
    size_t candidates_scored = 0;
    const size_t want = std::min(k, by_relevance.size());
    // The h/next/is_seed buffers persist across the K-1 rounds and across
    // requests served by this thread; the sweeps run on the shared pool
    // (inline when this thread is itself a pool worker, e.g. SuggestBatch).
    static thread_local HittingTimeWorkspace ht_workspace;
    while (selected.size() < want) {
      // Round boundary: poll before spending another full sweep, and again
      // after it — a sweep the token stopped mid-flight leaves a partial h
      // that must never pick a candidate.
      FaultInjector::Default().Hit(faults::kHittingRound);
      if (cancel != nullptr) {
        Status interrupted = cancel->Check();
        if (!interrupted.ok()) return interrupted;
      }
      MergedChainHittingTimeInto(merged, selected, options.hitting_iterations,
                                 &ThreadPool::Shared(), ht_workspace, cancel);
      if (cancel != nullptr) {
        Status interrupted = cancel->Check();
        if (!interrupted.ok()) return interrupted;
      }
      const std::vector<double>& h = ht_workspace.h;
      ++rounds;
      double best = -1.0;
      uint32_t best_q = UINT32_MAX;
      for (const auto& [rel, q] : by_relevance) {
        (void)rel;
        if (taken[q]) continue;
        ++candidates_scored;
        if (h[q] > best) {
          best = h[q];
          best_q = q;
        }
      }
      if (best_q == UINT32_MAX) break;
      if (er != nullptr) {
        SelMeta meta;
        meta.round = rounds;  // rounds is 1 on the first Algorithm 1 sweep
        meta.gain = best;
        // Rank of the winner under each single-chain ordering, computed
        // against the same already-selected seed set this round swept.
        static thread_local HittingTimeWorkspace chain_ws;
        for (size_t x = 0; x < single_chains.size(); ++x) {
          MergedChainHittingTimeInto(single_chains[x], selected,
                                     options.hitting_iterations,
                                     &ThreadPool::Shared(), chain_ws, cancel);
          const std::vector<double>& hx = chain_ws.h;
          size_t rank = 0;
          for (const auto& [rel2, q2] : by_relevance) {
            (void)rel2;
            if (taken[q2] || q2 == best_q) continue;
            if (hx[q2] > hx[best_q]) ++rank;
          }
          meta.chain_rank[x] = rank;
        }
        sel_meta[best_q] = meta;
      }
      selected.push_back(best_q);
      taken[best_q] = true;
    }
    if (stats != nullptr) {
      stats->hitting_rounds = rounds;
      stats->candidates_scored = candidates_scored;
    }
    obs::StageProfiler::AddWork(obs::ProfileStage::kSelection,
                                candidates_scored);
    span.Annotate("rounds", static_cast<int64_t>(rounds));
    span.Annotate("candidates_scored",
                  static_cast<int64_t>(candidates_scored));
    span.Annotate("selected", static_cast<int64_t>(selected.size()));

    // §IV-C: the final candidate list is "sorted with a descending relevance
    // to the input query" — order the selected set by F*.
    std::sort(selected.begin(), selected.end(),
              [&f](uint32_t a, uint32_t b) { return f[a] > f[b]; });
    out.candidates.reserve(selected.size());
    for (size_t rank = 0; rank < selected.size(); ++rank) {
      out.candidates.push_back(
          Suggestion{mb_->QueryString(rep.queries[selected[rank]]),
                     static_cast<double>(selected.size() - rank)});
    }
    if (er != nullptr) {
      er->candidates.clear();
      er->candidates.reserve(selected.size());
      for (size_t rank = 0; rank < selected.size(); ++rank) {
        const uint32_t q = selected[rank];
        obs::ExplainCandidate c;
        c.query = out.candidates[rank].query;
        c.final_rank = rank;  // diversification order; the engine remaps
                              // after the §V-B rerank
        c.score = out.candidates[rank].score;
        c.relevance = f[q];
        auto it = sel_meta.find(q);
        if (it != sel_meta.end()) {
          c.selection_round = it->second.round;
          c.hitting_time = it->second.gain;
          for (size_t x = 0; x < obs::kExplainChainCount; ++x) {
            c.chain_rank[x] = it->second.chain_rank[x];
          }
        }
        er->candidates.push_back(std::move(c));
      }
    }
  }
  if (stats != nullptr) stats->suggestions_returned = out.candidates.size();
  return out;
}

StatusOr<DiversificationOutput> PqsdaDiversifier::Diversify(
    const SuggestionRequest& request, size_t k, SuggestStats* stats) const {
  return DiversifyWith(request, k, options_, stats);
}

StatusOr<std::vector<Suggestion>> PqsdaDiversifier::Suggest(
    const SuggestionRequest& request, size_t k) const {
  auto out = Diversify(request, k);
  if (!out.ok()) return out.status();
  return std::move(out->candidates);
}

}  // namespace pqsda
