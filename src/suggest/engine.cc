#include "suggest/engine.h"

#include <algorithm>

namespace pqsda {

std::vector<Suggestion> FinalizeSuggestions(
    const SuggestionRequest& request, std::vector<Suggestion> candidates,
    size_t k) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Suggestion& a, const Suggestion& b) {
                     return a.score > b.score;
                   });
  std::vector<Suggestion> out;
  out.reserve(std::min(k, candidates.size()));
  for (auto& c : candidates) {
    if (out.size() >= k) break;
    if (c.query == request.query) continue;
    bool in_context = false;
    for (const auto& [q, ts] : request.context) {
      (void)ts;
      if (q == c.query) {
        in_context = true;
        break;
      }
    }
    if (in_context) continue;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace pqsda
