#ifndef PQSDA_SUGGEST_SUGGEST_STATS_H_
#define PQSDA_SUGGEST_SUGGEST_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/compact_builder.h"
#include "obs/trace.h"
#include "solver/linear_solvers.h"

namespace pqsda {

/// Per-request pipeline breakdown, filled when a caller opts in by passing a
/// SuggestStats pointer to PqsdaEngine::Suggest or PqsdaDiversifier::
/// Diversify. Collection costs one trace tree per request; with no stats
/// pointer the instrumentation reduces to thread-local null checks and a
/// few relaxed atomics.
struct SuggestStats {
  /// Trace tree rooted at the whole call. The pipeline stages appear as
  /// descendants named "expansion", "regularization_solve",
  /// "hitting_time_selection" and (when personalization ran)
  /// "personalization".
  obs::SpanNode trace;

  /// §IV-A expansion work (queries expanded, walk steps).
  CompactBuildStats expansion;
  /// Number of queries in the compact representation the stages ran on.
  size_t compact_size = 0;

  /// Eq. 15 solver outcome (iterations, residual at exit, converged).
  SolverResult solve;

  /// Algorithm 1 selection: rounds run and candidates scored across rounds.
  size_t hitting_rounds = 0;
  size_t candidates_scored = 0;

  /// Whether the UPM rerank (§V-B) ran for this request.
  bool personalized = false;
  size_t suggestions_returned = 0;

  /// Degradation rung the request was served at (DegradationRung numeric
  /// value: 0 full PQS-DA, 1 truncated solve, 2 walk-only, 3 cache-only).
  size_t degradation_rung = 0;
  /// True when admission control shed the request before any pipeline work.
  bool shed = false;
  /// True when the NotFound was answered by the negative-result cache — the
  /// engine never touched the index for this request.
  bool negative_cache_hit = false;

  /// Per-shard serving rung of a scatter-gather request (one slot per
  /// shard, ShardedEngine only; empty on the unsharded engine). kShardFull:
  /// the shard served every row asked of it. kShardDegraded: its admission
  /// gate refused, so only its hot replicated rows were served.
  /// kShardDeadline: the request's remaining deadline budget had fallen
  /// below ShardedEngineOptions::fetch_budget_floor_us (or the deadline had
  /// passed) when the shard was first touched, so the fetch was refused and
  /// cold rows dropped from then on; tests can also force it per shard via
  /// faults::kShardDeadlineShard. kShardUntouched: the request never needed
  /// the shard.
  static constexpr uint8_t kShardFull = 0;
  static constexpr uint8_t kShardDegraded = 1;
  static constexpr uint8_t kShardDeadline = 2;
  static constexpr uint8_t kShardUntouched = 255;
  std::vector<uint8_t> shard_rungs;
  /// Shards the request actually read rows from (or tried to).
  size_t shards_touched = 0;
  /// True when any touched shard served degraded — the merged pool is
  /// missing that shard's cold contributions. A partial merge is served
  /// (degrading one shard must not fail the request) but never silently:
  /// this flag, the per-shard rungs above and the
  /// pqsda.sharded.partial_merges_total counter all record it, and the
  /// result is never cached.
  bool partial_merge = false;

  int64_t total_us() const { return trace.duration_us(); }

  /// Multi-line human-readable breakdown (trace tree + counters), as
  /// printed by `suggest_cli --stats`.
  std::string Render() const;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_SUGGEST_STATS_H_
