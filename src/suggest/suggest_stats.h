#ifndef PQSDA_SUGGEST_SUGGEST_STATS_H_
#define PQSDA_SUGGEST_SUGGEST_STATS_H_

#include <cstdint>
#include <string>

#include "graph/compact_builder.h"
#include "obs/trace.h"
#include "solver/linear_solvers.h"

namespace pqsda {

/// Per-request pipeline breakdown, filled when a caller opts in by passing a
/// SuggestStats pointer to PqsdaEngine::Suggest or PqsdaDiversifier::
/// Diversify. Collection costs one trace tree per request; with no stats
/// pointer the instrumentation reduces to thread-local null checks and a
/// few relaxed atomics.
struct SuggestStats {
  /// Trace tree rooted at the whole call. The pipeline stages appear as
  /// descendants named "expansion", "regularization_solve",
  /// "hitting_time_selection" and (when personalization ran)
  /// "personalization".
  obs::SpanNode trace;

  /// §IV-A expansion work (queries expanded, walk steps).
  CompactBuildStats expansion;
  /// Number of queries in the compact representation the stages ran on.
  size_t compact_size = 0;

  /// Eq. 15 solver outcome (iterations, residual at exit, converged).
  SolverResult solve;

  /// Algorithm 1 selection: rounds run and candidates scored across rounds.
  size_t hitting_rounds = 0;
  size_t candidates_scored = 0;

  /// Whether the UPM rerank (§V-B) ran for this request.
  bool personalized = false;
  size_t suggestions_returned = 0;

  /// Degradation rung the request was served at (DegradationRung numeric
  /// value: 0 full PQS-DA, 1 truncated solve, 2 walk-only, 3 cache-only).
  size_t degradation_rung = 0;
  /// True when admission control shed the request before any pipeline work.
  bool shed = false;

  int64_t total_us() const { return trace.duration_us(); }

  /// Multi-line human-readable breakdown (trace tree + counters), as
  /// printed by `suggest_cli --stats`.
  std::string Render() const;
};

}  // namespace pqsda

#endif  // PQSDA_SUGGEST_SUGGEST_STATS_H_
