#include "text/tokenizer.h"

#include <array>
#include <cctype>

namespace pqsda {

namespace {
// Small closed-class list; enough for query-log text which is already terse.
constexpr std::array<std::string_view, 28> kStopwords = {
    "a",   "an",  "and", "are", "as",   "at",   "be",  "by",  "for", "from",
    "how", "in",  "is",  "it",  "of",   "on",   "or",  "the", "this", "to",
    "was", "what", "when", "where", "which", "who", "will", "with"};
}  // namespace

std::string ToLowerAscii(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (std::isalnum(uc)) {
      current.push_back(static_cast<char>(std::tolower(uc)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool IsStopword(std::string_view term) {
  for (std::string_view s : kStopwords) {
    if (s == term) return true;
  }
  return false;
}

}  // namespace pqsda
