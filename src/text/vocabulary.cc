#include "text/vocabulary.h"

namespace pqsda {

TermId Vocabulary::Add(std::string_view term) {
  TermId id = interner_.Intern(term);
  if (id >= query_freq_.size()) query_freq_.resize(id + 1, 0);
  return id;
}

void Vocabulary::CountQueryOccurrence(TermId id) {
  if (id >= query_freq_.size()) query_freq_.resize(id + 1, 0);
  ++query_freq_[id];
}

}  // namespace pqsda
