#ifndef PQSDA_TEXT_TOKENIZER_H_
#define PQSDA_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace pqsda {

/// Splits a raw query string into normalized terms. Normalization lowercases
/// ASCII, treats any non-alphanumeric character as a separator and drops
/// empty tokens. This mirrors the minimal preprocessing the paper applies
/// when building the query-term bipartite (§III).
std::vector<std::string> Tokenize(std::string_view text);

/// Lowercases ASCII characters in place.
std::string ToLowerAscii(std::string_view text);

/// True if the term is in the built-in English stopword list. Stopwords are
/// dropped from the query-term bipartite because they carry no facet signal
/// (their iqf^T is near zero anyway; dropping them also shrinks the graph).
bool IsStopword(std::string_view term);

}  // namespace pqsda

#endif  // PQSDA_TEXT_TOKENIZER_H_
