#ifndef PQSDA_TEXT_VOCABULARY_H_
#define PQSDA_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"

namespace pqsda {

/// Dense term id.
using TermId = StringId;

/// A term vocabulary with document frequencies. Wraps a StringInterner and
/// tracks how many distinct queries each term occurs in; this count feeds
/// iqf^T (Eq. 3).
class Vocabulary {
 public:
  Vocabulary() = default;

  Vocabulary(const Vocabulary&) = delete;
  Vocabulary& operator=(const Vocabulary&) = delete;
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Interns a term, returning its id.
  TermId Add(std::string_view term);

  /// Looks up a term; kInvalidStringId if absent.
  TermId Lookup(std::string_view term) const { return interner_.Lookup(term); }

  const std::string& Term(TermId id) const { return interner_.Get(id); }

  /// Increments the query-frequency counter of a term.
  void CountQueryOccurrence(TermId id);

  /// Number of distinct queries the term occurred in.
  uint32_t QueryFrequency(TermId id) const { return query_freq_[id]; }

  size_t size() const { return interner_.size(); }

 private:
  StringInterner interner_;
  std::vector<uint32_t> query_freq_;
};

}  // namespace pqsda

#endif  // PQSDA_TEXT_VOCABULARY_H_
