#ifndef PQSDA_SOLVER_LINEAR_SOLVERS_H_
#define PQSDA_SOLVER_LINEAR_SOLVERS_H_

#include <cstddef>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/csr_matrix.h"

namespace pqsda {

/// Iteration controls shared by the solvers.
struct SolverOptions {
  size_t max_iterations = 500;
  /// Convergence: ||Ax - b||_2 / max(||b||_2, eps) below this.
  double tolerance = 1e-9;
  /// Cooperative interruption, polled at the top of every
  /// `cancel_check_every`th iteration: a cancelled token or an elapsed
  /// deadline stops the solve within one check granularity and surfaces as
  /// SolverResult::interrupt. Null disables the checks.
  const CancelToken* cancel = nullptr;
  size_t cancel_check_every = 1;
};

/// Reusable scratch buffers for the iterative solvers. A workspace kept
/// alive across calls (e.g. thread_local on a serving thread) makes repeated
/// solves allocation-free: the `next` iterate and the residual product are
/// resized once and reused request after request.
struct SolverWorkspace {
  std::vector<double> next;
  std::vector<double> ax;
};

/// Outcome of an iterative solve.
struct SolverResult {
  size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  /// OK unless the solve was stopped by SolverOptions::cancel
  /// (kDeadlineExceeded / kCancelled); the iterate is partial then and must
  /// not be served.
  Status interrupt;
};

/// Relative residual ||Ax - b|| / ||b||.
double RelativeResidual(const CsrMatrix& a, const std::vector<double>& x,
                        const std::vector<double>& b);

/// Jacobi iteration on A x = b. Converges for strictly diagonally dominant
/// A — which Eq. 15's matrix is by construction. `x` is the initial guess on
/// entry and the solution on exit.
SolverResult JacobiSolve(const CsrMatrix& a, const std::vector<double>& b,
                         std::vector<double>& x, const SolverOptions& options);

/// Gauss–Seidel iteration; same requirements as Jacobi, usually ~2x faster.
SolverResult GaussSeidelSolve(const CsrMatrix& a, const std::vector<double>& b,
                              std::vector<double>& x,
                              const SolverOptions& options);

/// Conjugate gradients; requires symmetric positive-definite A.
SolverResult ConjugateGradientSolve(const CsrMatrix& a,
                                    const std::vector<double>& b,
                                    std::vector<double>& x,
                                    const SolverOptions& options);

/// Multi-threaded Jacobi: each sweep's rows are computed from the previous
/// iterate, so rows partition perfectly across threads (this is the
/// "parallelized solver" route §IV-B sketches for scaling Eq. 15). Sweeps
/// run on a persistent ThreadPool (`pool`, defaulting to
/// ThreadPool::Shared()) instead of spawning threads per iteration;
/// `threads` caps how many chunks a sweep is split into (0 = pool size) and
/// never changes the result — Jacobi is deterministic under any row
/// partition. `workspace`, when non-null, supplies the scratch buffers.
SolverResult JacobiSolveParallel(const CsrMatrix& a,
                                 const std::vector<double>& b,
                                 std::vector<double>& x,
                                 const SolverOptions& options,
                                 size_t threads = 0,
                                 ThreadPool* pool = nullptr,
                                 SolverWorkspace* workspace = nullptr);

}  // namespace pqsda

#endif  // PQSDA_SOLVER_LINEAR_SOLVERS_H_
