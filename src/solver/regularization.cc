#include "solver/regularization.h"

#include <cmath>

#include "obs/metrics.h"
#include "solver/eq15_operator.h"

namespace pqsda {

std::vector<double> BuildF0(
    const CompactRepresentation& rep, StringId input_query,
    int64_t input_timestamp,
    const std::vector<std::pair<StringId, int64_t>>& context,
    double decay_lambda) {
  std::vector<double> f0;
  BuildF0Into(rep, input_query, input_timestamp, context, decay_lambda, f0);
  return f0;
}

void BuildF0Into(const CompactRepresentation& rep, StringId input_query,
                 int64_t input_timestamp,
                 const std::vector<std::pair<StringId, int64_t>>& context,
                 double decay_lambda, std::vector<double>& f0) {
  f0.assign(rep.size(), 0.0);
  auto it = rep.local_index.find(input_query);
  if (it != rep.local_index.end()) f0[it->second] = 1.0;
  for (const auto& [q, ts] : context) {
    auto cit = rep.local_index.find(q);
    if (cit == rep.local_index.end()) continue;
    // Eq. 7: exp(lambda * (t_q' - t_q)) with t_q' <= t_q, i.e. exponential
    // decay in the elapsed time.
    double dt = static_cast<double>(ts - input_timestamp);
    if (dt > 0.0) dt = 0.0;
    f0[cit->second] = std::max(f0[cit->second],
                               std::exp(decay_lambda * dt));
  }
}

CsrMatrix AssembleRegularizationSystem(const CompactRepresentation& rep,
                                       const std::array<double, 3>& alpha) {
  const size_t n = rep.size();
  double alpha_sum = alpha[0] + alpha[1] + alpha[2];
  std::vector<Triplet> triplets;
  for (uint32_t i = 0; i < n; ++i) {
    triplets.push_back(Triplet{i, i, 1.0 + alpha_sum});
  }
  for (size_t x = 0; x < 3; ++x) {
    const CsrMatrix& s = rep.sym_norm[x];
    for (uint32_t i = 0; i < n; ++i) {
      auto idx = s.RowIndices(i);
      auto val = s.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        triplets.push_back(Triplet{i, idx[k], -alpha[x] * val[k]});
      }
    }
  }
  return CsrMatrix::FromTriplets(n, n, std::move(triplets));
}

StatusOr<std::vector<double>> SolveRegularization(
    const CompactRepresentation& rep, const std::vector<double>& f0,
    const RegularizationOptions& options, SolverResult* result_out,
    SolverWorkspace* workspace, ThreadPool* pool) {
  if (f0.size() != rep.size()) {
    return Status::InvalidArgument("f0 size does not match representation");
  }
  // Registry handles are resolved once; recording below is lock-free.
  static obs::Counter& solves =
      obs::MetricsRegistry::Default().GetCounter("pqsda.solver.solves_total");
  static obs::Counter& iterations =
      obs::MetricsRegistry::Default().GetCounter(
          "pqsda.solver.iterations_total");
  static obs::Counter& nonconverged =
      obs::MetricsRegistry::Default().GetCounter(
          "pqsda.solver.nonconverged_total");
  static obs::Gauge& last_residual =
      obs::MetricsRegistry::Default().GetGauge("pqsda.solver.last_residual");

  // The packed split-diagonal operator replaces the triplet-assembled CSR
  // system: built once per solve by merging the three sorted S^X rows, it
  // feeds the SIMD row sweeps without the per-iteration in-row diagonal
  // search the generic solvers pay.
  Eq15Operator system = BuildEq15Operator(rep, options.alpha);
  std::vector<double> f = f0;  // warm start from the seed
  SolverResult result;
  switch (options.solver) {
    case SolverKind::kJacobi:
      if (pool != nullptr) {
        result = JacobiSolveParallel(system, f0, f, options.solver_options,
                                     /*threads=*/0, pool, workspace);
      } else {
        result = JacobiSolve(system, f0, f, options.solver_options);
      }
      break;
    case SolverKind::kGaussSeidel:
      result = GaussSeidelSolve(system, f0, f, options.solver_options);
      break;
    case SolverKind::kConjugateGradient:
      result = ConjugateGradientSolve(system, f0, f, options.solver_options);
      break;
  }
  solves.Increment();
  iterations.Increment(result.iterations);
  last_residual.Set(result.relative_residual);
  if (result_out != nullptr) *result_out = result;
  // A cooperative interruption outranks everything: the iterate stopped
  // mid-sweep and must not be served, converged-looking or not.
  if (!result.interrupt.ok()) return result.interrupt;
  if (!result.converged) {
    nonconverged.Increment();
    if (!options.accept_nonconverged) {
      return Status::NotConverged(
          "regularization solver: residual " +
          std::to_string(result.relative_residual) + " after " +
          std::to_string(result.iterations) + " iterations");
    }
  }
  return f;
}

}  // namespace pqsda
