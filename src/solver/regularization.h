#ifndef PQSDA_SOLVER_REGULARIZATION_H_
#define PQSDA_SOLVER_REGULARIZATION_H_

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/compact_builder.h"
#include "solver/linear_solvers.h"

namespace pqsda {

/// Which iterative solver drives Eq. 15.
enum class SolverKind { kJacobi, kGaussSeidel, kConjugateGradient };

/// Options for the §IV-B regularization framework.
struct RegularizationOptions {
  /// Lagrange multipliers alpha^X for the three smoothness constraints
  /// (U, S, T), "empirically tuned" per §IV-B: click evidence is the most
  /// precise relation, sessions next, terms the noisiest.
  std::array<double, 3> alpha = {0.6, 0.45, 0.25};
  /// Decay rate of the backward decay function (Eq. 7), per second.
  /// Context queries minutes old keep most of their weight; hours-old ones
  /// fade.
  double decay_lambda = 1.0 / 600.0;
  SolverKind solver = SolverKind::kGaussSeidel;
  SolverOptions solver_options;
  /// When true, a solve that exhausts max_iterations without reaching
  /// tolerance returns its final iterate instead of NotConverged (the
  /// degradation ladder's truncated rung runs this way). The outcome stays
  /// loud: SolverResult.converged=false reaches the caller's SuggestStats
  /// and pqsda.solver.nonconverged_total still increments. Interruption
  /// (deadline/cancel) is never accepted — the iterate is partial then.
  bool accept_nonconverged = false;
};

/// Builds the seed vector F^0 (Eq. 7): entry 1 for the input query, a
/// backward-decayed value for each context query, 0 elsewhere. Context
/// queries absent from the compact representation are skipped.
std::vector<double> BuildF0(
    const CompactRepresentation& rep, StringId input_query,
    int64_t input_timestamp,
    const std::vector<std::pair<StringId, int64_t>>& context,
    double decay_lambda);

/// BuildF0 into a caller-owned buffer (resized to rep.size()); a long-lived
/// buffer makes the per-request seed construction allocation-free.
void BuildF0Into(const CompactRepresentation& rep, StringId input_query,
                 int64_t input_timestamp,
                 const std::vector<std::pair<StringId, int64_t>>& context,
                 double decay_lambda, std::vector<double>& f0);

/// Assembles the Eq. 15 coefficient matrix
/// (1 + sum_X alpha^X) I - sum_X alpha^X S^X over the compact
/// representation. The result is strictly diagonally dominant (S^X row sums
/// are <= 1), so the classic iterative solvers converge. This is the
/// reference (triplet-based) assembly kept for tests and as the oracle of
/// the kernel_equivalence suite; SolveRegularization itself runs on the
/// packed split-diagonal BuildEq15Operator form (solver/eq15_operator.h).
CsrMatrix AssembleRegularizationSystem(const CompactRepresentation& rep,
                                       const std::array<double, 3>& alpha);

/// Solves Eq. 15 for F* given F^0. Returns the relevance estimate per local
/// query, or NotConverged if the solver failed to reach tolerance.
///
/// `result`, when non-null, receives the solver outcome (iterations,
/// relative residual at exit, convergence flag) on both the success and the
/// NotConverged paths — the per-request stats and the metrics registry
/// report it instead of dropping it on the floor. Every call increments
/// `pqsda.solver.solves_total` / `pqsda.solver.iterations_total` in the
/// default registry; a solve that exhausts max_iterations additionally
/// increments the warning counter `pqsda.solver.nonconverged_total`.
///
/// `workspace` and `pool` feed the serving layer: a long-lived workspace
/// makes repeated solves allocation-free, and a non-null pool runs the
/// kJacobi sweeps in parallel (the solution is deterministic either way;
/// Gauss–Seidel and CG have sequential dependencies and ignore the pool).
StatusOr<std::vector<double>> SolveRegularization(
    const CompactRepresentation& rep, const std::vector<double>& f0,
    const RegularizationOptions& options, SolverResult* result = nullptr,
    SolverWorkspace* workspace = nullptr, ThreadPool* pool = nullptr);

}  // namespace pqsda

#endif  // PQSDA_SOLVER_REGULARIZATION_H_
