#ifndef PQSDA_SOLVER_SOLVER_HOOKS_H_
#define PQSDA_SOLVER_SOLVER_HOOKS_H_

#include <algorithm>
#include <vector>

#include "common/fault_injector.h"
#include "obs/stage_profiler.h"
#include "solver/linear_solvers.h"

namespace pqsda::solver_detail {

/// Attributes the solve's iteration count as solver-stage work on whatever
/// request is being profiled on this thread (no-op outside one). RAII so
/// every exit path — convergence, iteration cap, cancellation — reports.
struct SolveWorkAttribution {
  const SolverResult& result;
  ~SolveWorkAttribution() {
    obs::StageProfiler::AddWork(obs::ProfileStage::kSolve, result.iterations);
  }
};

/// Top-of-iteration cooperative check shared by every solver loop: fires the
/// fault-injection point first (so an armed clock jump is visible to this
/// very check), then polls the token. Returns true when the solve must stop,
/// with the interruption recorded in `result`.
inline bool SolveInterrupted(const SolverOptions& options, size_t iteration,
                             SolverResult& result) {
  FaultInjector::Default().Hit(faults::kSolverIteration);
  if (options.cancel == nullptr) return false;
  const size_t every = std::max<size_t>(options.cancel_check_every, 1);
  if (iteration % every != 0) return false;
  Status status = options.cancel->Check();
  if (status.ok()) return false;
  result.interrupt = std::move(status);
  return true;
}

/// The b = 0 edge of every iterative solver: the exact solution of A x = 0
/// (A nonsingular) is the zero vector, but the convergence check divides by
/// max(||b||, eps) and so can never see a residual below tolerance — the
/// solve used to burn max_iterations and report failure. Detect the exact
/// all-zero right-hand side up front and return the converged zero iterate.
inline bool SolveTrivialZeroRhs(const std::vector<double>& b,
                                std::vector<double>& x,
                                SolverResult& result) {
  for (double v : b) {
    if (v != 0.0) return false;
  }
  x.assign(b.size(), 0.0);
  result.iterations = 0;
  result.relative_residual = 0.0;
  result.converged = true;
  return true;
}

}  // namespace pqsda::solver_detail

#endif  // PQSDA_SOLVER_SOLVER_HOOKS_H_
