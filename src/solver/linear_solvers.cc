#include "solver/linear_solvers.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"
#include "solver/solver_hooks.h"

namespace pqsda {

namespace {

using solver_detail::SolveInterrupted;
using solver_detail::SolveTrivialZeroRhs;
using solver_detail::SolveWorkAttribution;

// RelativeResidual with a caller-owned product buffer (allocation-free when
// the buffer is already sized).
double RelativeResidualInto(const CsrMatrix& a, const std::vector<double>& x,
                            const std::vector<double>& b,
                            std::vector<double>& ax) {
  a.MatVec(x, ax);
  double num = 0.0;
  for (size_t i = 0; i < b.size(); ++i) {
    double d = ax[i] - b[i];
    num += d * d;
  }
  double den = Norm2(b);
  return std::sqrt(num) / std::max(den, 1e-300);
}

}  // namespace

double RelativeResidual(const CsrMatrix& a, const std::vector<double>& x,
                        const std::vector<double>& b) {
  std::vector<double> ax;
  return RelativeResidualInto(a, x, b, ax);
}

SolverResult JacobiSolve(const CsrMatrix& a, const std::vector<double>& b,
                         std::vector<double>& x,
                         const SolverOptions& options) {
  assert(a.rows() == a.cols() && b.size() == a.rows());
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  std::vector<double> next(n, 0.0);
  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  for (size_t it = 0; it < options.max_iterations; ++it) {
    if (SolveInterrupted(options, it, result)) return result;
    for (size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      double off = 0.0;
      auto idx = a.RowIndices(i);
      auto val = a.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        if (idx[k] == i) {
          diag = val[k];
        } else {
          off += val[k] * x[idx[k]];
        }
      }
      next[i] = diag != 0.0 ? (b[i] - off) / diag : 0.0;
    }
    x.swap(next);
    result.iterations = it + 1;
    result.relative_residual = RelativeResidual(a, x, b);
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

SolverResult GaussSeidelSolve(const CsrMatrix& a, const std::vector<double>& b,
                              std::vector<double>& x,
                              const SolverOptions& options) {
  assert(a.rows() == a.cols() && b.size() == a.rows());
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  for (size_t it = 0; it < options.max_iterations; ++it) {
    if (SolveInterrupted(options, it, result)) return result;
    for (size_t i = 0; i < n; ++i) {
      double diag = 0.0;
      double off = 0.0;
      auto idx = a.RowIndices(i);
      auto val = a.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        if (idx[k] == i) {
          diag = val[k];
        } else {
          off += val[k] * x[idx[k]];
        }
      }
      if (diag != 0.0) x[i] = (b[i] - off) / diag;
    }
    result.iterations = it + 1;
    result.relative_residual = RelativeResidual(a, x, b);
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

SolverResult JacobiSolveParallel(const CsrMatrix& a,
                                 const std::vector<double>& b,
                                 std::vector<double>& x,
                                 const SolverOptions& options,
                                 size_t threads, ThreadPool* pool,
                                 SolverWorkspace* workspace) {
  assert(a.rows() == a.cols() && b.size() == a.rows());
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  if (pool == nullptr) pool = &ThreadPool::Shared();
  threads = std::min(threads == 0 ? pool->size() + 1 : threads,
                     std::max<size_t>(n, 1));

  SolverWorkspace local;
  SolverWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.next.assign(n, 0.0);

  auto sweep_rows = [&a, &b, &x, &ws](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      double diag = 0.0;
      double off = 0.0;
      auto idx = a.RowIndices(i);
      auto val = a.RowValues(i);
      for (size_t k = 0; k < idx.size(); ++k) {
        if (idx[k] == i) {
          diag = val[k];
        } else {
          off += val[k] * x[idx[k]];
        }
      }
      ws.next[i] = diag != 0.0 ? (b[i] - off) / diag : 0.0;
    }
  };

  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  const size_t grain = (n + threads - 1) / threads;
  for (size_t it = 0; it < options.max_iterations; ++it) {
    // Only the issuing thread polls; workers run one full sweep at most
    // past an interruption, which is the advertised granularity.
    if (SolveInterrupted(options, it, result)) return result;
    pool->ParallelFor(0, n, grain, sweep_rows, threads);
    x.swap(ws.next);
    result.iterations = it + 1;
    result.relative_residual = RelativeResidualInto(a, x, b, ws.ax);
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

SolverResult ConjugateGradientSolve(const CsrMatrix& a,
                                    const std::vector<double>& b,
                                    std::vector<double>& x,
                                    const SolverOptions& options) {
  assert(a.rows() == a.cols() && b.size() == a.rows());
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  std::vector<double> r(n), p(n), ap(n);
  a.MatVec(x, ap);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  p = r;
  double rs_old = 0.0;
  for (size_t i = 0; i < n; ++i) rs_old += r[i] * r[i];
  const double b_norm = std::max(Norm2(b), 1e-300);

  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  for (size_t it = 0; it < options.max_iterations; ++it) {
    if (SolveInterrupted(options, it, result)) return result;
    result.iterations = it + 1;
    if (std::sqrt(rs_old) / b_norm < options.tolerance) {
      result.converged = true;
      break;
    }
    a.MatVec(p, ap);
    double p_ap = 0.0;
    for (size_t i = 0; i < n; ++i) p_ap += p[i] * ap[i];
    if (p_ap == 0.0) break;
    double alpha = rs_old / p_ap;
    for (size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    double rs_new = 0.0;
    for (size_t i = 0; i < n; ++i) rs_new += r[i] * r[i];
    double beta = rs_new / rs_old;
    for (size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  result.relative_residual = RelativeResidual(a, x, b);
  if (result.relative_residual < options.tolerance) result.converged = true;
  return result;
}

}  // namespace pqsda
