#include "solver/eq15_operator.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <span>

#include "common/math_util.h"
#include "common/simd.h"
#include "solver/solver_hooks.h"

namespace pqsda {

namespace {

using solver_detail::SolveInterrupted;
using solver_detail::SolveTrivialZeroRhs;
using solver_detail::SolveWorkAttribution;

double RelativeResidualInto(const Eq15Operator& op,
                            const std::vector<double>& x,
                            const std::vector<double>& b,
                            std::vector<double>& ax) {
  Eq15MatVec(op, x, ax);
  double num = 0.0;
  for (size_t i = 0; i < b.size(); ++i) {
    double d = ax[i] - b[i];
    num += d * d;
  }
  double den = Norm2(b);
  return std::sqrt(num) / std::max(den, 1e-300);
}

}  // namespace

Eq15Operator BuildEq15Operator(const CompactRepresentation& rep,
                               const std::array<double, 3>& alpha) {
  const size_t n = rep.size();
  Eq15Operator op;
  op.n = n;
  const double alpha_sum = alpha[0] + alpha[1] + alpha[2];
  op.diag.assign(n, 1.0 + alpha_sum);
  op.off.rows = static_cast<uint32_t>(n);
  op.off.cols = static_cast<uint32_t>(n);
  op.off.row_ptr.assign(n + 1, 0);
  size_t cap = 0;
  for (size_t x = 0; x < 3; ++x) cap += rep.sym_norm[x].nnz();
  op.off.col.reserve(cap);
  op.off.val.reserve(cap);

  // Three-way sorted merge of the S^X rows: each output column accumulates
  // its -alpha[x] * S^X(i, j) contributions in bipartite order (U, S, T);
  // diagonal hits fold into the dense diag array instead of the CSR part.
  for (uint32_t i = 0; i < n; ++i) {
    std::span<const uint32_t> idx[3];
    std::span<const double> val[3];
    size_t p[3] = {0, 0, 0};
    for (size_t x = 0; x < 3; ++x) {
      idx[x] = rep.sym_norm[x].RowIndices(i);
      val[x] = rep.sym_norm[x].RowValues(i);
    }
    for (;;) {
      uint32_t c = UINT32_MAX;
      for (size_t x = 0; x < 3; ++x) {
        if (p[x] < idx[x].size() && idx[x][p[x]] < c) c = idx[x][p[x]];
      }
      if (c == UINT32_MAX) break;
      double acc = 0.0;
      for (size_t x = 0; x < 3; ++x) {
        if (p[x] < idx[x].size() && idx[x][p[x]] == c) {
          acc -= alpha[x] * val[x][p[x]];
          ++p[x];
        }
      }
      if (c == i) {
        op.diag[i] += acc;
      } else if (acc != 0.0) {
        op.off.col.push_back(c);
        op.off.val.push_back(acc);
      }
    }
    op.off.row_ptr[i + 1] = static_cast<uint32_t>(op.off.col.size());
  }
  op.inv_diag.resize(n);
  for (size_t i = 0; i < n; ++i) {
    op.inv_diag[i] = op.diag[i] != 0.0 ? 1.0 / op.diag[i] : 0.0;
  }
  return op;
}

void Eq15MatVec(const Eq15Operator& op, const std::vector<double>& x,
                std::vector<double>& y) {
  assert(x.size() == op.n);
  y.assign(op.n, 0.0);
  const auto dot = simd::ActiveSparseDot();
  const double* xp = x.data();
  for (size_t i = 0; i < op.n; ++i) {
    const size_t begin = op.off.row_ptr[i];
    y[i] = op.diag[i] * x[i] +
           dot(op.off.val.data() + begin, op.off.col.data() + begin,
               op.off.row_ptr[i + 1] - begin, xp);
  }
}

double Eq15RelativeResidual(const Eq15Operator& op,
                            const std::vector<double>& x,
                            const std::vector<double>& b,
                            std::vector<double>& ax) {
  return RelativeResidualInto(op, x, b, ax);
}

SolverResult JacobiSolve(const Eq15Operator& op, const std::vector<double>& b,
                         std::vector<double>& x,
                         const SolverOptions& options) {
  assert(b.size() == op.n);
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  std::vector<double> next(n, 0.0);
  std::vector<double> ax;
  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  const auto sweep = simd::ActiveJacobiSweep();
  for (size_t it = 0; it < options.max_iterations; ++it) {
    if (SolveInterrupted(options, it, result)) return result;
    sweep(op.off.val.data(), op.off.col.data(), op.off.row_ptr.data(),
          b.data(), op.inv_diag.data(), x.data(), next.data(), 0, n);
    x.swap(next);
    result.iterations = it + 1;
    result.relative_residual = RelativeResidualInto(op, x, b, ax);
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

SolverResult GaussSeidelSolve(const Eq15Operator& op,
                              const std::vector<double>& b,
                              std::vector<double>& x,
                              const SolverOptions& options) {
  assert(b.size() == op.n);
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  std::vector<double> ax;
  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  const auto dot = simd::ActiveSparseDot();
  for (size_t it = 0; it < options.max_iterations; ++it) {
    if (SolveInterrupted(options, it, result)) return result;
    // In-place sweep: the off-diagonal dot reads already-updated entries of
    // x for columns < i — the Gauss–Seidel recurrence.
    for (size_t i = 0; i < n; ++i) {
      const size_t begin = op.off.row_ptr[i];
      double off = dot(op.off.val.data() + begin, op.off.col.data() + begin,
                       op.off.row_ptr[i + 1] - begin, x.data());
      if (op.diag[i] != 0.0) x[i] = (b[i] - off) * op.inv_diag[i];
    }
    result.iterations = it + 1;
    result.relative_residual = RelativeResidualInto(op, x, b, ax);
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

SolverResult JacobiSolveParallel(const Eq15Operator& op,
                                 const std::vector<double>& b,
                                 std::vector<double>& x,
                                 const SolverOptions& options, size_t threads,
                                 ThreadPool* pool,
                                 SolverWorkspace* workspace) {
  assert(b.size() == op.n);
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  if (pool == nullptr) pool = &ThreadPool::Shared();
  threads = std::min(threads == 0 ? pool->size() + 1 : threads,
                     std::max<size_t>(n, 1));

  SolverWorkspace local;
  SolverWorkspace& ws = workspace != nullptr ? *workspace : local;
  ws.next.assign(n, 0.0);

  const auto sweep = simd::ActiveJacobiSweep();
  auto sweep_rows = [&op, &b, &x, &ws, sweep](size_t begin, size_t end) {
    sweep(op.off.val.data(), op.off.col.data(), op.off.row_ptr.data(),
          b.data(), op.inv_diag.data(), x.data(), ws.next.data(), begin, end);
  };

  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  const size_t grain = (n + threads - 1) / threads;
  for (size_t it = 0; it < options.max_iterations; ++it) {
    // Only the issuing thread polls; workers run one full sweep at most
    // past an interruption, which is the advertised granularity.
    if (SolveInterrupted(options, it, result)) return result;
    pool->ParallelFor(0, n, grain, sweep_rows, threads);
    x.swap(ws.next);
    result.iterations = it + 1;
    result.relative_residual = RelativeResidualInto(op, x, b, ws.ax);
    if (result.relative_residual < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

SolverResult ConjugateGradientSolve(const Eq15Operator& op,
                                    const std::vector<double>& b,
                                    std::vector<double>& x,
                                    const SolverOptions& options) {
  assert(b.size() == op.n);
  if (x.size() != b.size()) x.assign(b.size(), 0.0);
  const size_t n = b.size();
  SolverResult result;
  SolveWorkAttribution work_attribution{result};
  if (SolveTrivialZeroRhs(b, x, result)) return result;
  std::vector<double> r(n), p(n), ap(n);
  Eq15MatVec(op, x, ap);
  for (size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  p = r;
  double rs_old = 0.0;
  for (size_t i = 0; i < n; ++i) rs_old += r[i] * r[i];
  const double b_norm = std::max(Norm2(b), 1e-300);

  for (size_t it = 0; it < options.max_iterations; ++it) {
    if (SolveInterrupted(options, it, result)) return result;
    result.iterations = it + 1;
    if (std::sqrt(rs_old) / b_norm < options.tolerance) {
      result.converged = true;
      break;
    }
    Eq15MatVec(op, p, ap);
    double p_ap = 0.0;
    for (size_t i = 0; i < n; ++i) p_ap += p[i] * ap[i];
    if (p_ap == 0.0) break;
    double alpha = rs_old / p_ap;
    for (size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    double rs_new = 0.0;
    for (size_t i = 0; i < n; ++i) rs_new += r[i] * r[i];
    double beta = rs_new / rs_old;
    for (size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
  }
  std::vector<double> ax;
  result.relative_residual = RelativeResidualInto(op, x, b, ax);
  if (result.relative_residual < options.tolerance) result.converged = true;
  return result;
}

}  // namespace pqsda
