#ifndef PQSDA_SOLVER_EQ15_OPERATOR_H_
#define PQSDA_SOLVER_EQ15_OPERATOR_H_

#include <array>
#include <cstddef>
#include <vector>

#include "common/aligned.h"
#include "graph/compact_builder.h"
#include "graph/packed_csr.h"
#include "solver/linear_solvers.h"

namespace pqsda {

/// The Eq. 15 coefficient matrix (1 + sum_X alpha^X) I - sum_X alpha^X S^X
/// in solver-ready form: the diagonal split out into its own dense array
/// and the merged off-diagonal entries packed as 32-bit-id CSR with
/// 64-byte-aligned values. Built once per solve by merging the three
/// sorted S^X rows directly — no triplet buffer, no sort, no hash
/// accumulator — after which the row sweeps stop re-walking W^U/W^S/W^T
/// (or re-searching each row for its diagonal) every iteration and become
/// a single SIMD sparse dot per row.
struct Eq15Operator {
  size_t n = 0;
  /// diag[i] = (1 + sum alpha) - sum_x alpha[x] * S^X(i, i).
  AlignedVector<double> diag;
  /// 1 / diag[i] (0 for a zero diagonal), precomputed so the Jacobi /
  /// Gauss–Seidel row updates multiply instead of divide — the division was
  /// the longest dependency in the sweep. Solutions differ from the
  /// divide-form CSR solvers by ulps; the kernel_equivalence suite gates
  /// the agreement at 1e-9.
  AlignedVector<double> inv_diag;
  /// Merged strictly-off-diagonal part: off(i, j) = -sum_x alpha[x] *
  /// S^X(i, j), j != i, columns ascending.
  PackedCsr off;
};

/// Builds the operator from a compact representation's sym_norm matrices.
/// Entry values accumulate per column in bipartite order (U, S, T). This
/// fixes a deterministic summation order where the triplet-based
/// AssembleRegularizationSystem left the order of equal-keyed triplets to
/// std::sort; the two assemblies agree to ~1 ulp per entry (the
/// kernel_equivalence suite gates on 1e-12 relative).
Eq15Operator BuildEq15Operator(const CompactRepresentation& rep,
                               const std::array<double, 3>& alpha);

/// y = A x over the split form: y[i] = diag[i] * x[i] + off_row_i . x.
void Eq15MatVec(const Eq15Operator& op, const std::vector<double>& x,
                std::vector<double>& y);

/// ||A x - b|| / max(||b||, eps) with a caller-owned product buffer.
double Eq15RelativeResidual(const Eq15Operator& op,
                            const std::vector<double>& x,
                            const std::vector<double>& b,
                            std::vector<double>& ax);

/// The linear_solvers.h iterative solvers specialized to the split
/// operator: identical options, cancellation granularity, work attribution
/// and result contract, with the row sweeps running on the packed layout
/// via the SIMD kernels. An exact all-zero b returns a converged zero
/// iterate immediately (iterations = 0).
SolverResult JacobiSolve(const Eq15Operator& op, const std::vector<double>& b,
                         std::vector<double>& x, const SolverOptions& options);

SolverResult GaussSeidelSolve(const Eq15Operator& op,
                              const std::vector<double>& b,
                              std::vector<double>& x,
                              const SolverOptions& options);

SolverResult JacobiSolveParallel(const Eq15Operator& op,
                                 const std::vector<double>& b,
                                 std::vector<double>& x,
                                 const SolverOptions& options, size_t threads,
                                 ThreadPool* pool,
                                 SolverWorkspace* workspace = nullptr);

SolverResult ConjugateGradientSolve(const Eq15Operator& op,
                                    const std::vector<double>& b,
                                    std::vector<double>& x,
                                    const SolverOptions& options);

}  // namespace pqsda

#endif  // PQSDA_SOLVER_EQ15_OPERATOR_H_
