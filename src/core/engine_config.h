#ifndef PQSDA_CORE_ENGINE_CONFIG_H_
#define PQSDA_CORE_ENGINE_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/multi_bipartite.h"
#include "log/sessionizer.h"
#include "suggest/cache_policy.h"
#include "suggest/pqsda_diversifier.h"
#include "topic/upm.h"

namespace pqsda {

class ThreadPool;

/// The degradation ladder: what the engine still does for a request as its
/// latency budget shrinks. Each rung trades answer quality for a hard cut in
/// work; the rung is chosen once at admission from the request's remaining
/// budget (and the configured floor), so degradation is a deterministic
/// function of configuration — not of wall-clock races mid-request.
enum class DegradationRung : size_t {
  /// Full PQS-DA: expansion, Eq. 15 solve, Algorithm 1, personalization.
  kFull = 0,
  /// Truncated solve: capped solver iterations at a relaxed tolerance (a
  /// non-converged iterate is served, loudly), fewer hitting-time sweeps.
  kTruncatedSolve = 1,
  /// Walk-only candidates: one mixing step of the cross-bipartite walk from
  /// F^0; no solve, no Algorithm 1, no personalization.
  kWalkOnly = 2,
  /// Cache-only: a cached result or NotFound — no pipeline work at all.
  kCacheOnly = 3,
};

/// Overload-hardening knobs: the degradation ladder's budget thresholds and
/// the admission controller's shedding gates.
struct RobustnessOptions {
  /// Floor rung: every request is served at least this degraded (the CLI's
  /// `--min_rung`; also how tests and the property harness pin a rung).
  size_t min_rung = 0;
  /// Remaining-budget thresholds (microseconds) that pick the rung: a
  /// request whose deadline leaves less than `truncated_below_us` runs the
  /// truncated solve, less than `walk_only_below_us` the walk-only path,
  /// less than `cache_only_below_us` only the cache lookup. Requests with no
  /// deadline always run at the floor rung.
  int64_t truncated_below_us = 250'000;
  int64_t walk_only_below_us = 25'000;
  int64_t cache_only_below_us = 2'000;
  /// Solver budget of the truncated rung (rung 1).
  size_t truncated_max_iterations = 12;
  double truncated_tolerance = 1e-4;
  /// Hitting-time sweep budget of the truncated rung (capped at the full
  /// configuration's horizon).
  size_t truncated_hitting_iterations = 6;
  /// Admission gates (0 disables each — see AdmissionOptions).
  size_t shed_queue_depth = 0;
  double shed_p95_us = 0.0;
};

/// Live-ingestion knobs of the IndexManager: how much fresh query-log
/// traffic accumulates before an off-path rebuild is scheduled, and how deep
/// the delta buffer may grow before ingestion backpressures.
struct IngestOptions {
  /// Delta records that trigger an asynchronous rebuild. An ingest that
  /// brings the buffer to at least this depth schedules one rebuild task
  /// (coalescing: records arriving while it runs are absorbed by a single
  /// follow-up pass, not one rebuild each).
  size_t rebuild_min_records = 64;
  /// Bounded delta buffer: an IngestBatch that would push the buffer past
  /// this depth is rejected whole with kUnavailable (backpressure — the
  /// caller retries after the next swap drains the buffer).
  size_t max_delta_records = 1 << 16;
  /// Pool the rebuild tasks run on; null = ThreadPool::Shared().
  ThreadPool* rebuild_pool = nullptr;
  /// Recently-retired snapshots IndexManager keeps alive after a swap, so a
  /// logged request can be replayed against its pinned generation for a
  /// while (suggest_cli replay / PqsdaEngine::Replay). 0 keeps none: only
  /// the published generation is replayable.
  size_t retired_snapshots = 4;
};

/// Post-swap cache warmup: after a rebuild publishes, the rebuild thread
/// replays the tail of a sampled JSONL request log (obs::RequestLog format)
/// through the full pipeline against the new snapshot, off the serving
/// path, so head queries are already resident when traffic arrives.
struct CacheWarmupOptions {
  /// Path of the request log to replay; empty disables warmup.
  std::string log_path;
  /// Newest distinct requests replayed per swap.
  size_t max_requests = 256;
};

/// End-to-end PQS-DA configuration.
struct PqsdaEngineConfig {
  EdgeWeighting weighting = EdgeWeighting::kCfIqf;
  SessionizerOptions sessionizer;
  PqsdaDiversifierOptions diversifier;
  UpmOptions upm;
  /// When false the engine skips UPM training and Suggest returns the
  /// diversified list as-is (diversification-only mode, as in §VI-B).
  bool personalize = true;
  /// Weighted-Borda multiplicity of the preference ranking (see
  /// Personalizer).
  size_t preference_borda_weight = 2;
  /// When false, Build skips the coarse registry instrumentation (stage
  /// histograms and counters in obs::MetricsRegistry::Default()). Per-request
  /// stats are independent of this flag: they are opted into per call by
  /// passing a SuggestStats pointer to Suggest.
  bool collect_metrics = true;
  /// Capacity (entries) of the suggestion result cache; 0 disables caching.
  /// Served lists are cached after personalization, keyed by
  /// (query, context-hash, user, k, index generation), so a hit is
  /// byte-identical to the miss that filled it and a snapshot swap can never
  /// serve a list computed against a previous generation.
  size_t cache_capacity = 0;
  /// Mutex shards of the cache (see SuggestionCacheOptions).
  size_t cache_shards = 8;
  /// Replacement policy of each cache shard (the CLI's `--cache_policy=`).
  CachePolicyKind cache_policy = CachePolicyKind::kLru;
  /// Capacity of the negative-result (NotFound) cache; 0 disables it.
  size_t negative_cache_capacity = 0;
  /// When true (the default), cache entries carry a per-component
  /// ValidationVector built from content-defined fingerprints, so a snapshot
  /// swap only invalidates entries whose components actually changed.
  /// When false, entries are keyed by the scalar snapshot generation and
  /// every swap soft-invalidates the whole cache (the pre-PR-10 behavior,
  /// kept as the bench baseline).
  bool cache_delta_aware = true;
  /// Post-swap warmup replay (see CacheWarmupOptions).
  CacheWarmupOptions cache_warmup;
  /// Overload hardening: degradation ladder thresholds and load shedding.
  RobustnessOptions robustness;
  /// Live ingestion: delta buffering and rebuild scheduling.
  IngestOptions ingest;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_ENGINE_CONFIG_H_
