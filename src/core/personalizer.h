#ifndef PQSDA_CORE_PERSONALIZER_H_
#define PQSDA_CORE_PERSONALIZER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "log/record.h"
#include "suggest/engine.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda {

/// Reranks any suggestion list for a user (§V-B): score each suggestion by
/// the UPM preference (Eq. 31), rank by preference, then Borda-aggregate
/// with the original (diversification) ranking. This is also what the Fig. 5
/// "(P)" variants apply to the baselines' lists.
class Personalizer {
 public:
  /// Both referents must outlive the Personalizer. `preference_weight` is
  /// the weighted-Borda multiplicity of the preference ranking relative to
  /// the diversification ranking (1 = the plain Borda of §V-B; larger
  /// values personalize more aggressively).
  Personalizer(const UpmModel& upm, const QueryLogCorpus& corpus,
               size_t preference_weight = 1)
      : upm_(&upm), corpus_(&corpus),
        preference_weight_(preference_weight == 0 ? 1 : preference_weight) {}

  /// Returns the personalized ranking; a user unknown to the corpus gets the
  /// input list unchanged.
  std::vector<Suggestion> Rerank(UserId user,
                                 const std::vector<Suggestion>& list) const;

  /// Raw preference score of one query for a user (Eq. 31).
  double PreferenceScore(UserId user, const std::string& query) const;

 private:
  const UpmModel* upm_;
  const QueryLogCorpus* corpus_;
  size_t preference_weight_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_PERSONALIZER_H_
