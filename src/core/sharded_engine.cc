#include "core/sharded_engine.h"

#include <algorithm>
#include <iterator>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/fault_injector.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"
#include "suggest/pqsda_diversifier.h"

namespace pqsda {

namespace {

// One frontier row's walk contributions, in canonical (k, k2) order, with
// the exact expression of the local walk (StepThroughBipartite in
// compact_builder.cc) — so a delta computed on behalf of any shard is
// bit-identical to the one the unsharded loop would have added in place.
void RowContributionInto(const CsrMatrix& q2o, const CsrMatrix& o2q,
                         StringId q, double p, double scale,
                         std::vector<std::pair<StringId, double>>& out) {
  double row_sum = q2o.RowSum(q);
  if (row_sum <= 0.0) return;
  auto obj_idx = q2o.RowIndices(q);
  auto obj_val = q2o.RowValues(q);
  for (size_t k = 0; k < obj_idx.size(); ++k) {
    double p_obj = obj_val[k] / row_sum;
    uint32_t obj = obj_idx[k];
    double obj_sum = o2q.RowSum(obj);
    if (obj_sum <= 0.0) continue;
    auto q_idx = o2q.RowIndices(obj);
    auto q_val = o2q.RowValues(obj);
    for (size_t k2 = 0; k2 < q_idx.size(); ++k2) {
      out.emplace_back(q_idx[k2], scale * p * p_obj * q_val[k2] / obj_sum);
    }
  }
}

}  // namespace

uint8_t ShardServingContext::Touch(size_t s) {
  if (rung[s] != SuggestStats::kShardUntouched) return rung[s];
  rung[s] = classify ? classify(s) : SuggestStats::kShardFull;
  if (rung[s] != SuggestStats::kShardFull) partial = true;
  return rung[s];
}

size_t ShardServingContext::TouchedShards() const {
  size_t n = 0;
  for (uint8_t r : rung) {
    if (r != SuggestStats::kShardUntouched) ++n;
  }
  return n;
}

Status ShardedWalkBackend::Step(BipartiteKind kind,
                                const FlatMap<StringId, double>& mass,
                                double scale,
                                FlatMap<StringId, double>& out) const {
  obs::StageScope stage(obs::ProfileStage::kScatterGather);
  const BipartiteGraph& g = ctx_->rep().graph(kind);
  const CsrMatrix& q2o = g.query_to_object();
  const CsrMatrix& o2q = g.object_to_query();
  const ShardPartition& part = ctx_->part();

  // Snapshot the frontier in FlatMap insertion order: slot i of `deltas`
  // belongs to frontier row i no matter which thread computes it, so the
  // gather below can replay the canonical accumulation order exactly.
  std::vector<std::pair<StringId, double>> frontier(mass.begin(), mass.end());
  std::vector<std::vector<std::pair<StringId, double>>> deltas(frontier.size());
  std::vector<std::vector<size_t>> per_shard(part.shards);
  for (size_t i = 0; i < frontier.size(); ++i) {
    const StringId q = frontier[i].first;
    const size_t owner = part.query_owner[q];
    if (owner == ctx_->primary || part.hot[q] != 0) {
      // Local rows: the home shard's own slice plus the replicated hot
      // boundary rows. Never a fetch, never subject to another shard's
      // degradation — which is why a degraded shard costs only cold rows.
      RowContributionInto(q2o, o2q, q, frontier[i].second, scale, deltas[i]);
    } else if (ctx_->Touch(owner) == SuggestStats::kShardFull) {
      per_shard[owner].push_back(i);
    }
    // Degraded/deadline owner: its cold rows contribute nothing, loudly
    // (Touch recorded the rung and raised the partial flag).
  }

  FaultInjector& injector = FaultInjector::Default();
  std::vector<size_t> involved;
  size_t fetched_rows = 0;
  for (size_t s = 0; s < part.shards; ++s) {
    if (per_shard[s].empty()) continue;
    involved.push_back(s);
    ctx_->shard_fetches[s] += static_cast<uint32_t>(per_shard[s].size());
    fetched_rows += per_shard[s].size();
  }
  auto fetch_shard = [&](size_t s) {
    injector.Hit(faults::kShardFetch);
    for (size_t i : per_shard[s]) {
      RowContributionInto(q2o, o2q, frontier[i].first, frontier[i].second,
                          scale, deltas[i]);
    }
  };
  // Scatter: one batched fetch per involved shard, on that shard's lane —
  // except on a pool worker thread (lane-routed batch requests, rebuild
  // tasks), where fetches run inline: nested parallelism degrades to
  // sequential instead of lane-vs-lane deadlock, mirroring ThreadPool's
  // documented ParallelFor behavior.
  const bool use_lanes =
      !lanes_.empty() && involved.size() > 1 && !ThreadPool::OnWorkerThread();
  if (!use_lanes) {
    for (size_t s : involved) fetch_shard(s);
  } else {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining = involved.size();
    for (size_t s : involved) {
      lanes_[s]->Submit([&fetch_shard, &mu, &cv, &remaining, s] {
        fetch_shard(s);
        // Notify under the lock: the waiter destroys mu/cv the moment it
        // observes remaining == 0, so signaling after unlock would race
        // the destruction of the cv itself.
        std::lock_guard<std::mutex> lock(mu);
        --remaining;
        cv.notify_one();
      });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&remaining] { return remaining == 0; });
  }

  // Gather: merge per-row contribution lists back in frontier order. Where
  // a contribution was *computed* is free; where it is *summed* is the
  // bitwise contract, and this loop is the same (row, k, k2) nest as the
  // local walk.
  for (size_t i = 0; i < deltas.size(); ++i) {
    for (const auto& [target, delta] : deltas[i]) {
      out[target] += delta;
    }
  }
  obs::StageProfiler::AddWork(obs::ProfileStage::kScatterGather, fetched_rows);
  return Status::OK();
}

Status ShardedWalkBackend::QueryRow(BipartiteKind kind, StringId query,
                                    std::span<const uint32_t>& indices,
                                    std::span<const double>& values) const {
  const CsrMatrix& q2o = ctx_->rep().graph(kind).query_to_object();
  const ShardPartition& part = ctx_->part();
  const size_t owner = part.query_owner[query];
  if (owner != ctx_->primary && part.hot[query] == 0) {
    if (ctx_->Touch(owner) != SuggestStats::kShardFull) {
      // A degraded shard's cold row induces as empty — deterministically
      // for the whole request, since Touch caches the classification.
      indices = {};
      values = {};
      return Status::OK();
    }
    FaultInjector::Default().Hit(faults::kShardFetch);
    ++ctx_->shard_fetches[owner];
  }
  indices = q2o.RowIndices(query);
  values = q2o.RowValues(query);
  return Status::OK();
}

struct ShardedEngine::ShardState {
  std::unique_ptr<ThreadPool> lane;
  /// This shard's own request-latency window — the live signal of its p95
  /// admission gate. Deliberately not the global ServingTelemetry
  /// histogram: a per-shard gate fed process-wide latency would trip on
  /// every shard the moment one shard is slow.
  std::unique_ptr<obs::SlidingWindowHistogram> latency;
  /// Requests of this shard currently executing (the single-request path
  /// runs on the calling thread and never enqueues on the lane, so the
  /// queue-depth gate needs this to see non-batch load at all).
  std::atomic<uint64_t> inflight{0};
  AdmissionController admission;
  obs::Counter* requests_total = nullptr;
  obs::Counter* fetches_total = nullptr;
  obs::Counter* shed_total = nullptr;
  obs::Counter* degraded_total = nullptr;
  obs::Counter* deadline_total = nullptr;
  obs::Gauge* generation = nullptr;
};

StatusOr<std::unique_ptr<ShardedEngine>> ShardedEngine::Build(
    std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config,
    const ShardedEngineOptions& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  auto snapshot =
      BuildIndexSnapshot(std::move(records), config, /*generation=*/0);
  if (!snapshot.ok()) return snapshot.status();

  std::unique_ptr<ShardedEngine> engine(new ShardedEngine());
  engine->config_ = config;
  engine->options_ = options;
  engine->router_.shards = options.shards;
  engine->robustness_ = config.robustness;
  // Degraded-rung options derive exactly as in PqsdaEngine::Build, so every
  // ladder rung is served identically to the unsharded engine.
  engine->truncated_options_ = config.diversifier;
  engine->truncated_options_.regularization.solver_options.max_iterations =
      config.robustness.truncated_max_iterations;
  engine->truncated_options_.regularization.solver_options.tolerance =
      config.robustness.truncated_tolerance;
  engine->truncated_options_.regularization.accept_nonconverged = true;
  engine->truncated_options_.hitting_iterations =
      std::min(config.diversifier.hitting_iterations,
               config.robustness.truncated_hitting_iterations);
  engine->walk_only_options_ = config.diversifier;
  engine->walk_only_options_.walk_only = true;

  if (config.cache_capacity > 0) {
    SuggestionCacheOptions cache_options;
    cache_options.capacity = config.cache_capacity;
    cache_options.shards = config.cache_shards;
    cache_options.policy = config.cache_policy;
    cache_options.name = "sharded";
    engine->cache_ = std::make_unique<SuggestionCache>(cache_options);
  }
  if (config.negative_cache_capacity > 0) {
    engine->negative_cache_ = std::make_unique<NegativeSuggestionCache>(
        config.negative_cache_capacity);
  }

  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetGauge("pqsda.shard.count")
      .Set(static_cast<double>(options.shards));

  engine->states_.reserve(options.shards);
  for (size_t s = 0; s < options.shards; ++s) {
    auto state = std::make_unique<ShardState>();
    state->lane = std::make_unique<ThreadPool>(
        std::max<size_t>(options.lane_threads, 1));
    state->latency = std::make_unique<obs::SlidingWindowHistogram>();
    AdmissionOptions admission;
    admission.max_queue_depth = options.shard_queue_depth;
    admission.max_p95_us = options.shard_p95_us;
    admission.pool = state->lane.get();
    admission.inflight = &state->inflight;
    admission.latency = state->latency.get();
    admission.queue_depth_point =
        "shard." + std::to_string(s) + ".queue_depth";
    admission.p95_point = "shard." + std::to_string(s) + ".p95_us";
    state->admission = AdmissionController(admission);
    const std::string prefix = "pqsda.shard." + std::to_string(s) + ".";
    state->requests_total = &reg.GetCounter(prefix + "requests_total");
    state->fetches_total = &reg.GetCounter(prefix + "fetches_total");
    state->shed_total = &reg.GetCounter(prefix + "shed_total");
    state->degraded_total = &reg.GetCounter(prefix + "degraded_total");
    state->deadline_total = &reg.GetCounter(prefix + "deadline_total");
    state->generation = &reg.GetGauge(prefix + "generation");
    engine->states_.push_back(std::move(state));
  }
  // Rebuilds get their own thread: the build is global (see ShardedBuild)
  // and long, so parking it on a single-threaded serving lane would make
  // that shard slow/shedding for the whole build duration.
  engine->rebuild_pool_ = std::make_unique<ThreadPool>(1);

  ShardPartitionOptions popts;
  popts.shards = options.shards;
  popts.hot_row_min_degree = options.hot_row_min_degree;
  auto build = std::make_shared<ShardedBuild>();
  build->build_id = 0;
  build->base = std::move(*snapshot);
  build->partition = BuildShardPartition(*build->base->mb, popts);
  build->shard_generation.assign(options.shards, 0);
  build->upm_generation = 0;
  reg.GetGauge("pqsda.shard.replicated_hot_rows")
      .Set(static_cast<double>(build->partition.replicated_rows));
  for (size_t s = 0; s < options.shards; ++s) {
    engine->states_[s]->generation->Set(0.0);
  }
  engine->slots_.assign(options.shards, build);
  engine->latest_ = std::move(build);
  return engine;
}

ShardedEngine::~ShardedEngine() { WaitForRebuilds(); }

DegradationRung ShardedEngine::ChooseRung(
    const SuggestionRequest& request) const {
  FaultInjector::Default().Hit(faults::kAdmission);
  size_t rung = std::min<size_t>(robustness_.min_rung, 3);
  if (request.cancel != nullptr && request.cancel->has_deadline()) {
    const int64_t remaining_us = request.cancel->RemainingNanos() / 1000;
    size_t budget_rung = 0;
    if (remaining_us < robustness_.cache_only_below_us) {
      budget_rung = 3;
    } else if (remaining_us < robustness_.walk_only_below_us) {
      budget_rung = 2;
    } else if (remaining_us < robustness_.truncated_below_us) {
      budget_rung = 1;
    }
    rung = std::max(rung, budget_rung);
  }
  return static_cast<DegradationRung>(rung);
}

StatusOr<std::vector<Suggestion>> ShardedEngine::Suggest(
    const SuggestionRequest& request, size_t k, SuggestStats* stats) const {
  static obs::Counter& requests_total = obs::MetricsRegistry::Default()
      .GetCounter("pqsda.suggest.requests_total");
  requests_total.Increment();
  const size_t primary = router_.QueryShardOf(request.query);
  states_[primary]->requests_total->Increment();

  Status admit = states_[primary]->admission.Admit();
  if (!admit.ok()) {
    states_[primary]->shed_total->Increment();
    if (stats != nullptr) {
      *stats = SuggestStats{};
      stats->shed = true;
    }
    obs::ServingTelemetry::Default().RecordRequest(
        /*latency_us=*/0.0, /*ok=*/false, /*not_found=*/false,
        cache_ != nullptr, /*cache_hit=*/false, /*shed=*/true);
    return admit;
  }
  return SuggestAdmitted(request, k, primary, stats);
}

StatusOr<std::vector<Suggestion>> ShardedEngine::SuggestAdmitted(
    const SuggestionRequest& request, size_t k, size_t primary,
    SuggestStats* stats) const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Counter& errors_total =
      reg.GetCounter("pqsda.suggest.errors_total");
  static obs::Counter& not_found_total =
      reg.GetCounter("pqsda.suggest.not_found_total");
  static obs::Histogram& latency_us =
      reg.GetHistogram("pqsda.suggest.latency_us");
  static obs::Counter* rung_totals[4] = {
      &reg.GetCounter("pqsda.robust.rung_full_total"),
      &reg.GetCounter("pqsda.robust.rung_truncated_total"),
      &reg.GetCounter("pqsda.robust.rung_walk_only_total"),
      &reg.GetCounter("pqsda.robust.rung_cache_only_total")};
  static obs::Counter& deadline_exceeded_total =
      reg.GetCounter("pqsda.robust.deadline_exceeded_total");
  static obs::Counter& cancelled_total =
      reg.GetCounter("pqsda.robust.cancelled_total");

  // The consistent cut is pinned once, right after admission: every shard
  // read of this request resolves against one ShardedBuild, so a mid-request
  // publication neither blocks nor tears the scatter-gather.
  const std::shared_ptr<const ShardedBuild> build = AcquireConsistent();
  const DegradationRung rung = ChooseRung(request);
  rung_totals[static_cast<size_t>(rung)]->Increment();

  // In-flight for the whole pipeline run: this is the part of the primary
  // shard's load its queue-depth gate cannot see in the lane (single
  // requests execute right here on the calling thread; batch tasks leave
  // the queue the moment they start).
  states_[primary]->inflight.fetch_add(1, std::memory_order_relaxed);
  obs::StageProfiler& profiler = obs::StageProfiler::Default();
  profiler.BeginRequest();
  WallTimer wall;
  bool cache_hit = false;
  StatusOr<std::vector<Suggestion>> result =
      SuggestImpl(request, k, rung, *build, primary, stats, &cache_hit);
  const double elapsed_us = static_cast<double>(wall.ElapsedNanos()) * 1e-3;
  profiler.EndRequest(static_cast<size_t>(rung));
  states_[primary]->inflight.fetch_sub(1, std::memory_order_relaxed);
  latency_us.Observe(elapsed_us);
  states_[primary]->latency->Record(elapsed_us);

  const bool ok = result.ok();
  const bool not_found =
      !ok && result.status().code() == StatusCode::kNotFound;
  if (!ok) {
    (not_found ? not_found_total : errors_total).Increment();
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_total.Increment();
    } else if (result.status().code() == StatusCode::kCancelled) {
      cancelled_total.Increment();
    }
  }
  obs::ServingTelemetry::Default().RecordRequest(
      elapsed_us, ok, not_found, cache_ != nullptr, cache_hit,
      /*shed=*/false);
  return result;
}

StatusOr<std::vector<Suggestion>> ShardedEngine::SuggestImpl(
    const SuggestionRequest& request, size_t k, DegradationRung rung,
    const ShardedBuild& build, size_t primary, SuggestStats* stats,
    bool* cache_hit) const {
  static obs::Counter& personalized_total = obs::MetricsRegistry::Default()
      .GetCounter("pqsda.suggest.personalized_total");
  static obs::Counter& partial_merges_total = obs::MetricsRegistry::Default()
      .GetCounter("pqsda.sharded.partial_merges_total");

  if (stats != nullptr) {
    *stats = SuggestStats{};
    stats->degradation_rung = static_cast<size_t>(rung);
  }

  SuggestionCache::CacheKey cache_key;
  SuggestionCache::Validator validator;
  if (cache_ != nullptr || negative_cache_ != nullptr) {
    // Generation 0 inside the key: validity is carried by the per-shard
    // validation vector instead of a scalar generation, so an entry
    // survives rebuilds that changed no shard it actually read.
    cache_key = SuggestionCache::KeyOf(request, k, /*generation=*/0);
    // Grades an entry against the *pinned* build only. The tri-state
    // matters mid-swap: an entry filled under the incoming build (its
    // component generations run ahead of this request's consistent cut)
    // must miss WITHOUT being erased — it is exactly what post-swap readers
    // want — while an entry behind the cut is dead for good and is erased.
    validator =
        [&build](const SuggestionCache::ValidationVector& components) {
          bool stale = false;
          for (const auto& [component, gen] : components) {
            uint64_t current;
            if (component == ShardServingContext::kUpmComponent) {
              current = build.upm_generation;
            } else if (component < build.shard_generation.size()) {
              current = build.shard_generation[component];
            } else {
              return CacheValidity::kStale;  // unknown component: ungradable
            }
            if (gen > current) return CacheValidity::kMismatch;
            if (gen < current) stale = true;
          }
          return stale ? CacheValidity::kStale : CacheValidity::kValid;
        };
  }
  if (cache_ != nullptr) {
    std::vector<Suggestion> cached;
    bool hit;
    {
      obs::StageScope cache_scope(obs::ProfileStage::kCache);
      obs::StageProfiler::AddWork(obs::ProfileStage::kCache, 1);
      hit = cache_->Lookup(cache_key, &cached, validator);
    }
    if (hit) {
      *cache_hit = true;
      if (stats != nullptr) stats->suggestions_returned = cached.size();
      return cached;
    }
  }
  if (negative_cache_ != nullptr &&
      negative_cache_->Lookup(cache_key, validator)) {
    // A confirmed-NotFound request: absorbed here, the shards are never
    // touched.
    if (stats != nullptr) stats->negative_cache_hit = true;
    return Status::NotFound("no suggestions for \"" + request.query +
                            "\" (negative cache)");
  }
  if (rung == DegradationRung::kCacheOnly) {
    return Status::NotFound("cache-only rung: no cached result for \"" +
                            request.query + "\"");
  }

  ShardServingContext ctx;
  ctx.build = &build;
  ctx.mb = build.base->mb.get();
  ctx.partition = &build.partition;
  ctx.router = router_;
  ctx.primary = primary;
  ctx.rung.assign(options_.shards, SuggestStats::kShardUntouched);
  ctx.shard_fetches.assign(options_.shards, 0);
  // The primary shard passed request-level admission; it serves its own
  // rows unconditionally.
  ctx.rung[primary] = SuggestStats::kShardFull;
  ctx.classify = [this, cancel = request.cancel](size_t s) -> uint8_t {
    FaultInjector& injector = FaultInjector::Default();
    if (injector.Value(faults::kShardShedShard, -1) ==
        static_cast<int64_t>(s)) {
      return SuggestStats::kShardDegraded;
    }
    if (injector.Value(faults::kShardDeadlineShard, -1) ==
        static_cast<int64_t>(s)) {
      return SuggestStats::kShardDeadline;
    }
    // The per-fetch deadline floor: once the request's remaining budget has
    // collapsed below fetch_budget_floor_us (or the deadline has passed
    // outright), fetches to shards not yet touched are refused — the shard
    // classifies kShardDeadline for the rest of the request and its cold
    // rows drop, loudly, instead of remote reads eating the budget the
    // rest of the pipeline still needs.
    if (cancel != nullptr && cancel->has_deadline() &&
        (cancel->expired() ||
         static_cast<double>(cancel->RemainingNanos()) * 1e-3 <
             options_.fetch_budget_floor_us)) {
      return SuggestStats::kShardDeadline;
    }
    if (!states_[s]->admission.Admit().ok()) {
      return SuggestStats::kShardDegraded;
    }
    return SuggestStats::kShardFull;
  };

  std::vector<ThreadPool*> lanes;
  lanes.reserve(states_.size());
  for (const auto& state : states_) lanes.push_back(state->lane.get());
  ShardedWalkBackend backend(&ctx, std::move(lanes));

  const PqsdaDiversifierOptions* div_options =
      &build.base->diversifier->options();
  if (rung == DegradationRung::kTruncatedSolve) div_options = &truncated_options_;
  if (rung == DegradationRung::kWalkOnly) div_options = &walk_only_options_;

  // Per-request diversifier bound to the scatter-gather backend: only the
  // §IV-A row reads go through the shards; the solve, selection and rerank
  // run unchanged on the merged compact representation.
  PqsdaDiversifier diversifier(*build.base->mb, *div_options, &backend);
  auto diversified = diversifier.DiversifyWith(request, k, *div_options, stats);

  Status status = Status::OK();
  std::vector<Suggestion> list;
  bool reranked = false;
  if (diversified.ok()) {
    list = std::move(diversified->candidates);
    if (rung != DegradationRung::kWalkOnly &&
        build.base->personalizer != nullptr && request.user != kNoUser) {
      // The UPM is sharded by user hash: the §V-B rerank requires the
      // user's home shard. A degraded home shard serves the diversified
      // list unpersonalized — loudly (partial flag + rung) — instead of
      // failing the request.
      const size_t user_shard = router_.UserShardOf(request.user);
      if (ctx.Touch(user_shard) == SuggestStats::kShardFull) {
        list = build.base->personalizer->Rerank(request.user, list);
        personalized_total.Increment();
        reranked = true;
        if (stats != nullptr) stats->personalized = true;
      }
    }
  } else {
    status = diversified.status();
  }

  // Per-shard accounting runs on every exit path so a degraded shard is
  // never silent, then the stats snapshot mirrors it per request.
  for (size_t s = 0; s < ctx.rung.size(); ++s) {
    if (ctx.rung[s] == SuggestStats::kShardDegraded) {
      states_[s]->degraded_total->Increment();
    } else if (ctx.rung[s] == SuggestStats::kShardDeadline) {
      states_[s]->deadline_total->Increment();
    }
    if (ctx.shard_fetches[s] > 0) {
      states_[s]->fetches_total->Increment(ctx.shard_fetches[s]);
    }
  }
  if (ctx.partial) partial_merges_total.Increment();
  if (stats != nullptr) {
    stats->shard_rungs = ctx.rung;
    stats->shards_touched = ctx.TouchedShards();
    stats->partial_merge = ctx.partial;
    if (status.ok()) stats->suggestions_returned = list.size();
  }
  if (!status.ok()) {
    // A full-rung, full-merge NotFound is a property of the index (the
    // query is unknown), not of this request's luck — record it so the
    // next storm of lookups is absorbed. The entry depends on the query's
    // *owning* shard: its content fingerprint covers the owned query-string
    // set, so an ingested record that makes the query known bumps that
    // shard's generation and kills the entry.
    if (negative_cache_ != nullptr && rung == DegradationRung::kFull &&
        !ctx.partial && status.code() == StatusCode::kNotFound) {
      const uint32_t owner =
          static_cast<uint32_t>(router_.QueryShardOf(request.query));
      SuggestionCache::ValidationVector components;
      components.emplace_back(owner, build.shard_generation[owner]);
      negative_cache_->Insert(cache_key, std::move(components));
    }
    return status;
  }

  // Only full-rung, full-merge results fill the cache — a partial merge is
  // served but never cached (it would outlive the one shard's overload that
  // caused it). The validation vector records exactly what the entry read.
  if (cache_ != nullptr && rung == DegradationRung::kFull && !ctx.partial) {
    SuggestionCache::ValidationVector components;
    for (size_t s = 0; s < ctx.rung.size(); ++s) {
      if (ctx.rung[s] != SuggestStats::kShardUntouched) {
        components.emplace_back(static_cast<uint32_t>(s),
                                build.shard_generation[s]);
      }
    }
    if (reranked) {
      components.emplace_back(ShardServingContext::kUpmComponent,
                              build.upm_generation);
    }
    cache_->Insert(cache_key, list, std::move(components));
  }
  return list;
}

std::vector<StatusOr<std::vector<Suggestion>>> ShardedEngine::SuggestBatch(
    std::span<const SuggestionRequest> requests, size_t k) const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Counter& batches_total =
      reg.GetCounter("pqsda.suggest.batches_total");
  static obs::Counter& requests_total =
      reg.GetCounter("pqsda.suggest.requests_total");
  batches_total.Increment();

  std::vector<StatusOr<std::vector<Suggestion>>> results(
      requests.size(), Status::Internal("request not served"));
  std::mutex mu;
  std::condition_variable cv;
  size_t pending = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    requests_total.Increment();
    const size_t primary = router_.QueryShardOf(requests[i].query);
    states_[primary]->requests_total->Increment();
    // Admission at submit time against the primary lane's *current* queue
    // depth: a burst that overfills one shard's lane sheds there while the
    // other lanes keep admitting, so admitted throughput scales with the
    // shard count instead of saturating one global gate.
    Status admit = states_[primary]->admission.Admit();
    if (!admit.ok()) {
      states_[primary]->shed_total->Increment();
      obs::ServingTelemetry::Default().RecordRequest(
          /*latency_us=*/0.0, /*ok=*/false, /*not_found=*/false,
          cache_ != nullptr, /*cache_hit=*/false, /*shed=*/true);
      results[i] = admit;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      ++pending;
    }
    states_[primary]->lane->Submit(
        [this, &requests, &results, &mu, &cv, &pending, i, k, primary] {
          results[i] = SuggestAdmitted(requests[i], k, primary,
                                       /*stats=*/nullptr);
          // Notify under the lock: the caller destroys mu/cv once it
          // observes pending == 0.
          std::lock_guard<std::mutex> lock(mu);
          --pending;
          cv.notify_one();
        });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&pending] { return pending == 0; });
  return results;
}

Status ShardedEngine::Ingest(QueryLogRecord record) {
  std::lock_guard<std::mutex> lock(delta_mu_);
  if (delta_.size() >= config_.ingest.max_delta_records) {
    return Status::Unavailable(
        "delta buffer full (" + std::to_string(delta_.size()) +
        " records): retry after the next rebuild");
  }
  delta_.push_back(std::move(record));
  if (delta_.size() >= config_.ingest.rebuild_min_records &&
      !rebuild_scheduled_) {
    rebuild_scheduled_ = true;
    // The coalescing rebuild task runs on the dedicated rebuild thread,
    // never a serving lane: the build is global (the cfiqf IQF term — see
    // ShardedBuild) and long, and a single-threaded lane carrying it could
    // not serve batch requests or scatter fetches until it finished.
    rebuild_pool_->Submit([this] { RebuildLoop(); });
  }
  return Status::OK();
}

void ShardedEngine::RebuildLoop() {
  for (;;) {
    std::vector<QueryLogRecord> batch;
    {
      std::lock_guard<std::mutex> lock(delta_mu_);
      if (delta_.empty()) {
        rebuild_scheduled_ = false;
        rebuild_idle_.notify_all();
        return;
      }
      batch = std::move(delta_);
      delta_.clear();
    }
    // A failed build drops the batch but keeps draining: the scheduled
    // flag must clear even when a build errors.
    (void)RebuildWith(std::move(batch));
  }
}

Status ShardedEngine::RebuildNow() {
  std::vector<QueryLogRecord> batch;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    batch = std::move(delta_);
    delta_.clear();
  }
  if (batch.empty()) return Status::OK();
  return RebuildWith(std::move(batch));
}

void ShardedEngine::WaitForRebuilds() {
  std::unique_lock<std::mutex> lock(delta_mu_);
  rebuild_idle_.wait(lock, [this] { return !rebuild_scheduled_; });
}

size_t ShardedEngine::delta_depth() const {
  std::lock_guard<std::mutex> lock(delta_mu_);
  return delta_.size();
}

Status ShardedEngine::RebuildWith(std::vector<QueryLogRecord> batch) {
  std::lock_guard<std::mutex> build_lock(build_mu_);
  std::shared_ptr<const ShardedBuild> base;
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    base = latest_;
  }
  // Same record concatenation as the unsharded IndexManager (base records +
  // deltas in ingest order, re-sorted inside the build), through the single
  // global build path — which is what makes the sharded engine's rebuilds
  // bitwise-equivalent to the unsharded engine's.
  std::vector<QueryLogRecord> records = base->base->records;
  records.insert(records.end(), std::make_move_iterator(batch.begin()),
                 std::make_move_iterator(batch.end()));
  auto snapshot = BuildIndexSnapshot(std::move(records), config_,
                                     base->base->generation + 1);
  if (!snapshot.ok()) return snapshot.status();

  ShardPartitionOptions popts;
  popts.shards = options_.shards;
  popts.hot_row_min_degree = options_.hot_row_min_degree;
  auto next = std::make_shared<ShardedBuild>();
  next->build_id = base->build_id + 1;
  next->base = std::move(*snapshot);
  next->partition = BuildShardPartition(*next->base->mb, popts);
  next->shard_generation.resize(options_.shards);
  for (size_t s = 0; s < options_.shards; ++s) {
    // A shard's generation moves only when its served slice actually
    // changed. The content fingerprint is defined over strings and row
    // contents (id-renumbering-proof), so a rebuild that only touched other
    // shards leaves this shard's generation — and every cache entry that
    // read only it — valid.
    next->shard_generation[s] =
        next->partition.shard[s].content_fingerprint ==
                base->partition.shard[s].content_fingerprint
            ? base->shard_generation[s]
            : next->base->generation;
  }
  next->upm_generation = config_.personalize ? next->base->generation
                                             : base->upm_generation;
  obs::MetricsRegistry::Default()
      .GetGauge("pqsda.shard.replicated_hot_rows")
      .Set(static_cast<double>(next->partition.replicated_rows));
  std::shared_ptr<const ShardedBuild> published = next;
  Publish(std::move(next));
  // Warmup runs here on the rebuild thread, after serving traffic already
  // sees the new build: replayed head queries fill the cache off-path.
  WarmupCache(*published);
  return Status::OK();
}

void ShardedEngine::WarmupCache(const ShardedBuild& build) const {
  if (cache_ == nullptr || config_.cache_warmup.log_path.empty()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Counter& replayed_total =
      reg.GetCounter("pqsda.cache.warmup_replayed_total");
  static obs::Counter& hits_total =
      reg.GetCounter("pqsda.cache.warmup_hits_total");
  static obs::Counter& filled_total =
      reg.GetCounter("pqsda.cache.warmup_filled_total");
  auto entries =
      obs::ReadRequestLog(config_.cache_warmup.log_path, /*max_entries=*/0);
  if (!entries.ok()) return;
  // Newest entries first, deduplicated by cache key: the tail of the log is
  // the best estimate of the head of the live distribution.
  std::unordered_set<std::string> seen;
  size_t replayed = 0;
  for (auto it = entries->rbegin();
       it != entries->rend() && replayed < config_.cache_warmup.max_requests;
       ++it) {
    const obs::RequestLogEntry& e = *it;
    if (!e.ok) continue;
    SuggestionRequest request;
    request.query = e.query;
    request.user = e.user;
    request.timestamp = e.timestamp;
    request.context = e.context;
    const SuggestionCache::CacheKey key =
        SuggestionCache::KeyOf(request, e.k, /*generation=*/0);
    if (!seen.insert(key.full).second) continue;
    ++replayed;
    replayed_total.Increment();
    bool hit = false;
    const size_t primary = router_.QueryShardOf(request.query);
    auto result = SuggestImpl(request, e.k, DegradationRung::kFull, build,
                              primary, /*stats=*/nullptr, &hit);
    if (hit) {
      hits_total.Increment();
    } else if (result.ok()) {
      filled_total.Increment();
    }
  }
}

void ShardedEngine::Publish(std::shared_ptr<const ShardedBuild> next) {
  FaultInjector& injector = FaultInjector::Default();
  std::lock_guard<std::mutex> lock(pub_mu_);
  for (size_t s = 0; s < slots_.size(); ++s) {
    injector.Hit(faults::kShardSwap);
    if (injector.Value(faults::kShardSwapHoldback, -1) ==
        static_cast<int64_t>(s)) {
      // This slot keeps serving its previous build ("one shard mid-swap");
      // AcquireConsistent falls back to the newest build every slot holds.
      continue;
    }
    slots_[s] = next;
    states_[s]->generation->Set(
        static_cast<double>(next->shard_generation[s]));
  }
  latest_ = std::move(next);
}

std::shared_ptr<const ShardedBuild> ShardedEngine::AcquireConsistent() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  std::shared_ptr<const ShardedBuild> oldest = slots_[0];
  for (size_t s = 1; s < slots_.size(); ++s) {
    if (slots_[s]->build_id < oldest->build_id) oldest = slots_[s];
  }
  return oldest;
}

void ShardedEngine::SyncShards() {
  std::lock_guard<std::mutex> lock(pub_mu_);
  for (size_t s = 0; s < slots_.size(); ++s) {
    slots_[s] = latest_;
    states_[s]->generation->Set(
        static_cast<double>(latest_->shard_generation[s]));
  }
}

}  // namespace pqsda
