#include "core/personalizer.h"

#include <cstdint>
#include <unordered_map>

#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"
#include "rank/borda.h"

namespace pqsda {

double Personalizer::PreferenceScore(UserId user,
                                     const std::string& query) const {
  size_t doc = corpus_->DocumentOf(user);
  if (doc == SIZE_MAX) return 0.0;
  return upm_->PreferenceScore(doc, corpus_->WordIds(query));
}

std::vector<Suggestion> Personalizer::Rerank(
    UserId user, const std::vector<Suggestion>& list) const {
  static obs::Histogram& rerank_us = obs::MetricsRegistry::Default()
      .GetHistogram("pqsda.suggest.personalization_us");
  obs::TraceSpan span("personalization");
  obs::StageScope stage(obs::ProfileStage::kPersonalization);
  obs::ScopedTimer timer(rerank_us);
  size_t doc = corpus_->DocumentOf(user);
  if (doc == SIZE_MAX || list.empty()) {
    span.Annotate("known_user", std::string("false"));
    return list;
  }
  span.Annotate("candidates", static_cast<int64_t>(list.size()));
  std::vector<std::string> items;
  std::vector<double> prefs;
  items.reserve(list.size());
  for (const Suggestion& s : list) {
    items.push_back(s.query);
    prefs.push_back(upm_->PreferenceScore(doc, corpus_->WordIds(s.query)));
  }
  std::vector<Suggestion> preference_ranking = RankByScore(items, prefs);

  // Explain seam: record each candidate's Eq. 31 preference score and the
  // Borda points both source lists award it. One thread-local load on
  // unsampled requests.
  if (obs::ExplainRecord* er = obs::CurrentExplain();
      er != nullptr && !er->candidates.empty()) {
    er->personalized = true;
    er->preference_weight = preference_weight_;
    const size_t n = list.size();
    std::unordered_map<std::string, size_t> div_rank, pref_rank;
    div_rank.reserve(n);
    pref_rank.reserve(n);
    for (size_t i = 0; i < n; ++i) div_rank[list[i].query] = i;
    for (size_t i = 0; i < n; ++i) pref_rank[preference_ranking[i].query] = i;
    std::unordered_map<std::string, double> pref_score;
    pref_score.reserve(n);
    for (size_t i = 0; i < n; ++i) pref_score[items[i]] = prefs[i];
    for (obs::ExplainCandidate& c : er->candidates) {
      auto dit = div_rank.find(c.query);
      auto pit = pref_rank.find(c.query);
      if (dit == div_rank.end() || pit == pref_rank.end()) continue;
      c.upm_preference = pref_score[c.query];
      // BordaAggregate awards n - rank points per list; the preference list
      // appears preference_weight_ times.
      c.borda_diversification = static_cast<double>(n - dit->second);
      c.borda_preference = static_cast<double>(preference_weight_) *
                           static_cast<double>(n - pit->second);
    }
  }

  std::vector<std::vector<Suggestion>> lists = {list};
  for (size_t i = 0; i < preference_weight_; ++i) {
    lists.push_back(preference_ranking);
  }
  return BordaAggregate(lists);
}

}  // namespace pqsda
