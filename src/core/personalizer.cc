#include "core/personalizer.h"

#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"
#include "rank/borda.h"

namespace pqsda {

double Personalizer::PreferenceScore(UserId user,
                                     const std::string& query) const {
  size_t doc = corpus_->DocumentOf(user);
  if (doc == SIZE_MAX) return 0.0;
  return upm_->PreferenceScore(doc, corpus_->WordIds(query));
}

std::vector<Suggestion> Personalizer::Rerank(
    UserId user, const std::vector<Suggestion>& list) const {
  static obs::Histogram& rerank_us = obs::MetricsRegistry::Default()
      .GetHistogram("pqsda.suggest.personalization_us");
  obs::TraceSpan span("personalization");
  obs::StageScope stage(obs::ProfileStage::kPersonalization);
  obs::ScopedTimer timer(rerank_us);
  size_t doc = corpus_->DocumentOf(user);
  if (doc == SIZE_MAX || list.empty()) {
    span.Annotate("known_user", std::string("false"));
    return list;
  }
  span.Annotate("candidates", static_cast<int64_t>(list.size()));
  std::vector<std::string> items;
  std::vector<double> prefs;
  items.reserve(list.size());
  for (const Suggestion& s : list) {
    items.push_back(s.query);
    prefs.push_back(upm_->PreferenceScore(doc, corpus_->WordIds(s.query)));
  }
  std::vector<Suggestion> preference_ranking = RankByScore(items, prefs);
  std::vector<std::vector<Suggestion>> lists = {list};
  for (size_t i = 0; i < preference_weight_; ++i) {
    lists.push_back(preference_ranking);
  }
  return BordaAggregate(lists);
}

}  // namespace pqsda
