#include "core/admission.h"

#include <string>

#include "common/fault_injector.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"

namespace pqsda {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

Status AdmissionController::Admit() const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Counter& admitted_total =
      reg.GetCounter("pqsda.robust.admitted_total");
  static obs::Counter& shed_total = reg.GetCounter("pqsda.robust.shed_total");

  if (!enabled()) {
    admitted_total.Increment();
    return Status::OK();
  }

  FaultInjector& injector = FaultInjector::Default();
  if (options_.max_queue_depth > 0) {
    const ThreadPool& pool =
        options_.pool != nullptr ? *options_.pool : ThreadPool::Shared();
    const char* depth_point = options_.queue_depth_point.empty()
                                  ? faults::kQueueDepth
                                  : options_.queue_depth_point.c_str();
    // Queued tasks plus requests executing right now: single-request
    // serving runs on the calling thread without ever enqueuing, so queue
    // depth alone is blind to it (the wired in-flight counter is what makes
    // the gate react to non-batch load).
    uint64_t live = pool.QueueDepth();
    if (options_.inflight != nullptr) {
      live += options_.inflight->load(std::memory_order_relaxed);
    }
    const int64_t depth =
        injector.Value(depth_point, static_cast<int64_t>(live));
    if (depth > static_cast<int64_t>(options_.max_queue_depth)) {
      shed_total.Increment();
      return Status::Unavailable(
          "load shed: queue depth + in-flight " + std::to_string(depth) +
          " > " + std::to_string(options_.max_queue_depth));
    }
  }
  if (options_.max_p95_us > 0.0) {
    // The injector override carries microseconds directly (int64); the live
    // reading merges the trailing window of the configured latency
    // histogram — the controller's own (a per-shard window for per-shard
    // gates) or the global serving telemetry when none is wired.
    const char* p95_point = options_.p95_point.empty()
                                ? faults::kP95Us
                                : options_.p95_point.c_str();
    const int64_t fake = injector.Value(p95_point, -1);
    const obs::SlidingWindowHistogram& latency =
        options_.latency != nullptr
            ? *options_.latency
            : obs::ServingTelemetry::Default().latency();
    const double p95 =
        fake >= 0 ? static_cast<double>(fake)
                  : latency.SnapshotOver(options_.p95_window_ns).p95;
    if (p95 > options_.max_p95_us) {
      shed_total.Increment();
      return Status::Unavailable(
          "load shed: windowed p95 " + std::to_string(p95) + "us > " +
          std::to_string(options_.max_p95_us) + "us");
    }
  }
  admitted_total.Increment();
  return Status::OK();
}

}  // namespace pqsda
