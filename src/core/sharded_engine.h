#ifndef PQSDA_CORE_SHARDED_ENGINE_H_
#define PQSDA_CORE_SHARDED_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "core/engine_config.h"
#include "core/index_manager.h"
#include "core/shard_router.h"
#include "graph/compact_builder.h"
#include "graph/shard_partition.h"
#include "suggest/suggest_stats.h"
#include "suggest/suggestion_cache.h"

namespace pqsda {

/// Knobs of the sharded scatter-gather serving path.
struct ShardedEngineOptions {
  /// Number of index shards (per-shard snapshot slot, admission gate and
  /// single-threaded serving lane). 1 is a valid degenerate configuration —
  /// the differential harness uses it as the bridge case.
  size_t shards = 4;
  /// Hot-boundary replication threshold (see ShardPartitionOptions). 0
  /// disables replication.
  size_t hot_row_min_degree = 48;
  /// Worker threads per shard lane. The lanes exist for *admission
  /// isolation* (each shard's queue depth is its own shedding signal), so 1
  /// is the intended size.
  size_t lane_threads = 1;
  /// Per-shard admission gates, same semantics as AdmissionOptions: a
  /// request sheds at its primary shard's gate, a cross-shard fetch degrades
  /// (only) the refusing shard. 0 disables each gate. The queue-depth gate
  /// reads the shard's lane depth plus its in-flight request count (the
  /// single-request path executes on the calling thread, so queued tasks
  /// alone would miss it); the p95 gate reads the shard's *own* latency
  /// window, never the process-wide percentile — one slow shard must not
  /// trip every shard's gate.
  size_t shard_queue_depth = 0;
  double shard_p95_us = 0.0;
  /// Per-fetch deadline floor (microseconds): a cross-shard fetch is not
  /// attempted once the request's remaining deadline budget falls below
  /// this — the owning shard is classified kShardDeadline on touch and its
  /// cold rows drop, spending what little budget remains on finishing the
  /// pipeline instead of on remote reads that would blow the deadline. The
  /// default matches RobustnessOptions::cache_only_below_us: a budget that
  /// has collapsed into cache-only territory mid-request stops paying for
  /// fetches. 0 disables the floor (expired deadlines still refuse
  /// fetches). Requests without a deadline are unaffected.
  double fetch_budget_floor_us = 2'000.0;
};

/// One immutable published state of the sharded engine: the underlying
/// full snapshot (single global build — the cfiqf weighting carries a global
/// IQF term, so shards cannot rebuild independently yet; see ROADMAP), its
/// partition, and the per-component generation vector the cache validates
/// against. `shard_generation[s]` bumps only when shard s's
/// content_fingerprint changed in a rebuild, which is what makes a
/// single-shard delta invalidate only cache entries that touched s.
struct ShardedBuild {
  uint64_t build_id = 0;
  std::shared_ptr<const IndexSnapshot> base;
  ShardPartition partition;
  std::vector<uint64_t> shard_generation;
  /// Generation of the UPM/personalizer (component id 0xFFFFFFFF in cache
  /// validation vectors); bumps on every rebuild that retrained it.
  uint64_t upm_generation = 0;
};

/// Per-request scatter-gather state shared between the coordinator and its
/// walk backend. Public so the merge-correctness unit tests can drive
/// ShardedWalkBackend directly against adversarial inputs.
///
/// The walk backend reads only `mb` + `partition` (+ routing state), so the
/// context works without a ShardedBuild: the unsharded engine instantiates
/// it over a snapshot's validation partition to *track* which fingerprinted
/// components a request read (every shard classified kShardFull, no
/// fetches), which is how delta-aware cache entries learn their
/// ValidationVector. The sharded engine's SuggestImpl sets all three.
struct ShardServingContext {
  static constexpr uint32_t kUpmComponent = 0xFFFFFFFFu;

  const ShardedBuild* build = nullptr;
  /// The representation and partition the walk reads. With a ShardedBuild
  /// these are build->base->mb / &build->partition.
  const MultiBipartite* mb = nullptr;
  const ShardPartition* partition = nullptr;
  ShardRouter router;
  /// The request's home shard (query-hash). Its rung is preset kShardFull:
  /// request-level admission already passed there.
  size_t primary = 0;
  /// Engine-supplied classification of a shard on first touch:
  /// SuggestStats::kShardFull or kShardDegraded/kShardDeadline. Resolved
  /// once per shard per request (cached in `rung`), on the coordinating
  /// thread only.
  std::function<uint8_t(size_t)> classify;
  /// Per-shard serving rung, SuggestStats::kShardUntouched until touched.
  std::vector<uint8_t> rung;
  /// True when any touched shard served degraded (cold rows dropped).
  bool partial = false;
  /// Cross-shard row fetches served per shard (primary-local and hot-row
  /// reads are not fetches).
  std::vector<uint32_t> shard_fetches;

  /// Classification of shard `s` for this request, resolved and cached on
  /// first call. Must be called from the coordinating thread.
  uint8_t Touch(size_t s);
  size_t TouchedShards() const;

  /// The representation / partition the walk reads, falling back to the
  /// ShardedBuild when the explicit pointers were not set (existing tests
  /// construct contexts with only `build`).
  const MultiBipartite& rep() const {
    return mb != nullptr ? *mb : *build->base->mb;
  }
  const ShardPartition& part() const {
    return partition != nullptr ? *partition : build->partition;
  }
};

/// CompactWalkBackend over a ShardPartition: hot and primary-owned rows are
/// read locally; every other row is a fetch against its owning shard,
/// subject to that shard's admission/deadline state. Contributions are
/// *computed* wherever the row lives but *summed* in the exact canonical
/// order of the local walk (see the CompactWalkBackend bitwise contract), so
/// a fully-admitted scatter-gather request is bitwise-equal to the unsharded
/// engine — the property tests/sharding_test.cc enforces across shard
/// counts, thread counts and rebuild churn.
class ShardedWalkBackend final : public CompactWalkBackend {
 public:
  /// `lanes` (one pool per shard, may be empty) are used for cross-shard
  /// Step fetches only when the calling thread is not itself a pool worker;
  /// on any worker thread fetches run inline, mirroring the repo's
  /// nested-parallelism degradation (no lane-vs-lane deadlock by
  /// construction).
  ShardedWalkBackend(ShardServingContext* ctx, std::vector<ThreadPool*> lanes)
      : ctx_(ctx), lanes_(std::move(lanes)) {}

  Status Step(BipartiteKind kind, const FlatMap<StringId, double>& mass,
              double scale, FlatMap<StringId, double>& out) const override;

  Status QueryRow(BipartiteKind kind, StringId query,
                  std::span<const uint32_t>& indices,
                  std::span<const double>& values) const override;

 private:
  ShardServingContext* ctx_;
  std::vector<ThreadPool*> lanes_;
};

/// Scatter-gather serving over a sharded index: requests route to a primary
/// shard (admission + lane), the §IV-A expansion gathers rows from the
/// shards that own them, and the merged compact representation then runs the
/// unchanged solve/selection/personalization pipeline — so served lists are
/// semantically (in fact bitwise) identical to the unsharded PqsdaEngine
/// while admission capacity scales with the shard count and a slow shard
/// degrades alone instead of taking the request down.
class ShardedEngine {
 public:
  static StatusOr<std::unique_ptr<ShardedEngine>> Build(
      std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config,
      const ShardedEngineOptions& options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// One request through admission (primary shard's gate), the consistent-
  /// cut build acquisition, and the scatter-gather pipeline. `stats`, when
  /// non-null, additionally receives the per-shard serving rungs and the
  /// partial-merge flag on top of the usual pipeline breakdown.
  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k,
                                            SuggestStats* stats = nullptr) const;

  /// Routes each request onto its primary shard's lane, admitting at submit
  /// time against that lane's queue depth — this is what makes admitted
  /// throughput scale with the shard count: N lanes shed independently at
  /// depth D instead of one global gate shedding at depth D. Results arrive
  /// in request order; a shed request's slot holds the kUnavailable status.
  std::vector<StatusOr<std::vector<Suggestion>>> SuggestBatch(
      std::span<const SuggestionRequest> requests, size_t k) const;

  /// Live ingestion into the global delta buffer (kUnavailable past the
  /// configured backpressure bound). Crossing the rebuild threshold
  /// schedules one coalescing rebuild task on the dedicated rebuild thread
  /// — never on a serving lane, which must stay free for request work (a
  /// global rebuild parked on a single-threaded lane would make that shard
  /// slow/shedding for the whole build).
  Status Ingest(QueryLogRecord record);
  /// Drains the delta buffer and rebuilds/publishes on the calling thread
  /// (no-op OK when empty). Serialized against the async rebuild task.
  Status RebuildNow();
  /// Blocks until no asynchronous rebuild task is scheduled or running.
  void WaitForRebuilds();

  /// The consistent cut: the newest build *every* shard slot can serve —
  /// i.e. the minimum build_id across the per-shard publication slots. With
  /// no swap in flight all slots agree; while one shard holds back
  /// mid-swap, requests pin the previous build whole, so they stay
  /// bitwise-equal to an unsharded engine at that record set (never a mix
  /// of generations).
  std::shared_ptr<const ShardedBuild> AcquireConsistent() const;

  /// Test hook: republishes the newest build to every shard slot (used
  /// after a faults::kShardSwapHoldback experiment is disarmed).
  void SyncShards();

  size_t shards() const { return options_.shards; }
  const ShardRouter& router() const { return router_; }
  const ShardedEngineOptions& options() const { return options_; }
  const SuggestionCache* cache() const { return cache_.get(); }
  /// Null when the negative-result cache is disabled.
  const NegativeSuggestionCache* negative_cache() const {
    return negative_cache_.get();
  }
  size_t delta_depth() const;

  /// The degradation rung a request admitted now would be served at (same
  /// ladder as PqsdaEngine::ChooseRung; fires faults::kAdmission).
  DegradationRung ChooseRung(const SuggestionRequest& request) const;

 private:
  struct ShardState;

  ShardedEngine() = default;

  StatusOr<std::vector<Suggestion>> SuggestAdmitted(
      const SuggestionRequest& request, size_t k, size_t primary,
      SuggestStats* stats) const;
  StatusOr<std::vector<Suggestion>> SuggestImpl(
      const SuggestionRequest& request, size_t k, DegradationRung rung,
      const ShardedBuild& build, size_t primary, SuggestStats* stats,
      bool* cache_hit) const;

  /// One drain -> build -> publish cycle over `batch` (serialized by
  /// build_mu_). Empty batch is a no-op OK.
  Status RebuildWith(std::vector<QueryLogRecord> batch);
  /// Body of the async rebuild task: drain-build-publish until the delta
  /// buffer is empty, then clear the scheduled flag.
  void RebuildLoop();
  /// Swaps `next` into the per-shard publication slots (each slot fires
  /// faults::kShardSwap and honors faults::kShardSwapHoldback) and updates
  /// the per-shard generation gauges.
  void Publish(std::shared_ptr<const ShardedBuild> next);
  /// Post-swap warmup on the rebuild thread: replays the tail of the
  /// configured JSONL request log through SuggestImpl against `build`, so
  /// head queries are resident before traffic asks for them. No-op when
  /// warmup or the cache is disabled.
  void WarmupCache(const ShardedBuild& build) const;

  PqsdaEngineConfig config_;
  ShardedEngineOptions options_;
  ShardRouter router_;

  std::vector<std::unique_ptr<ShardState>> states_;
  std::unique_ptr<SuggestionCache> cache_;
  std::unique_ptr<NegativeSuggestionCache> negative_cache_;

  RobustnessOptions robustness_;
  PqsdaDiversifierOptions truncated_options_;
  PqsdaDiversifierOptions walk_only_options_;

  /// Per-shard publication slots + the newest build. pub_mu_ guards only
  /// the shared_ptr swaps/copies.
  mutable std::mutex pub_mu_;
  std::vector<std::shared_ptr<const ShardedBuild>> slots_;
  std::shared_ptr<const ShardedBuild> latest_;

  /// Global delta buffer (single build path — see ShardedBuild).
  mutable std::mutex delta_mu_;
  std::vector<QueryLogRecord> delta_;
  bool rebuild_scheduled_ = false;
  mutable std::condition_variable rebuild_idle_;

  /// Serializes builds (async task vs RebuildNow).
  std::mutex build_mu_;

  /// Runs the coalescing RebuildLoop tasks. Declared last so it is joined
  /// first in destruction, while every member a rebuild touches is alive.
  std::unique_ptr<ThreadPool> rebuild_pool_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_SHARDED_ENGINE_H_
