#include "core/pqsda_engine.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "common/fault_injector.h"
#include "common/timer.h"
#include "core/sharded_engine.h"
#include "eval/diversity.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace pqsda {

namespace {

// The shared result fingerprint: FNV-1a 64 over each served query's bytes
// and its score's bit pattern, in rank order. The request log, the explain
// record and replay verification all agree on this definition.
uint64_t FingerprintOf(const std::vector<Suggestion>& list) {
  obs::Fingerprint64 fp;
  for (const Suggestion& s : list) {
    fp.Mix(s.query);
    fp.MixDouble(s.score);
  }
  return fp.value();
}

// Remaps the pipeline-order attribution candidates onto the served list:
// final_rank/score become the served position and Suggestion::score (the
// §V-B rerank may have reordered), then the candidates sort into served
// order. A candidate that fell out of the served list keeps SIZE_MAX and
// sorts last.
void AlignExplainToServed(obs::ExplainRecord& record,
                          const std::vector<Suggestion>& served) {
  std::unordered_map<std::string, size_t> rank_of;
  rank_of.reserve(served.size());
  for (size_t i = 0; i < served.size(); ++i) rank_of[served[i].query] = i;
  for (obs::ExplainCandidate& c : record.candidates) {
    auto it = rank_of.find(c.query);
    if (it == rank_of.end()) {
      c.final_rank = SIZE_MAX;
      continue;
    }
    c.final_rank = it->second;
    c.score = served[it->second].score;
  }
  std::stable_sort(record.candidates.begin(), record.candidates.end(),
                   [](const obs::ExplainCandidate& a,
                      const obs::ExplainCandidate& b) {
                     return a.final_rank < b.final_rank;
                   });
}

}  // namespace

StatusOr<std::unique_ptr<PqsdaEngine>> PqsdaEngine::Build(
    std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config) {
  auto snapshot = BuildIndexSnapshot(std::move(records), config,
                                     /*generation=*/0);
  if (!snapshot.ok()) return snapshot.status();

  std::unique_ptr<PqsdaEngine> engine(new PqsdaEngine());
  engine->index_ =
      std::make_unique<IndexManager>(std::move(*snapshot), config);
  if (config.cache_capacity > 0) {
    SuggestionCacheOptions cache_options;
    cache_options.capacity = config.cache_capacity;
    cache_options.shards = config.cache_shards;
    cache_options.policy = config.cache_policy;
    cache_options.name = "suggest";
    engine->cache_ = std::make_unique<SuggestionCache>(cache_options);
  }
  if (config.negative_cache_capacity > 0) {
    engine->negative_cache_ = std::make_unique<NegativeSuggestionCache>(
        config.negative_cache_capacity);
  }
  engine->cache_delta_aware_ = config.cache_delta_aware;
  engine->warmup_ = config.cache_warmup;
  if (engine->cache_ != nullptr && !config.cache_warmup.log_path.empty()) {
    // Post-swap warmup runs on the rebuild thread via the manager's
    // post-publish hook. The raw pointer is safe: index_ is declared last
    // in the engine, so ~IndexManager joins every rebuild (and with it any
    // running hook) before the caches or this object's other members die.
    PqsdaEngine* raw = engine.get();
    engine->index_->SetPostPublishHook(
        [raw](const std::shared_ptr<const IndexSnapshot>& snap) {
          raw->WarmupCache(*snap);
        });
  }
  engine->robustness_ = config.robustness;
  AdmissionOptions admission_options;
  admission_options.max_queue_depth = config.robustness.shed_queue_depth;
  admission_options.max_p95_us = config.robustness.shed_p95_us;
  engine->admission_ = AdmissionController(admission_options);
  // Rung 1: same pipeline, hard caps on the iterative work. A non-converged
  // iterate is served (accept_nonconverged) — visibly, via stats/metrics.
  engine->truncated_options_ = config.diversifier;
  engine->truncated_options_.regularization.solver_options.max_iterations =
      config.robustness.truncated_max_iterations;
  engine->truncated_options_.regularization.solver_options.tolerance =
      config.robustness.truncated_tolerance;
  engine->truncated_options_.regularization.accept_nonconverged = true;
  engine->truncated_options_.hitting_iterations =
      std::min(config.diversifier.hitting_iterations,
               config.robustness.truncated_hitting_iterations);
  // Rung 2: walk-only candidates.
  engine->walk_only_options_ = config.diversifier;
  engine->walk_only_options_.walk_only = true;
  return engine;
}

StatusOr<std::vector<Suggestion>> PqsdaEngine::Suggest(
    const SuggestionRequest& request, size_t k, SuggestStats* stats,
    obs::ExplainRecord* explain) const {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Counter& requests_total =
      reg.GetCounter("pqsda.suggest.requests_total");
  static obs::Counter& errors_total =
      reg.GetCounter("pqsda.suggest.errors_total");
  static obs::Counter& not_found_total =
      reg.GetCounter("pqsda.suggest.not_found_total");
  static obs::Counter& traced_total =
      reg.GetCounter("pqsda.suggest.traced_total");
  static obs::Histogram& latency_us =
      reg.GetHistogram("pqsda.suggest.latency_us");
  static obs::Counter* rung_totals[4] = {
      &reg.GetCounter("pqsda.robust.rung_full_total"),
      &reg.GetCounter("pqsda.robust.rung_truncated_total"),
      &reg.GetCounter("pqsda.robust.rung_walk_only_total"),
      &reg.GetCounter("pqsda.robust.rung_cache_only_total")};
  static obs::Counter& deadline_exceeded_total =
      reg.GetCounter("pqsda.robust.deadline_exceeded_total");
  static obs::Counter& cancelled_total =
      reg.GetCounter("pqsda.robust.cancelled_total");

  requests_total.Increment();
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Default();
  const uint64_t request_id = telemetry.NextRequestId();

  // Admission first: an overloaded server answers kUnavailable in
  // microseconds instead of joining the queue it is already losing.
  Status admit = admission_.Admit();
  if (!admit.ok()) {
    if (stats != nullptr) {
      *stats = SuggestStats{};
      stats->shed = true;
    }
    telemetry.RecordRequest(/*latency_us=*/0.0, /*ok=*/false,
                            /*not_found=*/false, cache_ != nullptr,
                            /*cache_hit=*/false, /*shed=*/true);
    return admit;
  }

  // Pin the index for the request's whole lifetime: everything below reads
  // this one snapshot, so a concurrent rebuild swap can neither block nor
  // tear this request, and the snapshot outlives the call via the
  // shared_ptr even if it stops being the published one mid-pipeline.
  const std::shared_ptr<const IndexSnapshot> snap = index_->Acquire();

  // The ladder rung is fixed here, once, from the remaining budget — the
  // pipeline below never re-escalates mid-request.
  const DegradationRung rung = ChooseRung(request);
  rung_totals[static_cast<size_t>(rung)]->Increment();

  // With stats requested, the whole request runs under one trace; the
  // diversifier's and personalizer's stage spans attach to it. Without
  // stats, the telemetry layer head-samples requests into the /tracez ring.
  const bool trace_sampled = stats == nullptr && telemetry.SampleTrace();
  std::optional<obs::TraceCollector> collector;
  if (stats != nullptr || trace_sampled) collector.emplace("suggest");

  // Explain: collected when the caller asked (explain != nullptr) or when
  // head sampling selected this request for the /explainz ring. The record
  // is heap-held behind a shared_ptr because the store publishes it to
  // scrape threads after the request finishes.
  const bool explain_sampled = telemetry.SampleExplain();
  std::shared_ptr<obs::ExplainRecord> erec;
  if (explain != nullptr || explain_sampled) {
    erec = std::make_shared<obs::ExplainRecord>();
  }

  // The profiler brackets exactly the admitted request on this thread; the
  // pipeline's stage scopes fold into this bracket and EndRequest attributes
  // the whole to the rung chosen above.
  obs::StageProfiler& profiler = obs::StageProfiler::Default();
  profiler.BeginRequest();
  WallTimer wall;
  bool cache_hit = false;
  StatusOr<std::vector<Suggestion>> result = Status::Internal("unset");
  {
    // The scope installs the record as the thread's explain sink for exactly
    // the pipeline's duration; the diversifier and personalizer write their
    // score terms through obs::CurrentExplain().
    std::optional<obs::ExplainScope> explain_scope;
    if (erec != nullptr) explain_scope.emplace(erec.get());
    result = SuggestImpl(request, k, rung, *snap, stats, &cache_hit);
  }
  const double elapsed_us = static_cast<double>(wall.ElapsedNanos()) * 1e-3;
  profiler.EndRequest(static_cast<size_t>(rung));
  const int64_t total_us = static_cast<int64_t>(elapsed_us);
  latency_us.Observe(elapsed_us);

  const bool ok = result.ok();
  const bool not_found =
      !ok && result.status().code() == StatusCode::kNotFound;
  if (!ok) {
    // A cold query (NotFound) is routine traffic, not an internal failure;
    // serving dashboards alert on errors_total only.
    (not_found ? not_found_total : errors_total).Increment();
    if (result.status().code() == StatusCode::kDeadlineExceeded) {
      deadline_exceeded_total.Increment();
    } else if (result.status().code() == StatusCode::kCancelled) {
      cancelled_total.Increment();
    }
  }
  telemetry.RecordRequest(elapsed_us, ok, not_found, cache_ != nullptr,
                          cache_hit, /*shed=*/false, request_id,
                          snap->generation + 1);

  // The fingerprint is only computed when something consumes it (explain
  // record or request log) — it is per-result work the unobserved request
  // path must not pay.
  obs::RequestLog* log = telemetry.request_log();
  uint64_t fingerprint = 0;
  if (ok && (erec != nullptr || log != nullptr)) {
    fingerprint = FingerprintOf(*result);
  }

  if (erec != nullptr) {
    erec->request_id = request_id;
    erec->query = request.query;
    erec->user = request.user;
    erec->k = k;
    erec->generation = snap->generation;
    erec->rung = static_cast<size_t>(rung);
    erec->cache_hit = cache_hit;
    erec->total_us = total_us;
    erec->ok = ok;
    erec->fingerprint = fingerprint;
    if (ok) {
      AlignExplainToServed(*erec, *result);
    } else {
      erec->status = result.status().ToString();
      erec->candidates.clear();
    }
    telemetry.explain_store().Add(erec);
    if (explain != nullptr) *explain = *erec;
  }

  // Online quality sampling runs after the latency was measured and
  // recorded, so the measurement itself never shows up in the percentiles
  // it is meant to explain.
  if (ok && telemetry.quality().Sample()) {
    telemetry.quality().Record(
        static_cast<size_t>(rung), cache_hit, ListSimpsonDiversity(*result),
        k > 0 ? static_cast<double>(result->size()) / static_cast<double>(k)
              : 0.0);
  }

  obs::SpanNode trace;
  bool have_trace = false;
  if (collector.has_value()) {
    trace = collector->Take();
    have_trace = true;
    traced_total.Increment();
    telemetry.RecordTrace(request_id, request.query, total_us, trace);
  }

  if (log != nullptr) {
    obs::RequestLogEntry entry;
    entry.request_id = request_id;
    entry.user = request.user;
    entry.query = request.query;
    entry.k = k;
    // Replay inputs: the full request (timestamp + context), the pinned
    // generation, the rung, and the result fingerprint replay must match.
    entry.timestamp = request.timestamp;
    entry.context = request.context;
    entry.generation = snap->generation;
    entry.rung = static_cast<size_t>(rung);
    entry.fingerprint = fingerprint;
    entry.total_us = total_us;
    entry.cache_hit = cache_hit;
    entry.ok = ok;
    if (!ok) entry.status = result.status().ToString();
    if (have_trace) {
      for (const char* stage :
           {"expansion", "regularization_solve", "hitting_time_selection",
            "personalization"}) {
        if (const obs::SpanNode* node = trace.Find(stage)) {
          entry.stage_us.emplace_back(stage, node->duration_us());
        }
      }
    }
    if (ok) {
      entry.suggestions.reserve(result->size());
      for (const Suggestion& s : *result) entry.suggestions.push_back(s.query);
    }
    log->Log(std::move(entry));
  }

  // Cache hits skip the pipeline: SuggestImpl already reset `stats`, and the
  // near-empty wrapper trace is deliberately not attached so a reused stats
  // struct reports "no stage trace" (TotalSpans()==1) as before.
  if (stats != nullptr && have_trace && !cache_hit) {
    stats->trace = std::move(trace);
  }
  return result;
}

StatusOr<std::vector<Suggestion>> PqsdaEngine::Replay(
    const obs::RequestLogEntry& entry, obs::ExplainRecord* explain) const {
  std::shared_ptr<const IndexSnapshot> snap =
      index_->AcquireGeneration(entry.generation);
  if (snap == nullptr) {
    return Status::NotFound(
        "generation " + std::to_string(entry.generation) +
        " is no longer live (oldest replayable generation is " +
        std::to_string(index_->oldest_live_generation()) +
        "); the request is not reproducible anymore");
  }

  SuggestionRequest request;
  request.query = entry.query;
  request.user = entry.user;
  request.timestamp = entry.timestamp;
  request.context = entry.context;

  // A logged cache hit was filled by an earlier full-rung compute, so with
  // the cache bypassed the full pipeline is what reproduces its list. A
  // cache-only *miss* replays as the same fast NotFound the original served.
  const DegradationRung rung =
      entry.cache_hit
          ? DegradationRung::kFull
          : static_cast<DegradationRung>(std::min<size_t>(entry.rung, 3));

  obs::ExplainRecord record;
  bool cache_hit = false;
  WallTimer wall;
  StatusOr<std::vector<Suggestion>> result = Status::Internal("unset");
  {
    // Nested scope: replay may run on a serving thread mid-conversation
    // (the CLI), and the previous sink is restored on exit.
    std::optional<obs::ExplainScope> scope;
    if (explain != nullptr) scope.emplace(&record);
    result = SuggestImpl(request, entry.k, rung, *snap, /*stats=*/nullptr,
                         &cache_hit, /*bypass_cache=*/true);
  }
  if (explain != nullptr) {
    record.request_id = entry.request_id;
    record.query = entry.query;
    record.user = entry.user;
    record.k = entry.k;
    record.generation = snap->generation;
    record.rung = static_cast<size_t>(rung);
    record.cache_hit = false;  // the replayed execution itself never hits
    record.total_us = wall.ElapsedMicros();
    record.ok = result.ok();
    if (result.ok()) {
      record.fingerprint = FingerprintOf(*result);
      AlignExplainToServed(record, *result);
    } else {
      record.status = result.status().ToString();
      record.candidates.clear();
    }
    *explain = std::move(record);
  }
  return result;
}

DegradationRung PqsdaEngine::ChooseRung(const SuggestionRequest& request) const {
  // Injection point first, so an armed clock jump here shapes the very
  // budget reading the ladder decides on.
  FaultInjector::Default().Hit(faults::kAdmission);
  size_t rung = std::min<size_t>(robustness_.min_rung, 3);
  if (request.cancel != nullptr && request.cancel->has_deadline()) {
    const int64_t remaining_us = request.cancel->RemainingNanos() / 1000;
    size_t budget_rung = 0;
    if (remaining_us < robustness_.cache_only_below_us) {
      budget_rung = 3;
    } else if (remaining_us < robustness_.walk_only_below_us) {
      budget_rung = 2;
    } else if (remaining_us < robustness_.truncated_below_us) {
      budget_rung = 1;
    }
    rung = std::max(rung, budget_rung);
  }
  return static_cast<DegradationRung>(rung);
}

StatusOr<std::vector<Suggestion>> PqsdaEngine::SuggestImpl(
    const SuggestionRequest& request, size_t k, DegradationRung rung,
    const IndexSnapshot& snap, SuggestStats* stats, bool* cache_hit,
    bool bypass_cache) const {
  static obs::Counter& personalized_total = obs::MetricsRegistry::Default()
      .GetCounter("pqsda.suggest.personalized_total");

  // Reset a reused stats struct before any work: no trace, solver or
  // selection number of a previous request may survive *any* exit path —
  // cache hit, error, cancellation, deadline.
  if (stats != nullptr) {
    *stats = SuggestStats{};
    stats->degradation_rung = static_cast<size_t>(rung);
  }

  SuggestionCache::CacheKey cache_key;
  SuggestionCache::Validator validator;
  const bool use_cache =
      (cache_ != nullptr || negative_cache_ != nullptr) && !bypass_cache;
  const bool delta_aware = cache_delta_aware_ && snap.validation.shards > 0;
  if (use_cache) {
    if (delta_aware) {
      // Delta-aware mode: the key carries generation 0 and the entry
      // instead records, per validation component it read, the generation
      // that last changed that component's content. A swap that left those
      // components byte-identical leaves the entry servable.
      cache_key = SuggestionCache::KeyOf(request, k, /*generation=*/0);
      validator = [&snap](const SuggestionCache::ValidationVector& components)
          -> CacheValidity {
        bool stale = false;
        for (const auto& [component, gen] : components) {
          uint64_t current;
          if (component == ShardServingContext::kUpmComponent) {
            current = snap.upm_generation;
          } else if (component < snap.validation_generation.size()) {
            current = snap.validation_generation[component];
          } else {
            return CacheValidity::kStale;
          }
          // Newer than this snapshot: the entry belongs to a generation
          // built after the one this request pinned (replay of a retired
          // generation racing a warmup fill). Miss, but keep the entry —
          // it is perfectly valid for current-generation readers.
          if (gen > current) return CacheValidity::kMismatch;
          if (gen < current) stale = true;
        }
        return stale ? CacheValidity::kStale : CacheValidity::kValid;
      };
    } else {
      // Whole-generation mode: the snapshot generation is part of the key,
      // so after a swap a pre-swap entry can never answer a post-swap
      // request — stale lists age out of the policy instead of being
      // served.
      cache_key = SuggestionCache::KeyOf(request, k, snap.generation);
    }
  }
  if (cache_ != nullptr && !bypass_cache) {
    std::vector<Suggestion> cached;
    bool hit;
    {
      obs::StageScope cache_scope(obs::ProfileStage::kCache);
      obs::StageProfiler::AddWork(obs::ProfileStage::kCache, 1);
      hit = cache_->Lookup(cache_key, &cached, validator);
    }
    if (hit) {
      *cache_hit = true;
      if (stats != nullptr) stats->suggestions_returned = cached.size();
      return cached;
    }
  }
  // The negative cache absorbs NotFound storms: a remembered miss answers
  // without touching the index, validated by the same component
  // generations so an ingest that makes the query known invalidates it.
  if (negative_cache_ != nullptr && !bypass_cache &&
      negative_cache_->Lookup(cache_key, validator)) {
    if (stats != nullptr) stats->negative_cache_hit = true;
    return Status::NotFound("no suggestions for \"" + request.query +
                            "\" (negative cache)");
  }
  if (rung == DegradationRung::kCacheOnly) {
    // The last rung does no pipeline work at all: a hit above served it, a
    // miss (or no cache) is a fast NotFound.
    return Status::NotFound("cache-only rung: no cached result for \"" +
                            request.query + "\"");
  }

  const PqsdaDiversifierOptions* options = &snap.diversifier->options();
  if (rung == DegradationRung::kTruncatedSolve) options = &truncated_options_;
  if (rung == DegradationRung::kWalkOnly) options = &walk_only_options_;

  // Delta-aware fills must know which validation components the request
  // read, so the full-rung pipeline runs over the tracking backend — the
  // scatter-gather seam with every shard local, bitwise-identical to the
  // plain walk (sharding differential tests pin that equivalence).
  const bool track = use_cache && delta_aware &&
                     rung == DegradationRung::kFull && snap.mb != nullptr;
  ShardServingContext ctx;
  StatusOr<DiversificationOutput> diversified = Status::Internal("unset");
  if (track) {
    ctx.mb = snap.mb.get();
    ctx.partition = &snap.validation;
    ctx.router.shards = snap.validation.shards;
    ctx.primary = ctx.router.QueryShardOf(request.query);
    ctx.rung.assign(snap.validation.shards, SuggestStats::kShardUntouched);
    ctx.shard_fetches.assign(snap.validation.shards, 0);
    ctx.rung[ctx.primary] = SuggestStats::kShardFull;
    ShardedWalkBackend backend(&ctx, /*lanes=*/{});
    PqsdaDiversifier tracking(*snap.mb, *options, &backend);
    diversified = tracking.DiversifyWith(request, k, *options, stats);
  } else {
    diversified = snap.diversifier->DiversifyWith(request, k, *options, stats);
  }
  if (!diversified.ok()) {
    const Status status = diversified.status();
    // Remember full-rung NotFounds, stamped with the owning component's
    // generation (the verdict "this query is unknown" depends only on the
    // owner shard's content); an ingest that changes that shard re-asks.
    if (use_cache && negative_cache_ != nullptr &&
        rung == DegradationRung::kFull &&
        status.code() == StatusCode::kNotFound) {
      SuggestionCache::ValidationVector components;
      if (delta_aware) {
        ShardRouter router;
        router.shards = snap.validation.shards;
        const uint32_t owner =
            static_cast<uint32_t>(router.QueryShardOf(request.query));
        components.emplace_back(owner, snap.validation_generation[owner]);
      }
      negative_cache_->Insert(cache_key, std::move(components));
    }
    return status;
  }
  std::vector<Suggestion> list = std::move(diversified->candidates);
  // Personalization is skipped on the walk-only rung — the rerank reads the
  // UPM per candidate and the rung's point is a bounded answer.
  bool reranked = false;
  if (rung != DegradationRung::kWalkOnly && snap.personalizer != nullptr &&
      request.user != kNoUser) {
    list = snap.personalizer->Rerank(request.user, list);
    personalized_total.Increment();
    reranked = true;
    if (stats != nullptr) stats->personalized = true;
  }
  if (stats != nullptr) stats->suggestions_returned = list.size();
  // Only full-quality results may fill the cache: a degraded answer cached
  // under the same key would outlive the overload that justified it.
  if (cache_ != nullptr && !bypass_cache && rung == DegradationRung::kFull) {
    SuggestionCache::ValidationVector components;
    if (track) {
      for (size_t s = 0; s < ctx.rung.size(); ++s) {
        if (ctx.rung[s] != SuggestStats::kShardUntouched) {
          components.emplace_back(static_cast<uint32_t>(s),
                                  snap.validation_generation[s]);
        }
      }
      if (reranked) {
        components.emplace_back(ShardServingContext::kUpmComponent,
                                snap.upm_generation);
      }
    }
    cache_->Insert(cache_key, list, std::move(components));
  }
  return list;
}

void PqsdaEngine::WarmupCache(const IndexSnapshot& snap) const {
  if (cache_ == nullptr || warmup_.log_path.empty()) return;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Counter& replayed_total =
      reg.GetCounter("pqsda.cache.warmup_replayed_total");
  static obs::Counter& hits_total =
      reg.GetCounter("pqsda.cache.warmup_hits_total");
  static obs::Counter& filled_total =
      reg.GetCounter("pqsda.cache.warmup_filled_total");
  auto entries = obs::ReadRequestLog(warmup_.log_path, /*max_entries=*/0);
  if (!entries.ok()) return;
  // Newest entries first, deduplicated by cache key: the tail of the log is
  // the best estimate of the head of the live distribution.
  std::unordered_set<std::string> seen;
  size_t replayed = 0;
  const uint64_t key_generation = cache_delta_aware_ ? 0 : snap.generation;
  for (auto it = entries->rbegin();
       it != entries->rend() && replayed < warmup_.max_requests; ++it) {
    const obs::RequestLogEntry& e = *it;
    if (!e.ok) continue;
    SuggestionRequest request;
    request.query = e.query;
    request.user = e.user;
    request.timestamp = e.timestamp;
    request.context = e.context;
    const SuggestionCache::CacheKey key =
        SuggestionCache::KeyOf(request, e.k, key_generation);
    if (!seen.insert(key.full).second) continue;
    ++replayed;
    replayed_total.Increment();
    bool hit = false;
    auto result = SuggestImpl(request, e.k, DegradationRung::kFull, snap,
                              /*stats=*/nullptr, &hit);
    if (hit) {
      hits_total.Increment();
    } else if (result.ok()) {
      filled_total.Increment();
    }
  }
}

std::vector<StatusOr<std::vector<Suggestion>>> PqsdaEngine::SuggestBatch(
    std::span<const SuggestionRequest> requests, size_t k,
    ThreadPool* pool) const {
  static obs::Counter& batches_total = obs::MetricsRegistry::Default()
      .GetCounter("pqsda.suggest.batches_total");
  batches_total.Increment();
  if (pool == nullptr) pool = &ThreadPool::Shared();
  std::vector<StatusOr<std::vector<Suggestion>>> results(
      requests.size(), Status::Internal("request not served"));
  pool->ParallelFor(0, requests.size(), /*min_grain=*/1,
                    [this, &requests, &results, k](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        results[i] = Suggest(requests[i], k);
                      }
                    });
  return results;
}

}  // namespace pqsda
