#include "core/pqsda_engine.h"

#include "rank/borda.h"

namespace pqsda {

double Personalizer::PreferenceScore(UserId user,
                                     const std::string& query) const {
  size_t doc = corpus_->DocumentOf(user);
  if (doc == SIZE_MAX) return 0.0;
  return upm_->PreferenceScore(doc, corpus_->WordIds(query));
}

std::vector<Suggestion> Personalizer::Rerank(
    UserId user, const std::vector<Suggestion>& list) const {
  size_t doc = corpus_->DocumentOf(user);
  if (doc == SIZE_MAX || list.empty()) return list;
  std::vector<std::string> items;
  std::vector<double> prefs;
  items.reserve(list.size());
  for (const Suggestion& s : list) {
    items.push_back(s.query);
    prefs.push_back(upm_->PreferenceScore(doc, corpus_->WordIds(s.query)));
  }
  std::vector<Suggestion> preference_ranking = RankByScore(items, prefs);
  std::vector<std::vector<Suggestion>> lists = {list};
  for (size_t i = 0; i < preference_weight_; ++i) {
    lists.push_back(preference_ranking);
  }
  return BordaAggregate(lists);
}

StatusOr<std::unique_ptr<PqsdaEngine>> PqsdaEngine::Build(
    std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config) {
  if (records.empty()) {
    return Status::InvalidArgument("empty query log");
  }
  std::unique_ptr<PqsdaEngine> engine(new PqsdaEngine());
  SortByUserAndTime(records);
  engine->records_ = std::move(records);
  engine->sessions_ = Sessionize(engine->records_, config.sessionizer);
  engine->mb_ = std::make_unique<MultiBipartite>(MultiBipartite::Build(
      engine->records_, engine->sessions_, config.weighting));
  engine->corpus_ = std::make_unique<QueryLogCorpus>(
      QueryLogCorpus::Build(engine->records_, engine->sessions_));
  engine->diversifier_ =
      std::make_unique<PqsdaDiversifier>(*engine->mb_, config.diversifier);
  if (config.personalize) {
    engine->upm_ = std::make_unique<UpmModel>(config.upm);
    engine->upm_->Train(*engine->corpus_);
    engine->personalizer_ = std::make_unique<Personalizer>(
        *engine->upm_, *engine->corpus_, config.preference_borda_weight);
  }
  return engine;
}

StatusOr<std::vector<Suggestion>> PqsdaEngine::Suggest(
    const SuggestionRequest& request, size_t k) const {
  auto diversified = diversifier_->Suggest(request, k);
  if (!diversified.ok()) return diversified.status();
  if (personalizer_ == nullptr || request.user == kNoUser) {
    return diversified;
  }
  return personalizer_->Rerank(request.user, *diversified);
}

}  // namespace pqsda
