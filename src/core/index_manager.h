#ifndef PQSDA_CORE_INDEX_MANAGER_H_
#define PQSDA_CORE_INDEX_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/engine_config.h"
#include "core/personalizer.h"
#include "graph/multi_bipartite.h"
#include "graph/shard_partition.h"
#include "log/record.h"
#include "log/sessionizer.h"
#include "log/stream_sessionizer.h"
#include "suggest/pqsda_diversifier.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda {

/// Components of the unsharded engine's cache ValidationVector: the index is
/// sliced into this many content-fingerprinted partitions (strict ownership,
/// no hot-row replication) purely for delta-aware cache invalidation — a
/// rebuild that only changes some partitions' fingerprints only invalidates
/// cache entries whose recorded reads touched those partitions.
inline constexpr size_t kCacheValidationComponents = 8;

/// One immutable, generation-numbered build of the §III query-log index and
/// everything derived from it: the sorted records, their sessions, the
/// multi-bipartite representation, the corpus, the diversifier bound to this
/// representation, and (when personalization is on) the trained UPM and its
/// Personalizer. A request acquires one snapshot (shared_ptr) at admission
/// and reads only it for its whole lifetime, so a concurrent rebuild can
/// publish generation g+1 — and generation g can be reclaimed once the last
/// in-flight request drops its reference — without ever blocking or tearing
/// the serving path.
///
/// Snapshots are never mutated after publication. The cfiqf weighting
/// (Eqs. 4–6) carries a *global* inverse-query-frequency term, so there is
/// no correct way to patch an existing snapshot in place; every generation
/// is a from-scratch batch build over base records + absorbed deltas, which
/// is exactly what makes the incremental path provably equivalent to a
/// one-shot build (tests/ingest_test.cc enforces bitwise equality).
struct IndexSnapshot {
  uint64_t generation = 0;
  /// The full log this generation was built from, (user, time, query)
  /// stable-sorted — the canonical order every derived structure assumes.
  std::vector<QueryLogRecord> records;
  std::vector<Session> sessions;
  std::unique_ptr<MultiBipartite> mb;
  std::unique_ptr<QueryLogCorpus> corpus;
  std::unique_ptr<PqsdaDiversifier> diversifier;
  /// Null when the build skipped personalization.
  std::unique_ptr<UpmModel> upm;
  std::unique_ptr<Personalizer> personalizer;
  /// Wall time the build took (sessionize + representation + corpus + UPM).
  int64_t build_us = 0;
  /// Steady-clock instant (ns) this snapshot became the published one.
  int64_t published_ns = 0;
  /// Strict-ownership partition of `mb` into kCacheValidationComponents
  /// content-fingerprinted slices, used only to grade cache
  /// ValidationVectors (delta-aware invalidation). Built with the snapshot.
  ShardPartition validation;
  /// Effective generation of each validation component: the generation of
  /// the last build whose fingerprint for that component differed from its
  /// predecessor's. Publish() carries unchanged components' generations
  /// over, so cache entries depending only on them stay valid across the
  /// swap. Initialized to this snapshot's generation everywhere.
  std::vector<uint64_t> validation_generation;
  /// Effective generation of the personalization model (UPM+Personalizer):
  /// carried over on rebuilds that skip training, bumped when the model is
  /// retrained (personalize=true retrains every build — the Gibbs sampler
  /// sees new evidence — so it bumps every swap).
  uint64_t upm_generation = 0;
};

/// From-scratch batch build of one snapshot: sort, sessionize, representation,
/// corpus, and (when configured) UPM + Personalizer. This is the single build
/// path — PqsdaEngine::Build uses it for generation 0 and IndexManager for
/// every rebuild — so "incremental" and "batch" can only ever differ in the
/// record vector they are handed.
StatusOr<std::shared_ptr<IndexSnapshot>> BuildIndexSnapshot(
    std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config,
    uint64_t generation);

/// Owns the published IndexSnapshot and the live-ingestion machinery in
/// front of it:
///
///  - `Acquire()` hands out the current snapshot behind a shared_ptr; the
///    publication slot is swapped atomically (tiny critical section), so
///    acquisition never waits on a rebuild.
///  - `Ingest`/`IngestBatch` append fresh QueryLogRecords to a bounded
///    delta buffer (kUnavailable past `IngestOptions::max_delta_records` —
///    backpressure, never silent loss) and, at
///    `IngestOptions::rebuild_min_records`, schedule one off-path rebuild
///    task on the configured ThreadPool. Rebuilds coalesce: a single task
///    drains whatever accumulated, builds, publishes, then re-checks — N
///    records arriving mid-build cost one follow-up rebuild, not N.
///  - Each swap bumps the generation (monotonic), flushes the streaming
///    sessionizer's open tails (their records are in the immutable index
///    now) and refreshes the pqsda.ingest.* metrics; the suggestion cache
///    needs no explicit invalidation because the generation is part of every
///    cache key.
///
/// All methods are thread-safe.
class IndexManager {
 public:
  /// `initial` becomes the published generation; `config` drives every
  /// rebuild (same knobs as the initial build — equivalence depends on it).
  IndexManager(std::shared_ptr<IndexSnapshot> initial,
               PqsdaEngineConfig config);
  /// Blocks until any in-flight rebuild task has finished; pending
  /// below-threshold deltas are dropped with the manager.
  ~IndexManager();

  IndexManager(const IndexManager&) = delete;
  IndexManager& operator=(const IndexManager&) = delete;

  /// The current snapshot. Callers keep the returned shared_ptr for as long
  /// as they read any part of it — that reference is what keeps generation g
  /// alive while g+1 swaps in.
  std::shared_ptr<const IndexSnapshot> Acquire() const;

  /// A specific generation: the published one, or a recently-retired one
  /// still held in the replay ring (IngestOptions::retired_snapshots). Null
  /// when the generation was never published or already aged out — the
  /// caller (replay) reports it as no longer reproducible.
  std::shared_ptr<const IndexSnapshot> AcquireGeneration(
      uint64_t generation) const;

  /// Oldest generation AcquireGeneration can still return (the published
  /// generation when the retired ring is empty). /statusz uses this to age
  /// out exemplars that can no longer be replayed.
  uint64_t oldest_live_generation() const;

  /// Generation of the published snapshot.
  uint64_t generation() const;

  /// Appends fresh records to the delta buffer and schedules a rebuild once
  /// the threshold is reached. All-or-nothing: a batch that does not fit the
  /// bounded buffer is rejected whole with kUnavailable and counted into
  /// pqsda.ingest.dropped_total.
  Status Ingest(QueryLogRecord record);
  Status IngestBatch(std::vector<QueryLogRecord> records);

  /// Drains the delta buffer (regardless of the rebuild threshold), builds
  /// the next generation on the calling thread and publishes it. No-op OK
  /// when the buffer is empty. Serialized against the async rebuild task.
  Status RebuildNow();

  /// Blocks until no asynchronous rebuild task is scheduled or running.
  /// Deltas below the rebuild threshold may remain buffered afterwards.
  void WaitForRebuilds();

  /// Records currently buffered and not yet absorbed by a rebuild.
  size_t delta_depth() const;

  /// Total records ingested (accepted) since construction.
  uint64_t ingested_total() const;

  /// Completed rebuild+swap cycles since construction.
  uint64_t rebuilds_total() const;

  /// Live serving context of a user: the queries of their open tail session
  /// in the ingest stream, oldest first (empty after a swap flushed it).
  std::vector<std::pair<std::string, int64_t>> TailContext(UserId user) const;

  const PqsdaEngineConfig& config() const { return config_; }
  const IngestOptions& ingest_options() const { return config_.ingest; }

  /// Hook invoked on the rebuild thread after every Publish, outside the
  /// manager's locks, with the freshly-published snapshot. The engine uses
  /// it for post-swap cache warmup. Install before any rebuild can run
  /// (i.e. right after construction) — installation is not synchronized
  /// against concurrent rebuilds.
  void SetPostPublishHook(
      std::function<void(const std::shared_ptr<const IndexSnapshot>&)> hook) {
    post_publish_hook_ = std::move(hook);
  }

 private:
  ThreadPool& pool() const;
  /// Body of the async rebuild task: drain-build-publish until the buffer is
  /// empty, then clear the scheduled flag.
  void RebuildLoop();
  /// One drain → build → publish cycle over `batch` (serialized by
  /// build_mu_).
  Status RebuildWith(std::vector<QueryLogRecord> batch);
  /// Swaps `next` in as the published snapshot and updates metrics/tails.
  void Publish(std::shared_ptr<IndexSnapshot> next, size_t batch_records);

  PqsdaEngineConfig config_;

  /// Publication slot. The mutex guards only the shared_ptr swap/copy.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const IndexSnapshot> snapshot_;
  /// Recently-retired generations (oldest at the front), kept alive for
  /// replay; bounded by IngestOptions::retired_snapshots. Guarded by
  /// snapshot_mu_.
  std::deque<std::shared_ptr<const IndexSnapshot>> retired_;

  /// Delta buffer + streaming sessionizer state.
  mutable std::mutex delta_mu_;
  std::vector<QueryLogRecord> delta_;
  StreamSessionizer stream_;
  size_t stream_index_ = 0;  // running record index fed to the stream
  bool rebuild_scheduled_ = false;
  std::condition_variable rebuild_idle_;

  /// Serializes actual builds (the async task vs RebuildNow) and owns
  /// next_generation_.
  std::mutex build_mu_;
  uint64_t next_generation_ = 1;

  std::atomic<uint64_t> ingested_total_{0};
  std::atomic<uint64_t> rebuilds_total_{0};

  std::function<void(const std::shared_ptr<const IndexSnapshot>&)>
      post_publish_hook_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_INDEX_MANAGER_H_
