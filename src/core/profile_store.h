#ifndef PQSDA_CORE_PROFILE_STORE_H_
#define PQSDA_CORE_PROFILE_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "log/record.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda {

/// One user's offline profile: the topic vector theta_d of Eq. 30 (§V-A:
/// "the dth user's search interests are represented by a topic vector ...
/// concise enough for offline storage and efficient online
/// personalization").
struct UserProfile {
  UserId user = 0;
  std::vector<double> theta;

  friend bool operator==(const UserProfile&, const UserProfile&) = default;
};

/// Persistent store of UPM user profiles. Profiles are extracted from a
/// trained UPM, serialized as a small TSV file (`user \t v0 \t v1 ...`) and
/// reloaded without retraining.
class ProfileStore {
 public:
  ProfileStore() = default;

  /// Snapshots theta_d for every document of the corpus.
  static ProfileStore FromUpm(const UpmModel& upm,
                              const QueryLogCorpus& corpus);

  /// Writes all profiles; overwrites the file.
  Status Save(const std::string& path) const;

  /// Reads a store written by Save. Corrupt rows yield a Corruption error
  /// naming the line.
  static StatusOr<ProfileStore> Load(const std::string& path);

  /// Adds or replaces one profile.
  void Put(UserProfile profile);

  /// nullptr if the user has no stored profile.
  const UserProfile* Find(UserId user) const;

  size_t size() const { return profiles_.size(); }
  size_t num_topics() const { return num_topics_; }

  /// Cosine similarity between two users' interest vectors — a cheap
  /// building block for profile-based user clustering; 0 if either user is
  /// unknown.
  double UserSimilarity(UserId a, UserId b) const;

 private:
  std::unordered_map<UserId, UserProfile> profiles_;
  size_t num_topics_ = 0;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_PROFILE_STORE_H_
