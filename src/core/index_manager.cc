#include "core/index_manager.h"

#include <chrono>
#include <cstdio>

#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/stage_profiler.h"
#include "obs/trace.h"

namespace pqsda {

namespace {

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The pqsda.ingest.* surface. Counters/gauges are process-wide (like
// pqsda.build.*): one live index per process is the deployment shape, and
// /statusz reads these at scrape time.
struct IngestMetrics {
  obs::Counter& records_total;
  obs::Counter& dropped_total;
  obs::Counter& rebuilds_total;
  obs::Counter& rebuild_failures_total;
  obs::Histogram& rebuild_us;
  obs::Histogram& rebuild_batch_records;
  obs::Gauge& generation;
  obs::Gauge& delta_depth;
  obs::Gauge& index_records;
  obs::Gauge& last_rebuild_us;
  obs::Gauge& last_swap_monotonic_sec;
  obs::Gauge& oldest_live_generation;

  static IngestMetrics& Get() {
    static IngestMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
      return new IngestMetrics{
          reg.GetCounter("pqsda.ingest.records_total"),
          reg.GetCounter("pqsda.ingest.dropped_total"),
          reg.GetCounter("pqsda.ingest.rebuilds_total"),
          reg.GetCounter("pqsda.ingest.rebuild_failures_total"),
          reg.GetHistogram("pqsda.ingest.rebuild_us"),
          reg.GetHistogram("pqsda.ingest.rebuild_batch_records"),
          reg.GetGauge("pqsda.ingest.generation"),
          reg.GetGauge("pqsda.ingest.delta_depth"),
          reg.GetGauge("pqsda.ingest.index_records"),
          reg.GetGauge("pqsda.ingest.last_rebuild_us"),
          reg.GetGauge("pqsda.ingest.last_swap_monotonic_sec"),
          reg.GetGauge("pqsda.ingest.oldest_live_generation")};
    }();
    return *m;
  }
};

}  // namespace

StatusOr<std::shared_ptr<IndexSnapshot>> BuildIndexSnapshot(
    std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config,
    uint64_t generation) {
  if (records.empty()) {
    return Status::InvalidArgument("empty query log");
  }
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  static obs::Counter& builds_total = reg.GetCounter("pqsda.build.total");
  static obs::Histogram& sessionize_us =
      reg.GetHistogram("pqsda.build.sessionize_us");
  static obs::Histogram& representation_us =
      reg.GetHistogram("pqsda.build.representation_us");
  static obs::Histogram& corpus_us = reg.GetHistogram("pqsda.build.corpus_us");
  static obs::Histogram& upm_train_us =
      reg.GetHistogram("pqsda.build.upm_train_us");
  static obs::Gauge& num_queries = reg.GetGauge("pqsda.build.queries");
  static obs::Gauge& num_sessions = reg.GetGauge("pqsda.build.sessions");
  const bool metrics = config.collect_metrics;

  WallTimer build_timer;
  auto snap = std::make_shared<IndexSnapshot>();
  snap->generation = generation;
  // Stable sort: records equal under (user, time, query) keep their arrival
  // order, so a base log with deltas appended in stream order sorts to the
  // exact same sequence as the one-shot concatenated log — the foundation of
  // the incremental-vs-batch equivalence.
  SortByUserAndTime(records);
  snap->records = std::move(records);
  {
    obs::TraceSpan span("sessionize");
    obs::StageScope stage(obs::ProfileStage::kSessionize);
    obs::ScopedTimer timer(metrics ? &sessionize_us : nullptr);
    snap->sessions = Sessionize(snap->records, config.sessionizer);
  }
  {
    obs::TraceSpan span("representation");
    obs::StageScope stage(obs::ProfileStage::kGraphBuild);
    obs::ScopedTimer timer(metrics ? &representation_us : nullptr);
    snap->mb = std::make_unique<MultiBipartite>(MultiBipartite::Build(
        snap->records, snap->sessions, config.weighting));
  }
  {
    obs::TraceSpan span("corpus");
    obs::StageScope stage(obs::ProfileStage::kGraphBuild);
    obs::ScopedTimer timer(metrics ? &corpus_us : nullptr);
    snap->corpus = std::make_unique<QueryLogCorpus>(
        QueryLogCorpus::Build(snap->records, snap->sessions));
  }
  snap->diversifier =
      std::make_unique<PqsdaDiversifier>(*snap->mb, config.diversifier);
  {
    // Validation slices for delta-aware cache invalidation: strict
    // ownership (no hot-row replication) so every query row belongs to
    // exactly one fingerprinted component. Publish() compares these
    // fingerprints against the outgoing snapshot's to carry unchanged
    // components' generations over.
    ShardPartitionOptions vopt;
    vopt.shards = kCacheValidationComponents;
    vopt.hot_row_min_degree = 0;
    snap->validation = BuildShardPartition(*snap->mb, vopt);
    snap->validation_generation.assign(snap->validation.shard.size(),
                                       generation);
  }
  snap->upm_generation = generation;
  if (config.personalize) {
    obs::TraceSpan span("upm_train");
    obs::StageScope stage(obs::ProfileStage::kGraphBuild);
    obs::ScopedTimer timer(metrics ? &upm_train_us : nullptr);
    // Tee Gibbs progress into the registry (sweep counter/latency and the
    // convergence gauge), then onward to any caller-supplied callback.
    UpmOptions upm_options = config.upm;
    if (metrics) {
      auto user_progress = upm_options.progress;
      upm_options.progress = [user_progress](const GibbsSweepStats& s) {
        obs::MetricsRegistry& r = obs::MetricsRegistry::Default();
        static obs::Counter& sweeps = r.GetCounter("pqsda.upm.sweeps_total");
        static obs::Histogram& sweep_us =
            r.GetHistogram("pqsda.upm.sweep_us");
        static obs::Gauge& log_posterior =
            r.GetGauge("pqsda.upm.log_posterior");
        sweeps.Increment();
        sweep_us.Observe(static_cast<double>(s.duration_us));
        log_posterior.Set(s.log_posterior);
        if (user_progress) user_progress(s);
      };
    }
    snap->upm = std::make_unique<UpmModel>(upm_options);
    snap->upm->Train(*snap->corpus);
    snap->personalizer = std::make_unique<Personalizer>(
        *snap->upm, *snap->corpus, config.preference_borda_weight);
  }
  snap->build_us = build_timer.ElapsedMicros();
  if (metrics) {
    builds_total.Increment();
    num_queries.Set(static_cast<double>(snap->mb->num_queries()));
    num_sessions.Set(static_cast<double>(snap->sessions.size()));
  }
  return snap;
}

IndexManager::IndexManager(std::shared_ptr<IndexSnapshot> initial,
                           PqsdaEngineConfig config)
    : config_(std::move(config)), stream_(config_.sessionizer) {
  if (initial->published_ns == 0) initial->published_ns = SteadyNowNs();
  next_generation_ = initial->generation + 1;
  IngestMetrics& m = IngestMetrics::Get();
  m.generation.Set(static_cast<double>(initial->generation));
  m.index_records.Set(static_cast<double>(initial->records.size()));
  m.delta_depth.Set(0.0);
  m.last_swap_monotonic_sec.Set(
      static_cast<double>(initial->published_ns) * 1e-9);
  m.oldest_live_generation.Set(static_cast<double>(initial->generation));
  snapshot_ = std::move(initial);
}

IndexManager::~IndexManager() { WaitForRebuilds(); }

std::shared_ptr<const IndexSnapshot> IndexManager::Acquire() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

std::shared_ptr<const IndexSnapshot> IndexManager::AcquireGeneration(
    uint64_t generation) const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ != nullptr && snapshot_->generation == generation) {
    return snapshot_;
  }
  // Newest retired first: the common replay target is the generation that
  // just swapped out.
  for (auto it = retired_.rbegin(); it != retired_.rend(); ++it) {
    if ((*it)->generation == generation) return *it;
  }
  return nullptr;
}

uint64_t IndexManager::oldest_live_generation() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (!retired_.empty()) return retired_.front()->generation;
  return snapshot_ != nullptr ? snapshot_->generation : 0;
}

uint64_t IndexManager::generation() const { return Acquire()->generation; }

Status IndexManager::Ingest(QueryLogRecord record) {
  std::vector<QueryLogRecord> one;
  one.push_back(std::move(record));
  return IngestBatch(std::move(one));
}

Status IndexManager::IngestBatch(std::vector<QueryLogRecord> records) {
  if (records.empty()) return Status::OK();
  IngestMetrics& m = IngestMetrics::Get();
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    if (delta_.size() + records.size() > config_.ingest.max_delta_records) {
      // All-or-nothing backpressure: rejecting the whole batch keeps the
      // stream order intact for a caller that retries it verbatim later.
      m.dropped_total.Increment(records.size());
      return Status::Unavailable(
          "ingest delta buffer full (" + std::to_string(delta_.size()) +
          " of " + std::to_string(config_.ingest.max_delta_records) +
          " records buffered); retry after the next rebuild");
    }
    for (QueryLogRecord& r : records) {
      stream_.Push(r, stream_index_++);
      delta_.push_back(std::move(r));
    }
    ingested_total_.fetch_add(records.size(), std::memory_order_relaxed);
    m.records_total.Increment(records.size());
    m.delta_depth.Set(static_cast<double>(delta_.size()));
    if (delta_.size() >= config_.ingest.rebuild_min_records &&
        !rebuild_scheduled_) {
      rebuild_scheduled_ = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool().Submit([this] { RebuildLoop(); });
  }
  return Status::OK();
}

ThreadPool& IndexManager::pool() const {
  return config_.ingest.rebuild_pool != nullptr ? *config_.ingest.rebuild_pool
                                                : ThreadPool::Shared();
}

void IndexManager::RebuildLoop() {
  for (;;) {
    std::vector<QueryLogRecord> batch;
    {
      std::lock_guard<std::mutex> lock(delta_mu_);
      if (delta_.empty()) {
        // Coalescing endpoint: everything that arrived before or during the
        // builds above is absorbed; the next threshold crossing schedules a
        // fresh task.
        rebuild_scheduled_ = false;
        rebuild_idle_.notify_all();
        return;
      }
      batch.swap(delta_);
      IngestMetrics::Get().delta_depth.Set(0.0);
    }
    Status built = RebuildWith(std::move(batch));
    if (!built.ok()) {
      std::fprintf(stderr, "pqsda: index rebuild failed: %s\n",
                   built.ToString().c_str());
    }
  }
}

Status IndexManager::RebuildNow() {
  std::vector<QueryLogRecord> batch;
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    if (delta_.empty()) return Status::OK();
    batch.swap(delta_);
    IngestMetrics::Get().delta_depth.Set(0.0);
  }
  return RebuildWith(std::move(batch));
}

Status IndexManager::RebuildWith(std::vector<QueryLogRecord> batch) {
  // One build at a time: RebuildNow and the async task serialize here, and
  // next_generation_ is only touched under this lock.
  std::lock_guard<std::mutex> build_lock(build_mu_);
  IngestMetrics& m = IngestMetrics::Get();
  const size_t batch_records = batch.size();
  // The rebuild runs entirely on this thread, so it profiles like a request
  // under its own lane: drain/sessionize/graph-build/publish stages land in
  // /profilez next to the serving rungs.
  obs::StageProfiler& profiler = obs::StageProfiler::Default();
  profiler.BeginRequest();
  std::vector<QueryLogRecord> all;
  {
    obs::StageScope stage(obs::ProfileStage::kDrain);
    std::shared_ptr<const IndexSnapshot> base = Acquire();
    all.reserve(base->records.size() + batch.size());
    all.insert(all.end(), base->records.begin(), base->records.end());
    for (QueryLogRecord& r : batch) all.push_back(std::move(r));
    obs::StageProfiler::AddWork(obs::ProfileStage::kDrain, batch_records);
    // base drops here: don't pin the old generation across the build.
  }

  WallTimer timer;
  auto snap_or = BuildIndexSnapshot(std::move(all), config_, next_generation_);
  if (!snap_or.ok()) {
    m.rebuild_failures_total.Increment();
    profiler.EndRequest(obs::kProfileRebuildLane);
    return snap_or.status();
  }
  ++next_generation_;
  const int64_t rebuild_us = timer.ElapsedMicros();
  m.rebuild_us.Observe(static_cast<double>(rebuild_us));
  m.last_rebuild_us.Set(static_cast<double>(rebuild_us));
  m.rebuild_batch_records.Observe(static_cast<double>(batch_records));
  Publish(std::move(*snap_or), batch_records);
  profiler.EndRequest(obs::kProfileRebuildLane);
  return Status::OK();
}

void IndexManager::Publish(std::shared_ptr<IndexSnapshot> next,
                           size_t batch_records) {
  (void)batch_records;
  obs::StageScope stage(obs::ProfileStage::kPublish);
  next->published_ns = SteadyNowNs();
  IngestMetrics& m = IngestMetrics::Get();
  m.generation.Set(static_cast<double>(next->generation));
  m.index_records.Set(static_cast<double>(next->records.size()));
  m.last_swap_monotonic_sec.Set(static_cast<double>(next->published_ns) *
                                1e-9);
  std::shared_ptr<const IndexSnapshot> published = next;
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    if (snapshot_ != nullptr) {
      // Delta-aware carry-over: a validation component whose content
      // fingerprint did not change between the outgoing and incoming build
      // keeps its *effective* generation, so cache entries that only read
      // unchanged components still grade kValid after the swap.
      const IndexSnapshot& prev = *snapshot_;
      if (prev.validation.shards == next->validation.shards &&
          prev.validation_generation.size() ==
              next->validation_generation.size()) {
        for (size_t s = 0; s < next->validation_generation.size(); ++s) {
          if (prev.validation.shard[s].content_fingerprint ==
              next->validation.shard[s].content_fingerprint) {
            next->validation_generation[s] = prev.validation_generation[s];
          }
        }
      }
      if (next->upm == nullptr) next->upm_generation = prev.upm_generation;
    }
    // The outgoing generation moves into the bounded replay ring instead of
    // dying with its last in-flight request, so logged requests stay
    // reproducible for the ring's depth.
    if (snapshot_ != nullptr && config_.ingest.retired_snapshots > 0) {
      retired_.push_back(std::move(snapshot_));
      while (retired_.size() > config_.ingest.retired_snapshots) {
        retired_.pop_front();
      }
    }
    snapshot_ = std::move(next);
    m.oldest_live_generation.Set(static_cast<double>(
        retired_.empty() ? snapshot_->generation
                         : retired_.front()->generation));
  }
  rebuilds_total_.fetch_add(1, std::memory_order_relaxed);
  m.rebuilds_total.Increment();
  // Flush-on-swap: the tail records are part of the immutable index now;
  // the stream restarts and a user's next query opens a fresh session.
  // (Records ingested *during* the build keep their buffered place — only
  // the open-tail context resets.)
  {
    std::lock_guard<std::mutex> lock(delta_mu_);
    stream_.FlushAll();
  }
  // Post-swap warmup (and any other observer) runs on the rebuild thread,
  // outside every manager lock: serving traffic already sees the new
  // generation while the warmup fills its cache off-path.
  if (post_publish_hook_) post_publish_hook_(published);
}

void IndexManager::WaitForRebuilds() {
  std::unique_lock<std::mutex> lock(delta_mu_);
  rebuild_idle_.wait(lock, [this] { return !rebuild_scheduled_; });
}

size_t IndexManager::delta_depth() const {
  std::lock_guard<std::mutex> lock(delta_mu_);
  return delta_.size();
}

uint64_t IndexManager::ingested_total() const {
  return ingested_total_.load(std::memory_order_relaxed);
}

uint64_t IndexManager::rebuilds_total() const {
  return rebuilds_total_.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, int64_t>> IndexManager::TailContext(
    UserId user) const {
  std::lock_guard<std::mutex> lock(delta_mu_);
  return stream_.TailContext(user);
}

}  // namespace pqsda
