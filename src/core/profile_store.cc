#include "core/profile_store.h"

#include <charconv>
#include <fstream>
#include <sstream>

#include "common/math_util.h"

namespace pqsda {

ProfileStore ProfileStore::FromUpm(const UpmModel& upm,
                                   const QueryLogCorpus& corpus) {
  ProfileStore store;
  for (size_t d = 0; d < corpus.num_documents(); ++d) {
    UserProfile profile;
    profile.user = corpus.documents()[d].user;
    profile.theta = upm.DocumentTopicMixture(d);
    store.Put(std::move(profile));
  }
  return store;
}

void ProfileStore::Put(UserProfile profile) {
  num_topics_ = std::max(num_topics_, profile.theta.size());
  profiles_[profile.user] = std::move(profile);
}

const UserProfile* ProfileStore::Find(UserId user) const {
  auto it = profiles_.find(user);
  if (it == profiles_.end()) return nullptr;
  return &it->second;
}

double ProfileStore::UserSimilarity(UserId a, UserId b) const {
  const UserProfile* pa = Find(a);
  const UserProfile* pb = Find(b);
  if (pa == nullptr || pb == nullptr ||
      pa->theta.size() != pb->theta.size()) {
    return 0.0;
  }
  return CosineSimilarity(pa->theta, pb->theta);
}

Status ProfileStore::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out.precision(10);
  for (const auto& [user, profile] : profiles_) {
    out << user;
    for (double v : profile.theta) out << '\t' << v;
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<ProfileStore> ProfileStore::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  ProfileStore store;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string field;
    UserProfile profile;
    if (!std::getline(fields, field, '\t')) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": empty row");
    }
    {
      auto [p, ec] = std::from_chars(field.data(),
                                     field.data() + field.size(),
                                     profile.user);
      if (ec != std::errc() || p != field.data() + field.size()) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bad user id: " + field);
      }
    }
    while (std::getline(fields, field, '\t')) {
      char* end = nullptr;
      double v = std::strtod(field.c_str(), &end);
      if (end != field.c_str() + field.size()) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bad theta value: " + field);
      }
      profile.theta.push_back(v);
    }
    if (profile.theta.empty()) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": profile has no topics");
    }
    store.Put(std::move(profile));
  }
  return store;
}

}  // namespace pqsda
