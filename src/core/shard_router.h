#ifndef PQSDA_CORE_SHARD_ROUTER_H_
#define PQSDA_CORE_SHARD_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "log/record.h"

namespace pqsda {

/// Deterministic request/record routing for the sharded serving path:
/// queries route by a hash of their *string* (never their interned id — ids
/// shift between index generations as fresh queries interleave into the
/// log, and a route that moved on every rebuild would defeat the per-shard
/// generation accounting), users by an integer mix of their UserId. Both
/// functions are pure, so every layer — partition builder, coordinator,
/// tests, benches — derives the same placement independently.
struct ShardRouter {
  size_t shards = 1;

  /// FNV-1a 64 over the bytes (the same family as obs::Fingerprint64, kept
  /// dependency-free here because the graph layer also partitions with it).
  static uint64_t HashBytes(std::string_view s) {
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return h;
  }

  /// SplitMix64 finalizer: UserIds are small dense integers, so a plain
  /// modulo would send consecutive users to consecutive shards and any
  /// stride in the traffic straight into one shard.
  static uint64_t MixUser(uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  size_t QueryShardOf(std::string_view query) const {
    return shards <= 1 ? 0 : static_cast<size_t>(HashBytes(query) % shards);
  }

  size_t UserShardOf(UserId user) const {
    return shards <= 1
               ? 0
               : static_cast<size_t>(MixUser(user) % shards);
  }
};

}  // namespace pqsda

#endif  // PQSDA_CORE_SHARD_ROUTER_H_
