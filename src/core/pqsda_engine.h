#ifndef PQSDA_CORE_PQSDA_ENGINE_H_
#define PQSDA_CORE_PQSDA_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "graph/multi_bipartite.h"
#include "log/sessionizer.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/suggest_stats.h"
#include "suggest/suggestion_cache.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda {

/// Reranks any suggestion list for a user (§V-B): score each suggestion by
/// the UPM preference (Eq. 31), rank by preference, then Borda-aggregate
/// with the original (diversification) ranking. This is also what the Fig. 5
/// "(P)" variants apply to the baselines' lists.
class Personalizer {
 public:
  /// Both referents must outlive the Personalizer. `preference_weight` is
  /// the weighted-Borda multiplicity of the preference ranking relative to
  /// the diversification ranking (1 = the plain Borda of §V-B; larger
  /// values personalize more aggressively).
  Personalizer(const UpmModel& upm, const QueryLogCorpus& corpus,
               size_t preference_weight = 1)
      : upm_(&upm), corpus_(&corpus),
        preference_weight_(preference_weight == 0 ? 1 : preference_weight) {}

  /// Returns the personalized ranking; a user unknown to the corpus gets the
  /// input list unchanged.
  std::vector<Suggestion> Rerank(UserId user,
                                 const std::vector<Suggestion>& list) const;

  /// Raw preference score of one query for a user (Eq. 31).
  double PreferenceScore(UserId user, const std::string& query) const;

 private:
  const UpmModel* upm_;
  const QueryLogCorpus* corpus_;
  size_t preference_weight_;
};

/// The degradation ladder: what the engine still does for a request as its
/// latency budget shrinks. Each rung trades answer quality for a hard cut in
/// work; the rung is chosen once at admission from the request's remaining
/// budget (and the configured floor), so degradation is a deterministic
/// function of configuration — not of wall-clock races mid-request.
enum class DegradationRung : size_t {
  /// Full PQS-DA: expansion, Eq. 15 solve, Algorithm 1, personalization.
  kFull = 0,
  /// Truncated solve: capped solver iterations at a relaxed tolerance (a
  /// non-converged iterate is served, loudly), fewer hitting-time sweeps.
  kTruncatedSolve = 1,
  /// Walk-only candidates: one mixing step of the cross-bipartite walk from
  /// F^0; no solve, no Algorithm 1, no personalization.
  kWalkOnly = 2,
  /// Cache-only: a cached result or NotFound — no pipeline work at all.
  kCacheOnly = 3,
};

/// Overload-hardening knobs: the degradation ladder's budget thresholds and
/// the admission controller's shedding gates.
struct RobustnessOptions {
  /// Floor rung: every request is served at least this degraded (the CLI's
  /// `--min_rung`; also how tests and the property harness pin a rung).
  size_t min_rung = 0;
  /// Remaining-budget thresholds (microseconds) that pick the rung: a
  /// request whose deadline leaves less than `truncated_below_us` runs the
  /// truncated solve, less than `walk_only_below_us` the walk-only path,
  /// less than `cache_only_below_us` only the cache lookup. Requests with no
  /// deadline always run at the floor rung.
  int64_t truncated_below_us = 250'000;
  int64_t walk_only_below_us = 25'000;
  int64_t cache_only_below_us = 2'000;
  /// Solver budget of the truncated rung (rung 1).
  size_t truncated_max_iterations = 12;
  double truncated_tolerance = 1e-4;
  /// Hitting-time sweep budget of the truncated rung (capped at the full
  /// configuration's horizon).
  size_t truncated_hitting_iterations = 6;
  /// Admission gates (0 disables each — see AdmissionOptions).
  size_t shed_queue_depth = 0;
  double shed_p95_us = 0.0;
};

/// End-to-end PQS-DA configuration.
struct PqsdaEngineConfig {
  EdgeWeighting weighting = EdgeWeighting::kCfIqf;
  SessionizerOptions sessionizer;
  PqsdaDiversifierOptions diversifier;
  UpmOptions upm;
  /// When false the engine skips UPM training and Suggest returns the
  /// diversified list as-is (diversification-only mode, as in §VI-B).
  bool personalize = true;
  /// Weighted-Borda multiplicity of the preference ranking (see
  /// Personalizer).
  size_t preference_borda_weight = 2;
  /// When false, Build skips the coarse registry instrumentation (stage
  /// histograms and counters in obs::MetricsRegistry::Default()). Per-request
  /// stats are independent of this flag: they are opted into per call by
  /// passing a SuggestStats pointer to Suggest.
  bool collect_metrics = true;
  /// Capacity (entries) of the suggestion result cache; 0 disables caching.
  /// Served lists are cached after personalization, keyed by
  /// (query, context-hash, user, k), so a hit is byte-identical to the miss
  /// that filled it.
  size_t cache_capacity = 0;
  /// LRU shards of the cache (see SuggestionCacheOptions).
  size_t cache_shards = 8;
  /// Overload hardening: degradation ladder thresholds and load shedding.
  RobustnessOptions robustness;
};

/// The complete PQS-DA system (Fig. 1): query-log representation +
/// diversification + personalization behind one Suggest call.
class PqsdaEngine {
 public:
  /// Builds the representation, trains the UPM and wires the components.
  /// `records` is the training log (cleaned; any order — it is re-sorted).
  static StatusOr<std::unique_ptr<PqsdaEngine>> Build(
      std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config);

  /// Diversified and (if enabled and the user is known) personalized
  /// suggestions.
  ///
  /// `stats`, when non-null, opts this request into detailed observability:
  /// it receives the end-to-end trace tree (stages "expansion",
  /// "regularization_solve", "hitting_time_selection" and — when the rerank
  /// ran — "personalization", each with microsecond durations and
  /// annotations) plus the expansion/solver/selection work counters. With a
  /// null pointer only the cheap always-on registry metrics are recorded.
  ///
  /// Every request additionally feeds the live serving telemetry
  /// (obs::ServingTelemetry::Default()): it gets a process-unique request
  /// id, its latency and outcome enter the 10s/1m/5m sliding windows, a
  /// head-sampled subset is traced into the /tracez ring, and — when a
  /// request log is attached — a sampled-or-slow subset is emitted as
  /// structured JSONL.
  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k,
                                            SuggestStats* stats = nullptr) const;

  /// Serves a batch of independent requests concurrently, fanning them
  /// across `pool` (ThreadPool::Shared() when null). The engine's read path
  /// is immutable after Build, so requests run safely in parallel; results
  /// arrive in request order and each slot holds exactly what the
  /// corresponding Suggest call would have returned. Per-request stats are
  /// not collected on the batch path.
  std::vector<StatusOr<std::vector<Suggestion>>> SuggestBatch(
      std::span<const SuggestionRequest> requests, size_t k,
      ThreadPool* pool = nullptr) const;

  /// Null when caching is disabled.
  const SuggestionCache* cache() const { return cache_.get(); }

  /// The admission controller in front of Suggest/SuggestBatch.
  const AdmissionController& admission() const { return admission_; }
  const RobustnessOptions& robustness() const { return robustness_; }

  /// The degradation rung this request would be served at right now: the
  /// larger of the configured floor and the rung its remaining deadline
  /// budget maps to. Fires the faults::kAdmission injection point. Public so
  /// tests and benches can assert the ladder decision directly.
  DegradationRung ChooseRung(const SuggestionRequest& request) const;

  const MultiBipartite& representation() const { return *mb_; }
  const PqsdaDiversifier& diversifier() const { return *diversifier_; }
  const QueryLogCorpus& corpus() const { return *corpus_; }
  /// Null when personalization is disabled.
  const UpmModel* upm() const { return upm_.get(); }
  const Personalizer* personalizer() const { return personalizer_.get(); }
  const std::vector<Session>& sessions() const { return sessions_; }
  const std::vector<QueryLogRecord>& records() const { return records_; }

 private:
  PqsdaEngine() = default;

  /// The cache-lookup + diversify + personalize pipeline at a given ladder
  /// rung, free of telemetry concerns; Suggest wraps it with admission, rung
  /// selection, timing, tracing, windowed recording and request-log
  /// emission. Resets a reused `stats` struct up front so no field of a
  /// previous request survives any exit path (error, cancel, deadline).
  StatusOr<std::vector<Suggestion>> SuggestImpl(
      const SuggestionRequest& request, size_t k, DegradationRung rung,
      SuggestStats* stats, bool* cache_hit) const;

  std::vector<QueryLogRecord> records_;
  std::vector<Session> sessions_;
  std::unique_ptr<MultiBipartite> mb_;
  std::unique_ptr<QueryLogCorpus> corpus_;
  std::unique_ptr<PqsdaDiversifier> diversifier_;
  std::unique_ptr<UpmModel> upm_;
  std::unique_ptr<Personalizer> personalizer_;
  std::unique_ptr<SuggestionCache> cache_;

  RobustnessOptions robustness_;
  AdmissionController admission_;
  /// Diversifier options of the degraded rungs, derived once at Build.
  PqsdaDiversifierOptions truncated_options_;
  PqsdaDiversifierOptions walk_only_options_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_PQSDA_ENGINE_H_
