#ifndef PQSDA_CORE_PQSDA_ENGINE_H_
#define PQSDA_CORE_PQSDA_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/admission.h"
#include "obs/explain.h"
#include "obs/request_log.h"
#include "core/engine_config.h"
#include "core/index_manager.h"
#include "core/personalizer.h"
#include "graph/multi_bipartite.h"
#include "log/sessionizer.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/suggest_stats.h"
#include "suggest/suggestion_cache.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda {

/// The complete PQS-DA system (Fig. 1): query-log representation +
/// diversification + personalization behind one Suggest call, served off
/// generation-numbered immutable IndexSnapshots so the index can absorb
/// fresh query-log traffic (ingest → off-path rebuild → atomic swap)
/// without ever blocking or tearing the request path.
class PqsdaEngine {
 public:
  /// Builds the generation-0 snapshot (representation + UPM training) and
  /// wires the components. `records` is the training log (cleaned; any order
  /// — it is re-sorted).
  static StatusOr<std::unique_ptr<PqsdaEngine>> Build(
      std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config);

  /// Diversified and (if enabled and the user is known) personalized
  /// suggestions.
  ///
  /// The request acquires the current IndexSnapshot once, right after
  /// admission, and reads only that snapshot for its whole lifetime: a
  /// rebuild publishing generation g+1 mid-request neither blocks this call
  /// nor changes what it computes, and generation g stays alive until its
  /// last in-flight request finishes.
  ///
  /// `stats`, when non-null, opts this request into detailed observability:
  /// it receives the end-to-end trace tree (stages "expansion",
  /// "regularization_solve", "hitting_time_selection" and — when the rerank
  /// ran — "personalization", each with microsecond durations and
  /// annotations) plus the expansion/solver/selection work counters. With a
  /// null pointer only the cheap always-on registry metrics are recorded.
  ///
  /// Every request additionally feeds the live serving telemetry
  /// (obs::ServingTelemetry::Default()): it gets a process-unique request
  /// id, its latency and outcome enter the 10s/1m/5m sliding windows, a
  /// head-sampled subset is traced into the /tracez ring, and — when a
  /// request log is attached — a sampled-or-slow subset is emitted as
  /// structured JSONL.
  /// `explain`, when non-null, opts this request into full decision
  /// observability: on return it holds the per-candidate score attribution
  /// (Eq. 15 relevance, Algorithm 1 selection round + hitting time + chain
  /// ranks, UPM preference and Borda points) plus the pinned generation,
  /// rung and result fingerprint. Explain is also head-sampled
  /// (ServingTelemetryOptions::explain_sample_every) into the /explainz
  /// ring; sampled requests pay extra per-chain hitting-time sweeps, all
  /// others one thread-local check per seam.
  StatusOr<std::vector<Suggestion>> Suggest(
      const SuggestionRequest& request, size_t k,
      SuggestStats* stats = nullptr,
      obs::ExplainRecord* explain = nullptr) const;

  /// Deterministic re-execution of a logged request: rebuilds the
  /// SuggestionRequest from `entry`, pins the snapshot generation the
  /// original pinned (the published one or a recently-retired one held in
  /// IndexManager's replay ring — NotFound when it aged out), re-runs the
  /// pipeline at the logged degradation rung with the cache bypassed, and
  /// returns the reproduced list. Bitwise determinism of the pipeline makes
  /// the result fingerprint-equal to the logged one (ctest-enforced). No
  /// telemetry, cache or log side effects; `explain`, when non-null,
  /// receives the replayed request's full attribution.
  StatusOr<std::vector<Suggestion>> Replay(
      const obs::RequestLogEntry& entry,
      obs::ExplainRecord* explain = nullptr) const;

  /// Serves a batch of independent requests concurrently, fanning them
  /// across `pool` (ThreadPool::Shared() when null). Each request pins its
  /// own snapshot, so batches run safely in parallel with each other and
  /// with index rebuilds; results arrive in request order and each slot
  /// holds exactly what the corresponding Suggest call would have returned.
  /// Per-request stats are not collected on the batch path.
  std::vector<StatusOr<std::vector<Suggestion>>> SuggestBatch(
      std::span<const SuggestionRequest> requests, size_t k,
      ThreadPool* pool = nullptr) const;

  /// Live ingestion: appends one fresh query-log record to the delta buffer
  /// (kUnavailable on backpressure). Rebuilds trigger off-path per the
  /// configured IngestOptions; see index_manager() for batch ingest,
  /// RebuildNow and the rest of the surface.
  Status Ingest(QueryLogRecord record) const {
    return index_->Ingest(std::move(record));
  }

  /// The live-index owner: snapshot publication, delta buffering, rebuild
  /// scheduling, tail-session context.
  IndexManager& index_manager() const { return *index_; }

  /// The published snapshot, pinned: callers that walk the representation /
  /// corpus / records directly (benches, analytics) hold this shared_ptr for
  /// the duration instead of using the raw accessors below.
  std::shared_ptr<const IndexSnapshot> AcquireIndex() const {
    return index_->Acquire();
  }

  /// Generation of the snapshot a request issued now would serve from.
  uint64_t generation() const { return index_->generation(); }

  /// Null when caching is disabled.
  const SuggestionCache* cache() const { return cache_.get(); }
  /// Null when the negative-result (NotFound) cache is disabled.
  const NegativeSuggestionCache* negative_cache() const {
    return negative_cache_.get();
  }

  /// The admission controller in front of Suggest/SuggestBatch.
  const AdmissionController& admission() const { return admission_; }
  const RobustnessOptions& robustness() const { return robustness_; }

  /// The degradation rung this request would be served at right now: the
  /// larger of the configured floor and the rung its remaining deadline
  /// budget maps to. Fires the faults::kAdmission injection point. Public so
  /// tests and benches can assert the ladder decision directly.
  DegradationRung ChooseRung(const SuggestionRequest& request) const;

  /// Convenience accessors into the *current* snapshot. The returned
  /// references stay valid only while that snapshot is the published one
  /// (i.e. until the next rebuild swap); callers that may race an ingest
  /// use AcquireIndex() and hold the shared_ptr instead.
  const MultiBipartite& representation() const { return *index_->Acquire()->mb; }
  const PqsdaDiversifier& diversifier() const {
    return *index_->Acquire()->diversifier;
  }
  const QueryLogCorpus& corpus() const { return *index_->Acquire()->corpus; }
  /// Null when personalization is disabled.
  const UpmModel* upm() const { return index_->Acquire()->upm.get(); }
  const Personalizer* personalizer() const {
    return index_->Acquire()->personalizer.get();
  }
  const std::vector<Session>& sessions() const {
    return index_->Acquire()->sessions;
  }
  const std::vector<QueryLogRecord>& records() const {
    return index_->Acquire()->records;
  }

 private:
  PqsdaEngine() = default;

  /// The cache-lookup + diversify + personalize pipeline at a given ladder
  /// rung over one pinned snapshot, free of telemetry concerns; Suggest
  /// wraps it with admission, rung selection, timing, tracing, windowed
  /// recording and request-log emission. Resets a reused `stats` struct up
  /// front so no field of a previous request survives any exit path (error,
  /// cancel, deadline).
  /// `bypass_cache` (replay) skips both the lookup and the fill, so a
  /// replayed request always re-runs the pipeline and never pollutes the
  /// cache with a result keyed to a retired generation.
  StatusOr<std::vector<Suggestion>> SuggestImpl(
      const SuggestionRequest& request, size_t k, DegradationRung rung,
      const IndexSnapshot& snap, SuggestStats* stats, bool* cache_hit,
      bool bypass_cache = false) const;

  /// Post-swap warmup (IndexManager's post-publish hook, rebuild thread):
  /// replays the tail of the configured JSONL request log through
  /// SuggestImpl against `snap`, filling the cache off the serving path.
  void WarmupCache(const IndexSnapshot& snap) const;

  std::unique_ptr<SuggestionCache> cache_;
  std::unique_ptr<NegativeSuggestionCache> negative_cache_;
  /// Delta-aware invalidation on: cache keys carry generation 0 and entries
  /// validate per-component (see PqsdaEngineConfig::cache_delta_aware).
  bool cache_delta_aware_ = false;
  CacheWarmupOptions warmup_;

  RobustnessOptions robustness_;
  AdmissionController admission_;
  /// Diversifier options of the degraded rungs, derived once at Build (they
  /// are config-only, so one copy serves every snapshot generation).
  PqsdaDiversifierOptions truncated_options_;
  PqsdaDiversifierOptions walk_only_options_;

  /// Declared last so it is destroyed first: ~IndexManager joins in-flight
  /// rebuilds, whose post-publish warmup hook touches the caches above —
  /// they must outlive it.
  std::unique_ptr<IndexManager> index_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_PQSDA_ENGINE_H_
