#ifndef PQSDA_CORE_PQSDA_ENGINE_H_
#define PQSDA_CORE_PQSDA_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "graph/multi_bipartite.h"
#include "log/sessionizer.h"
#include "suggest/pqsda_diversifier.h"
#include "suggest/suggest_stats.h"
#include "suggest/suggestion_cache.h"
#include "topic/corpus.h"
#include "topic/upm.h"

namespace pqsda {

/// Reranks any suggestion list for a user (§V-B): score each suggestion by
/// the UPM preference (Eq. 31), rank by preference, then Borda-aggregate
/// with the original (diversification) ranking. This is also what the Fig. 5
/// "(P)" variants apply to the baselines' lists.
class Personalizer {
 public:
  /// Both referents must outlive the Personalizer. `preference_weight` is
  /// the weighted-Borda multiplicity of the preference ranking relative to
  /// the diversification ranking (1 = the plain Borda of §V-B; larger
  /// values personalize more aggressively).
  Personalizer(const UpmModel& upm, const QueryLogCorpus& corpus,
               size_t preference_weight = 1)
      : upm_(&upm), corpus_(&corpus),
        preference_weight_(preference_weight == 0 ? 1 : preference_weight) {}

  /// Returns the personalized ranking; a user unknown to the corpus gets the
  /// input list unchanged.
  std::vector<Suggestion> Rerank(UserId user,
                                 const std::vector<Suggestion>& list) const;

  /// Raw preference score of one query for a user (Eq. 31).
  double PreferenceScore(UserId user, const std::string& query) const;

 private:
  const UpmModel* upm_;
  const QueryLogCorpus* corpus_;
  size_t preference_weight_;
};

/// End-to-end PQS-DA configuration.
struct PqsdaEngineConfig {
  EdgeWeighting weighting = EdgeWeighting::kCfIqf;
  SessionizerOptions sessionizer;
  PqsdaDiversifierOptions diversifier;
  UpmOptions upm;
  /// When false the engine skips UPM training and Suggest returns the
  /// diversified list as-is (diversification-only mode, as in §VI-B).
  bool personalize = true;
  /// Weighted-Borda multiplicity of the preference ranking (see
  /// Personalizer).
  size_t preference_borda_weight = 2;
  /// When false, Build skips the coarse registry instrumentation (stage
  /// histograms and counters in obs::MetricsRegistry::Default()). Per-request
  /// stats are independent of this flag: they are opted into per call by
  /// passing a SuggestStats pointer to Suggest.
  bool collect_metrics = true;
  /// Capacity (entries) of the suggestion result cache; 0 disables caching.
  /// Served lists are cached after personalization, keyed by
  /// (query, context-hash, user, k), so a hit is byte-identical to the miss
  /// that filled it.
  size_t cache_capacity = 0;
  /// LRU shards of the cache (see SuggestionCacheOptions).
  size_t cache_shards = 8;
};

/// The complete PQS-DA system (Fig. 1): query-log representation +
/// diversification + personalization behind one Suggest call.
class PqsdaEngine {
 public:
  /// Builds the representation, trains the UPM and wires the components.
  /// `records` is the training log (cleaned; any order — it is re-sorted).
  static StatusOr<std::unique_ptr<PqsdaEngine>> Build(
      std::vector<QueryLogRecord> records, const PqsdaEngineConfig& config);

  /// Diversified and (if enabled and the user is known) personalized
  /// suggestions.
  ///
  /// `stats`, when non-null, opts this request into detailed observability:
  /// it receives the end-to-end trace tree (stages "expansion",
  /// "regularization_solve", "hitting_time_selection" and — when the rerank
  /// ran — "personalization", each with microsecond durations and
  /// annotations) plus the expansion/solver/selection work counters. With a
  /// null pointer only the cheap always-on registry metrics are recorded.
  ///
  /// Every request additionally feeds the live serving telemetry
  /// (obs::ServingTelemetry::Default()): it gets a process-unique request
  /// id, its latency and outcome enter the 10s/1m/5m sliding windows, a
  /// head-sampled subset is traced into the /tracez ring, and — when a
  /// request log is attached — a sampled-or-slow subset is emitted as
  /// structured JSONL.
  StatusOr<std::vector<Suggestion>> Suggest(const SuggestionRequest& request,
                                            size_t k,
                                            SuggestStats* stats = nullptr) const;

  /// Serves a batch of independent requests concurrently, fanning them
  /// across `pool` (ThreadPool::Shared() when null). The engine's read path
  /// is immutable after Build, so requests run safely in parallel; results
  /// arrive in request order and each slot holds exactly what the
  /// corresponding Suggest call would have returned. Per-request stats are
  /// not collected on the batch path.
  std::vector<StatusOr<std::vector<Suggestion>>> SuggestBatch(
      std::span<const SuggestionRequest> requests, size_t k,
      ThreadPool* pool = nullptr) const;

  /// Null when caching is disabled.
  const SuggestionCache* cache() const { return cache_.get(); }

  const MultiBipartite& representation() const { return *mb_; }
  const PqsdaDiversifier& diversifier() const { return *diversifier_; }
  const QueryLogCorpus& corpus() const { return *corpus_; }
  /// Null when personalization is disabled.
  const UpmModel* upm() const { return upm_.get(); }
  const Personalizer* personalizer() const { return personalizer_.get(); }
  const std::vector<Session>& sessions() const { return sessions_; }
  const std::vector<QueryLogRecord>& records() const { return records_; }

 private:
  PqsdaEngine() = default;

  /// The cache-lookup + diversify + personalize pipeline, free of telemetry
  /// concerns; Suggest wraps it with timing, tracing, windowed recording
  /// and request-log emission.
  StatusOr<std::vector<Suggestion>> SuggestImpl(
      const SuggestionRequest& request, size_t k, SuggestStats* stats,
      bool* cache_hit) const;

  std::vector<QueryLogRecord> records_;
  std::vector<Session> sessions_;
  std::unique_ptr<MultiBipartite> mb_;
  std::unique_ptr<QueryLogCorpus> corpus_;
  std::unique_ptr<PqsdaDiversifier> diversifier_;
  std::unique_ptr<UpmModel> upm_;
  std::unique_ptr<Personalizer> personalizer_;
  std::unique_ptr<SuggestionCache> cache_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_PQSDA_ENGINE_H_
