#ifndef PQSDA_CORE_ADMISSION_H_
#define PQSDA_CORE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace pqsda {

class ThreadPool;

namespace obs {
class SlidingWindowHistogram;
}  // namespace obs

/// Load-shedding policy applied before any per-request work.
struct AdmissionOptions {
  /// Shed when the observed load — the pool's queue depth plus, when
  /// `inflight` is wired, the requests currently executing — exceeds this.
  /// 0 disables the queue-depth gate.
  size_t max_queue_depth = 0;
  /// Shed when the windowed request-latency p95 (microseconds, over
  /// `p95_window_ns`) exceeds this. 0 disables the latency gate.
  double max_p95_us = 0.0;
  /// Window the latency gate reads (trailing).
  int64_t p95_window_ns = 10'000'000'000;
  /// Pool whose queue depth the gate reads; null means ThreadPool::Shared().
  /// The sharded engine points each shard's controller at that shard's lane,
  /// so one saturated shard sheds alone while the others keep admitting.
  /// The pool must outlive the controller.
  const ThreadPool* pool = nullptr;
  /// Requests currently executing against the gated resource, added to the
  /// queue-depth signal. Single-request serving runs on the calling thread
  /// and never enqueues on a lane, so without this counter the depth gate
  /// would read 0 under pure non-batch load; the sharded engine wires each
  /// shard's in-flight counter here. Null means the gate reads queue depth
  /// alone. Must outlive the controller.
  const std::atomic<uint64_t>* inflight = nullptr;
  /// Latency histogram the p95 gate reads; null falls back to the global
  /// obs::ServingTelemetry window. Per-shard controllers point this at
  /// their shard's own window — a gate meant to make one slow shard degrade
  /// alone must not read process-wide latency, or one slow shard trips
  /// every shard's gate. Must outlive the controller.
  const obs::SlidingWindowHistogram* latency = nullptr;
  /// Override point names consulted through FaultInjector::Value for the
  /// queue-depth / p95 signals. Empty means the global admission points
  /// (faults::kQueueDepth / kP95Us); per-shard controllers scope them (e.g.
  /// "shard.2.queue_depth") so a test can saturate exactly one shard.
  std::string queue_depth_point;
  std::string p95_point;
};

/// Admission controller in front of the suggestion request path: an
/// overloaded server that answers a few requests well beats one that answers
/// all of them late. Admit() is two relaxed reads on the happy path; a shed
/// request costs a fast kUnavailable instead of a pipeline run.
///
/// Both observed signals (pool queue depth, windowed p95) can be overridden
/// through FaultInjector::SetValue(faults::kQueueDepth / faults::kP95Us), so
/// the shedding decision is testable without actually saturating a pool.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// OK to proceed, or Unavailable when the request should be shed. Records
  /// pqsda.robust.admitted_total / shed_total either way.
  Status Admit() const;

  const AdmissionOptions& options() const { return options_; }

  /// True when at least one gate is configured (a disabled controller's
  /// Admit is a constant OK and callers may skip it entirely).
  bool enabled() const {
    return options_.max_queue_depth > 0 || options_.max_p95_us > 0.0;
  }

 private:
  AdmissionOptions options_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_ADMISSION_H_
