#ifndef PQSDA_CORE_ADMISSION_H_
#define PQSDA_CORE_ADMISSION_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace pqsda {

class ThreadPool;

/// Load-shedding policy applied before any per-request work.
struct AdmissionOptions {
  /// Shed when the observed pool's queue depth exceeds this. 0 disables the
  /// queue-depth gate.
  size_t max_queue_depth = 0;
  /// Shed when the windowed request-latency p95 (microseconds, over
  /// `p95_window_ns`) exceeds this. 0 disables the latency gate.
  double max_p95_us = 0.0;
  /// Window the latency gate reads (trailing, from the serving telemetry's
  /// sliding histogram).
  int64_t p95_window_ns = 10'000'000'000;
  /// Pool whose queue depth the gate reads; null means ThreadPool::Shared().
  /// The sharded engine points each shard's controller at that shard's lane,
  /// so one saturated shard sheds alone while the others keep admitting.
  /// The pool must outlive the controller.
  const ThreadPool* pool = nullptr;
  /// Override point names consulted through FaultInjector::Value for the
  /// queue-depth / p95 signals. Empty means the global admission points
  /// (faults::kQueueDepth / kP95Us); per-shard controllers scope them (e.g.
  /// "shard.2.queue_depth") so a test can saturate exactly one shard.
  std::string queue_depth_point;
  std::string p95_point;
};

/// Admission controller in front of the suggestion request path: an
/// overloaded server that answers a few requests well beats one that answers
/// all of them late. Admit() is two relaxed reads on the happy path; a shed
/// request costs a fast kUnavailable instead of a pipeline run.
///
/// Both observed signals (pool queue depth, windowed p95) can be overridden
/// through FaultInjector::SetValue(faults::kQueueDepth / faults::kP95Us), so
/// the shedding decision is testable without actually saturating a pool.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// OK to proceed, or Unavailable when the request should be shed. Records
  /// pqsda.robust.admitted_total / shed_total either way.
  Status Admit() const;

  const AdmissionOptions& options() const { return options_; }

  /// True when at least one gate is configured (a disabled controller's
  /// Admit is a constant OK and callers may skip it entirely).
  bool enabled() const {
    return options_.max_queue_depth > 0 || options_.max_p95_us > 0.0;
  }

 private:
  AdmissionOptions options_;
};

}  // namespace pqsda

#endif  // PQSDA_CORE_ADMISSION_H_
