#include "optim/beta_fit.h"

#include <algorithm>

#include "common/math_util.h"

namespace pqsda {

std::pair<double, double> FitBetaMoments(const std::vector<double>& samples) {
  if (samples.empty()) return {1.0, 1.0};
  double m = Mean(samples);
  double s2 = Variance(samples);
  m = std::clamp(m, 1e-4, 1.0 - 1e-4);
  double bound = m * (1.0 - m);
  if (s2 <= 1e-8 || s2 >= bound) {
    // Zero variance (single timestamp) or over-dispersed beyond what a Beta
    // can express: fall back to a mildly informative fit around the mean.
    s2 = std::clamp(s2, bound * 0.05, bound * 0.95);
  }
  double common = bound / s2 - 1.0;
  double a = m * common;
  double b = (1.0 - m) * common;
  a = std::clamp(a, 0.05, 1000.0);
  b = std::clamp(b, 0.05, 1000.0);
  return {a, b};
}

}  // namespace pqsda
