#ifndef PQSDA_OPTIM_LBFGS_H_
#define PQSDA_OPTIM_LBFGS_H_

#include <cstddef>
#include <functional>
#include <vector>

namespace pqsda {

/// Options for the L-BFGS minimizer.
struct LbfgsOptions {
  size_t max_iterations = 60;
  /// History pairs kept for the inverse-Hessian approximation.
  size_t memory = 7;
  /// Convergence: gradient infinity-norm below this.
  double gradient_tolerance = 1e-5;
  /// Armijo backtracking constants.
  double armijo_c = 1e-4;
  double backtrack_factor = 0.5;
  size_t max_line_search_steps = 30;
};

/// Outcome of a minimization.
struct LbfgsResult {
  double value = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Objective: returns f(x) and fills `grad` (resized by the callee or
/// pre-sized by the caller) with the gradient at x.
using ObjectiveFn =
    std::function<double(const std::vector<double>& x,
                         std::vector<double>& grad)>;

/// Limited-memory BFGS with Armijo backtracking line search. `x` holds the
/// initial point on entry and the minimizer found on exit. Used to optimize
/// the UPM Dirichlet hyperparameters (Eqs. 25–27), as the paper prescribes
/// ([30]).
LbfgsResult LbfgsMinimize(const ObjectiveFn& objective, std::vector<double>& x,
                          const LbfgsOptions& options = {});

}  // namespace pqsda

#endif  // PQSDA_OPTIM_LBFGS_H_
