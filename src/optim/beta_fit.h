#ifndef PQSDA_OPTIM_BETA_FIT_H_
#define PQSDA_OPTIM_BETA_FIT_H_

#include <utility>
#include <vector>

namespace pqsda {

/// Fits Beta(a, b) to samples in (0, 1) by the method of moments, exactly as
/// the UPM updates its temporal parameters (Eqs. 28–29):
///   a = m * (m(1-m)/s^2 - 1),  b = (1-m) * (m(1-m)/s^2 - 1)
/// with m the sample mean and s^2 the biased sample variance. Degenerate
/// inputs (no samples, zero variance, mean at a bound) fall back to a flat
/// Beta(1, 1); results are clamped to [0.05, 1000] for numerical safety.
std::pair<double, double> FitBetaMoments(const std::vector<double>& samples);

}  // namespace pqsda

#endif  // PQSDA_OPTIM_BETA_FIT_H_
