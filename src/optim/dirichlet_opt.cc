#include "optim/dirichlet_opt.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/math_util.h"

namespace pqsda {

double DirichletMultinomialLogLikelihood(
    const std::vector<SparseCounts>& group_counts, size_t dim,
    const std::vector<double>& a) {
  assert(a.size() == dim);
  (void)dim;
  double a_sum = 0.0;
  for (double v : a) a_sum += v;
  double ll = 0.0;
  for (const SparseCounts& counts : group_counts) {
    double c_total = 0.0;
    for (const auto& [v, c] : counts) {
      ll += LogGamma(c + a[v]) - LogGamma(a[v]);
      c_total += c;
    }
    ll += LogGamma(a_sum) - LogGamma(c_total + a_sum);
  }
  return ll;
}

LbfgsResult OptimizeDirichlet(const std::vector<SparseCounts>& group_counts,
                              size_t dim, std::vector<double>& a,
                              const LbfgsOptions& options) {
  assert(a.size() == dim);
  // Work in log space: x = log a.
  std::vector<double> x(dim);
  for (size_t v = 0; v < dim; ++v) {
    x[v] = std::log(std::max(a[v], 1e-8));
  }

  auto objective = [&group_counts, dim](const std::vector<double>& x,
                                        std::vector<double>& grad) -> double {
    std::vector<double> a(dim);
    double a_sum = 0.0;
    for (size_t v = 0; v < dim; ++v) {
      a[v] = std::exp(std::clamp(x[v], -30.0, 30.0));
      a_sum += a[v];
    }
    grad.assign(dim, 0.0);
    double neg_ll = 0.0;
    // Gradient in a-space: sparse per-dimension terms plus one scalar per
    // group that applies uniformly to every dimension.
    double uniform = 0.0;
    double psi_a_sum = Digamma(a_sum);
    for (const SparseCounts& counts : group_counts) {
      double c_total = 0.0;
      for (const auto& [v, c] : counts) {
        neg_ll -= LogGamma(c + a[v]) - LogGamma(a[v]);
        grad[v] -= Digamma(c + a[v]) - Digamma(a[v]);
        c_total += c;
      }
      neg_ll -= LogGamma(a_sum) - LogGamma(c_total + a_sum);
      uniform -= psi_a_sum - Digamma(c_total + a_sum);
    }
    // Chain rule to log space: dL/dx_v = a_v * (sparse_v + uniform).
    for (size_t v = 0; v < dim; ++v) {
      grad[v] = a[v] * (grad[v] + uniform);
    }
    return neg_ll;
  };

  LbfgsResult result = LbfgsMinimize(objective, x, options);
  for (size_t v = 0; v < dim; ++v) {
    a[v] = std::exp(std::clamp(x[v], -30.0, 30.0));
  }
  return result;
}

}  // namespace pqsda
