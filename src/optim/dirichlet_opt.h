#ifndef PQSDA_OPTIM_DIRICHLET_OPT_H_
#define PQSDA_OPTIM_DIRICHLET_OPT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "optim/lbfgs.h"

namespace pqsda {

/// Sparse count vector of one group (document): (dimension id, count) pairs.
using SparseCounts = std::vector<std::pair<uint32_t, double>>;

/// Maximizes the Dirichlet-multinomial likelihood of Eqs. 25–27:
///   sum_d sum_v [lnG(C_dv + a_v) - lnG(a_v)]
/// + sum_d [lnG(sum_v a_v) - lnG(sum_v C_dv + sum_v a_v)]
/// over the pseudo-count vector a (dimension `dim`), given per-group sparse
/// counts. Optimization runs in log space via L-BFGS so positivity is
/// structural; sparse counts keep each gradient evaluation linear in the
/// number of nonzero counts.
///
/// `a` carries the initial value on entry and the optimum on exit; the
/// result reports the final negative log-likelihood.
LbfgsResult OptimizeDirichlet(const std::vector<SparseCounts>& group_counts,
                              size_t dim, std::vector<double>& a,
                              const LbfgsOptions& options = {});

/// Log-likelihood the optimizer maximizes (for testing / monitoring).
double DirichletMultinomialLogLikelihood(
    const std::vector<SparseCounts>& group_counts, size_t dim,
    const std::vector<double>& a);

}  // namespace pqsda

#endif  // PQSDA_OPTIM_DIRICHLET_OPT_H_
