#include "optim/lbfgs.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace pqsda {

namespace {
double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double InfNorm(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}
}  // namespace

LbfgsResult LbfgsMinimize(const ObjectiveFn& objective, std::vector<double>& x,
                          const LbfgsOptions& options) {
  const size_t n = x.size();
  std::vector<double> grad(n, 0.0);
  double f = objective(x, grad);

  // History of (s, y, rho) pairs.
  std::deque<std::vector<double>> s_hist, y_hist;
  std::deque<double> rho_hist;

  LbfgsResult result;
  result.value = f;

  for (size_t it = 0; it < options.max_iterations; ++it) {
    result.iterations = it + 1;
    if (InfNorm(grad) < options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion for direction d = -H grad.
    std::vector<double> d = grad;
    std::vector<double> alpha(s_hist.size(), 0.0);
    for (size_t i = s_hist.size(); i-- > 0;) {
      alpha[i] = rho_hist[i] * Dot(s_hist[i], d);
      for (size_t j = 0; j < n; ++j) d[j] -= alpha[i] * y_hist[i][j];
    }
    if (!s_hist.empty()) {
      double gamma = Dot(s_hist.back(), y_hist.back()) /
                     std::max(Dot(y_hist.back(), y_hist.back()), 1e-300);
      for (double& v : d) v *= gamma;
    }
    for (size_t i = 0; i < s_hist.size(); ++i) {
      double beta = rho_hist[i] * Dot(y_hist[i], d);
      for (size_t j = 0; j < n; ++j) d[j] += (alpha[i] - beta) * s_hist[i][j];
    }
    for (double& v : d) v = -v;

    double directional = Dot(grad, d);
    if (directional >= 0.0) {
      // Not a descent direction (numerical trouble): fall back to steepest
      // descent and drop the history.
      s_hist.clear();
      y_hist.clear();
      rho_hist.clear();
      for (size_t j = 0; j < n; ++j) d[j] = -grad[j];
      directional = Dot(grad, d);
      if (directional >= 0.0) break;  // zero gradient
    }

    // Weak-Wolfe line search by bracketing/bisection: Armijo for sufficient
    // decrease plus a curvature condition so the (s, y) pair always has
    // s.y > 0 and the history stays well-conditioned.
    const double c2 = 0.9;
    double step = 1.0, lo = 0.0, hi = 0.0;  // hi == 0 means "unbounded"
    std::vector<double> x_new(n), grad_new(n, 0.0);
    double f_new = f;
    bool accepted = false;
    for (size_t ls = 0; ls < options.max_line_search_steps; ++ls) {
      for (size_t j = 0; j < n; ++j) x_new[j] = x[j] + step * d[j];
      f_new = objective(x_new, grad_new);
      if (!std::isfinite(f_new) ||
          f_new > f + options.armijo_c * step * directional) {
        hi = step;  // too long
      } else if (Dot(grad_new, d) < c2 * directional) {
        lo = step;  // too short (curvature not yet satisfied)
      } else {
        accepted = true;
        break;
      }
      step = hi > 0.0 ? 0.5 * (lo + hi) : 2.0 * step;
    }
    if (!accepted) {
      // Fall back to the last Armijo-satisfying point if the curvature
      // condition could not be met within the budget.
      if (lo > 0.0) {
        step = lo;
        for (size_t j = 0; j < n; ++j) x_new[j] = x[j] + step * d[j];
        f_new = objective(x_new, grad_new);
      } else {
        break;
      }
    }

    std::vector<double> s(n), y(n);
    for (size_t j = 0; j < n; ++j) {
      s[j] = x_new[j] - x[j];
      y[j] = grad_new[j] - grad[j];
    }
    double sy = Dot(s, y);
    if (sy > 1e-12) {
      s_hist.push_back(std::move(s));
      y_hist.push_back(std::move(y));
      rho_hist.push_back(1.0 / sy);
      if (s_hist.size() > options.memory) {
        s_hist.pop_front();
        y_hist.pop_front();
        rho_hist.pop_front();
      }
    }
    x = std::move(x_new);
    grad = std::move(grad_new);
    f = f_new;
    result.value = f;
  }
  result.value = f;
  return result;
}

}  // namespace pqsda
