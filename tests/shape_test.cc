// Reproduction-shape regression tests: small-scale versions of the claims
// EXPERIMENTS.md records for each figure. If one of these breaks, the
// reproduction has regressed even though unit tests may still pass.

#include <memory>

#include <gtest/gtest.h>

#include "core/pqsda_engine.h"
#include "eval/diversity.h"
#include "eval/harness.h"
#include "eval/hpr.h"
#include "eval/ppr.h"
#include "eval/relevance.h"
#include "eval/synthetic_adapters.h"
#include "suggest/dqs_suggester.h"
#include "suggest/hitting_time_suggester.h"
#include "suggest/random_walk_suggester.h"
#include "topic/lda.h"
#include "topic/perplexity.h"
#include "topic/upm.h"

namespace pqsda {
namespace {

struct ShapeFixture {
  ShapeFixture() {
    GeneratorConfig config;
    config.num_users = 90;
    config.sessions_per_user_min = 12;
    config.sessions_per_user_max = 20;
    config.facet_config.num_facets = 24;
    config.facet_config.num_concepts = 8;
    config.facet_config.facets_per_concept = 3;
    data = std::make_unique<SyntheticDataset>(GenerateLog(config));
    sessions = Sessionize(data->records);
    mb = std::make_unique<MultiBipartite>(
        MultiBipartite::Build(data->records, sessions,
                              EdgeWeighting::kCfIqf));
    cg = std::make_unique<ClickGraph>(
        ClickGraph::Build(data->records, EdgeWeighting::kCfIqf));
    pages = std::make_unique<ClickedPages>(ClickedPages::Build(data->records));
    sim = std::make_unique<SyntheticPageSimilarity>(data->facets);
    cats = std::make_unique<SyntheticQueryCategories>(*data);
    tests = SampleTestQueries(*data, 40, 7, TestSampling::kByDistinctQuery);
  }

  std::unique_ptr<SyntheticDataset> data;
  std::vector<Session> sessions;
  std::unique_ptr<MultiBipartite> mb;
  std::unique_ptr<ClickGraph> cg;
  std::unique_ptr<ClickedPages> pages;
  std::unique_ptr<SyntheticPageSimilarity> sim;
  std::unique_ptr<SyntheticQueryCategories> cats;
  std::vector<TestQuery> tests;
};

class ShapeTest : public testing::Test {
 protected:
  static ShapeFixture& fx() {
    static ShapeFixture* f = new ShapeFixture();
    return *f;
  }

  // Mean metric at k over all test queries, failures scoring 0 (the
  // all-queries protocol of the benches).
  struct Quality {
    double diversity10 = 0.0;
    double relevance1 = 0.0;
    double relevance10 = 0.0;
    double answered = 0.0;
  };

  static Quality Evaluate(const SuggestionEngine& engine) {
    Quality q;
    auto& f = fx();
    for (const TestQuery& t : f.tests) {
      auto out = engine.Suggest(t.request, 10);
      if (!out.ok() || out->empty()) continue;
      q.answered += 1.0;
      q.diversity10 += ListDiversity(*out, 10, *f.pages, *f.sim);
      q.relevance1 +=
          ListRelevance(t.request.query, *out, 1, f.data->taxonomy, *f.cats);
      q.relevance10 +=
          ListRelevance(t.request.query, *out, 10, f.data->taxonomy, *f.cats);
    }
    double n = static_cast<double>(f.tests.size());
    q.diversity10 /= n;
    q.relevance1 /= n;
    q.relevance10 /= n;
    q.answered /= n;
    return q;
  }
};

TEST_F(ShapeTest, Fig3_PqsdaMostDiverseAndMostRelevantTop1) {
  PqsdaDiversifier pqsda(*fx().mb);
  RandomWalkSuggester frw(*fx().cg, WalkDirection::kForward);
  HittingTimeSuggester ht(*fx().cg);
  DqsSuggester dqs(*fx().cg);

  Quality q_pqsda = Evaluate(pqsda);
  Quality q_frw = Evaluate(frw);
  Quality q_ht = Evaluate(ht);
  Quality q_dqs = Evaluate(dqs);

  // Diversity: PQS-DA > DQS > {FRW, HT} (paper Fig. 3a/b ordering, top and
  // bottom of the ladder).
  EXPECT_GT(q_pqsda.diversity10, q_dqs.diversity10);
  EXPECT_GT(q_dqs.diversity10, q_ht.diversity10);
  // Top-1 relevance: PQS-DA best (Fig. 3c/d).
  EXPECT_GT(q_pqsda.relevance1, q_frw.relevance1);
  EXPECT_GT(q_pqsda.relevance1, q_ht.relevance1);
  EXPECT_GT(q_pqsda.relevance1, q_dqs.relevance1);
  // Modest degradation: relevance@10 stays within 25% of relevance@1.
  EXPECT_GT(q_pqsda.relevance10, 0.75 * q_pqsda.relevance1);
  // Coverage: PQS-DA answers at least as many queries as the click-graph
  // methods.
  EXPECT_GE(q_pqsda.answered, q_frw.answered);
}

TEST_F(ShapeTest, Fig4_UpmBeatsLdaOnPerplexity) {
  auto& f = fx();
  QueryLogCorpus corpus = QueryLogCorpus::Build(f.data->records, f.sessions);
  QueryLogCorpus train, test;
  corpus.SplitBySessions(0.2, &train, &test);

  TopicModelOptions base;
  base.num_topics = 12;
  base.gibbs_iterations = 40;
  LdaModel lda(base);
  lda.Train(train);
  UpmOptions upm_options;
  upm_options.base = base;
  upm_options.hyper_rounds = 1;
  UpmModel upm(upm_options);
  upm.Train(train);

  double p_lda = EvaluatePerplexity(lda, test).perplexity;
  double p_upm = EvaluatePerplexity(upm, test).perplexity;
  EXPECT_LT(p_upm, p_lda);
}

TEST_F(ShapeTest, Fig5_PersonalizedPqsdaLeadsPprAtTopRank) {
  auto& f = fx();
  TrainTestSplit split = SplitByRecentSessions(*f.data, 3);
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 24;
  config.upm.base.gibbs_iterations = 40;
  config.upm.hyper_rounds = 1;
  auto engine = PqsdaEngine::Build(split.train, config);
  ASSERT_TRUE(engine.ok());

  ClickGraph cg = ClickGraph::Build((*engine)->records(),
                                    EdgeWeighting::kCfIqf);
  RandomWalkSuggester frw(cg, WalkDirection::kForward);

  double ppr_pqsda = 0.0, ppr_frw = 0.0, div_pqsda = 0.0, div_frw = 0.0;
  ClickedPages pages = ClickedPages::Build((*engine)->records());
  size_t counted = 0;
  for (const TestSession& ts : split.test_sessions) {
    if (counted >= 120) break;
    ++counted;
    SuggestionRequest request = RequestFromTestSession(ts);
    if (auto out = (*engine)->Suggest(request, 10); out.ok()) {
      ppr_pqsda += ListPpr(*out, 3, ts.clicked_titles);
      div_pqsda += ListDiversity(*out, 10, pages, *f.sim);
    }
    if (auto out = frw.Suggest(request, 10); out.ok() && !out->empty()) {
      auto reranked = (*engine)->personalizer()->Rerank(ts.user, *out);
      ppr_frw += ListPpr(reranked, 3, ts.clicked_titles);
      div_frw += ListDiversity(reranked, 10, pages, *f.sim);
    }
  }
  ASSERT_GT(counted, 50u);
  EXPECT_GT(ppr_pqsda, ppr_frw);  // Fig. 5(c,d) at top ranks
  EXPECT_GT(div_pqsda, div_frw);  // Fig. 5(a,b)
}

TEST_F(ShapeTest, Fig6_PqsdaLeadsSimulatedHpr) {
  auto& f = fx();
  TrainTestSplit split = SplitByRecentSessions(*f.data, 3);
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 24;
  config.upm.base.gibbs_iterations = 40;
  config.upm.hyper_rounds = 1;
  auto engine = PqsdaEngine::Build(split.train, config);
  ASSERT_TRUE(engine.ok());
  ClickGraph cg = ClickGraph::Build((*engine)->records(),
                                    EdgeWeighting::kCfIqf);
  HittingTimeSuggester ht(cg);

  SimulatedRater rater(f.data->taxonomy, f.data->facets, 0.05, 11);
  double hpr_pqsda = 0.0, hpr_ht = 0.0;
  size_t counted = 0;
  for (const TestSession& ts : split.test_sessions) {
    if (counted >= 120) break;
    ++counted;
    SuggestionRequest request = RequestFromTestSession(ts);
    double t_norm = 0.5;
    std::vector<double> profile = f.data->users[ts.user].FacetWeightsAt(t_norm);
    if (auto out = (*engine)->Suggest(request, 10); out.ok()) {
      hpr_pqsda += rater.RateList(ts.intent, *out, 5, &profile);
    }
    if (auto out = ht.Suggest(request, 10); out.ok()) {
      hpr_ht += rater.RateList(ts.intent, *out, 5, &profile);
    }
  }
  ASSERT_GT(counted, 50u);
  EXPECT_GT(hpr_pqsda, hpr_ht);
}

TEST_F(ShapeTest, Fig7_CompactSizeBoundsCostGrowth) {
  // The compact representation is what keeps PQS-DA's cost growth moderate:
  // doubling the target size must not blow up the representation beyond the
  // target itself.
  auto& f = fx();
  CompactBuilder builder(*f.mb);
  StringId q = f.mb->QueryId(f.data->facets.concept_tokens()[0]);
  ASSERT_NE(q, kInvalidStringId);
  for (size_t target : {100, 200, 400}) {
    auto rep = builder.Build(q, {}, CompactBuilderOptions{target, 6});
    ASSERT_TRUE(rep.ok());
    EXPECT_LE(rep->size(), target);
  }
}

}  // namespace
}  // namespace pqsda
