#include <cmath>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/zipf.h"

namespace pqsda {
namespace {

// ----------------------------------------------------------- Status ----

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

// -------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.NextU64() != b.NextU64());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBounded(13), 13u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextGaussian();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, GammaMeanMatchesShape) {
  Rng rng(13);
  const double shape = 3.5;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGamma(shape);
  EXPECT_NEAR(sum / n, shape, 0.1);
}

TEST(RngTest, GammaSmallShapePositive) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.NextGamma(0.2), 0.0);
}

TEST(RngTest, BetaMeanMatches) {
  Rng rng(17);
  const double a = 2.0, b = 6.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.NextBeta(a, b);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, a / (a + b), 0.01);
}

TEST(RngTest, DiscreteRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextDiscrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(23);
  auto v = rng.NextDirichlet(0.5, 8);
  double total = 0.0;
  for (double x : v) {
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------- Zipf ----

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfSampler z(4, 0.0);
  EXPECT_NEAR(z.Pmf(0), 0.25, 1e-12);
  EXPECT_NEAR(z.Pmf(3), 0.25, 1e-12);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.1);
  double total = 0.0;
  for (size_t i = 0; i < z.size(); ++i) total += z.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, MonotoneDecreasing) {
  ZipfSampler z(50, 1.0);
  for (size_t i = 1; i < z.size(); ++i) EXPECT_LE(z.Pmf(i), z.Pmf(i - 1));
}

TEST(ZipfTest, SampleMatchesHeadProbability) {
  ZipfSampler z(10, 1.0);
  Rng rng(31);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (z.Sample(rng) == 0) ++head;
  }
  EXPECT_NEAR(static_cast<double>(head) / n, z.Pmf(0), 0.02);
}

// --------------------------------------------------------- Interner ----

TEST(InternerTest, AssignsDenseIds) {
  StringInterner in;
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.Intern("b"), 1u);
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.size(), 2u);
}

TEST(InternerTest, LookupMissReturnsSentinel) {
  StringInterner in;
  in.Intern("x");
  EXPECT_EQ(in.Lookup("y"), kInvalidStringId);
  EXPECT_EQ(in.Lookup("x"), 0u);
}

TEST(InternerTest, GetRoundTrips) {
  StringInterner in;
  StringId id = in.Intern("hello world");
  EXPECT_EQ(in.Get(id), "hello world");
}

TEST(InternerTest, CopyKeepsIdsConsistent) {
  StringInterner in;
  in.Intern("a");
  in.Intern("b");
  StringInterner copy = in;
  EXPECT_EQ(copy.Lookup("b"), 1u);
  EXPECT_EQ(copy.Intern("c"), 2u);
  EXPECT_EQ(in.size(), 2u);  // original untouched
}

// -------------------------------------------------------- MathUtil ----

TEST(MathUtilTest, DigammaMatchesKnownValues) {
  // psi(1) = -gamma, psi(2) = 1 - gamma.
  const double gamma = 0.5772156649015329;
  EXPECT_NEAR(Digamma(1.0), -gamma, 1e-8);
  EXPECT_NEAR(Digamma(2.0), 1.0 - gamma, 1e-8);
  EXPECT_NEAR(Digamma(0.5), -gamma - 2.0 * std::log(2.0), 1e-8);
}

TEST(MathUtilTest, DigammaRecurrence) {
  // psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-9);
  }
}

TEST(MathUtilTest, TrigammaKnownValue) {
  // psi'(1) = pi^2/6.
  EXPECT_NEAR(Trigamma(1.0), M_PI * M_PI / 6.0, 1e-7);
}

TEST(MathUtilTest, LogBetaSymmetric) {
  EXPECT_NEAR(LogBeta(2.0, 3.0), LogBeta(3.0, 2.0), 1e-12);
  EXPECT_NEAR(LogBeta(1.0, 1.0), 0.0, 1e-12);  // Beta(1,1) = 1
}

TEST(MathUtilTest, BetaPdfIntegratesToOne) {
  double sum = 0.0;
  const int n = 2000;
  for (int i = 1; i < n; ++i) {
    sum += BetaPdf(static_cast<double>(i) / n, 2.5, 4.0) / n;
  }
  EXPECT_NEAR(sum, 1.0, 0.01);
}

TEST(MathUtilTest, BetaPdfZeroOutsideSupport) {
  EXPECT_EQ(BetaPdf(0.0, 2.0, 2.0), 0.0);
  EXPECT_EQ(BetaPdf(1.0, 2.0, 2.0), 0.0);
  EXPECT_EQ(BetaPdf(-0.5, 2.0, 2.0), 0.0);
}

TEST(MathUtilTest, LogSumExpStable) {
  std::vector<double> x = {-1000.0, -1000.0};
  EXPECT_NEAR(LogSumExp(x), -1000.0 + std::log(2.0), 1e-9);
}

TEST(MathUtilTest, CosineOrthogonalAndParallel) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-12);
  EXPECT_NEAR(CosineSimilarity({1, 2}, {2, 4}), 1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 1}), 0.0);
}

TEST(MathUtilTest, SparseCosineMatchesDense) {
  std::vector<std::pair<uint32_t, double>> a = {{0, 1.0}, {2, 2.0}};
  std::vector<std::pair<uint32_t, double>> b = {{0, 3.0}, {1, 1.0}};
  double dense = CosineSimilarity({1, 0, 2}, {3, 1, 0});
  EXPECT_NEAR(SparseCosine(a, b), dense, 1e-12);
}

TEST(MathUtilTest, NormalizeL1) {
  std::vector<double> v = {1.0, 3.0};
  NormalizeL1(v);
  EXPECT_NEAR(v[0], 0.25, 1e-12);
  EXPECT_NEAR(v[1], 0.75, 1e-12);
  std::vector<double> zero = {0.0, 0.0};
  NormalizeL1(zero);
  EXPECT_EQ(zero[0], 0.0);
}

TEST(MathUtilTest, MeanVariance) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(Mean(v), 2.5, 1e-12);
  EXPECT_NEAR(Variance(v), 1.25, 1e-12);
  EXPECT_EQ(Mean({}), 0.0);
}

}  // namespace
}  // namespace pqsda
