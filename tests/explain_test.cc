// Decision-observability suite: per-candidate score attribution, the
// /explainz surface, and deterministic replay from the request log. Six
// clusters:
//
//  1. Explain plumbing: fingerprint hex round-trip, ExplainScope nesting
//     (replay collects inside a serving thread), ExplainStore ring bounds.
//  2. The reconciliation property the tentpole promises: the attribution
//     terms recompose the served ranking. Without personalization the
//     served order is the Eq. 15 relevance order; with the §V-B rerank the
//     per-candidate Borda points (diversification + weighted preference)
//     sorted descending reproduce it. The record's fingerprint recomputes
//     from the served list.
//  3. Request-log schema round-trip: ToJson → ParseRequestLogEntry → ToJson
//     is the identity, unknown keys are skipped, malformed lines reject.
//  4. Replay determinism: a logged request re-executes bitwise-identical —
//     against the published generation, against a *retired* generation
//     after a rebuild swap (the IndexManager replay ring), through a
//     logged cache hit (re-run at the full rung), and ages out to NotFound
//     once the ring no longer holds the generation.
//  5. /explainz HTTP edge cases: index listing, unknown/malformed/empty
//     ids answer clean 404s, explain-disabled scrapes stay well-formed,
//     and concurrent scrapes race a SuggestBatch storm without tearing
//     (this file is part of the TSAN/ASan suites run_benches.sh re-runs).
//  6. /statusz exemplars age out with their generation: an exemplar whose
//     pinned generation left the replayable ring is dropped from the
//     scrape (a stale id must never advertise a replay command), while
//     live and unknown-generation exemplars keep their replay link. Plus
//     the rebuild lane of /profilez: drain/sessionize/graph_build/publish
//     stages appear after an ingest-triggered rebuild.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/index_manager.h"
#include "core/pqsda_engine.h"
#include "obs/explain.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/request_log.h"
#include "obs/stage_profiler.h"
#include "obs/telemetry.h"

namespace pqsda {
namespace {

using obs::ExplainCandidate;
using obs::ExplainRecord;
using obs::ExplainScope;
using obs::ExplainStore;
using obs::Fingerprint64;
using obs::RequestLogEntry;

// ----------------------------------------------------- plumbing ----

TEST(FingerprintTest, HexRoundTripAndRejection) {
  Fingerprint64 f;
  f.Mix("solar energy");
  f.MixDouble(3.25);
  const uint64_t v = f.value();
  const std::string hex = obs::FingerprintToHex(v);
  EXPECT_EQ(hex.size(), 16u);
  uint64_t back = 0;
  ASSERT_TRUE(obs::FingerprintFromHex(hex, &back));
  EXPECT_EQ(back, v);

  // Short hex parses leniently (the log always writes 16 digits, but a
  // hand-typed id works); empty, overlong and non-hex reject.
  uint64_t short_hex = 0;
  ASSERT_TRUE(obs::FingerprintFromHex("123", &short_hex));
  EXPECT_EQ(short_hex, 0x123u);
  uint64_t ignored = 0;
  EXPECT_FALSE(obs::FingerprintFromHex("", &ignored));
  EXPECT_FALSE(obs::FingerprintFromHex("00000000000000zz", &ignored));
  EXPECT_FALSE(obs::FingerprintFromHex("00000000000000000", &ignored));
}

TEST(FingerprintTest, SensitiveToQueryBytesAndScoreBits) {
  Fingerprint64 a, b, c;
  a.Mix("sun");
  a.MixDouble(1.0);
  b.Mix("sun");
  b.MixDouble(1.0 + 1e-16);  // rounds to 1.0: identical bit pattern
  c.Mix("sun");
  c.MixDouble(std::nextafter(1.0, 2.0));  // one ulp: different pattern
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
}

TEST(ExplainScopeTest, NestsAndRestores) {
  EXPECT_EQ(obs::CurrentExplain(), nullptr);
  ExplainRecord outer, inner;
  {
    ExplainScope a(&outer);
    EXPECT_EQ(obs::CurrentExplain(), &outer);
    {
      ExplainScope b(&inner);
      EXPECT_EQ(obs::CurrentExplain(), &inner);
    }
    EXPECT_EQ(obs::CurrentExplain(), &outer);
  }
  EXPECT_EQ(obs::CurrentExplain(), nullptr);
}

TEST(ExplainStoreTest, BoundedRingEvictsOldest) {
  ExplainStore store(8);
  for (uint64_t id = 1; id <= 20; ++id) {
    auto record = std::make_shared<ExplainRecord>();
    record->request_id = id;
    record->query = "q" + std::to_string(id);
    store.Add(std::move(record));
  }
  EXPECT_EQ(store.size(), 8u);
  EXPECT_EQ(store.Find(1), nullptr);
  EXPECT_EQ(store.Find(12), nullptr);
  ASSERT_NE(store.Find(13), nullptr);
  ASSERT_NE(store.Find(20), nullptr);
  EXPECT_EQ(store.Find(20)->query, "q20");
  // Index lists newest first.
  auto index = store.Index();
  ASSERT_EQ(index.size(), 8u);
  EXPECT_EQ(index.front().first, 20u);
  EXPECT_EQ(index.back().first, 13u);
}

// ------------------------------------------------ reconciliation ----

std::vector<QueryLogRecord> ExplainLog() {
  return {
      {1, "sun", "www.java.com", 100},
      {1, "sun java", "java.sun.com", 150},
      {1, "java download", "www.java.com", 200},
      {4, "sun java", "www.java.com", 100},
      {4, "java download", "java.sun.com", 130},
      {2, "sun", "www.nasa.gov", 100},
      {2, "solar system", "www.nasa.gov", 160},
      {2, "solar energy", "www.energy.gov", 220},
      {5, "solar system", "www.nasa.gov", 90},
      {5, "solar energy", "www.nasa.gov", 140},
      {3, "sun", "www.thesun.co.uk", 100},
      {3, "sun daily uk", "www.thesun.co.uk", 150},
      {6, "sun daily uk", "www.thesun.co.uk", 110},
      {6, "uk news", "www.thesun.co.uk", 170},
  };
}

std::unique_ptr<PqsdaEngine> BuildExplainEngine(
    bool personalize = true, size_t cache_capacity = 0,
    size_t retired_snapshots = 4) {
  PqsdaEngineConfig config;
  config.upm.base.num_topics = 4;
  config.upm.base.gibbs_iterations = 10;
  config.upm.hyper_rounds = 1;
  config.personalize = personalize;
  config.cache_capacity = cache_capacity;
  config.ingest.rebuild_min_records = SIZE_MAX;  // rebuilds only on demand
  config.ingest.retired_snapshots = retired_snapshots;
  auto built = PqsdaEngine::Build(ExplainLog(), config);
  EXPECT_TRUE(built.ok());
  return std::move(built).value();
}

SuggestionRequest ExplainRequest(const std::string& query,
                                 UserId user = kNoUser) {
  SuggestionRequest request;
  request.query = query;
  request.timestamp = 400;
  request.user = user;
  return request;
}

// Served candidates of a record (final_rank assigned), in served order.
std::vector<ExplainCandidate> ServedCandidates(const ExplainRecord& record) {
  std::vector<ExplainCandidate> served;
  for (const ExplainCandidate& c : record.candidates) {
    if (c.final_rank != SIZE_MAX) served.push_back(c);
  }
  return served;
}

TEST(ExplainAttributionTest, RelevanceOrderReconcilesWithoutRerank) {
  auto engine = BuildExplainEngine(/*personalize=*/false);
  ExplainRecord record;
  auto list = engine->Suggest(ExplainRequest("sun"), 10, nullptr, &record);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_FALSE(list->empty());

  EXPECT_TRUE(record.ok);
  EXPECT_FALSE(record.walk_only);
  EXPECT_FALSE(record.personalized);
  EXPECT_EQ(record.generation, 0u);
  EXPECT_EQ(record.rung, 0u);
  EXPECT_EQ(record.k, 10u);
  EXPECT_EQ(record.query, "sun");

  std::vector<ExplainCandidate> served = ServedCandidates(record);
  ASSERT_EQ(served.size(), list->size());
  size_t round_zero = 0;
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i].final_rank, i);
    EXPECT_EQ(served[i].query, (*list)[i].query);
    EXPECT_EQ(served[i].score, (*list)[i].score);
    if (i > 0) {
      // Algorithm 1 sorts the selected set by F* descending for output:
      // without the rerank, the attribution's relevance column IS the
      // served order.
      EXPECT_GE(served[i - 1].relevance, served[i].relevance)
          << "rank " << i;
    }
    if (served[i].selection_round == 0) {
      ++round_zero;
      // The round-0 pick is the Eq. 15 argmax: no hitting-time sweep ran.
      EXPECT_EQ(served[i].hitting_time, 0.0);
      EXPECT_EQ(served[i].chain_rank[0], SIZE_MAX);
    } else {
      // Later rounds carry the marginal gain and a rank under each
      // single-chain ordering.
      EXPECT_GT(served[i].hitting_time, 0.0);
      for (size_t x = 0; x < obs::kExplainChainCount; ++x) {
        EXPECT_NE(served[i].chain_rank[x], SIZE_MAX)
            << "rank " << i << " chain " << obs::kExplainChainNames[x];
      }
    }
  }
  EXPECT_EQ(round_zero, 1u);

  // The record's fingerprint recomputes from the served list, bitwise.
  Fingerprint64 f;
  for (const Suggestion& s : *list) {
    f.Mix(s.query);
    f.MixDouble(s.score);
  }
  EXPECT_EQ(record.fingerprint, f.value());
  EXPECT_NE(record.fingerprint, 0u);
}

TEST(ExplainAttributionTest, BordaPointsReconcilePersonalizedOrder) {
  auto engine = BuildExplainEngine(/*personalize=*/true);
  ExplainRecord record;
  auto list = engine->Suggest(ExplainRequest("sun", 1), 10, nullptr, &record);
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  ASSERT_GE(list->size(), 2u);
  ASSERT_TRUE(record.personalized);
  EXPECT_GT(record.preference_weight, 0u);

  std::vector<ExplainCandidate> served = ServedCandidates(record);
  ASSERT_EQ(served.size(), list->size());
  for (size_t i = 1; i < served.size(); ++i) {
    const double prev = served[i - 1].borda_diversification +
                        served[i - 1].borda_preference;
    const double cur =
        served[i].borda_diversification + served[i].borda_preference;
    // BordaAggregate stable-sorts total points descending over a universe
    // in diversification-list order, so ties resolve toward the higher
    // diversification award.
    EXPECT_TRUE(prev > cur ||
                (prev == cur && served[i - 1].borda_diversification >
                                    served[i].borda_diversification))
        << "rank " << i << ": " << prev << " then " << cur;
    // The preference award is the weighted Borda of a real ranking: a
    // multiple of the weight, bounded by weight * n.
    EXPECT_LE(served[i].borda_preference,
              static_cast<double>(record.preference_weight * served.size()));
  }
  // At least one candidate carries a nonzero UPM preference — user 1 is in
  // the training log.
  bool any_pref = false;
  for (const ExplainCandidate& c : served) {
    if (c.upm_preference > 0.0) any_pref = true;
  }
  EXPECT_TRUE(any_pref);
}

TEST(ExplainAttributionTest, ExplainJsonCarriesTheTerms) {
  auto engine = BuildExplainEngine(/*personalize=*/true);
  ExplainRecord record;
  auto list = engine->Suggest(ExplainRequest("sun", 1), 5, nullptr, &record);
  ASSERT_TRUE(list.ok());
  const std::string json = record.ToJson();
  EXPECT_NE(json.find("\"relevance\":"), std::string::npos);
  EXPECT_NE(json.find("\"selection_round\":"), std::string::npos);
  EXPECT_NE(json.find("\"hitting_time\":"), std::string::npos);
  EXPECT_NE(json.find("\"upm_preference\":"), std::string::npos);
  EXPECT_NE(json.find("\"borda\":"), std::string::npos);
  EXPECT_NE(json.find("\"generation\":0"), std::string::npos);
  EXPECT_NE(json.find("\"rung_name\":\"full\""), std::string::npos);
  EXPECT_NE(json.find("\"fingerprint\":\"" +
                      obs::FingerprintToHex(record.fingerprint) + "\""),
            std::string::npos);
}

// ------------------------------------------- log schema round-trip ----

TEST(LogSchemaTest, ParseToJsonIsIdentity) {
  RequestLogEntry entry;
  entry.request_id = 91;
  entry.user = 7;
  entry.query = "solar \"flare\" \n\t";
  entry.k = 10;
  entry.timestamp = 1234567;
  entry.context = {{"prior query", 1234000}, {"older \"one\"", 1233000}};
  entry.generation = 3;
  entry.rung = 1;
  entry.total_us = 4321;
  entry.cache_hit = false;
  entry.ok = true;
  entry.fingerprint = 0xfeedfacecafebeefULL;
  entry.stage_us = {{"expansion", 10}, {"regularization_solve", 20}};
  entry.suggestions = {"solar energy", "solar system"};

  const std::string json = obs::RequestLog::ToJson(entry);
  auto parsed = obs::ParseRequestLogEntry(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(obs::RequestLog::ToJson(*parsed), json);
  EXPECT_EQ(parsed->query, entry.query);
  EXPECT_EQ(parsed->context, entry.context);
  EXPECT_EQ(parsed->fingerprint, entry.fingerprint);
  EXPECT_EQ(parsed->generation, 3u);
  EXPECT_EQ(parsed->rung, 1u);

  // A failed entry round-trips too (no fingerprint, no suggestions).
  RequestLogEntry failed;
  failed.request_id = 92;
  failed.query = "zzz";
  failed.k = 10;
  failed.ok = false;
  failed.status = "NotFound: cold";
  const std::string failed_json = obs::RequestLog::ToJson(failed);
  auto failed_parsed = obs::ParseRequestLogEntry(failed_json);
  ASSERT_TRUE(failed_parsed.ok());
  EXPECT_EQ(obs::RequestLog::ToJson(*failed_parsed), failed_json);
  EXPECT_FALSE(failed_parsed->ok);
  EXPECT_EQ(failed_parsed->status, "NotFound: cold");
}

TEST(LogSchemaTest, UnknownKeysSkipMalformedRejects) {
  // Forward compatibility: a newer writer's extra fields parse fine.
  auto with_extras = obs::ParseRequestLogEntry(
      "{\"request_id\":5,\"query\":\"sun\",\"k\":3,"
      "\"future_field\":{\"nested\":[1,2,{\"x\":\"y\"}]},"
      "\"ok\":true,\"suggestions\":[\"a\"]}");
  ASSERT_TRUE(with_extras.ok()) << with_extras.status().ToString();
  EXPECT_EQ(with_extras->request_id, 5u);
  EXPECT_EQ(with_extras->suggestions, std::vector<std::string>{"a"});

  EXPECT_FALSE(obs::ParseRequestLogEntry("").ok());
  EXPECT_FALSE(obs::ParseRequestLogEntry("not json").ok());
  EXPECT_FALSE(obs::ParseRequestLogEntry("{\"request_id\":}").ok());
  EXPECT_FALSE(obs::ParseRequestLogEntry("{\"query\":\"unterminated}").ok());
  EXPECT_FALSE(
      obs::ParseRequestLogEntry("{\"request_id\":1} trailing").ok());
  EXPECT_FALSE(
      obs::ParseRequestLogEntry("{\"fingerprint\":\"xyz\"}").ok());
}

// ---------------------------------------------------- replay ----

// The log entry a served request would have produced, assembled from the
// request and its explain record (what suggest_cli's replay reads back).
RequestLogEntry EntryFor(const SuggestionRequest& request, size_t k,
                         const ExplainRecord& record) {
  RequestLogEntry entry;
  entry.request_id = record.request_id;
  entry.user = request.user;
  entry.query = request.query;
  entry.k = k;
  entry.timestamp = request.timestamp;
  entry.context = request.context;
  entry.generation = record.generation;
  entry.rung = static_cast<uint32_t>(record.rung);
  entry.cache_hit = record.cache_hit;
  entry.ok = record.ok;
  entry.fingerprint = record.fingerprint;
  return entry;
}

void ExpectBitwiseEqual(const std::vector<Suggestion>& a,
                        const std::vector<Suggestion>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query) << "rank " << i;
    // Bitwise, not approximately: replay reproduces the float path exactly.
    EXPECT_EQ(a[i].score, b[i].score) << "rank " << i;
  }
}

TEST(ReplayTest, ReproducesServedListBitwise) {
  auto engine = BuildExplainEngine(/*personalize=*/true);
  SuggestionRequest request = ExplainRequest("sun", 1);
  request.context = {{"solar system", 380}};
  ExplainRecord record;
  auto served = engine->Suggest(request, 10, nullptr, &record);
  ASSERT_TRUE(served.ok());

  ExplainRecord replay_record;
  auto replayed =
      engine->Replay(EntryFor(request, 10, record), &replay_record);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ExpectBitwiseEqual(*served, *replayed);
  EXPECT_EQ(replay_record.fingerprint, record.fingerprint);
  // Replay collects the same attribution the original could have.
  std::vector<ExplainCandidate> a = ServedCandidates(record);
  std::vector<ExplainCandidate> b = ServedCandidates(replay_record);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].query, b[i].query);
    EXPECT_EQ(a[i].relevance, b[i].relevance);
    EXPECT_EQ(a[i].selection_round, b[i].selection_round);
  }
}

TEST(ReplayTest, LoggedCacheHitReplaysThroughThePipeline) {
  auto engine = BuildExplainEngine(/*personalize=*/true, /*cache=*/16);
  SuggestionRequest request = ExplainRequest("sun", 1);
  auto miss = engine->Suggest(request, 10);
  ASSERT_TRUE(miss.ok());
  ExplainRecord hit_record;
  auto hit = engine->Suggest(request, 10, nullptr, &hit_record);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit_record.cache_hit);
  // A cached list was computed by the full rung; replay bypasses the cache
  // and re-runs that pipeline, reproducing the identical list.
  auto replayed = engine->Replay(EntryFor(request, 10, hit_record));
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ExpectBitwiseEqual(*hit, *replayed);
}

// Fresh traffic for rebuild tests: a new user whose session reinforces the
// solar cluster (timestamps past the training log).
std::vector<QueryLogRecord> FreshRecords() {
  return {
      {9, "solar energy", "www.energy.gov", 5000},
      {9, "solar panels", "www.energy.gov", 5100},
      {9, "solar system", "www.nasa.gov", 5200},
  };
}

TEST(ReplayTest, RetiredGenerationStaysReplayableAfterSwap) {
  auto engine = BuildExplainEngine(/*personalize=*/true);
  SuggestionRequest request = ExplainRequest("sun", 1);
  ExplainRecord record;
  auto served = engine->Suggest(request, 10, nullptr, &record);
  ASSERT_TRUE(served.ok());
  ASSERT_EQ(record.generation, 0u);

  IndexManager& index = engine->index_manager();
  ASSERT_TRUE(index.IngestBatch(FreshRecords()).ok());
  ASSERT_TRUE(index.RebuildNow().ok());
  ASSERT_EQ(index.generation(), 1u);
  // Generation 0 was retired into the replay ring, not reclaimed.
  EXPECT_EQ(index.oldest_live_generation(), 0u);
  ASSERT_NE(index.AcquireGeneration(0), nullptr);

  auto replayed = engine->Replay(EntryFor(request, 10, record));
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  ExpectBitwiseEqual(*served, *replayed);

  // The same request served *now* pins generation 1 — and replays against
  // generation 1, independently of the retired one.
  ExplainRecord now_record;
  auto now_served = engine->Suggest(request, 10, nullptr, &now_record);
  ASSERT_TRUE(now_served.ok());
  EXPECT_EQ(now_record.generation, 1u);
  auto now_replayed = engine->Replay(EntryFor(request, 10, now_record));
  ASSERT_TRUE(now_replayed.ok());
  ExpectBitwiseEqual(*now_served, *now_replayed);
}

TEST(ReplayTest, AgedOutGenerationAnswersNotFound) {
  auto engine = BuildExplainEngine(/*personalize=*/true, /*cache=*/0,
                                   /*retired_snapshots=*/0);
  SuggestionRequest request = ExplainRequest("sun", 1);
  ExplainRecord record;
  ASSERT_TRUE(engine->Suggest(request, 10, nullptr, &record).ok());

  IndexManager& index = engine->index_manager();
  ASSERT_TRUE(index.IngestBatch(FreshRecords()).ok());
  ASSERT_TRUE(index.RebuildNow().ok());
  EXPECT_EQ(index.oldest_live_generation(), 1u);
  EXPECT_EQ(index.AcquireGeneration(0), nullptr);

  auto replayed = engine->Replay(EntryFor(request, 10, record));
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------------- /explainz HTTP ----

TEST(ExplainzHttpTest, EdgeCasesAnswerCleanly) {
  obs::ServingTelemetryOptions options;
  options.explain_sample_every = 1;
  options.explain_store_capacity = 8;
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Install(options);

  obs::HttpExporter exporter;
  telemetry.RegisterEndpoints(&exporter);
  ASSERT_TRUE(exporter.Start(0).ok());

  // Empty store: the index is well-formed JSON with no records.
  int status = 0;
  auto index = obs::HttpGet(exporter.port(), "/explainz", &status);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(status, 200);
  EXPECT_NE(index->find("\"records\":[]"), std::string::npos);

  // Unknown, malformed, empty and overlong ids: clean 404s, never a crash.
  for (const char* path :
       {"/explainz?id=424242", "/explainz?id=abc", "/explainz?id=",
        "/explainz?id=12x", "/explainz?id=-3",
        "/explainz?id=99999999999999999999999999"}) {
    status = 0;
    auto body = obs::HttpGet(exporter.port(), path, &status);
    ASSERT_TRUE(body.ok()) << path;
    EXPECT_EQ(status, 404) << path;
    EXPECT_NE(body->find("error"), std::string::npos) << path;
  }

  // A served request lands in the ring and scrapes by id.
  auto engine = BuildExplainEngine(/*personalize=*/false);
  ASSERT_TRUE(engine->Suggest(ExplainRequest("sun"), 5).ok());
  ASSERT_GT(telemetry.explain_store().size(), 0u);
  const uint64_t id = telemetry.explain_store().Index().front().first;
  status = 0;
  auto body = obs::HttpGet(
      exporter.port(), "/explainz?id=" + std::to_string(id), &status);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(status, 200);
  EXPECT_NE(body->find("\"query\":\"sun\""), std::string::npos);
  EXPECT_NE(body->find("\"candidates\":["), std::string::npos);

  // Disabled sampling: requests stop landing, existing records stay
  // scrapeable, the index stays well-formed.
  telemetry.SetExplainSampleEvery(0);
  const size_t before = telemetry.explain_store().size();
  ASSERT_TRUE(engine->Suggest(ExplainRequest("solar energy"), 5).ok());
  EXPECT_EQ(telemetry.explain_store().size(), before);
  status = 0;
  auto disabled_index = obs::HttpGet(exporter.port(), "/explainz", &status);
  ASSERT_TRUE(disabled_index.ok());
  EXPECT_EQ(status, 200);
  EXPECT_NE(disabled_index->find("\"sample_every\":0"), std::string::npos);

  exporter.Stop();
}

TEST(ExplainzHttpTest, ConcurrentScrapesDuringServingStorm) {
  obs::ServingTelemetryOptions options;
  options.explain_sample_every = 2;
  options.explain_store_capacity = 16;
  obs::ServingTelemetry& telemetry = obs::ServingTelemetry::Install(options);

  obs::HttpExporter exporter;
  telemetry.RegisterEndpoints(&exporter);
  ASSERT_TRUE(exporter.Start(0).ok());

  auto engine = BuildExplainEngine(/*personalize=*/true);
  std::vector<SuggestionRequest> storm;
  const char* queries[] = {"sun", "solar energy", "sun java", "uk news"};
  for (size_t i = 0; i < 48; ++i) {
    storm.push_back(ExplainRequest(queries[i % 4],
                                   i % 3 == 0 ? UserId{1} : kNoUser));
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> scrapes{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 2; ++t) {
    scrapers.emplace_back([&exporter, &stop, &scrapes, &telemetry] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (obs::HttpGet(exporter.port(), "/explainz").ok()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        // Chase whatever is newest right now — races eviction on purpose.
        auto index = telemetry.explain_store().Index();
        if (!index.empty()) {
          (void)obs::HttpGet(
              exporter.port(),
              "/explainz?id=" + std::to_string(index.front().first));
        }
      }
    });
  }

  ThreadPool pool(4);
  auto results = engine->SuggestBatch(storm, 5, &pool);
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : scrapers) t.join();

  size_t served = 0;
  for (const auto& r : results) {
    if (r.ok()) ++served;
  }
  EXPECT_EQ(served, storm.size());
  EXPECT_GT(scrapes.load(), 0u);
  EXPECT_GT(telemetry.explain_store().size(), 0u);
  EXPECT_LE(telemetry.explain_store().size(), 16u);
  exporter.Stop();
}

// --------------------------------- exemplars + rebuild profiling ----

TEST(ExemplarAgingTest, StaleGenerationDropsFromStatusz) {
  obs::ServingTelemetry& telemetry =
      obs::ServingTelemetry::Install(obs::ServingTelemetryOptions{});
  obs::Gauge& oldest_live = obs::MetricsRegistry::Default().GetGauge(
      "pqsda.ingest.oldest_live_generation");

  // Three exemplars in distinct latency buckets: a replayable generation, a
  // soon-stale generation, and a legacy recording with no generation. The
  // generation rides in shifted by one so the real generation 0 stays
  // distinguishable from "unknown".
  telemetry.RecordRequest(80.0, true, false, false, false, false,
                          /*request_id=*/41, /*generation_plus_one=*/3);
  telemetry.RecordRequest(900.0, true, false, false, false, false,
                          /*request_id=*/42, /*generation_plus_one=*/8);
  telemetry.RecordRequest(9000.0, true, false, false, false, false,
                          /*request_id=*/43, /*generation_plus_one=*/0);
  // The real generation 0 (gen_p1 == 1) is replayable, not "unknown" —
  // before any rebuild retires it, its exemplar must link the replay.
  telemetry.RecordRequest(90000.0, true, false, false, false, false,
                          /*request_id=*/44, /*generation_plus_one=*/1);
  std::string initial = telemetry.StatuszJson();
  EXPECT_NE(initial.find("\"replay\":\"suggest_cli replay 44\""),
            std::string::npos);

  oldest_live.Set(2.0);
  std::string fresh = telemetry.StatuszJson();
  EXPECT_NE(fresh.find("\"replay\":\"suggest_cli replay 41\""),
            std::string::npos);
  EXPECT_NE(fresh.find("\"replay\":\"suggest_cli replay 42\""),
            std::string::npos);
  // The unknown-generation exemplar is listed without a replay link.
  EXPECT_NE(fresh.find("\"request_id\":43"), std::string::npos);
  EXPECT_EQ(fresh.find("\"replay\":\"suggest_cli replay 43\""),
            std::string::npos);

  // Generation 2 leaves the replay ring: its exemplar ages out of the
  // scrape entirely; the newer one and the unknown-generation one survive.
  oldest_live.Set(5.0);
  std::string aged = telemetry.StatuszJson();
  EXPECT_EQ(aged.find("\"request_id\":41"), std::string::npos);
  EXPECT_EQ(aged.find("\"request_id\":44"), std::string::npos);
  EXPECT_NE(aged.find("\"replay\":\"suggest_cli replay 42\""),
            std::string::npos);
  EXPECT_NE(aged.find("\"request_id\":43"), std::string::npos);

  oldest_live.Set(0.0);  // leave the global gauge inert for other tests
}

TEST(RebuildProfilingTest, RebuildStagesAppearInProfilez) {
  obs::StageProfiler& profiler = obs::StageProfiler::Default();
  profiler.SetEnabled(true);
  auto engine = BuildExplainEngine(/*personalize=*/false);
  IndexManager& index = engine->index_manager();
  ASSERT_TRUE(index.IngestBatch(FreshRecords()).ok());
  ASSERT_TRUE(index.RebuildNow().ok());

  const std::string profilez = profiler.ProfilezJson(60LL * 1000000000LL);
  EXPECT_NE(profilez.find("\"rebuild\""), std::string::npos);
  for (const char* stage : {"drain", "sessionize", "graph_build", "publish"}) {
    EXPECT_NE(profilez.find(std::string("\"") + stage + "\""),
              std::string::npos)
        << stage << " missing from " << profilez;
  }
}

}  // namespace
}  // namespace pqsda
